//! Quickstart: fuse a tensor-sliced GEMM with its reduce-scatter.
//!
//! Runs one T-NLG-like FC-2 sublayer (TP=8) under the Sequential
//! baseline and under T3/T3-MCA, prints the timing and data-movement
//! comparison, and then proves functional correctness by executing the
//! fused GEMM-RS on real data and checking it against GEMM-then-reduce.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use t3::collectives::gemm::matmul;
use t3::core::configs::Configuration;
use t3::core::fused::{fused_gemm_ring_rs, to_tile_order, FusedProducer};
use t3::gpu::gemm::{GemmGrid, GemmShape};
use t3::net::ring::Ring;
use t3::sim::config::SystemConfig;
use t3::sim::cycles_to_us;

fn main() {
    let system = SystemConfig::paper_default(); // Table 1, 8 GPUs
                                                // T-NLG FC-2 with TP=8: 8K tokens x 4256 hidden, K sliced 8-ways.
    let shape = GemmShape::new(8192, 4256, 4 * 4256).tp_sliced(8);
    println!(
        "Sliced FC-2 GEMM: {}x{}x{} (output {:.1} MB, all-reduced across {} GPUs)\n",
        shape.m,
        shape.n,
        shape.k,
        shape.output_bytes() as f64 / 1e6,
        system.num_gpus
    );

    let clock = system.gpu.clock_ghz;
    let seq = Configuration::Sequential.run(&system, &shape);
    println!(
        "Sequential:  GEMM {:7.1} us + RS {:7.1} us + AG {:7.1} us = {:8.1} us, DRAM {:.0} MB",
        cycles_to_us(seq.gemm_cycles, clock),
        cycles_to_us(seq.rs_cycles, clock),
        cycles_to_us(seq.ag_cycles, clock),
        cycles_to_us(seq.total_cycles, clock),
        seq.stats.total() as f64 / 1e6,
    );
    for config in [Configuration::T3, Configuration::T3Mca] {
        let out = config.run(&system, &shape);
        println!(
            "{:<12} fused GEMM+RS {:7.1} us + AG {:7.1} us = {:8.1} us, DRAM {:.0} MB  ({:.2}x, {:.0}% less data)",
            format!("{}:", config.name()),
            cycles_to_us(out.gemm_cycles, clock),
            cycles_to_us(out.ag_cycles, clock),
            cycles_to_us(out.total_cycles, clock),
            out.stats.total() as f64 / 1e6,
            out.speedup_over(&seq),
            out.traffic_reduction_vs(&seq) * 100.0,
        );
    }

    // --- Functional proof, scaled down so it runs in a blink --------
    println!("\nFunctional check (4 devices, 256x256x32 per device):");
    let n_dev = 4;
    let (m, n, k) = (256usize, 256usize, 32usize);
    let small = GemmShape::new(m as u64, n as u64, k as u64);
    let producers: Vec<FusedProducer> = (0..n_dev)
        .map(|d| FusedProducer {
            a: (0..m * k)
                .map(|i| ((i * 7 + d * 13) % 17) as f32 / 8.0 - 1.0)
                .collect(),
            b: (0..k * n)
                .map(|i| ((i * 11 + d * 3) % 19) as f32 / 9.0 - 1.0)
                .collect(),
        })
        .collect();
    let outcome = fused_gemm_ring_rs(&system.gpu, small, &producers);
    // Reference: sum of per-device GEMMs.
    let grid = GemmGrid::new(&system.gpu, small);
    let mut expected = vec![0.0f32; m * n];
    for p in &producers {
        for (e, v) in expected.iter_mut().zip(matmul(&p.a, &p.b, m, n, k)) {
            *e += v;
        }
    }
    let expected = to_tile_order(&grid, &expected);
    let ring = Ring::new(n_dev);
    let mut worst = 0.0f32;
    for d in 0..n_dev {
        let chunk = ring.rs_owned_chunk(d);
        let (s, e) = outcome.chunk_ranges[chunk];
        for (a, b) in outcome.owned_chunk(ring, d).iter().zip(&expected[s..e]) {
            worst = worst.max((a - b).abs());
        }
    }
    println!("  fused == GEMM-then-reduce on every owned chunk (max |err| {worst:.2e});");
    println!(
        "  {} tracker triggers, {} DMA transfers, peak {} tracker entries",
        outcome.triggers_fired, outcome.dma_transfers, outcome.peak_tracker_entries
    );
}
