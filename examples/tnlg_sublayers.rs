//! The paper's T-NLG sublayer study (Figures 15 and 16) from the
//! public API: all four tensor-sliced sublayers at TP = 8 and 16,
//! under every evaluated configuration.
//!
//! ```text
//! cargo run --release --example tnlg_sublayers [-- --fast]
//! ```

use t3::core::configs::Configuration;
use t3::models::zoo;
use t3::models::Sublayer;
use t3::sim::config::SystemConfig;
use t3::sim::{cycles_to_us, geomean};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let model = zoo::t_nlg();
    println!(
        "{} (H={}, {} tokens){}",
        model.name,
        model.hidden,
        model.tokens(),
        if fast { " [fast scale]" } else { "" }
    );
    let mut mca_speedups = Vec::new();
    for tp in [8u64, 16] {
        let system = SystemConfig::paper_default().with_num_gpus(tp as usize);
        let clock = system.gpu.clock_ghz;
        println!("\nTP = {tp}");
        println!(
            "  {:<12} {:>10} {:>8} {:>8} {:>8} {:>10} {:>10}",
            "sublayer", "seq (us)", "GEMM%", "RS%", "AG%", "T3", "T3-MCA"
        );
        for sub in Sublayer::ALL {
            let mut shape = model.sublayer_gemm(sub, tp);
            if fast {
                shape.m /= 8;
            }
            let seq = Configuration::Sequential.run(&system, &shape);
            let t3 = Configuration::T3.run(&system, &shape);
            let mca = Configuration::T3Mca.run(&system, &shape);
            let total = seq.total_cycles as f64;
            mca_speedups.push(mca.speedup_over(&seq));
            println!(
                "  {:<12} {:>10.1} {:>7.1}% {:>7.1}% {:>7.1}% {:>9.2}x {:>9.2}x",
                sub.label(),
                cycles_to_us(seq.total_cycles, clock),
                seq.gemm_cycles as f64 / total * 100.0,
                seq.rs_cycles as f64 / total * 100.0,
                seq.ag_cycles as f64 / total * 100.0,
                t3.speedup_over(&seq),
                mca.speedup_over(&seq),
            );
        }
    }
    println!(
        "\nT3-MCA geomean across sublayers: {:.2}x (paper band: ~1.3x geomean, 1.47x max)",
        geomean(&mca_speedups)
    );
}
