//! The paper's T-NLG sublayer study (Figures 15 and 16) from the
//! public API, driven by the declarative spec frontend: the workload
//! (model, TP degrees, modes) comes from `examples/specs/tnlg_tp.t3w`
//! and the system (fabric, links, MC policy) from
//! `examples/specs/ring.t3s`, expanded into points by `t3::spec`.
//!
//! ```text
//! cargo run --release --example tnlg_sublayers [-- --fast]
//! ```

use t3::core::configs::Configuration;
use t3::models::Sublayer;
use t3::sim::{cycles_to_us, geomean};
use t3::spec::{exec, sweep::SweepPlan, SystemSpec, WorkloadSpec};

const WORKLOAD: &str = include_str!("specs/tnlg_tp.t3w");
const SYSTEM: &str = include_str!("specs/ring.t3s");

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let token_divisor = if fast { 8 } else { 1 };
    let workload =
        WorkloadSpec::parse("examples/specs/tnlg_tp.t3w", WORKLOAD).expect("checked-in spec");
    let system = SystemSpec::parse("examples/specs/ring.t3s", SYSTEM).expect("checked-in spec");
    let plan =
        SweepPlan::expand("examples/specs/tnlg_tp.t3w", &workload, &system).expect("in caps");

    let model = workload.base_model();
    println!(
        "{} (H={}, {} tokens) on \"{}\"{}",
        model.name,
        model.hidden,
        model.tokens(),
        plan.system,
        if fast { " [fast scale]" } else { "" }
    );

    // The classic per-sublayer breakdown, at every TP degree the spec
    // sweeps (deduplicated in enumeration order).
    let mut tps: Vec<u64> = Vec::new();
    for point in &plan.points {
        if !tps.contains(&point.tp) {
            tps.push(point.tp);
        }
    }
    let mut mca_speedups = Vec::new();
    for &tp in &tps {
        let sys = system.system_config(tp as usize);
        let clock = sys.gpu.clock_ghz;
        println!("\nTP = {tp}");
        println!(
            "  {:<12} {:>10} {:>8} {:>8} {:>8} {:>10} {:>10}",
            "sublayer", "seq (us)", "GEMM%", "RS%", "AG%", "T3", "T3-MCA"
        );
        for sub in Sublayer::ALL {
            let mut shape = model.sublayer_gemm(sub, tp);
            shape.m /= token_divisor;
            let seq = Configuration::Sequential.run(&sys, &shape);
            let t3 = Configuration::T3.run(&sys, &shape);
            let mca = Configuration::T3Mca.run(&sys, &shape);
            let total = seq.total_cycles as f64;
            mca_speedups.push(mca.speedup_over(&seq));
            println!(
                "  {:<12} {:>10.1} {:>7.1}% {:>7.1}% {:>7.1}% {:>9.2}x {:>9.2}x",
                sub.label(),
                cycles_to_us(seq.total_cycles, clock),
                seq.gemm_cycles as f64 / total * 100.0,
                seq.rs_cycles as f64 / total * 100.0,
                seq.ag_cycles as f64 / total * 100.0,
                t3.speedup_over(&seq),
                mca.speedup_over(&seq),
            );
        }
    }
    println!(
        "\nT3-MCA geomean across sublayers: {:.2}x (paper band: ~1.3x geomean, 1.47x max)",
        geomean(&mca_speedups)
    );

    // The same spec pair through the sweep executor: one priced
    // iteration per point, then the fused-vs-sequential pairing.
    print!("\n{}", exec::header_lines(&plan.workload, &plan.system));
    let mut rows = Vec::new();
    for point in &plan.points {
        let out = exec::simulate_point(point, token_divisor);
        print!("{}", exec::row_line(&out));
        rows.push((point.label(), out.iter_cycles));
    }
    for line in exec::speedup_summary(&rows) {
        println!("{line}");
    }
}
