//! The paper's Section-7 extensions in action: the token-generation
//! phase of inference (Section 7.3) promoted to a full serving
//! engine, all-gather → consumer-GEMM overlap (Section 7.2), and
//! near-memory execution of the ops that follow an all-reduce
//! (Section 7.6).
//!
//! The generation-phase numbers route through the **same** `t3-serve`
//! cost model and study functions as the `figures serving` target, so
//! this example and the figures table cannot drift apart.
//!
//! ```text
//! cargo run --release --example inference_generation
//! ```

use t3::core::agfuse::{run_fused_ag_gemm, sequential_ag_gemm, AgFuseOptions};
use t3::core::study::nmc_following_ops_study;
use t3::gpu::gemm::{GemmGrid, GemmShape};
use t3::serve::cost::EngineMode;
use t3::serve::study::{self, SERVE_TENANTS};
use t3::sim::config::SystemConfig;
use t3::sim::cycles_to_us;

/// Token divisor for the serving trace — mirrors `figures --fast`.
const SCALE: u64 = 8;

fn main() {
    let sys = SystemConfig::paper_default();
    let clock = sys.gpu.clock_ghz;

    println!("Section 7.3 — generation-phase iterations (serve cost model, TP=8):");
    println!(
        "  {:<10} {:>13} {:>12} {:>9}",
        "tokens", "baseline(us)", "t3-fused(us)", "speedup"
    );
    let mut cost = study::serve_cost_model();
    for tokens in [8u64, 32, 128, 512, 2048] {
        let base = cost.iteration_cycles(EngineMode::Baseline, tokens, 1000);
        let fused = cost.iteration_cycles(EngineMode::Fused, tokens, 1000);
        println!(
            "  {:<10} {:>13.1} {:>12.1} {:>8.2}x",
            tokens,
            cycles_to_us(base, clock),
            cycles_to_us(fused, clock),
            base as f64 / fused as f64
        );
    }

    println!("\nContinuous-batching serving study (same code path as `figures serving`):");
    println!(
        "  {:<13} {:>5} {:>8} {:>9} {:>13} {:>12} {:>10}",
        "fabric", "load", "arrival", "engine", "ttft p99(us)", "e2e p99(us)", "tok/s/GPU"
    );
    let serve_clock = study::serve_system().gpu.clock_ghz;
    for row in study::serving_study(SCALE) {
        println!(
            "  {:<13} {:>4}% {:>8} {:>9} {:>13.1} {:>12.1} {:>10.0}",
            row.topology,
            row.load_permille / 10,
            row.arrival.label(),
            row.mode.label(),
            cycles_to_us(row.ttft.p99, serve_clock),
            cycles_to_us(row.e2e.p99, serve_clock),
            row.tokens_per_sec_per_gpu(serve_clock)
        );
    }
    println!(
        "  ({SERVE_TENANTS} tenants share each fabric; both engines serve identical seeded traces)"
    );

    println!("\nSection 7.2 — all-gather overlapped with its consumer GEMM:");
    let grid = GemmGrid::new(&sys.gpu, GemmShape::new(8192, 1024, 1024));
    let seq = sequential_ag_gemm(&sys, grid.clone());
    let aligned = run_fused_ag_gemm(&sys, grid.clone(), &AgFuseOptions::default());
    let misaligned = run_fused_ag_gemm(
        &sys,
        grid,
        &AgFuseOptions {
            arrival_aligned: false,
        },
    );
    println!(
        "  sequential AG+GEMM: {:.1} us",
        cycles_to_us(seq.cycles, clock)
    );
    println!(
        "  fused, WGs scheduled with arrival hints: {:.1} us ({:.2}x)",
        cycles_to_us(aligned.cycles, clock),
        seq.cycles as f64 / aligned.cycles as f64
    );
    println!(
        "  fused, no scheduling hints (worst-case order): {:.1} us ({:.2}x)",
        cycles_to_us(misaligned.cycles, clock),
        seq.cycles as f64 / misaligned.cycles as f64
    );

    println!("\nSection 7.6 — following ops near memory, before the all-gather:");
    for gpus in [8usize, 16, 32] {
        let s = SystemConfig::paper_default().with_num_gpus(gpus);
        let row = nmc_following_ops_study(&s, 64 << 20, 4.0);
        println!(
            "  {gpus:>2} GPUs: residual/dropout sweep {:.1} us -> {:.1} us ({:.0}% saved)",
            cycles_to_us(row.baseline_cycles, clock),
            cycles_to_us(row.nmc_cycles, clock),
            row.savings * 100.0
        );
    }
}
