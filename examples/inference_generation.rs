//! The paper's Section-7 extensions in action: the token-generation
//! phase of inference (Section 7.3), all-gather → consumer-GEMM
//! overlap (Section 7.2), and near-memory execution of the ops that
//! follow an all-reduce (Section 7.6).
//!
//! ```text
//! cargo run --release --example inference_generation
//! ```

use t3::core::agfuse::{run_fused_ag_gemm, sequential_ag_gemm, AgFuseOptions};
use t3::core::study::{generation_phase_study, nmc_following_ops_study};
use t3::gpu::gemm::{GemmGrid, GemmShape};
use t3::sim::config::SystemConfig;
use t3::sim::cycles_to_us;

fn main() {
    let sys = SystemConfig::paper_default();
    let clock = sys.gpu.clock_ghz;

    println!("Section 7.3 — generation phase (T-NLG FC-2-like, TP=8):");
    println!(
        "  {:<10} {:>14} {:>12} {:>9}",
        "tokens", "sequential(us)", "T3-MCA(us)", "speedup"
    );
    for tokens in [8u64, 32, 128, 512, 2048] {
        let row = generation_phase_study(&sys, 4256, tokens, 8);
        println!(
            "  {:<10} {:>14.1} {:>12.1} {:>8.2}x",
            row.tokens,
            cycles_to_us(row.sequential_cycles, clock),
            cycles_to_us(row.t3_cycles, clock),
            row.speedup
        );
    }

    println!("\nSection 7.2 — all-gather overlapped with its consumer GEMM:");
    let grid = GemmGrid::new(&sys.gpu, GemmShape::new(8192, 1024, 1024));
    let seq = sequential_ag_gemm(&sys, grid.clone());
    let aligned = run_fused_ag_gemm(&sys, grid.clone(), &AgFuseOptions::default());
    let misaligned = run_fused_ag_gemm(
        &sys,
        grid,
        &AgFuseOptions {
            arrival_aligned: false,
        },
    );
    println!(
        "  sequential AG+GEMM: {:.1} us",
        cycles_to_us(seq.cycles, clock)
    );
    println!(
        "  fused, WGs scheduled with arrival hints: {:.1} us ({:.2}x)",
        cycles_to_us(aligned.cycles, clock),
        seq.cycles as f64 / aligned.cycles as f64
    );
    println!(
        "  fused, no scheduling hints (worst-case order): {:.1} us ({:.2}x)",
        cycles_to_us(misaligned.cycles, clock),
        seq.cycles as f64 / misaligned.cycles as f64
    );

    println!("\nSection 7.6 — following ops near memory, before the all-gather:");
    for gpus in [8usize, 16, 32] {
        let s = SystemConfig::paper_default().with_num_gpus(gpus);
        let row = nmc_following_ops_study(&s, 64 << 20, 4.0);
        println!(
            "  {gpus:>2} GPUs: residual/dropout sweep {:.1} us -> {:.1} us ({:.0}% saved)",
            cycles_to_us(row.baseline_cycles, clock),
            cycles_to_us(row.nmc_cycles, clock),
            row.savings * 100.0
        );
    }
}
