//! Multi-node tensor parallelism on different fabrics: the T-NLG FC-2
//! sublayer at TP = 16, split across two 8-GPU nodes.
//!
//! Every GPU is simulated explicitly over a `t3::topo` fabric. The
//! sequential baseline is an isolated GEMM followed by the
//! reduce-scatter schedule executed on the same fabric; the fused run
//! streams partials into the wire as the GEMM produces them (T3).
//! Slow inter-node links and shared switch ports slow both, but the
//! fused run keeps hiding wire time behind compute.
//!
//! ```text
//! cargo run --release --example multinode_tp [-- --fast]
//! ```

use t3::core::engine::FusedOptions;
use t3::core::multigpu::run_multi_gpu_fused_rs_on;
use t3::gpu::engine::{run_gemm_isolated, WritePolicy};
use t3::gpu::gemm::GemmGrid;
use t3::models::zoo;
use t3::models::Sublayer;
use t3::sim::config::{LinkConfig, SystemConfig};
use t3::sim::cycles_to_us;
use t3::topo::{Fabric, Schedule, Topology};

/// Inter-node links: a quarter of the intra-node bandwidth, four
/// times the latency (InfiniBand next to xGMI).
fn inter_node(link: &LinkConfig) -> LinkConfig {
    let mut slow = link.clone();
    slow.link_gb_s /= 4.0;
    slow.latency_ns *= 4.0;
    slow
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let tp = 16u64;
    let system = SystemConfig::paper_default().with_num_gpus(tp as usize);
    let clock = system.gpu.clock_ghz;
    let model = zoo::t_nlg();
    let mut shape = model.sublayer_gemm(Sublayer::Fc2, tp);
    if fast {
        shape.m /= 8;
    }
    println!(
        "{} FC-2, TP = {tp} across 2 nodes of {} GPUs ({} x {} x {}){}",
        model.name,
        tp / 2,
        shape.m,
        shape.n,
        shape.k,
        if fast { " [fast scale]" } else { "" }
    );

    let link = &system.link;
    let fabrics: Vec<(&str, Topology)> = vec![
        ("ring", Topology::ring(16, link)),
        ("fully-connected", Topology::fully_connected(16, link)),
        ("switch", Topology::switch(16, link)),
        ("torus 2x8", Topology::torus2d(2, 8, link)),
        (
            "hierarchical",
            Topology::hierarchical(2, 8, link, &inter_node(link)),
        ),
    ];

    println!(
        "\n  {:<16} {:>6} {:>6} {:>12} {:>12} {:>12} {:>9}",
        "fabric", "links", "diam", "RS wire (us)", "seq (us)", "fused (us)", "speedup"
    );
    for (name, topo) in &fabrics {
        let grid = GemmGrid::new(&system.gpu, shape);
        let gemm = run_gemm_isolated(&system, grid.clone(), WritePolicy::CachedLocal);
        let sched = Schedule::reduce_scatter(topo);
        let rs_wire = Fabric::new(topo).run_schedule(&sched, shape.output_bytes(), None);
        let sequential = gemm.cycles + rs_wire;
        let fused = run_multi_gpu_fused_rs_on(&system, grid, &FusedOptions::default(), topo, None);
        println!(
            "  {:<16} {:>6} {:>6} {:>12.1} {:>12.1} {:>12.1} {:>8.2}x",
            name,
            topo.num_links(),
            topo.diameter(),
            cycles_to_us(rs_wire, clock),
            cycles_to_us(sequential, clock),
            cycles_to_us(fused.cycles, clock),
            sequential as f64 / fused.cycles as f64,
        );
    }
    println!("\nseq = isolated GEMM + reduce-scatter schedule on the fabric; fused = T3 explicit 16-GPU engine");
}
