//! End-to-end training and inference-prompt speedups (Figure 19's
//! methodology) for Megatron-GPT-2: simulate the four sliced sublayers
//! under T3-MCA, then scale the analytical layer breakdown.
//!
//! ```text
//! cargo run --release --example megatron_training [-- --fast]
//! ```

use t3::core::configs::Configuration;
use t3::models::e2e::{layer_time, E2eParams, Phase};
use t3::models::zoo;
use t3::models::Sublayer;
use t3::sim::config::SystemConfig;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let model = zoo::mega_gpt2();
    let params = E2eParams::default();
    for tp in [8u64, 16] {
        let system = SystemConfig::paper_default().with_num_gpus(tp as usize);
        // Simulated speedups per sliced sublayer.
        let mut speedups = Vec::new();
        for sub in Sublayer::ALL {
            let mut shape = model.sublayer_gemm(sub, tp);
            if fast {
                shape.m /= 8;
            }
            let seq = Configuration::Sequential.run(&system, &shape);
            let mca = Configuration::T3Mca.run(&system, &shape);
            speedups.push((sub, mca.speedup_over(&seq)));
        }
        let speedup_of = |sub: Sublayer| {
            speedups
                .iter()
                .find(|(s, _)| *s == sub)
                .map(|(_, v)| *v)
                .expect("all sublayers simulated")
        };
        println!("{} at TP={tp}:", model.name);
        for (sub, s) in &speedups {
            println!("  {:<12} sublayer speedup {s:.2}x", sub.label());
        }
        for (phase, label) in [
            (Phase::Training, "training iteration"),
            (Phase::InferencePrompt, "inference prompt"),
        ] {
            let lt = layer_time(&system, &model, tp, phase, &params);
            println!(
                "  {label}: {:.1}% of a layer is sliced GEMM->AR; end-to-end speedup {:.2}x",
                lt.sliced_fraction() * 100.0,
                lt.speedup_with(speedup_of),
            );
        }
        println!();
    }
    println!("paper bands: training <=12%, inference prompt <=15% end-to-end");
}
