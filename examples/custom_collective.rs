//! Fusing other collectives through the address-space configuration
//! (Section 7.1): direct reduce-scatter on a fully-connected topology
//! and the expert-parallel all-to-all — both executed functionally on
//! real data, with the Tracker doing the bookkeeping.
//!
//! ```text
//! cargo run --release --example custom_collective
//! ```

#![allow(clippy::needless_range_loop)] // -- index loops keep the example readable next to the math it demonstrates

use t3::collectives::gemm::matmul;
use t3::core::addrmap::{ChunkRoute, OutputConfig};
use t3::core::fused::{fused_gemm_all_to_all, fused_gemm_direct_rs, to_tile_order, FusedProducer};
use t3::gpu::gemm::{GemmGrid, GemmShape};
use t3::sim::config::SystemConfig;

fn producers(n_dev: usize, m: usize, n: usize, k: usize) -> Vec<FusedProducer> {
    (0..n_dev)
        .map(|d| FusedProducer {
            a: (0..m * k)
                .map(|i| ((i + d * 31) % 13) as f32 / 6.0 - 1.0)
                .collect(),
            b: (0..k * n)
                .map(|i| ((i * 5 + d) % 11) as f32 / 5.0 - 1.0)
                .collect(),
        })
        .collect()
}

fn main() {
    let gpu = {
        let mut g = SystemConfig::paper_default().gpu;
        g.tile_dim = 32;
        g
    };
    let n_dev = 4;
    let (m, n, k) = (128usize, 128usize, 16usize);
    let shape = GemmShape::new(m as u64, n as u64, k as u64);
    let grid = GemmGrid::new(&gpu, shape);
    let prods = producers(n_dev, m, n, k);

    // Show what the address-space configuration looks like (Figure 12).
    println!("direct-RS address-space configuration for device 0:");
    let cfg = OutputConfig::direct_reduce_scatter(n_dev, 0);
    for p in 0..cfg.num_chunks() {
        let route = cfg.route(p);
        let desc = match route {
            ChunkRoute::LocalOnly {
                updates_per_element,
            } => {
                format!("local, {updates_per_element} updates/element expected")
            }
            ChunkRoute::RemoteUpdate { device } => {
                format!("remote_map(update) -> GPU {device}")
            }
            other => format!("{other:?}"),
        };
        println!("  chunk {}: {desc}", cfg.chunk_id(p));
    }

    // Direct reduce-scatter: the collective disappears into the GEMM.
    let outcome = fused_gemm_direct_rs(&gpu, shape, &prods);
    let mut expected = vec![0.0f32; m * n];
    for p in &prods {
        for (e, v) in expected.iter_mut().zip(matmul(&p.a, &p.b, m, n, k)) {
            *e += v;
        }
    }
    let expected = to_tile_order(&grid, &expected);
    let mut worst = 0.0f32;
    for d in 0..n_dev {
        let (s, e) = outcome.chunk_ranges[d];
        for (a, b) in outcome.outputs[d].as_slice()[s..e]
            .iter()
            .zip(&expected[s..e])
        {
            worst = worst.max((a - b).abs());
        }
    }
    println!(
        "\ndirect-RS fused: owned chunks correct (max |err| {worst:.2e}), {} DMA transfers (zero by design), {} triggers",
        outcome.dma_transfers, outcome.triggers_fired
    );

    // All-to-all: expert-parallel exchange.
    let a2a = fused_gemm_all_to_all(&gpu, shape, &prods);
    let chunk = a2a.chunk_ranges[0].1 - a2a.chunk_ranges[0].0;
    let mut checked = 0usize;
    let mut worst = 0.0f32;
    for dst in 0..n_dev {
        for src in 0..n_dev {
            let got = &a2a.outputs[dst].as_slice()[src * chunk..(src + 1) * chunk];
            let local = to_tile_order(&grid, &matmul(&prods[src].a, &prods[src].b, m, n, k));
            let (cs, ce) = a2a.chunk_ranges[dst];
            for (g, e) in got.iter().zip(&local[cs..ce]) {
                worst = worst.max((g - e).abs());
                checked += 1;
            }
        }
    }
    println!("all-to-all fused: {checked} elements exchanged correctly (max |err| {worst:.2e})");
}
