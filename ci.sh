#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the full test suite.
# Everything here runs offline — the workspace has no external
# dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> t3-lint (determinism & fidelity gate, SARIF artifact)"
# Fails on any diagnostic not grandfathered in lint-baseline.txt;
# baselined findings stay visible in the output and in the SARIF
# artifact (note-level results with suppression records).
cargo run --release -q -p t3-lint -- --sarif target/t3-lint.sarif

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> figures smoke run (parallel runtime, fresh cache)"
# Smoke artifacts live under target/ so a CI pass leaves the working
# tree clean. The spec pair appends the 3D sweep rows to the legacy
# target list, so the report carries both for the perf gate.
rm -rf target/t3-cache
./target/release/figures all examples/specs/gpt3_3d_sweep.t3w \
    examples/specs/hierarchical.t3s --fast --jobs 2 \
    --report target/bench_report.json

echo "==> figures sweep smoke (spec frontend, --report)"
# The spec-only path: expand a small checked-in workload/system pair
# and run it through the runtime with a report artifact.
./target/release/figures sweep examples/specs/tnlg_tp.t3w \
    examples/specs/ring.t3s --fast --jobs 2 \
    --report target/sweep_report.json

echo "==> t3-prof perf-trajectory gate (vs BENCH_10.json)"
# Simulated-cycle regression gate against the checked-in baseline.
# For an intentional perf change, run with T3_PROF_NO_GATE=1 and
# refresh the baseline in the same change:
#   ./target/release/figures all examples/specs/gpt3_3d_sweep.t3w \
#       examples/specs/hierarchical.t3s --fast --jobs 2 --report BENCH_10.json
./target/release/t3-prof check target/bench_report.json BENCH_10.json

rm -rf target/t3-cache target/bench_report.json target/sweep_report.json

echo "CI OK"
