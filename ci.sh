#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the full test suite.
# Everything here runs offline — the workspace has no external
# dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> t3-lint (determinism & fidelity gate)"
cargo run --release -q -p t3-lint

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> figures smoke run (parallel runtime, fresh cache)"
rm -rf target/t3-cache
./target/release/figures all --fast --jobs 2 --report bench_report.json

echo "CI OK"
