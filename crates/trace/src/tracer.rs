//! The tracer: an append-only buffer of [`Record`]s plus the
//! [`Instruments`] bundle the engines thread through their hot paths.

use crate::event::{Event, Record};
use crate::metrics::MetricsRegistry;
use t3_sim::Cycle;

/// How much the tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Detail {
    /// Stage/chunk/trigger-level events only — bounded volume, the
    /// default.
    #[default]
    Coarse,
    /// Additionally record per-wavefront Tracker updates (high
    /// volume).
    Fine,
}

/// Collects typed simulation events in emission order.
///
/// Recording is a `Vec::push`; there is no I/O or formatting until an
/// exporter walks the buffer. Engines take `Option<&mut Instruments>`
/// so the disabled path is a branch on `None`.
#[derive(Debug, Default)]
pub struct Tracer {
    records: Vec<Record>,
    seq: u64,
    detail: Detail,
    mc_sample_interval: Cycle,
    next_mc_sample: Cycle,
}

impl Tracer {
    /// Default spacing of memory-controller queue-depth samples.
    pub const DEFAULT_MC_SAMPLE_INTERVAL: Cycle = 1024;

    /// Creates a coarse-detail tracer.
    pub fn new() -> Self {
        Tracer {
            mc_sample_interval: Self::DEFAULT_MC_SAMPLE_INTERVAL,
            ..Tracer::default()
        }
    }

    /// Creates a tracer with the given detail level.
    pub fn with_detail(detail: Detail) -> Self {
        Tracer {
            detail,
            ..Tracer::new()
        }
    }

    /// Overrides the MC queue-depth sampling interval (cycles).
    pub fn with_mc_sample_interval(mut self, interval: Cycle) -> Self {
        self.mc_sample_interval = interval.max(1);
        self
    }

    /// True when per-wavefront events should be recorded.
    pub fn fine(&self) -> bool {
        self.detail == Detail::Fine
    }

    /// Appends one event at `cycle`.
    pub fn record(&mut self, cycle: Cycle, event: Event) {
        self.records.push(Record {
            seq: self.seq,
            cycle,
            event,
        });
        self.seq += 1;
    }

    /// Returns true (and advances the schedule) when a queue-depth
    /// sample is due at `now`.
    pub fn mc_sample_due(&mut self, now: Cycle) -> bool {
        if now >= self.next_mc_sample {
            self.next_mc_sample = now + self.mc_sample_interval;
            true
        } else {
            false
        }
    }

    /// The next cycle in `[from, to)` at which a queue-depth sample
    /// falls due, advancing the schedule past it — the closed-form
    /// replay of calling [`Tracer::mc_sample_due`] once per cycle over
    /// the range. Returns `None` (schedule untouched) when no sample
    /// is due in the range.
    pub fn mc_sample_due_in(&mut self, from: Cycle, to: Cycle) -> Option<Cycle> {
        let due = self.next_mc_sample.max(from);
        if due < to {
            self.next_mc_sample = due + self.mc_sample_interval;
            Some(due)
        } else {
            None
        }
    }

    /// The recorded events, in emission order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Count of events for which `pred` holds.
    pub fn count(&self, pred: impl Fn(&Event) -> bool) -> usize {
        self.records.iter().filter(|r| pred(&r.event)).count()
    }
}

/// The bundle engines thread through their loops: an optional tracer
/// and an optional metrics registry, independently switchable.
///
/// Engines accept `Option<&mut Instruments>`; passing `None`
/// short-circuits every instrumentation site to a branch.
#[derive(Debug, Default)]
pub struct Instruments {
    /// Event tracer, if event collection is on.
    pub tracer: Option<Tracer>,
    /// Metrics registry, if metric collection is on.
    pub metrics: Option<MetricsRegistry>,
}

impl Instruments {
    /// Both tracer and metrics enabled, coarse detail.
    pub fn full() -> Self {
        Instruments {
            tracer: Some(Tracer::new()),
            metrics: Some(MetricsRegistry::new()),
        }
    }

    /// Records an event if the tracer is enabled.
    pub fn record(&mut self, cycle: Cycle, event: Event) {
        if let Some(t) = self.tracer.as_mut() {
            t.record(cycle, event);
        }
    }

    /// Bumps a named counter if metrics are enabled.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(m) = self.metrics.as_mut() {
            m.add(name, delta);
        }
    }

    /// Records a histogram observation if metrics are enabled.
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(m) = self.metrics.as_mut() {
            m.observe(name, value);
        }
    }
}

/// Reborrows an `Option<&mut Instruments>` for a nested call without
/// consuming it (the usual `as_deref_mut` dance, named).
pub fn reborrow<'a>(ins: &'a mut Option<&mut Instruments>) -> Option<&'a mut Instruments> {
    ins.as_deref_mut()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_sequenced() {
        let mut t = Tracer::new();
        t.record(5, Event::ChunkRecv { chunk: 0, bytes: 1 });
        t.record(9, Event::ChunkRecv { chunk: 1, bytes: 2 });
        assert_eq!(t.len(), 2);
        assert_eq!(t.records()[0].seq, 0);
        assert_eq!(t.records()[1].seq, 1);
        assert_eq!(t.records()[1].cycle, 9);
    }

    #[test]
    fn mc_sampling_advances() {
        let mut t = Tracer::new().with_mc_sample_interval(100);
        assert!(t.mc_sample_due(0));
        assert!(!t.mc_sample_due(50));
        assert!(t.mc_sample_due(100));
        assert!(t.mc_sample_due(1000));
    }

    #[test]
    fn ranged_sampling_replays_the_stepped_schedule() {
        // Stepping cycle by cycle and replaying ranges must fire
        // samples at identical cycles and leave identical state.
        let fire_stepped = |range: std::ops::Range<Cycle>| -> Vec<Cycle> {
            let mut t = Tracer::new().with_mc_sample_interval(100);
            range.filter(|&c| t.mc_sample_due(c)).collect()
        };
        let fire_ranged = |range: std::ops::Range<Cycle>| -> Vec<Cycle> {
            let mut t = Tracer::new().with_mc_sample_interval(100);
            let mut out = Vec::new();
            while let Some(c) = t.mc_sample_due_in(range.start, range.end) {
                out.push(c);
            }
            out
        };
        for range in [0..1, 0..100, 0..101, 5..350, 100..100, 250..251] {
            assert_eq!(
                fire_stepped(range.clone()),
                fire_ranged(range.clone()),
                "{range:?}"
            );
        }
        // Mixed use: a step, then a leap, then a step.
        let mut t = Tracer::new().with_mc_sample_interval(100);
        assert!(t.mc_sample_due(0));
        assert_eq!(t.mc_sample_due_in(1, 250), Some(100));
        assert_eq!(t.mc_sample_due_in(1, 250), Some(200));
        assert_eq!(t.mc_sample_due_in(1, 250), None);
        assert!(t.mc_sample_due(300));
    }

    #[test]
    fn instruments_none_paths_are_noops() {
        let mut ins = Instruments::default();
        ins.record(0, Event::ChunkRecv { chunk: 0, bytes: 1 });
        ins.add("x", 1);
        ins.observe("h", 1);
        assert!(ins.tracer.is_none() && ins.metrics.is_none());
    }

    #[test]
    fn detail_gates_fine() {
        assert!(!Tracer::new().fine());
        assert!(Tracer::with_detail(Detail::Fine).fine());
    }
}
