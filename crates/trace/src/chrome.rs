//! Hand-rolled Chrome trace-event JSON exporter.
//!
//! Emits the `{"traceEvents": [...]}` object format understood by
//! Perfetto (ui.perfetto.dev) and `chrome://tracing`. Timestamps are
//! microseconds ([`t3_sim::cycles_to_us`]); spans use complete events
//! (`ph: "X"`), instants `ph: "i"`, counters `ph: "C"`, plus metadata
//! events naming the process and per-component threads.

use std::fmt::Write as _;

use crate::event::{Phase, Record, Track};
use crate::metrics::escape_json;
use t3_sim::{cycles_to_us, Cycle};

/// The Chrome `pid` all simulation tracks live under (one simulated
/// GPU: the paper's mirrored single-GPU methodology).
pub const TRACE_PID: u64 = 0;

/// Name given to the trace process.
pub const PROCESS_NAME: &str = "T3 simulated GPU";

fn ts_us(cycle: Cycle, clock_ghz: f64) -> f64 {
    cycles_to_us(cycle, clock_ghz)
}

fn push_args(out: &mut String, record: &Record) {
    out.push_str("\"args\":{");
    // Exact integer cycles lead the args: `ts`/`dur` are rounded
    // microsecond floats, so trace analytics (t3-prof) reconstruct
    // timing from these instead of parsing floats back into cycles.
    match record.event.phase() {
        Phase::Span { start, end } => {
            let _ = write!(out, "\"cycle_start\":{start},\"cycle_end\":{end}");
        }
        Phase::Instant | Phase::Counter => {
            let _ = write!(out, "\"cycle\":{}", record.cycle);
        }
    }
    record.event.visit_args(|k, v| {
        let _ = write!(out, ",\"{k}\":{v}");
    });
    out.push('}');
}

/// Renders the records as a Chrome trace-event JSON string, using the
/// default [`PROCESS_NAME`] for the process metadata event.
///
/// Events are sorted by start timestamp (then sequence number) so the
/// output is monotonic in `ts` even though span records are emitted at
/// completion time.
pub fn chrome_trace_json(records: &[Record], clock_ghz: f64) -> String {
    chrome_trace_json_named(records, clock_ghz, PROCESS_NAME)
}

/// [`chrome_trace_json`] with a caller-supplied process label, so a
/// trace exported for a specific workload/device reads as e.g.
/// `"tnlg (device 0)"` in Perfetto instead of the generic name.
pub fn chrome_trace_json_named(records: &[Record], clock_ghz: f64, process_name: &str) -> String {
    assert!(clock_ghz > 0.0, "clock must be positive");
    let mut ordered: Vec<&Record> = records.iter().collect();
    ordered.sort_by_key(|r| {
        let start = match r.event.phase() {
            Phase::Span { start, .. } => start,
            _ => r.cycle,
        };
        (start, r.seq)
    });

    let mut out = String::from("{\"traceEvents\":[\n");
    // Metadata: process and thread names.
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{TRACE_PID},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
        escape_json(process_name)
    );
    for track in Track::ALL {
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{TRACE_PID},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            track.tid(),
            escape_json(track.name())
        );
    }

    for record in ordered {
        let tid = record.event.track().tid();
        let name = record.event.name();
        out.push_str(",\n{");
        match record.event.phase() {
            Phase::Span { start, end } => {
                let ts = ts_us(start, clock_ghz);
                let dur = ts_us(end.saturating_sub(start), clock_ghz);
                let _ = write!(
                    out,
                    "\"name\":\"{name}\",\"ph\":\"X\",\"pid\":{TRACE_PID},\"tid\":{tid},\"ts\":{ts:.3},\"dur\":{dur:.3},"
                );
                push_args(&mut out, record);
            }
            Phase::Instant => {
                let ts = ts_us(record.cycle, clock_ghz);
                let _ = write!(
                    out,
                    "\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{TRACE_PID},\"tid\":{tid},\"ts\":{ts:.3},"
                );
                push_args(&mut out, record);
            }
            Phase::Counter => {
                let ts = ts_us(record.cycle, clock_ghz);
                let _ = write!(
                    out,
                    "\"name\":\"{name}\",\"ph\":\"C\",\"pid\":{TRACE_PID},\"tid\":{tid},\"ts\":{ts:.3},"
                );
                push_args(&mut out, record);
            }
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Writes the Chrome trace to `w`.
pub fn write_chrome_trace<W: std::io::Write>(
    w: &mut W,
    records: &[Record],
    clock_ghz: f64,
) -> std::io::Result<()> {
    w.write_all(chrome_trace_json(records, clock_ghz).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::tracer::Tracer;

    fn sample_tracer() -> Tracer {
        let mut t = Tracer::new();
        // Span emitted late (at completion) but starting early.
        t.record(
            100,
            Event::GemmStage {
                stage: 0,
                wg_start: 0,
                wg_end: 8,
                start: 10,
                end: 100,
                bytes: 4096,
                compute_cycles: 60,
            },
        );
        t.record(
            40,
            Event::DmaTriggerFire {
                chunk: 1,
                bytes: 2048,
            },
        );
        t.record(
            60,
            Event::McQueueDepth {
                depth: 12,
                comm_depth: 5,
                capacity: 64,
            },
        );
        t
    }

    fn extract_ts(json: &str) -> Vec<f64> {
        json.match_indices("\"ts\":")
            .map(|(i, _)| {
                let rest = &json[i + 5..];
                let end = rest.find([',', '}']).expect("ts value terminated");
                rest[..end].parse::<f64>().expect("ts is a number")
            })
            .collect()
    }

    #[test]
    fn braces_balance_and_ts_monotonic() {
        let t = sample_tracer();
        let json = chrome_trace_json(t.records(), 1.0);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let ts = extract_ts(&json);
        assert!(!ts.is_empty());
        for w in ts.windows(2) {
            assert!(w[1] >= w[0], "ts regressed: {} -> {}", w[0], w[1]);
        }
        assert!(ts.iter().all(|&t| t >= 0.0));
    }

    #[test]
    fn span_precedes_instant_after_sorting() {
        let t = sample_tracer();
        let json = chrome_trace_json(t.records(), 1.0);
        // The GEMM span starts at cycle 10, before the instant at 40,
        // even though it was recorded after.
        let gemm = json.find("gemm_stage").expect("span present");
        let dma = json.find("dma_trigger").expect("instant present");
        assert!(gemm < dma);
    }

    #[test]
    fn pid_tid_mapping_is_stable() {
        let t = sample_tracer();
        let json = chrome_trace_json(t.records(), 1.0);
        assert!(json.contains("\"name\":\"gemm_stage\",\"ph\":\"X\",\"pid\":0,\"tid\":1"));
        assert!(
            json.contains("\"name\":\"dma_trigger\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":3")
        );
        assert!(json.contains("\"name\":\"mc_queue_depth\",\"ph\":\"C\",\"pid\":0,\"tid\":4"));
        // Thread metadata present for every track.
        for track in Track::ALL {
            assert!(json.contains(track.name()));
        }
    }

    #[test]
    fn args_carry_exact_integer_cycles() {
        let t = sample_tracer();
        let json = chrome_trace_json(t.records(), 1.0);
        // Span: the GEMM stage ran over cycles [10, 100).
        assert!(json.contains("\"args\":{\"cycle_start\":10,\"cycle_end\":100,"));
        // Instant: the DMA trigger fired at cycle 40.
        assert!(json.contains("\"args\":{\"cycle\":40,"));
        // Counter: the MC sample at cycle 60.
        assert!(json.contains("\"args\":{\"cycle\":60,"));
    }

    #[test]
    fn named_export_overrides_process_label() {
        let t = sample_tracer();
        let json = chrome_trace_json_named(t.records(), 1.0, "tnlg (device 0)");
        assert!(json.contains("\"args\":{\"name\":\"tnlg (device 0)\"}"));
        assert!(!json.contains(PROCESS_NAME));
    }

    #[test]
    fn cycles_map_to_microseconds() {
        let mut t = Tracer::new();
        t.record(2_000, Event::ChunkRecv { chunk: 0, bytes: 1 });
        // 2000 cycles at 2 GHz = 1 µs.
        let json = chrome_trace_json(t.records(), 2.0);
        assert!(json.contains("\"ts\":1.000"), "{json}");
    }
}
