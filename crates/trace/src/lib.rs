//! # t3-trace — observability for the T3 cycle simulator
//!
//! A zero-dependency (beyond [`t3_sim`]) tracing and metrics layer:
//!
//! * [`Event`] / [`Record`] — the typed event taxonomy: GEMM stage
//!   spans, RS/AG chunk sends and receives, DMA trigger fires, Tracker
//!   table updates, memory-controller queue-depth samples, LLC
//!   hit/miss samples, and link busy intervals, each with cycle
//!   timestamps, sequence numbers, and byte counts.
//! * [`Tracer`] — an append-only in-memory event buffer with a
//!   [`Detail`] level gating high-volume per-wavefront events.
//! * [`MetricsRegistry`] — named counters and log2-bucketed
//!   [`Histogram`]s, snapshotable to flat JSON or CSV.
//! * [`chrome`] — a hand-rolled Chrome trace-event JSON exporter
//!   (load the file at <https://ui.perfetto.dev>); cycles map to
//!   microseconds via [`t3_sim::cycles_to_us`].
//!
//! Engines accept an `Option<&mut Instruments>`: `None` compiles the
//! instrumentation down to untaken branches, so disabled tracing
//! leaves simulated results bit-identical and adds no measurable
//! overhead.
//!
//! ```
//! use t3_trace::{chrome, Event, Instruments};
//!
//! let mut ins = Instruments::full();
//! ins.record(10, Event::ChunkSend { chunk: 0, bytes: 4096, hops: 1, start: 10, end: 42 });
//! ins.add("dma.chunks_sent", 1);
//! let tracer = ins.tracer.as_ref().unwrap();
//! let json = chrome::chrome_trace_json(tracer.records(), 1.0);
//! assert!(json.contains("chunk_send"));
//! ```

pub mod chrome;
pub mod event;
pub mod metrics;
pub mod tracer;

pub use event::{Event, Phase, Record, Track};
pub use metrics::{Histogram, MetricsRegistry};
pub use tracer::{reborrow, Detail, Instruments, Tracer};
