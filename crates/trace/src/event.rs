//! The typed event taxonomy the simulators emit.
//!
//! Every event carries its payload inline (no heap allocation on the
//! record path) and knows how to render itself for the Chrome
//! trace-event exporter: a [`Phase`] (span / instant / counter), a
//! [`Track`] (which virtual thread it belongs to), and a set of
//! numeric arguments.

use t3_sim::{Bytes, Cycle};

/// One structured simulation event.
///
/// Span-like variants carry both `start` and `end` cycles because the
/// engines only learn a phase's extent when it completes; the exporter
/// re-sorts by start time before writing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A GEMM stage executed: reads issued at `start`, output stores
    /// issued at `end`.
    GemmStage {
        /// Stage index in the grid's execution order.
        stage: u64,
        /// First workgroup of the stage.
        wg_start: u64,
        /// One past the last workgroup of the stage.
        wg_end: u64,
        /// Cycle the stage began (reads issued).
        start: Cycle,
        /// Cycle the stage's stores were issued.
        end: Cycle,
        /// Output bytes stored by the stage.
        bytes: Bytes,
        /// Roofline compute latency of the stage (no memory stalls);
        /// the span length minus this is memory-stall time.
        compute_cycles: Cycle,
    },
    /// A reduce-scatter / all-gather chunk occupied the outbound link.
    ChunkSend {
        /// Ring position (or chunk id) of the payload.
        chunk: u64,
        /// Payload bytes.
        bytes: Bytes,
        /// Fabric hops the payload traverses (1 on a direct
        /// neighbour link; the route length on multi-hop fabrics).
        hops: u64,
        /// Cycle serialization onto the link began.
        start: Cycle,
        /// Cycle the last byte left the link.
        end: Cycle,
    },
    /// A chunk's worth of remote updates arrived from the neighbour.
    ChunkRecv {
        /// Ring position (or chunk id) of the payload.
        chunk: u64,
        /// Payload bytes.
        bytes: Bytes,
    },
    /// The Tracker fired a pre-programmed DMA for a finished chunk.
    DmaTriggerFire {
        /// Ring position of the chunk whose DMA fired.
        chunk: u64,
        /// Bytes the DMA will move.
        bytes: Bytes,
    },
    /// A Tracker table entry filled and triggered (one wavefront's
    /// output region fully reduced). High-volume: only recorded at
    /// [`crate::Detail::Fine`].
    TrackerUpdate {
        /// Workgroup of the completed wavefront.
        wg: u64,
        /// Wavefront index within the workgroup.
        wf: u64,
        /// Base address of the completed region.
        addr: u64,
    },
    /// Sampled memory-controller DRAM-queue depth (a Chrome counter
    /// track).
    McQueueDepth {
        /// Transactions in the DRAM queue at the sample point.
        depth: u64,
        /// Of those, transactions from the communication stream —
        /// the collective's share of the queue pressure.
        comm_depth: u64,
        /// DRAM queue capacity.
        capacity: u64,
    },
    /// Sampled cumulative LLC hit/miss counters (a Chrome counter
    /// track).
    LlcSample {
        /// Cumulative hits at the sample point.
        hits: u64,
        /// Cumulative misses at the sample point.
        misses: u64,
    },
    /// The link was busy serializing one payload.
    LinkBusy {
        /// Cycle serialization began.
        start: Cycle,
        /// Cycle the last byte left.
        end: Cycle,
        /// Bytes serialized.
        bytes: Bytes,
    },
    /// One serving-engine iteration (a prefill or decode batch).
    ServeIteration {
        /// 0 = prefill, 1 = decode (see `t3-serve`'s iteration kinds).
        kind: u64,
        /// Requests in the batch.
        batch: u64,
        /// Tokens processed by the iteration.
        tokens: u64,
        /// Cycle the iteration began.
        start: Cycle,
        /// Cycle the iteration finished.
        end: Cycle,
    },
    /// A served request's lifecycle, arrival to completion.
    RequestLifecycle {
        /// Request id within its tenant's trace.
        id: u64,
        /// Tenant (request stream) the request belongs to.
        tenant: u64,
        /// Prompt length in tokens.
        prompt_tokens: u64,
        /// Generated tokens.
        output_tokens: u64,
        /// Cycle the scheduler admitted the request.
        admitted: Cycle,
        /// Cycle the first token was produced.
        first_token: Cycle,
        /// Arrival cycle (span start).
        start: Cycle,
        /// Completion cycle (span end).
        end: Cycle,
    },
}

/// How an event renders in the Chrome trace-event format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A complete span (`ph: "X"`) from `start` to `end`.
    Span {
        /// Span start cycle.
        start: Cycle,
        /// Span end cycle.
        end: Cycle,
    },
    /// An instant event (`ph: "i"`) at the record's cycle.
    Instant,
    /// A counter sample (`ph: "C"`) at the record's cycle.
    Counter,
}

/// The virtual thread (Chrome `tid`) an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Track {
    /// GEMM engine stages.
    Gemm,
    /// Tracker table activity.
    Tracker,
    /// DMA engine and chunk transfers.
    Dma,
    /// Memory-controller queue samples.
    MemoryController,
    /// LLC counter samples.
    Llc,
    /// Link busy intervals.
    Link,
    /// Serving-engine iterations (prefill/decode batches).
    Serve,
    /// Per-request lifecycle spans.
    Request,
}

impl Track {
    /// All tracks, in `tid` order.
    pub const ALL: [Track; 8] = [
        Track::Gemm,
        Track::Tracker,
        Track::Dma,
        Track::MemoryController,
        Track::Llc,
        Track::Link,
        Track::Serve,
        Track::Request,
    ];

    /// Stable Chrome `tid` for this track.
    pub fn tid(self) -> u64 {
        match self {
            Track::Gemm => 1,
            Track::Tracker => 2,
            Track::Dma => 3,
            Track::MemoryController => 4,
            Track::Llc => 5,
            Track::Link => 6,
            Track::Serve => 7,
            Track::Request => 8,
        }
    }

    /// Human-readable thread name for trace viewers.
    pub fn name(self) -> &'static str {
        match self {
            Track::Gemm => "GEMM engine",
            Track::Tracker => "Tracker",
            Track::Dma => "DMA / chunks",
            Track::MemoryController => "Memory controller",
            Track::Llc => "LLC",
            Track::Link => "Link",
            Track::Serve => "Serving engine",
            Track::Request => "Requests",
        }
    }
}

impl Event {
    /// Display name of the event (the Chrome `name` field).
    pub fn name(&self) -> &'static str {
        match self {
            Event::GemmStage { .. } => "gemm_stage",
            Event::ChunkSend { .. } => "chunk_send",
            Event::ChunkRecv { .. } => "chunk_recv",
            Event::DmaTriggerFire { .. } => "dma_trigger",
            Event::TrackerUpdate { .. } => "tracker_update",
            Event::McQueueDepth { .. } => "mc_queue_depth",
            Event::LlcSample { .. } => "llc",
            Event::LinkBusy { .. } => "link_busy",
            Event::ServeIteration { .. } => "serve_iteration",
            Event::RequestLifecycle { .. } => "request",
        }
    }

    /// Which virtual thread the event renders on.
    pub fn track(&self) -> Track {
        match self {
            Event::GemmStage { .. } => Track::Gemm,
            Event::ChunkSend { .. } | Event::ChunkRecv { .. } | Event::DmaTriggerFire { .. } => {
                Track::Dma
            }
            Event::TrackerUpdate { .. } => Track::Tracker,
            Event::McQueueDepth { .. } => Track::MemoryController,
            Event::LlcSample { .. } => Track::Llc,
            Event::LinkBusy { .. } => Track::Link,
            Event::ServeIteration { .. } => Track::Serve,
            Event::RequestLifecycle { .. } => Track::Request,
        }
    }

    /// How the event renders (span / instant / counter).
    pub fn phase(&self) -> Phase {
        match *self {
            Event::GemmStage { start, end, .. }
            | Event::ChunkSend { start, end, .. }
            | Event::LinkBusy { start, end, .. }
            | Event::ServeIteration { start, end, .. }
            | Event::RequestLifecycle { start, end, .. } => Phase::Span { start, end },
            Event::ChunkRecv { .. }
            | Event::DmaTriggerFire { .. }
            | Event::TrackerUpdate { .. } => Phase::Instant,
            Event::McQueueDepth { .. } | Event::LlcSample { .. } => Phase::Counter,
        }
    }

    /// Payload bytes the event accounts for (0 for pure samples).
    pub fn bytes(&self) -> Bytes {
        match *self {
            Event::GemmStage { bytes, .. }
            | Event::ChunkSend { bytes, .. }
            | Event::ChunkRecv { bytes, .. }
            | Event::DmaTriggerFire { bytes, .. }
            | Event::LinkBusy { bytes, .. } => bytes,
            Event::TrackerUpdate { .. }
            | Event::McQueueDepth { .. }
            | Event::LlcSample { .. }
            | Event::ServeIteration { .. }
            | Event::RequestLifecycle { .. } => 0,
        }
    }

    /// Visits the event's numeric arguments as `(key, value)` pairs
    /// (rendered into the Chrome `args` object).
    pub fn visit_args(&self, mut f: impl FnMut(&'static str, u64)) {
        match *self {
            Event::GemmStage {
                stage,
                wg_start,
                wg_end,
                bytes,
                compute_cycles,
                ..
            } => {
                f("stage", stage);
                f("wg_start", wg_start);
                f("wg_end", wg_end);
                f("bytes", bytes);
                f("compute_cycles", compute_cycles);
            }
            Event::ChunkSend {
                chunk, bytes, hops, ..
            } => {
                f("chunk", chunk);
                f("bytes", bytes);
                f("hops", hops);
            }
            Event::ChunkRecv { chunk, bytes } => {
                f("chunk", chunk);
                f("bytes", bytes);
            }
            Event::DmaTriggerFire { chunk, bytes } => {
                f("chunk", chunk);
                f("bytes", bytes);
            }
            Event::TrackerUpdate { wg, wf, addr } => {
                f("wg", wg);
                f("wf", wf);
                f("addr", addr);
            }
            Event::McQueueDepth {
                depth,
                comm_depth,
                capacity,
            } => {
                f("depth", depth);
                f("comm_depth", comm_depth);
                f("capacity", capacity);
            }
            Event::LlcSample { hits, misses } => {
                f("hits", hits);
                f("misses", misses);
            }
            Event::LinkBusy { bytes, .. } => {
                f("bytes", bytes);
            }
            Event::ServeIteration {
                kind,
                batch,
                tokens,
                ..
            } => {
                f("kind", kind);
                f("batch", batch);
                f("tokens", tokens);
            }
            Event::RequestLifecycle {
                id,
                tenant,
                prompt_tokens,
                output_tokens,
                admitted,
                first_token,
                ..
            } => {
                f("id", id);
                f("tenant", tenant);
                f("prompt_tokens", prompt_tokens);
                f("output_tokens", output_tokens);
                f("admitted", admitted);
                f("first_token", first_token);
            }
        }
    }
}

/// One recorded event with its ordering metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Monotonic sequence number in emission order.
    pub seq: u64,
    /// Cycle the event was recorded (for spans: the completion cycle).
    pub cycle: Cycle,
    /// The event payload.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_have_distinct_tids() {
        let mut tids: Vec<u64> = Track::ALL.iter().map(|t| t.tid()).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), Track::ALL.len());
    }

    #[test]
    fn phases_match_variant_shape() {
        let span = Event::GemmStage {
            stage: 0,
            wg_start: 0,
            wg_end: 4,
            start: 10,
            end: 20,
            bytes: 64,
            compute_cycles: 8,
        };
        assert_eq!(span.phase(), Phase::Span { start: 10, end: 20 });
        assert_eq!(span.bytes(), 64);
        let instant = Event::ChunkRecv {
            chunk: 1,
            bytes: 32,
        };
        assert_eq!(instant.phase(), Phase::Instant);
        let counter = Event::McQueueDepth {
            depth: 3,
            comm_depth: 1,
            capacity: 64,
        };
        assert_eq!(counter.phase(), Phase::Counter);
        assert_eq!(counter.bytes(), 0);
    }

    #[test]
    fn args_include_bytes_for_transfers() {
        let e = Event::ChunkSend {
            chunk: 2,
            bytes: 1024,
            hops: 1,
            start: 0,
            end: 8,
        };
        let mut seen = Vec::new();
        e.visit_args(|k, v| seen.push((k, v)));
        assert!(seen.contains(&("bytes", 1024)));
        assert!(seen.contains(&("chunk", 2)));
    }
}
