//! A registry of named counters and histograms, snapshotable at end
//! of run to flat JSON or CSV — hand-rolled writers, no serde.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use t3_sim::stats::TrafficStats;

/// A power-of-two-bucketed histogram of `u64` observations.
///
/// Bucket `i` counts values `v` with `floor(log2(v.max(1))) == i`
/// (value 0 lands in bucket 0). 65 buckets cover the full `u64`
/// range.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; 65],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty `(bucket_floor, count)` pairs, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
    }
}

/// Named counters and histograms for one run.
///
/// Keys are stored in a `BTreeMap` so every export is
/// deterministically ordered.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter (creating it at 0).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.entry(name) += delta;
    }

    /// Sets the named counter to `value`.
    pub fn set(&mut self, name: &str, value: u64) {
        *self.entry(name) = value;
    }

    fn entry(&mut self, name: &str) -> &mut u64 {
        if !self.counters.contains_key(name) {
            self.counters.insert(name.to_string(), 0);
        }
        self.counters.get_mut(name).expect("just inserted")
    }

    /// Records one observation into the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        if !self.histograms.contains_key(name) {
            self.histograms.insert(name.to_string(), Histogram::new());
        }
        self.histograms
            .get_mut(name)
            .expect("just inserted")
            .observe(value);
    }

    /// Sets one `traffic.<class>.bytes` counter per traffic class,
    /// plus `traffic.total.bytes`. End-of-run snapshot of a
    /// [`TrafficStats`], so the exported totals match the simulator's
    /// own accounting by construction.
    pub fn record_traffic(&mut self, stats: &TrafficStats) {
        for (class, bytes) in stats.iter() {
            self.set(&format!("traffic.{}.bytes", class.slug()), bytes);
        }
        self.set("traffic.total.bytes", stats.total());
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Renders the registry as a flat JSON object:
    /// `{"counters": {...}, "histograms": {name: {count, sum, min,
    /// max, mean, buckets: [[floor, count], ...]}, ...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {value}", escape_json(name));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.3}, \"buckets\": [",
                escape_json(name),
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.mean()
            );
            for (j, (floor, count)) in h.buckets().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{floor},{count}]");
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Renders counters (and histogram summaries) as CSV with header
    /// `kind,name,value`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,value\n");
        for (name, value) in self.counters() {
            let _ = writeln!(out, "counter,{name},{value}");
        }
        for (name, h) in self.histograms() {
            let _ = writeln!(out, "histogram_count,{name},{}", h.count());
            let _ = writeln!(out, "histogram_sum,{name},{}", h.sum());
            let _ = writeln!(out, "histogram_min,{name},{}", h.min());
            let _ = writeln!(out, "histogram_max,{name},{}", h.max());
        }
        out
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.add("dma.triggers", 3);
        m.add("dma.triggers", 4);
        m.set("run.cycles", 100);
        assert_eq!(m.counter("dma.triggers"), 7);
        assert_eq!(m.counter("run.cycles"), 100);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1034);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        let buckets: Vec<_> = h.buckets().collect();
        // 0 and 1 share bucket 0; 2 and 3 share floor 2; 4 floor 4;
        // 1024 floor 1024.
        assert_eq!(buckets, vec![(0, 2), (2, 2), (4, 1), (1024, 1)]);
    }

    #[test]
    fn json_is_deterministic_and_balanced() {
        let mut m = MetricsRegistry::new();
        m.add("b", 2);
        m.add("a", 1);
        m.observe("depth", 5);
        let json = m.to_json();
        assert_eq!(json, m.to_json());
        // "a" sorts before "b".
        assert!(json.find("\"a\"").unwrap() < json.find("\"b\"").unwrap());
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn csv_lists_counters_and_histograms() {
        let mut m = MetricsRegistry::new();
        m.add("x", 9);
        m.observe("h", 2);
        let csv = m.to_csv();
        assert!(csv.starts_with("kind,name,value\n"));
        assert!(csv.contains("counter,x,9\n"));
        assert!(csv.contains("histogram_count,h,1\n"));
        assert!(csv.contains("histogram_sum,h,2\n"));
    }

    #[test]
    fn traffic_snapshot_sets_per_class_counters() {
        use t3_sim::stats::TrafficClass;
        let mut stats = TrafficStats::new();
        stats.record(TrafficClass::GemmRead, 100);
        stats.record(TrafficClass::RsUpdate, 50);
        let mut m = MetricsRegistry::new();
        m.record_traffic(&stats);
        assert_eq!(m.counter("traffic.gemm_read.bytes"), 100);
        assert_eq!(m.counter("traffic.rs_update.bytes"), 50);
        assert_eq!(m.counter("traffic.ag_write.bytes"), 0);
        assert_eq!(m.counter("traffic.total.bytes"), 150);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("plain"), "plain");
    }
}
