//! Property tests for the memory controller: conservation, bounded
//! queues, and policy-independent correctness under arbitrary batch
//! sequences.
//!
//! Cases come from a seeded deterministic PRNG so failures reproduce
//! from the printed seed alone.

use t3_mem::arbiter::{ArbitrationPolicy, ComputeFirstPolicy, McaPolicy, RoundRobinPolicy};
use t3_mem::controller::{MemoryController, StreamId};
use t3_sim::config::SystemConfig;
use t3_sim::rng::SplitMix64;
use t3_sim::stats::TrafficClass;

#[derive(Debug, Clone)]
struct Req {
    compute: bool,
    class_idx: usize,
    bytes: u64,
    nmc: bool,
}

fn gen_reqs(rng: &mut SplitMix64, max_len: usize) -> Vec<Req> {
    (0..rng.gen_range_usize(1, max_len))
        .map(|_| Req {
            compute: rng.gen_bool(),
            class_idx: rng.gen_range_usize(0, TrafficClass::ALL.len()),
            bytes: rng.gen_range(1, 200_000),
            nmc: rng.gen_bool(),
        })
        .collect()
}

fn policies() -> Vec<Box<dyn ArbitrationPolicy>> {
    let cfg = SystemConfig::paper_default().mem;
    vec![
        Box::new(RoundRobinPolicy::new()),
        Box::new(ComputeFirstPolicy::new()),
        Box::new(McaPolicy::new(&cfg)),
        Box::new(McaPolicy::with_fixed_threshold(5)),
    ]
}

/// Every byte enqueued is eventually serviced, exactly once, under
/// every arbitration policy, and the DRAM queue never exceeds its
/// capacity.
#[test]
fn conservation_under_every_policy() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(seed);
        let reqs = gen_reqs(&mut rng, 20);
        let cfg = SystemConfig::paper_default().mem;
        for policy in policies() {
            let mut mc = MemoryController::new(&cfg, policy);
            let mut want_compute = 0u64;
            let mut want_comm = 0u64;
            let mut want_per_class = [0u64; TrafficClass::ALL.len()];
            for r in &reqs {
                let stream = if r.compute {
                    StreamId::Compute
                } else {
                    StreamId::Comm
                };
                let class = TrafficClass::ALL[r.class_idx];
                let cost = if r.nmc { cfg.nmc_cost_multiplier } else { 1.0 };
                mc.enqueue(stream, class, r.bytes, cost);
                if r.compute {
                    want_compute += r.bytes;
                } else {
                    want_comm += r.bytes;
                }
                want_per_class[class.index()] += r.bytes;
            }
            let mut now = 0u64;
            while !mc.is_idle() {
                assert!(
                    mc.dram_occupancy() <= cfg.dram_queue_capacity,
                    "seed {seed}"
                );
                mc.step(now, None);
                now += 1;
                assert!(now < 50_000_000, "seed {seed}: failed to drain");
            }
            assert_eq!(
                mc.serviced_bytes(StreamId::Compute),
                want_compute,
                "seed {seed}"
            );
            assert_eq!(mc.serviced_bytes(StreamId::Comm), want_comm, "seed {seed}");
            for (i, &class) in TrafficClass::ALL.iter().enumerate() {
                assert_eq!(mc.stats().bytes(class), want_per_class[i], "seed {seed}");
            }
            assert_eq!(mc.pending_bytes(StreamId::Compute), 0, "seed {seed}");
            assert_eq!(mc.pending_bytes(StreamId::Comm), 0, "seed {seed}");
        }
    }
}

/// Service time is bounded below by the bandwidth bound and above by a
/// generous contention bound.
#[test]
fn timing_bounds() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(seed);
        let compute_bytes = rng.gen_range(10_000, 2_000_000);
        let comm_bytes = rng.gen_range(10_000, 2_000_000);
        let cfg = SystemConfig::paper_default().mem;
        let mut mc = MemoryController::new(&cfg, Box::new(RoundRobinPolicy::new()));
        mc.enqueue(
            StreamId::Compute,
            TrafficClass::GemmRead,
            compute_bytes,
            1.0,
        );
        mc.enqueue(StreamId::Comm, TrafficClass::RsRead, comm_bytes, 1.0);
        let mut now = 0u64;
        while !mc.is_idle() {
            mc.step(now, None);
            now += 1;
        }
        let total = (compute_bytes + comm_bytes) as f64;
        let floor = total / cfg.bytes_per_cycle();
        let ceil = floor * (1.0 + cfg.stream_switch_penalty) + 1_000.0;
        assert!(
            (now as f64) >= floor * 0.99,
            "seed {seed}: {now} below bandwidth floor {floor}"
        );
        assert!(
            (now as f64) <= ceil * 1.05,
            "seed {seed}: {now} above contention ceiling {ceil}"
        );
    }
}

/// FIFO order within a stream: a later batch never completes before an
/// earlier one (observed via cumulative counters at each step).
#[test]
fn serviced_bytes_monotone() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(seed);
        let reqs = gen_reqs(&mut rng, 10);
        let cfg = SystemConfig::paper_default().mem;
        let mut mc = MemoryController::new(&cfg, Box::new(ComputeFirstPolicy::new()));
        for r in &reqs {
            let stream = if r.compute {
                StreamId::Compute
            } else {
                StreamId::Comm
            };
            mc.enqueue(stream, TrafficClass::ALL[r.class_idx], r.bytes, 1.0);
        }
        let mut last = (0u64, 0u64);
        let mut now = 0u64;
        while !mc.is_idle() {
            mc.step(now, None);
            let cur = (
                mc.serviced_bytes(StreamId::Compute),
                mc.serviced_bytes(StreamId::Comm),
            );
            assert!(cur.0 >= last.0 && cur.1 >= last.1, "seed {seed}");
            last = cur;
            now += 1;
            assert!(now < 50_000_000, "seed {seed}");
        }
    }
}
