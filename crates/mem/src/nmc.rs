//! Near-memory compute (Section 4.3).
//!
//! T3 assumes an HBM with near-bank ALUs that can perform *op-and-store*
//! updates: a write that atomically reduces into the destination
//! location instead of overwriting it. This removes the read-modify-write
//! round trip that baseline reduce-scatter performs on GPU CUs.
//!
//! Two pieces live here:
//!
//! * [`NmcBuffer`] — the functional model: an `f32` memory region that
//!   accepts plain stores and op-and-store updates, and counts both.
//!   The memory-controller queue serialises updates, which makes them
//!   atomic (Section 4.3); the functional collectives and the fused
//!   T3 engine both write through this type.
//! * [`ReductionSubstrate`] — the timing-cost knob: where reductions
//!   execute (near-memory ALUs, plain system-wide atomics per Section
//!   7.4, or on CUs in the baseline).

use t3_sim::config::MemConfig;

/// Where communication reductions execute, and at what DRAM cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReductionSubstrate {
    /// Near-bank ALUs: op-and-store updates at `nmc_cost_multiplier`
    /// service cost (the paper's CCDWL model).
    #[default]
    NearMemory,
    /// System-wide atomics on uncached data (Section 7.4): correct but
    /// costlier per update, no extra reads.
    SystemAtomics,
    /// Baseline: reductions run on CUs, so "updates" decompose into a
    /// read plus a plain write issued by the collective kernel.
    ComputeUnits,
}

impl ReductionSubstrate {
    /// DRAM service-cost multiplier for one op-and-store update under
    /// this substrate. [`ReductionSubstrate::ComputeUnits`] performs no
    /// in-memory updates, so asking for its multiplier is a logic error.
    ///
    /// # Panics
    ///
    /// Panics for [`ReductionSubstrate::ComputeUnits`].
    pub fn update_cost_multiplier(self, cfg: &MemConfig) -> f64 {
        match self {
            ReductionSubstrate::NearMemory => cfg.nmc_cost_multiplier,
            ReductionSubstrate::SystemAtomics => cfg.atomics_cost_multiplier,
            ReductionSubstrate::ComputeUnits => {
                panic!("CU substrate performs reductions in kernels, not in memory")
            }
        }
    }

    /// Whether this substrate reduces in memory (i.e. supports
    /// op-and-store updates at all).
    pub fn reduces_in_memory(self) -> bool {
        !matches!(self, ReductionSubstrate::ComputeUnits)
    }
}

/// A functional near-memory-compute buffer: `f32` storage with plain
/// stores and reducing (`+=`) op-and-store updates.
///
/// # Examples
///
/// ```
/// use t3_mem::nmc::NmcBuffer;
///
/// let mut buf = NmcBuffer::new(4);
/// buf.store(0, 1.5);
/// buf.update(0, 2.0); // op-and-store: reduces in memory
/// assert_eq!(buf.load(0), 3.5);
/// assert_eq!(buf.update_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NmcBuffer {
    data: Vec<f32>,
    stores: u64,
    updates: u64,
}

impl NmcBuffer {
    /// Allocates a zeroed buffer of `len` elements.
    pub fn new(len: usize) -> Self {
        NmcBuffer {
            data: vec![0.0; len],
            stores: 0,
            updates: 0,
        }
    }

    /// Builds a buffer from existing contents.
    pub fn from_vec(data: Vec<f32>) -> Self {
        NmcBuffer {
            data,
            stores: 0,
            updates: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Plain store: overwrites the element.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn store(&mut self, idx: usize, value: f32) {
        self.data[idx] = value;
        self.stores += 1;
    }

    /// Op-and-store update: atomically adds `value` into the element
    /// (atomicity is guaranteed by memory-controller serialisation in
    /// the real design; this model is single-threaded).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn update(&mut self, idx: usize, value: f32) {
        self.data[idx] += value;
        self.updates += 1;
    }

    /// Reads the element.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn load(&self, idx: usize) -> f32 {
        self.data[idx]
    }

    /// Read-only view of the whole buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Bulk store of a slice at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn store_slice(&mut self, offset: usize, values: &[f32]) {
        self.data[offset..offset + values.len()].copy_from_slice(values);
        self.stores += values.len() as u64;
    }

    /// Bulk op-and-store update of a slice at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn update_slice(&mut self, offset: usize, values: &[f32]) {
        for (dst, src) in self.data[offset..offset + values.len()]
            .iter_mut()
            .zip(values)
        {
            *dst += src;
        }
        self.updates += values.len() as u64;
    }

    /// Total plain stores performed.
    pub fn store_count(&self) -> u64 {
        self.stores
    }

    /// Total op-and-store updates performed.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Zeroes contents and counters.
    pub fn reset(&mut self) {
        self.data.fill(0.0);
        self.stores = 0;
        self.updates = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t3_sim::config::SystemConfig;

    #[test]
    fn store_then_update_reduces() {
        let mut b = NmcBuffer::new(2);
        b.store(1, 10.0);
        b.update(1, -4.0);
        b.update(1, 1.0);
        assert_eq!(b.load(1), 7.0);
        assert_eq!(b.store_count(), 1);
        assert_eq!(b.update_count(), 2);
    }

    #[test]
    fn slice_operations() {
        let mut b = NmcBuffer::new(6);
        b.store_slice(2, &[1.0, 2.0, 3.0]);
        b.update_slice(2, &[0.5, 0.5, 0.5]);
        assert_eq!(&b.as_slice()[2..5], &[1.5, 2.5, 3.5]);
        assert_eq!(b.store_count(), 3);
        assert_eq!(b.update_count(), 3);
    }

    #[test]
    fn from_vec_and_reset() {
        let mut b = NmcBuffer::from_vec(vec![1.0, 2.0]);
        assert_eq!(b.load(0), 1.0);
        b.reset();
        assert_eq!(b.as_slice(), &[0.0, 0.0]);
        assert_eq!(b.store_count(), 0);
    }

    #[test]
    fn substrate_cost_multipliers() {
        let cfg = SystemConfig::paper_default().mem;
        assert_eq!(
            ReductionSubstrate::NearMemory.update_cost_multiplier(&cfg),
            cfg.nmc_cost_multiplier
        );
        assert_eq!(
            ReductionSubstrate::SystemAtomics.update_cost_multiplier(&cfg),
            cfg.atomics_cost_multiplier
        );
        assert!(ReductionSubstrate::NearMemory.reduces_in_memory());
        assert!(!ReductionSubstrate::ComputeUnits.reduces_in_memory());
    }

    #[test]
    #[should_panic(expected = "CU substrate")]
    fn cu_substrate_has_no_update_cost() {
        let cfg = SystemConfig::paper_default().mem;
        let _ = ReductionSubstrate::ComputeUnits.update_cost_multiplier(&cfg);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_store_panics() {
        let mut b = NmcBuffer::new(1);
        b.store(1, 0.0);
    }

    #[test]
    fn empty_buffer() {
        let b = NmcBuffer::new(0);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }
}
