//! Set-associative, LRU last-level cache model.
//!
//! The paper's contention results depend on whether a GEMM's inputs fit
//! in the 16 MB LLC (Section 6.1.2: OP layers fit and are insensitive to
//! overlapped RS traffic; FC layers do not and slow down), and on T3's
//! LLC *bypass* of GEMM output writes, which frees capacity for input
//! reads (Section 6.2's GEMM read reductions). This model captures both:
//! it is simulated per line with true LRU replacement, and writes can be
//! sent around the cache ("uncached" allocations, Section 4.3).

use t3_sim::config::{LlcReplacement, MemConfig};
use t3_sim::Bytes;

/// Whether an access reads or writes the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load; misses allocate the line.
    Read,
    /// A store; in this write-back, write-allocate LLC, misses allocate
    /// (and dirty) the line unless bypassed.
    Write,
}

/// Result of filtering an access stream through the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterResult {
    /// Bytes that missed and must be fetched from DRAM (reads), or
    /// written to DRAM (bypassed/written-back data).
    pub dram_bytes: Bytes,
    /// Bytes that hit in the LLC.
    pub hit_bytes: Bytes,
}

impl FilterResult {
    /// Merges another filter result into this one.
    pub fn merge(&mut self, other: FilterResult) {
        self.dram_bytes += other.dram_bytes;
        self.hit_bytes += other.hit_bytes;
    }
}

/// A set-associative, write-back, write-allocate LLC with LRU
/// replacement, simulated at line granularity.
#[derive(Debug, Clone)]
pub struct Llc {
    line_bytes: Bytes,
    sets: u64,
    ways: usize,
    /// `tags[set * ways + way]`; `u64::MAX` marks an invalid way.
    tags: Vec<u64>,
    /// LRU stamp per way (larger = more recently used).
    stamps: Vec<u64>,
    /// Dirty bit per way.
    dirty: Vec<bool>,
    tick: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
    replacement: LlcReplacement,
    /// Deterministic LCG state for random replacement.
    rng: u64,
}

const INVALID_TAG: u64 = u64::MAX;

impl Llc {
    /// Builds the LLC described by `cfg` (16 MB, 16-way, 256 B lines in
    /// the paper configuration).
    pub fn new(cfg: &MemConfig) -> Self {
        let sets = cfg.llc_sets();
        let ways = cfg.llc_ways as usize;
        let lines = (sets as usize) * ways;
        Llc {
            line_bytes: cfg.llc_line,
            sets,
            ways,
            tags: vec![INVALID_TAG; lines],
            stamps: vec![0; lines],
            dirty: vec![false; lines],
            tick: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
            replacement: cfg.llc_replacement,
            rng: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> Bytes {
        self.line_bytes
    }

    /// Total hits since construction or [`Llc::reset_counters`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses since construction or [`Llc::reset_counters`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty lines evicted since construction or [`Llc::reset_counters`].
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Hit fraction of all accesses since construction or
    /// [`Llc::reset_counters`] (0.0 when nothing was accessed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Clears hit/miss/writeback counters (cache contents persist).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }

    /// Invalidates the entire cache (e.g. between independent runs).
    pub fn flush(&mut self) {
        self.tags.fill(INVALID_TAG);
        self.dirty.fill(false);
        self.stamps.fill(0);
    }

    /// Accesses one line-aligned address. Returns `true` on hit.
    /// A miss allocates the line (possibly writing back a dirty victim,
    /// counted in [`Llc::writebacks`]).
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> bool {
        self.tick += 1;
        let line = addr / self.line_bytes;
        let set = (line % self.sets) as usize;
        let tag = line / self.sets;
        let base = set * self.ways;
        let ways = &mut self.tags[base..base + self.ways];
        if let Some(way) = ways.iter().position(|&t| t == tag) {
            self.stamps[base + way] = self.tick;
            if kind == AccessKind::Write {
                self.dirty[base + way] = true;
            }
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        // Choose victim: invalid way first, else per replacement policy.
        let victim = match ways.iter().position(|&t| t == INVALID_TAG) {
            Some(w) => w,
            None => match self.replacement {
                LlcReplacement::Lru => {
                    let mut lru_way = 0;
                    let mut lru_stamp = u64::MAX;
                    for w in 0..self.ways {
                        if self.stamps[base + w] < lru_stamp {
                            lru_stamp = self.stamps[base + w];
                            lru_way = w;
                        }
                    }
                    lru_way
                }
                LlcReplacement::Random => {
                    self.rng = self
                        .rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((self.rng >> 33) as usize) % self.ways
                }
            },
        };
        if self.tags[base + victim] != INVALID_TAG && self.dirty[base + victim] {
            self.writebacks += 1;
        }
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.tick;
        self.dirty[base + victim] = kind == AccessKind::Write;
        false
    }

    /// Streams a contiguous `[start, start + bytes)` region through the
    /// cache and reports DRAM traffic. Reads fetch missed lines from
    /// DRAM; writes dirty lines in place (write-back: DRAM write traffic
    /// appears later as writebacks, which the caller can drain with
    /// [`Llc::take_writeback_bytes`]).
    pub fn access_range(&mut self, start: u64, bytes: Bytes, kind: AccessKind) -> FilterResult {
        let mut result = FilterResult::default();
        if bytes == 0 {
            return result;
        }
        let first = start / self.line_bytes;
        let last = (start + bytes - 1) / self.line_bytes;
        for line in first..=last {
            let hit = self.access(line * self.line_bytes, kind);
            if hit {
                result.hit_bytes += self.line_bytes;
            } else if kind == AccessKind::Read {
                result.dram_bytes += self.line_bytes;
            }
            // Write misses allocate without fetching (no-write-allocate
            // fill for full-line GEMM stores would also be valid; either
            // way the store itself generates no immediate DRAM read).
        }
        result
    }

    /// Cleans every dirty line (kernel-boundary flush for inter-kernel
    /// visibility) and returns the bytes written back to DRAM. Lines
    /// stay valid (clean), so later readers can still hit.
    pub fn flush_dirty(&mut self) -> Bytes {
        let mut lines = 0u64;
        for (tag, dirty) in self.tags.iter().zip(self.dirty.iter_mut()) {
            if *tag != INVALID_TAG && *dirty {
                lines += 1;
                *dirty = false;
            }
        }
        lines * self.line_bytes
    }

    /// Returns and resets accumulated write-back traffic in bytes.
    pub fn take_writeback_bytes(&mut self) -> Bytes {
        let bytes = self.writebacks * self.line_bytes;
        self.writebacks = 0;
        bytes
    }

    /// Number of currently valid lines (for occupancy assertions).
    pub fn valid_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID_TAG).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t3_sim::config::SystemConfig;

    fn small_llc(capacity: Bytes) -> Llc {
        let mut cfg = SystemConfig::paper_default().mem;
        cfg.llc_capacity = capacity;
        cfg.llc_ways = 4;
        cfg.llc_line = 256;
        // Most behavioural tests assume deterministic LRU eviction.
        cfg.llc_replacement = t3_sim::config::LlcReplacement::Lru;
        Llc::new(&cfg)
    }

    fn random_llc(capacity: Bytes) -> Llc {
        let mut cfg = SystemConfig::paper_default().mem;
        cfg.llc_capacity = capacity;
        cfg.llc_ways = 4;
        cfg.llc_line = 256;
        cfg.llc_replacement = t3_sim::config::LlcReplacement::Random;
        Llc::new(&cfg)
    }

    #[test]
    fn repeated_access_hits() {
        let mut llc = small_llc(64 * 1024);
        assert!(!llc.access(0, AccessKind::Read));
        assert!(llc.access(0, AccessKind::Read));
        assert!(llc.access(128, AccessKind::Read)); // same line
        assert_eq!(llc.hits(), 2);
        assert_eq!(llc.misses(), 1);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        // 4 ways, 1 set if capacity == 4 lines.
        let mut llc = small_llc(4 * 256);
        for i in 0..4u64 {
            llc.access(i * 256, AccessKind::Read);
        }
        // Touch line 0 so line 1 is LRU.
        llc.access(0, AccessKind::Read);
        // New line evicts line 1.
        llc.access(4 * 256, AccessKind::Read);
        assert!(llc.access(0, AccessKind::Read), "line 0 must survive");
        assert!(!llc.access(256, AccessKind::Read), "line 1 was evicted");
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut llc = small_llc(4 * 256);
        llc.access(0, AccessKind::Write);
        for i in 1..5u64 {
            llc.access(i * 256, AccessKind::Read);
        }
        assert_eq!(llc.writebacks(), 1);
        assert_eq!(llc.take_writeback_bytes(), 256);
        assert_eq!(llc.take_writeback_bytes(), 0);
    }

    #[test]
    fn access_range_counts_only_missed_reads() {
        let mut llc = small_llc(64 * 1024);
        let r1 = llc.access_range(0, 1024, AccessKind::Read);
        assert_eq!(r1.dram_bytes, 1024);
        assert_eq!(r1.hit_bytes, 0);
        let r2 = llc.access_range(0, 1024, AccessKind::Read);
        assert_eq!(r2.dram_bytes, 0);
        assert_eq!(r2.hit_bytes, 1024);
    }

    #[test]
    fn access_range_handles_unaligned_spans() {
        let mut llc = small_llc(64 * 1024);
        // 100 bytes starting at 200 spans lines 0 and 1.
        let r = llc.access_range(200, 100, AccessKind::Read);
        assert_eq!(r.dram_bytes, 512);
    }

    #[test]
    fn zero_length_range_is_noop() {
        let mut llc = small_llc(64 * 1024);
        let r = llc.access_range(123, 0, AccessKind::Read);
        assert_eq!(r, FilterResult::default());
        assert_eq!(llc.misses(), 0);
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut llc = small_llc(64 * 1024);
        llc.access(0, AccessKind::Read);
        assert_eq!(llc.valid_lines(), 1);
        llc.flush();
        assert_eq!(llc.valid_lines(), 0);
        assert!(!llc.access(0, AccessKind::Read));
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut llc = small_llc(16 * 1024); // 64 lines
                                            // Stream 128 distinct lines twice: second pass still misses
                                            // (LRU streaming pattern).
        for pass in 0..2 {
            for i in 0..128u64 {
                let hit = llc.access(i * 256, AccessKind::Read);
                if pass == 1 {
                    assert!(!hit, "streaming working set 2x cache must thrash");
                }
            }
        }
    }

    #[test]
    fn working_set_within_cache_is_reused() {
        let mut llc = small_llc(32 * 1024); // 128 lines
        for i in 0..64u64 {
            llc.access(i * 256, AccessKind::Read);
        }
        llc.reset_counters();
        for i in 0..64u64 {
            assert!(llc.access(i * 256, AccessKind::Read));
        }
        assert_eq!(llc.misses(), 0);
    }

    #[test]
    fn random_replacement_survives_streaming_overflow() {
        // A cyclic working set 25% over capacity should still hit most
        // of the time under random replacement (LRU would hit never).
        let lines = 64u64; // 16 KB cache
        let mut llc = random_llc(lines * 256);
        let wss = lines + lines / 4;
        for _ in 0..3 {
            for i in 0..wss {
                llc.access(i * 256, AccessKind::Read);
            }
        }
        llc.reset_counters();
        for i in 0..wss {
            llc.access(i * 256, AccessKind::Read);
        }
        let hit_rate = llc.hits() as f64 / (llc.hits() + llc.misses()) as f64;
        assert!(
            hit_rate > 0.4,
            "random replacement should retain much of a near-capacity set, got {hit_rate:.2}"
        );
    }

    #[test]
    fn random_replacement_is_deterministic() {
        let run = || {
            let mut llc = random_llc(16 * 1024);
            for i in 0..1000u64 {
                llc.access((i * 7919) % 4096 * 256, AccessKind::Read);
            }
            (llc.hits(), llc.misses())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn paper_llc_has_expected_geometry() {
        let cfg = SystemConfig::paper_default().mem;
        let llc = Llc::new(&cfg);
        assert_eq!(llc.line_bytes(), 256);
        assert_eq!(llc.tags.len(), 65536);
    }
}
