//! Memory-system model for the T3 reproduction.
//!
//! This crate is the substrate standing in for the paper's
//! Accel-Sim memory hierarchy (Table 1):
//!
//! * [`llc`] — a set-associative, LRU last-level cache simulated at
//!   line granularity, with the write-bypass ("uncached") behaviour T3
//!   uses to send GEMM output stores straight to DRAM (Section 4.3).
//! * [`arbiter`] — memory-controller arbitration policies: naive
//!   round-robin, static compute-first, and the paper's dynamic
//!   occupancy-threshold policy, T3-MCA (Section 4.5).
//! * [`controller`] — a cycle-stepped memory controller with separate
//!   compute and communication streams, a bounded DRAM queue, and
//!   per-class traffic accounting; this is where compute/communication
//!   contention materialises (Sections 3.2.2 and 6.1.2).
//! * [`nmc`] — near-memory compute: the functional op-and-store
//!   buffer (atomic reduce-at-DRAM) and its timing cost model
//!   (Section 4.3).
//!
//! # Examples
//!
//! ```
//! use t3_mem::controller::{MemoryController, StreamId};
//! use t3_mem::arbiter::McaPolicy;
//! use t3_sim::config::SystemConfig;
//! use t3_sim::stats::TrafficClass;
//!
//! let cfg = SystemConfig::paper_default().mem;
//! let mut mc = MemoryController::new(&cfg, Box::new(McaPolicy::new(&cfg)));
//! mc.enqueue(StreamId::Compute, TrafficClass::GemmRead, 4096, 1.0);
//! let mut now = 0;
//! while !mc.is_idle() {
//!     mc.step(now, None);
//!     now += 1;
//! }
//! assert_eq!(mc.serviced_bytes(StreamId::Compute), 4096);
//! ```

pub mod arbiter;
pub mod controller;
pub mod llc;
pub mod nmc;
