//! Memory-controller arbitration policies (Section 4.5).
//!
//! Three policies are modelled, matching the paper's discussion:
//!
//! * [`RoundRobinPolicy`] — the naive baseline: alternate between
//!   compute and communication streams, falling back to whichever has
//!   work. The paper shows this lets bursty communication traffic fill
//!   the DRAM queues and stall the producer GEMM.
//! * [`ComputeFirstPolicy`] — static compute priority; insufficient
//!   because previously-issued communication accesses already occupy
//!   the DRAM queues.
//! * [`McaPolicy`] — T3-MCA: compute first, communication admitted
//!   only while DRAM-queue occupancy is below a threshold chosen from
//!   the compute kernel's memory intensity (probed during its first,
//!   isolated stage), plus a starvation guard for the communication
//!   stream.

use std::fmt;

use t3_sim::config::MemConfig;

/// Identifies which request stream a transaction belongs to: the
/// producer compute kernel or communication (collective/DMA) traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamId {
    /// Producer kernel (GEMM) reads and writes.
    Compute,
    /// Communication traffic: collective kernel accesses, incoming
    /// remote/DMA updates, DMA source reads.
    Comm,
}

/// Snapshot of controller state given to a policy for each issue slot.
#[derive(Debug, Clone, Copy)]
pub struct ArbiterState {
    /// Compute stream has at least one transaction waiting.
    pub compute_pending: bool,
    /// Communication stream has at least one transaction waiting.
    pub comm_pending: bool,
    /// Transactions currently sitting in the DRAM queue.
    pub dram_occupancy: usize,
    /// DRAM queue capacity in transactions.
    pub dram_capacity: usize,
}

/// An arbitration policy deciding, per issue slot, which stream may
/// place a transaction into the DRAM queue.
pub trait ArbitrationPolicy: fmt::Debug + Send {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// Called once per controller cycle (before any issue slots), so
    /// policies can advance starvation counters.
    fn tick(&mut self) {}

    /// Advances the policy by `cycles` ticks at once — the closed-form
    /// replay the fast-forward engine uses when it leaps over idle
    /// cycles. The default loops [`ArbitrationPolicy::tick`]; policies
    /// with per-tick state override it with an exact O(1) form.
    fn tick_many(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.tick();
        }
    }

    /// Chooses a stream for the next issue slot, or `None` to leave the
    /// slot idle this cycle.
    fn choose(&mut self, state: &ArbiterState) -> Option<StreamId>;

    /// Notifies the policy that a transaction from `stream` was issued.
    fn on_issue(&mut self, _stream: StreamId) {}

    /// Feeds the policy the compute kernel's memory intensity, measured
    /// as the average DRAM-queue occupancy fraction during the kernel's
    /// first (isolated) stage — Section 4.5. Only T3-MCA reacts.
    fn observe_compute_intensity(&mut self, _avg_occupancy_fraction: f64) {}
}

/// Naive policy: round-robin between streams, falling back to the
/// other stream when the preferred one is empty.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinPolicy {
    last: Option<StreamId>,
}

impl RoundRobinPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ArbitrationPolicy for RoundRobinPolicy {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn choose(&mut self, state: &ArbiterState) -> Option<StreamId> {
        let preferred = match self.last {
            Some(StreamId::Compute) => StreamId::Comm,
            _ => StreamId::Compute,
        };
        let pick = |s: StreamId| match s {
            StreamId::Compute if state.compute_pending => Some(StreamId::Compute),
            StreamId::Comm if state.comm_pending => Some(StreamId::Comm),
            _ => None,
        };
        pick(preferred).or_else(|| {
            pick(match preferred {
                StreamId::Compute => StreamId::Comm,
                StreamId::Comm => StreamId::Compute,
            })
        })
    }

    fn on_issue(&mut self, stream: StreamId) {
        self.last = Some(stream);
    }
}

/// Static priority: compute always first, communication only when the
/// compute stream is empty. No occupancy gating.
#[derive(Debug, Clone, Default)]
pub struct ComputeFirstPolicy;

impl ComputeFirstPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl ArbitrationPolicy for ComputeFirstPolicy {
    fn name(&self) -> &'static str {
        "compute-first"
    }

    fn choose(&mut self, state: &ArbiterState) -> Option<StreamId> {
        if state.compute_pending {
            Some(StreamId::Compute)
        } else if state.comm_pending {
            Some(StreamId::Comm)
        } else {
            None
        }
    }
}

/// The occupancy thresholds T3-MCA selects between (Section 6.1.3:
/// "5, 10, 30, or no limit", chosen by the kernel's memory intensity).
pub const MCA_THRESHOLDS: [usize; 4] = [5, 10, 30, usize::MAX];

/// T3's communication-aware memory-controller arbitration policy.
#[derive(Debug, Clone)]
pub struct McaPolicy {
    /// Communication admitted only while DRAM occupancy < threshold.
    threshold: usize,
    /// Cycles the comm stream may wait (with work pending) before it is
    /// prioritised once, preventing starvation.
    starvation_limit: u64,
    comm_wait_cycles: u64,
    intensity_observed: bool,
}

impl McaPolicy {
    /// Default starvation limit in cycles.
    pub const DEFAULT_STARVATION_LIMIT: u64 = 2_000;

    /// Creates the policy with the most permissive threshold; callers
    /// (or the fused engine's first-stage probe) tighten it via
    /// [`ArbitrationPolicy::observe_compute_intensity`].
    pub fn new(_cfg: &MemConfig) -> Self {
        McaPolicy {
            threshold: MCA_THRESHOLDS[2],
            starvation_limit: Self::DEFAULT_STARVATION_LIMIT,
            comm_wait_cycles: 0,
            intensity_observed: false,
        }
    }

    /// Creates the policy with a fixed occupancy threshold (used by the
    /// MCA-threshold ablation bench).
    pub fn with_fixed_threshold(threshold: usize) -> Self {
        McaPolicy {
            threshold,
            starvation_limit: Self::DEFAULT_STARVATION_LIMIT,
            comm_wait_cycles: 0,
            intensity_observed: true,
        }
    }

    /// Overrides the starvation limit.
    pub fn with_starvation_limit(mut self, limit: u64) -> Self {
        self.starvation_limit = limit;
        self
    }

    /// Currently active occupancy threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }
}

impl ArbitrationPolicy for McaPolicy {
    fn name(&self) -> &'static str {
        "t3-mca"
    }

    fn tick(&mut self) {
        // Counter saturates; reset happens on comm issue.
        self.comm_wait_cycles = self.comm_wait_cycles.saturating_add(1);
    }

    fn tick_many(&mut self, cycles: u64) {
        // N saturating increments collapse to one saturating add.
        self.comm_wait_cycles = self.comm_wait_cycles.saturating_add(cycles);
    }

    fn choose(&mut self, state: &ArbiterState) -> Option<StreamId> {
        let starved = state.comm_pending && self.comm_wait_cycles > self.starvation_limit;
        if starved {
            return Some(StreamId::Comm);
        }
        if state.compute_pending {
            return Some(StreamId::Compute);
        }
        if state.comm_pending && state.dram_occupancy < self.threshold {
            return Some(StreamId::Comm);
        }
        None
    }

    fn on_issue(&mut self, stream: StreamId) {
        if stream == StreamId::Comm {
            self.comm_wait_cycles = 0;
        }
    }

    fn observe_compute_intensity(&mut self, avg_occupancy_fraction: f64) {
        // Memory-intensive kernels keep the DRAM queue fuller during
        // their isolated first stage; give communication less headroom
        // for them (Section 4.5).
        self.threshold = if avg_occupancy_fraction > 0.50 {
            MCA_THRESHOLDS[0]
        } else if avg_occupancy_fraction > 0.25 {
            MCA_THRESHOLDS[1]
        } else if avg_occupancy_fraction > 0.05 {
            MCA_THRESHOLDS[2]
        } else {
            MCA_THRESHOLDS[3]
        };
        self.intensity_observed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t3_sim::config::SystemConfig;

    fn state(compute: bool, comm: bool, occ: usize) -> ArbiterState {
        ArbiterState {
            compute_pending: compute,
            comm_pending: comm,
            dram_occupancy: occ,
            dram_capacity: 64,
        }
    }

    #[test]
    fn round_robin_alternates() {
        let mut p = RoundRobinPolicy::new();
        let s = state(true, true, 0);
        let first = p.choose(&s).unwrap();
        p.on_issue(first);
        let second = p.choose(&s).unwrap();
        assert_ne!(first, second);
    }

    #[test]
    fn round_robin_falls_back_when_one_empty() {
        let mut p = RoundRobinPolicy::new();
        p.on_issue(StreamId::Compute); // next preference is Comm
        assert_eq!(p.choose(&state(true, false, 0)), Some(StreamId::Compute));
        assert_eq!(p.choose(&state(false, false, 0)), None);
    }

    #[test]
    fn compute_first_prefers_compute() {
        let mut p = ComputeFirstPolicy::new();
        assert_eq!(p.choose(&state(true, true, 63)), Some(StreamId::Compute));
        assert_eq!(p.choose(&state(false, true, 63)), Some(StreamId::Comm));
        assert_eq!(p.choose(&state(false, false, 0)), None);
    }

    #[test]
    fn mca_gates_comm_on_occupancy() {
        let cfg = SystemConfig::paper_default().mem;
        let mut p = McaPolicy::new(&cfg);
        p.observe_compute_intensity(0.6); // memory intensive -> threshold 5
        assert_eq!(p.threshold(), 5);
        assert_eq!(p.choose(&state(false, true, 4)), Some(StreamId::Comm));
        assert_eq!(p.choose(&state(false, true, 5)), None);
    }

    #[test]
    fn mca_prefers_compute_even_at_low_occupancy() {
        let cfg = SystemConfig::paper_default().mem;
        let mut p = McaPolicy::new(&cfg);
        assert_eq!(p.choose(&state(true, true, 0)), Some(StreamId::Compute));
    }

    #[test]
    fn mca_starvation_guard_fires() {
        let cfg = SystemConfig::paper_default().mem;
        let mut p = McaPolicy::new(&cfg).with_starvation_limit(3);
        let s = state(true, true, 60);
        for _ in 0..4 {
            p.tick();
        }
        assert_eq!(p.choose(&s), Some(StreamId::Comm));
        p.on_issue(StreamId::Comm);
        // Counter reset: compute wins again.
        assert_eq!(p.choose(&s), Some(StreamId::Compute));
    }

    #[test]
    fn mca_threshold_selection_covers_all_bands() {
        let cfg = SystemConfig::paper_default().mem;
        let mut p = McaPolicy::new(&cfg);
        p.observe_compute_intensity(0.8);
        assert_eq!(p.threshold(), 5);
        p.observe_compute_intensity(0.3);
        assert_eq!(p.threshold(), 10);
        p.observe_compute_intensity(0.1);
        assert_eq!(p.threshold(), 30);
        p.observe_compute_intensity(0.0);
        assert_eq!(p.threshold(), usize::MAX);
    }

    #[test]
    fn tick_many_matches_looped_ticks() {
        let cfg = SystemConfig::paper_default().mem;
        for n in [0u64, 1, 7, 5_000] {
            let mut looped = McaPolicy::new(&cfg).with_starvation_limit(3);
            let mut jumped = McaPolicy::new(&cfg).with_starvation_limit(3);
            for _ in 0..n {
                looped.tick();
            }
            jumped.tick_many(n);
            assert_eq!(looped.comm_wait_cycles, jumped.comm_wait_cycles, "n={n}");
        }
        // The trait default covers stateless policies trivially.
        let mut rr = RoundRobinPolicy::new();
        rr.tick_many(1000);
        assert_eq!(rr.choose(&state(true, false, 0)), Some(StreamId::Compute));
    }

    #[test]
    fn fixed_threshold_constructor() {
        let p = McaPolicy::with_fixed_threshold(10);
        assert_eq!(p.threshold(), 10);
        assert_eq!(p.name(), "t3-mca");
    }
}
