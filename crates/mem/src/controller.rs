//! Cycle-stepped memory controller with compute/communication streams.
//!
//! This is the component where the paper's compute-vs-communication
//! memory contention (Section 3.2.2) and its mitigation by T3-MCA
//! (Section 4.5) play out. Two request streams — the producer kernel's
//! and communication's — feed a bounded DRAM queue through an
//! [`ArbitrationPolicy`]; the queue drains at the HBM service rate.
//! Near-memory op-and-store updates carry a service-cost multiplier
//! (CCDWL, Section 5.1.1).
//!
//! Traffic is moved in transactions of [`MemConfig::txn_bytes`] but
//! enqueued in batches, so large phases stay cheap to simulate.

use std::collections::VecDeque;

pub use crate::arbiter::StreamId;
use crate::arbiter::{ArbiterState, ArbitrationPolicy};
use t3_sim::config::MemConfig;
use t3_sim::stats::{TrafficClass, TrafficStats};
use t3_sim::timeseries::TimeSeries;
use t3_sim::{Bytes, Cycle};
use t3_trace::{Event, Instruments};

/// A batch of same-class transactions waiting in a stream FIFO.
#[derive(Debug, Clone)]
struct Batch {
    class: TrafficClass,
    remaining_txns: u64,
    remaining_bytes: Bytes,
    cost_each: f64,
}

/// One transaction resident in the DRAM queue.
#[derive(Debug, Clone, Copy)]
struct QueuedTxn {
    stream: StreamId,
    class: TrafficClass,
    bytes: Bytes,
    cost: f64,
}

/// The memory controller. See the module docs for the model.
#[derive(Debug)]
pub struct MemoryController {
    txn_bytes: Bytes,
    service_rate: f64,
    issue_rate: f64,
    dram_capacity: usize,
    policy: Box<dyn ArbitrationPolicy>,
    compute_q: VecDeque<Batch>,
    comm_q: VecDeque<Batch>,
    dram_q: VecDeque<QueuedTxn>,
    issue_credit: f64,
    service_credit: f64,
    stream_switch_penalty: f64,
    last_serviced_stream: Option<StreamId>,
    serviced_compute: Bytes,
    serviced_comm: Bytes,
    pending_compute: Bytes,
    pending_comm: Bytes,
    enqueued_compute: Bytes,
    enqueued_comm: Bytes,
    stats: TrafficStats,
    occupancy_accum: u64,
    occupancy_samples: u64,
    stream_switches: u64,
}

impl MemoryController {
    /// Creates a controller for the memory system in `cfg`, arbitrated
    /// by `policy`.
    pub fn new(cfg: &MemConfig, policy: Box<dyn ArbitrationPolicy>) -> Self {
        let service_rate = cfg.txns_per_cycle();
        MemoryController {
            txn_bytes: cfg.txn_bytes,
            service_rate,
            // The controller frontend is faster than DRAM, so bursts
            // can pile into the DRAM queue — that queueing is exactly
            // what T3-MCA manages.
            issue_rate: service_rate * 2.0,
            dram_capacity: cfg.dram_queue_capacity,
            policy,
            compute_q: VecDeque::new(),
            comm_q: VecDeque::new(),
            dram_q: VecDeque::new(),
            issue_credit: 0.0,
            service_credit: 0.0,
            stream_switch_penalty: cfg.stream_switch_penalty,
            last_serviced_stream: None,
            serviced_compute: 0,
            serviced_comm: 0,
            pending_compute: 0,
            pending_comm: 0,
            enqueued_compute: 0,
            enqueued_comm: 0,
            stats: TrafficStats::new(),
            occupancy_accum: 0,
            occupancy_samples: 0,
            stream_switches: 0,
        }
    }

    /// Enqueues `bytes` of `class` traffic on `stream`. `cost_multiplier`
    /// scales DRAM service cost per transaction (1.0 for plain
    /// reads/writes; the NMC/atomics multipliers for op-and-store
    /// updates).
    pub fn enqueue(
        &mut self,
        stream: StreamId,
        class: TrafficClass,
        bytes: Bytes,
        cost_multiplier: f64,
    ) {
        assert!(cost_multiplier >= 1.0, "cost multiplier must be >= 1.0");
        if bytes == 0 {
            return;
        }
        let txns = bytes.div_ceil(self.txn_bytes);
        let batch = Batch {
            class,
            remaining_txns: txns,
            remaining_bytes: bytes,
            cost_each: cost_multiplier,
        };
        match stream {
            StreamId::Compute => {
                self.pending_compute += bytes;
                self.enqueued_compute += bytes;
                self.compute_q.push_back(batch);
            }
            StreamId::Comm => {
                self.pending_comm += bytes;
                self.enqueued_comm += bytes;
                self.comm_q.push_back(batch);
            }
        }
    }

    /// Cumulative bytes ever enqueued on `stream`. Because each stream
    /// is serviced in FIFO order, a client that enqueues work can wait
    /// for `serviced_bytes(stream)` to reach the pre-enqueue value of
    /// `enqueued_bytes(stream)` plus its own request size.
    pub fn enqueued_bytes(&self, stream: StreamId) -> Bytes {
        match stream {
            StreamId::Compute => self.enqueued_compute,
            StreamId::Comm => self.enqueued_comm,
        }
    }

    /// Advances the controller by one cycle at time `now`, optionally
    /// recording serviced traffic into a time series.
    pub fn step(&mut self, now: Cycle, timeseries: Option<&mut TimeSeries>) {
        self.step_traced(now, timeseries, None);
    }

    /// [`MemoryController::step`] with an optional instrumentation
    /// sink: samples DRAM queue depth into the tracer/metrics at the
    /// tracer's sampling interval. Passing `None` is bit-identical to
    /// `step`.
    pub fn step_traced(
        &mut self,
        now: Cycle,
        mut timeseries: Option<&mut TimeSeries>,
        ins: Option<&mut Instruments>,
    ) {
        if let Some(ins) = ins {
            let depth = self.dram_q.len() as u64;
            if let Some(tracer) = ins.tracer.as_mut() {
                if tracer.mc_sample_due(now) {
                    let comm_depth = self
                        .dram_q
                        .iter()
                        .filter(|t| t.stream == StreamId::Comm)
                        .count() as u64;
                    tracer.record(
                        now,
                        Event::McQueueDepth {
                            depth,
                            comm_depth,
                            capacity: self.dram_capacity as u64,
                        },
                    );
                    ins.observe("mc.queue_depth", depth);
                }
            }
        }
        self.policy.tick();

        // Frontend: move transactions from stream FIFOs into the DRAM
        // queue, as arbitration allows.
        self.issue_credit = (self.issue_credit + self.issue_rate).min(self.issue_rate * 2.0);
        while self.issue_credit >= 1.0 && self.dram_q.len() < self.dram_capacity {
            let state = ArbiterState {
                compute_pending: !self.compute_q.is_empty(),
                comm_pending: !self.comm_q.is_empty(),
                dram_occupancy: self.dram_q.len(),
                dram_capacity: self.dram_capacity,
            };
            let Some(stream) = self.policy.choose(&state) else {
                break;
            };
            let txn = self.pop_txn(stream);
            self.dram_q.push_back(txn);
            self.policy.on_issue(stream);
            self.issue_credit -= 1.0;
        }

        // DRAM: drain the queue at the service rate. Bandwidth cannot
        // be banked while the queue is empty.
        if self.dram_q.is_empty() {
            self.service_credit = 0.0;
        } else {
            self.service_credit += self.service_rate;
            while let Some(head) = self.dram_q.front() {
                // Switching between unrelated access streams loses
                // row-buffer locality: the first transaction after a
                // switch costs extra (see MemConfig docs).
                let switch = self
                    .last_serviced_stream
                    .is_some_and(|last| last != head.stream);
                let cost = head.cost
                    + if switch {
                        self.stream_switch_penalty
                    } else {
                        0.0
                    };
                if self.service_credit < cost {
                    break;
                }
                self.stream_switches += switch as u64;
                let txn = *head;
                self.dram_q.pop_front();
                self.service_credit -= cost;
                self.last_serviced_stream = Some(txn.stream);
                match txn.stream {
                    StreamId::Compute => self.serviced_compute += txn.bytes,
                    StreamId::Comm => self.serviced_comm += txn.bytes,
                }
                self.stats.record(txn.class, txn.bytes);
                if let Some(ts) = timeseries.as_deref_mut() {
                    ts.record(now, txn.class, txn.bytes);
                }
            }
        }

        self.occupancy_accum += self.dram_q.len() as u64;
        self.occupancy_samples += 1;
    }

    fn pop_txn(&mut self, stream: StreamId) -> QueuedTxn {
        let (queue, pending) = match stream {
            StreamId::Compute => (&mut self.compute_q, &mut self.pending_compute),
            StreamId::Comm => (&mut self.comm_q, &mut self.pending_comm),
        };
        let batch = queue.front_mut().expect("policy chose an empty stream");
        let bytes = batch.remaining_bytes.min(self.txn_bytes);
        batch.remaining_bytes -= bytes;
        batch.remaining_txns -= 1;
        *pending -= bytes;
        let txn = QueuedTxn {
            stream,
            class: batch.class,
            bytes,
            cost: batch.cost_each,
        };
        if batch.remaining_txns == 0 {
            debug_assert_eq!(batch.remaining_bytes, 0);
            queue.pop_front();
        }
        txn
    }

    /// Bytes fully serviced by DRAM for `stream` so far.
    pub fn serviced_bytes(&self, stream: StreamId) -> Bytes {
        match stream {
            StreamId::Compute => self.serviced_compute,
            StreamId::Comm => self.serviced_comm,
        }
    }

    /// Bytes enqueued but not yet issued to the DRAM queue for `stream`.
    pub fn pending_bytes(&self, stream: StreamId) -> Bytes {
        match stream {
            StreamId::Compute => self.pending_compute,
            StreamId::Comm => self.pending_comm,
        }
    }

    /// True when both stream FIFOs and the DRAM queue are empty.
    pub fn is_idle(&self) -> bool {
        self.compute_q.is_empty() && self.comm_q.is_empty() && self.dram_q.is_empty()
    }

    /// The next cycle at which stepping this controller can change
    /// observable state, seen from cycle `now` (already stepped):
    /// `Some(now + 1)` while any queue holds work — a busy controller
    /// issues or services every cycle — and `None` when idle, because
    /// an idle controller only changes state through an external
    /// [`MemoryController::enqueue`].
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.is_idle() {
            None
        } else {
            Some(now + 1)
        }
    }

    /// Replays the idle cycles `[from, to)` in closed form — exactly
    /// the side effects `to - from` calls of
    /// [`MemoryController::step_traced`] would have had with every
    /// queue empty: queue-depth samples at the tracer's due cycles,
    /// policy starvation ticks, issue-credit saturation, the
    /// service-credit reset, and occupancy sampling. The fast-forward
    /// engines call this before leaping `now`.
    pub fn skip_idle(&mut self, from: Cycle, to: Cycle, ins: Option<&mut Instruments>) {
        debug_assert!(self.is_idle(), "skip_idle on a busy controller");
        if to <= from {
            return;
        }
        let cycles = to - from;
        if let Some(ins) = ins {
            let mut samples = 0u64;
            if let Some(tracer) = ins.tracer.as_mut() {
                while let Some(due) = tracer.mc_sample_due_in(from, to) {
                    tracer.record(
                        due,
                        Event::McQueueDepth {
                            depth: 0,
                            comm_depth: 0,
                            capacity: self.dram_capacity as u64,
                        },
                    );
                    samples += 1;
                }
            }
            for _ in 0..samples {
                ins.observe("mc.queue_depth", 0);
            }
        }
        self.policy.tick_many(cycles);
        // With both stream FIFOs empty the issue loop moves nothing
        // and the credit just saturates: each idle step applies the
        // same clamped add, reaching the exact f64 fixed point
        // `issue_rate * 2.0` within two applications (credit is
        // non-negative, so one add already lands at or above
        // `issue_rate`, and the second clamps).
        for _ in 0..cycles.min(2) {
            self.issue_credit = (self.issue_credit + self.issue_rate).min(self.issue_rate * 2.0);
        }
        // An empty DRAM queue resets banked service bandwidth every
        // stepped cycle; the last skipped cycle leaves it at zero.
        self.service_credit = 0.0;
        self.occupancy_samples += cycles;
    }

    /// Current DRAM queue occupancy in transactions.
    pub fn dram_occupancy(&self) -> usize {
        self.dram_q.len()
    }

    /// Per-class serviced traffic so far.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Average DRAM-queue occupancy as a fraction of capacity since the
    /// last [`MemoryController::reset_occupancy_window`]; used for the
    /// MCA first-stage memory-intensity probe.
    pub fn avg_occupancy_fraction(&self) -> f64 {
        if self.occupancy_samples == 0 {
            return 0.0;
        }
        self.occupancy_accum as f64 / (self.occupancy_samples as f64 * self.dram_capacity as f64)
    }

    /// Starts a fresh occupancy-measurement window.
    pub fn reset_occupancy_window(&mut self) {
        self.occupancy_accum = 0;
        self.occupancy_samples = 0;
    }

    /// Feeds the arbitration policy a measured compute-kernel memory
    /// intensity (Section 4.5 probe).
    pub fn observe_compute_intensity(&mut self, avg_occupancy_fraction: f64) {
        self.policy
            .observe_compute_intensity(avg_occupancy_fraction);
    }

    /// Name of the active arbitration policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Times DRAM service switched between the compute and
    /// communication streams (each switch pays the row-locality
    /// penalty — the contention signal motivating T3-MCA).
    pub fn stream_switches(&self) -> u64 {
        self.stream_switches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::{ComputeFirstPolicy, McaPolicy, RoundRobinPolicy};
    use t3_sim::config::SystemConfig;

    fn mem_cfg() -> MemConfig {
        SystemConfig::paper_default().mem
    }

    fn run_until_idle(mc: &mut MemoryController) -> Cycle {
        let mut now = 0;
        while !mc.is_idle() {
            mc.step(now, None);
            now += 1;
            assert!(now < 100_000_000, "controller failed to drain");
        }
        now
    }

    #[test]
    fn drains_single_stream_at_service_rate() {
        let cfg = mem_cfg();
        let mut mc = MemoryController::new(&cfg, Box::new(ComputeFirstPolicy::new()));
        let bytes: Bytes = 1_000_000;
        mc.enqueue(StreamId::Compute, TrafficClass::GemmRead, bytes, 1.0);
        let cycles = run_until_idle(&mut mc);
        let ideal = bytes as f64 / cfg.bytes_per_cycle();
        assert!(
            (cycles as f64) < ideal * 1.1 && (cycles as f64) > ideal * 0.9,
            "took {cycles} cycles, ideal {ideal:.0}"
        );
        assert_eq!(mc.serviced_bytes(StreamId::Compute), bytes);
    }

    #[test]
    fn nmc_updates_cost_more_service_time() {
        let cfg = mem_cfg();
        let bytes: Bytes = 2_000_000;
        let mut plain = MemoryController::new(&cfg, Box::new(ComputeFirstPolicy::new()));
        plain.enqueue(StreamId::Comm, TrafficClass::RsWrite, bytes, 1.0);
        let t_plain = run_until_idle(&mut plain);

        let mut nmc = MemoryController::new(&cfg, Box::new(ComputeFirstPolicy::new()));
        nmc.enqueue(StreamId::Comm, TrafficClass::RsUpdate, bytes, 1.5);
        let t_nmc = run_until_idle(&mut nmc);
        let ratio = t_nmc as f64 / t_plain as f64;
        assert!(
            (ratio - 1.5).abs() < 0.1,
            "NMC cost ratio {ratio} should be ~1.5"
        );
    }

    #[test]
    fn compute_first_lets_compute_finish_sooner_than_round_robin() {
        let cfg = mem_cfg();
        let bytes: Bytes = 1_000_000;
        let compute_done = |policy: Box<dyn ArbitrationPolicy>| {
            let mut mc = MemoryController::new(&cfg, policy);
            mc.enqueue(StreamId::Compute, TrafficClass::GemmRead, bytes, 1.0);
            mc.enqueue(StreamId::Comm, TrafficClass::RsRead, bytes, 1.0);
            let mut now = 0;
            while mc.serviced_bytes(StreamId::Compute) < bytes {
                mc.step(now, None);
                now += 1;
            }
            now
        };
        let rr = compute_done(Box::new(RoundRobinPolicy::new()));
        let cf = compute_done(Box::new(ComputeFirstPolicy::new()));
        assert!(
            (cf as f64) < (rr as f64) * 0.7,
            "compute-first {cf} should beat round-robin {rr} clearly"
        );
    }

    #[test]
    fn mca_throttles_comm_while_compute_is_active() {
        let cfg = mem_cfg();
        let bytes: Bytes = 500_000;
        let mut mc = MemoryController::new(&cfg, Box::new(McaPolicy::with_fixed_threshold(5)));
        // Comm arrives first (bursty RS traffic), compute follows.
        mc.enqueue(StreamId::Comm, TrafficClass::RsUpdate, bytes, 1.0);
        mc.enqueue(StreamId::Compute, TrafficClass::GemmRead, bytes, 1.0);
        let mut now = 0;
        while mc.serviced_bytes(StreamId::Compute) < bytes {
            mc.step(now, None);
            now += 1;
            // DRAM queue must never fill with comm traffic beyond the
            // threshold plus in-flight compute transactions.
            assert!(mc.dram_occupancy() <= cfg.dram_queue_capacity);
        }
        // Comm is still mostly pending: compute got priority.
        assert!(mc.pending_bytes(StreamId::Comm) > 0);
        run_until_idle(&mut mc);
        assert_eq!(mc.serviced_bytes(StreamId::Comm), bytes);
    }

    #[test]
    fn stats_record_by_class() {
        let cfg = mem_cfg();
        let mut mc = MemoryController::new(&cfg, Box::new(ComputeFirstPolicy::new()));
        mc.enqueue(StreamId::Compute, TrafficClass::GemmWrite, 10_000, 1.0);
        mc.enqueue(StreamId::Comm, TrafficClass::AgRead, 20_000, 1.0);
        run_until_idle(&mut mc);
        assert_eq!(mc.stats().bytes(TrafficClass::GemmWrite), 10_000);
        assert_eq!(mc.stats().bytes(TrafficClass::AgRead), 20_000);
    }

    #[test]
    fn timeseries_receives_service_events() {
        let cfg = mem_cfg();
        let mut mc = MemoryController::new(&cfg, Box::new(ComputeFirstPolicy::new()));
        let mut ts = TimeSeries::new(16);
        mc.enqueue(StreamId::Compute, TrafficClass::GemmRead, 100_000, 1.0);
        let mut now = 0;
        while !mc.is_idle() {
            mc.step(now, Some(&mut ts));
            now += 1;
        }
        assert_eq!(ts.total(TrafficClass::GemmRead), 100_000);
        assert!(ts.len() > 1, "traffic should span multiple buckets");
    }

    #[test]
    fn occupancy_probe_reflects_load() {
        let cfg = mem_cfg();
        let mut mc = MemoryController::new(&cfg, Box::new(ComputeFirstPolicy::new()));
        // Idle controller: zero occupancy.
        for now in 0..100 {
            mc.step(now, None);
        }
        assert_eq!(mc.avg_occupancy_fraction(), 0.0);
        mc.reset_occupancy_window();
        mc.enqueue(StreamId::Compute, TrafficClass::GemmRead, 10_000_000, 1.0);
        for now in 100..2_000 {
            mc.step(now, None);
        }
        assert!(mc.avg_occupancy_fraction() > 0.3, "queue should be busy");
    }

    #[test]
    fn partial_final_transaction_preserves_byte_totals() {
        let cfg = mem_cfg();
        let mut mc = MemoryController::new(&cfg, Box::new(ComputeFirstPolicy::new()));
        // 1000 bytes is not a multiple of 256.
        mc.enqueue(StreamId::Compute, TrafficClass::GemmRead, 1000, 1.0);
        run_until_idle(&mut mc);
        assert_eq!(mc.serviced_bytes(StreamId::Compute), 1000);
        assert_eq!(mc.stats().bytes(TrafficClass::GemmRead), 1000);
    }

    #[test]
    fn zero_byte_enqueue_is_noop() {
        let cfg = mem_cfg();
        let mut mc = MemoryController::new(&cfg, Box::new(ComputeFirstPolicy::new()));
        mc.enqueue(StreamId::Comm, TrafficClass::RsRead, 0, 1.0);
        assert!(mc.is_idle());
    }

    #[test]
    #[should_panic(expected = "cost multiplier")]
    fn sub_unit_cost_rejected() {
        let cfg = mem_cfg();
        let mut mc = MemoryController::new(&cfg, Box::new(ComputeFirstPolicy::new()));
        mc.enqueue(StreamId::Comm, TrafficClass::RsRead, 100, 0.5);
    }

    #[test]
    fn round_robin_interleaving_loses_row_locality() {
        // With two active streams, round-robin alternates per
        // transaction and pays the stream-switch penalty on nearly
        // every service; compute-first batches each stream and pays it
        // only once.
        let cfg = mem_cfg();
        let bytes: Bytes = 1_000_000;
        let run = |policy: Box<dyn ArbitrationPolicy>| {
            let mut mc = MemoryController::new(&cfg, policy);
            mc.enqueue(StreamId::Compute, TrafficClass::GemmRead, bytes, 1.0);
            mc.enqueue(StreamId::Comm, TrafficClass::RsRead, bytes, 1.0);
            run_until_idle(&mut mc)
        };
        let rr = run(Box::new(RoundRobinPolicy::new()));
        let cf = run(Box::new(ComputeFirstPolicy::new()));
        let ideal = 2.0 * bytes as f64 / cfg.bytes_per_cycle();
        assert!(
            (cf as f64) < ideal * 1.05,
            "batched streams should be near ideal: {cf} vs {ideal:.0}"
        );
        let expected_rr = ideal * (1.0 + cfg.stream_switch_penalty);
        assert!(
            (rr as f64) > expected_rr * 0.9 && (rr as f64) < expected_rr * 1.1,
            "interleaved streams should pay the switch penalty: {rr} vs {expected_rr:.0}"
        );
    }

    #[test]
    fn step_traced_samples_queue_depth_and_counts_switches() {
        let cfg = mem_cfg();
        let mut mc = MemoryController::new(&cfg, Box::new(RoundRobinPolicy::new()));
        mc.enqueue(StreamId::Compute, TrafficClass::GemmRead, 500_000, 1.0);
        mc.enqueue(StreamId::Comm, TrafficClass::RsRead, 500_000, 1.0);
        let mut ins = Instruments::full();
        let mut now = 0;
        while !mc.is_idle() {
            mc.step_traced(now, None, Some(&mut ins));
            now += 1;
        }
        let tracer = ins.tracer.as_ref().expect("tracer on");
        assert!(
            tracer.count(|e| matches!(e, Event::McQueueDepth { .. })) > 0,
            "queue depth must be sampled"
        );
        let metrics = ins.metrics.as_ref().expect("metrics on");
        assert!(metrics.histogram("mc.queue_depth").is_some());
        // Round-robin interleaves the streams, so switches must occur.
        assert!(mc.stream_switches() > 0);
    }

    #[test]
    fn step_traced_none_matches_step() {
        let cfg = mem_cfg();
        let run = |traced: bool| {
            let mut mc = MemoryController::new(&cfg, Box::new(RoundRobinPolicy::new()));
            mc.enqueue(StreamId::Compute, TrafficClass::GemmRead, 300_000, 1.0);
            mc.enqueue(StreamId::Comm, TrafficClass::RsUpdate, 200_000, 1.5);
            let mut now = 0;
            while !mc.is_idle() {
                if traced {
                    mc.step_traced(now, None, None);
                } else {
                    mc.step(now, None);
                }
                now += 1;
            }
            now
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn next_event_is_the_exact_next_state_change() {
        let cfg = mem_cfg();
        let mut mc = MemoryController::new(&cfg, Box::new(ComputeFirstPolicy::new()));
        assert_eq!(mc.next_event(7), None, "idle controller has no events");
        mc.enqueue(StreamId::Compute, TrafficClass::GemmRead, 1_000, 1.0);
        let mut now = 0;
        while !mc.is_idle() {
            assert_eq!(mc.next_event(now), Some(now + 1));
            let before = (
                mc.serviced_bytes(StreamId::Compute),
                mc.pending_bytes(StreamId::Compute),
                mc.dram_occupancy(),
                mc.issue_credit.to_bits(),
                mc.service_credit.to_bits(),
            );
            mc.step(now, None);
            let after = (
                mc.serviced_bytes(StreamId::Compute),
                mc.pending_bytes(StreamId::Compute),
                mc.dram_occupancy(),
                mc.issue_credit.to_bits(),
                mc.service_credit.to_bits(),
            );
            assert_ne!(
                before, after,
                "a busy controller must change state at cycle {now}"
            );
            now += 1;
        }
        assert_eq!(mc.next_event(now), None, "drained controller has no events");
    }

    #[test]
    fn skip_idle_matches_stepping_idle_cycles_exactly() {
        let cfg = mem_cfg();
        let build = || {
            let mut mc = MemoryController::new(&cfg, Box::new(McaPolicy::with_fixed_threshold(5)));
            let mut ins = Instruments::full();
            // Busy prefix so credits, the tracer schedule, and the
            // arbitration policy all hold mid-run values.
            mc.enqueue(StreamId::Compute, TrafficClass::GemmRead, 100_000, 1.0);
            mc.enqueue(StreamId::Comm, TrafficClass::RsUpdate, 50_000, 1.5);
            let mut now = 0;
            while !mc.is_idle() {
                mc.step_traced(now, None, Some(&mut ins));
                now += 1;
            }
            (mc, ins, now)
        };
        let records = |ins: &Instruments| {
            ins.tracer
                .as_ref()
                .expect("tracer on")
                .records()
                .iter()
                .map(|r| (r.seq, r.cycle, format!("{:?}", r.event)))
                .collect::<Vec<_>>()
        };
        // Drain more work after the gap: identical arbitration and
        // cycle counts prove the policy state also matched.
        let resume = |mc: &mut MemoryController, from: Cycle| {
            mc.enqueue(StreamId::Comm, TrafficClass::RsUpdate, 80_000, 1.5);
            mc.enqueue(StreamId::Compute, TrafficClass::GemmRead, 40_000, 1.0);
            let mut now = from;
            while !mc.is_idle() {
                mc.step(now, None);
                now += 1;
            }
            now
        };
        for gap in [1u64, 2, 3, 1023, 1024, 5000] {
            let (mut stepped, mut ins_s, idle_at) = build();
            for now in idle_at..idle_at + gap {
                stepped.step_traced(now, None, Some(&mut ins_s));
            }
            let (mut leaped, mut ins_l, idle_at_l) = build();
            assert_eq!(idle_at, idle_at_l);
            leaped.skip_idle(idle_at, idle_at + gap, Some(&mut ins_l));
            assert_eq!(
                stepped.issue_credit.to_bits(),
                leaped.issue_credit.to_bits(),
                "issue credit, gap {gap}"
            );
            assert_eq!(
                stepped.service_credit.to_bits(),
                leaped.service_credit.to_bits(),
                "service credit, gap {gap}"
            );
            assert_eq!(stepped.occupancy_accum, leaped.occupancy_accum);
            assert_eq!(stepped.occupancy_samples, leaped.occupancy_samples);
            assert_eq!(records(&ins_s), records(&ins_l), "trace records, gap {gap}");
            assert_eq!(
                resume(&mut stepped, idle_at + gap),
                resume(&mut leaped, idle_at + gap),
                "post-gap drain, gap {gap}"
            );
        }
    }

    #[test]
    fn switch_penalty_zero_restores_fair_sharing() {
        let mut cfg = mem_cfg();
        cfg.stream_switch_penalty = 0.0;
        let bytes: Bytes = 1_000_000;
        let mut mc = MemoryController::new(&cfg, Box::new(RoundRobinPolicy::new()));
        mc.enqueue(StreamId::Compute, TrafficClass::GemmRead, bytes, 1.0);
        mc.enqueue(StreamId::Comm, TrafficClass::RsRead, bytes, 1.0);
        let cycles = run_until_idle(&mut mc);
        let ideal = 2.0 * bytes as f64 / cfg.bytes_per_cycle();
        assert!((cycles as f64) < ideal * 1.1, "no bandwidth should be lost");
        assert!(
            (cycles as f64) > ideal * 0.95,
            "no bandwidth can be created"
        );
    }
}
