//! A comment- and string-aware lexer for Rust source.
//!
//! The lint rules must never fire on text inside string literals or
//! report spans shifted by block comments, so the analyzer cannot get
//! away with plain substring search. This module produces two parallel
//! streams from a source file:
//!
//! * [`Token`]s — identifiers, literals and punctuation with 1-based
//!   line numbers. String/char literal contents are carried opaquely
//!   in [`TokKind::Str`]: identifier-matching rules never look inside
//!   them (which is what lets the lint crate embed violating fixtures
//!   as string literals without flagging itself), while the
//!   trace-schema analysis reads them explicitly.
//! * [`Comment`]s — one entry per comment *line* (block comments are
//!   split), which is where `t3-lint: allow(...)` directives live.
//!
//! The lexer is deliberately forgiving: it never fails, and unknown
//! bytes degrade to punctuation tokens. It understands the Rust
//! constructs that would otherwise desynchronise a scanner: nested
//! block comments, raw strings with `#` fences, byte/C string
//! prefixes, raw identifiers, char literals vs. lifetimes, and numeric
//! literals with type suffixes.

/// What a [`Token`] is. Only the distinctions the rules need are kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `as`, `HashMap`, ...).
    Ident(String),
    /// Integer literal (`42`, `0xff_u64`); the text is dropped.
    Int,
    /// Float literal (`1.0`, `2e9`, `3f64`); the text is dropped.
    Float,
    /// String, byte-string or char literal. The *raw* contents (no
    /// unescaping, quotes and fences stripped) are kept so that
    /// workspace analyses — notably the trace-schema rule, which
    /// compares emitted event/arg literals against consumed ones —
    /// can read them. Rules that only match identifiers still never
    /// see inside strings, which is what lets the lint crate embed
    /// violating fixtures as string literals without flagging itself.
    Str(String),
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// Any single punctuation character (`{`, `;`, `#`, ...).
    Punct(char),
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// The raw string-literal contents, if this token is a string,
    /// byte-string or char literal.
    pub fn str_text(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// One comment line: `text` excludes the `//`/`/*` markers and is
/// trimmed. Block comments contribute one entry per physical line so
/// that directives keep exact line anchoring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// The output of [`lex`].
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `source` into tokens and comments. Never fails: malformed
/// input degrades gracefully (an unterminated string consumes the rest
/// of the file as a single [`TokKind::Str`]).
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();
    while let Some(b) = cur.peek() {
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => lex_line_comment(&mut cur, &mut out),
            b'/' if cur.peek_at(1) == Some(b'*') => lex_block_comment(&mut cur, &mut out),
            b'"' => {
                let text = lex_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokKind::Str(text),
                    line,
                });
            }
            b'\'' => lex_quote(&mut cur, &mut out, line),
            b'0'..=b'9' => {
                let kind = lex_number(&mut cur);
                out.tokens.push(Token { kind, line });
            }
            _ if is_ident_start(b) => lex_ident_or_prefixed(&mut cur, &mut out, line),
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokKind::Punct(b as char),
                    line,
                });
            }
        }
    }
    out
}

fn lex_line_comment(cur: &mut Cursor, out: &mut Lexed) {
    let line = cur.line;
    let start = cur.pos;
    while let Some(b) = cur.peek() {
        if b == b'\n' {
            break;
        }
        cur.bump();
    }
    let text = core::str::from_utf8(&cur.src[start..cur.pos])
        .unwrap_or("")
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim();
    out.comments.push(Comment {
        text: text.to_string(),
        line,
    });
}

fn lex_block_comment(cur: &mut Cursor, out: &mut Lexed) {
    cur.bump();
    cur.bump();
    let mut depth = 1usize;
    let mut line = cur.line;
    let mut buf = String::new();
    while let Some(b) = cur.peek() {
        if b == b'/' && cur.peek_at(1) == Some(b'*') {
            depth += 1;
            cur.bump();
            cur.bump();
            buf.push_str("/*");
        } else if b == b'*' && cur.peek_at(1) == Some(b'/') {
            depth -= 1;
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
            buf.push_str("*/");
        } else if b == b'\n' {
            cur.bump();
            out.comments.push(Comment {
                text: core::mem::take(&mut buf)
                    .trim()
                    .trim_start_matches('*')
                    .trim()
                    .to_string(),
                line,
            });
            line = cur.line;
        } else {
            buf.push(cur.bump().unwrap_or(b' ') as char);
        }
    }
    out.comments.push(Comment {
        text: buf.trim().trim_start_matches('*').trim().to_string(),
        line,
    });
}

/// Consumes a cooked (escaped) string starting at the opening `"`,
/// returning the raw contents (escapes are *not* processed).
fn lex_string(cur: &mut Cursor) -> String {
    cur.bump();
    let start = cur.pos;
    let mut end = cur.pos;
    while let Some(b) = cur.bump() {
        match b {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
        end = cur.pos;
    }
    core::str::from_utf8(&cur.src[start..end])
        .unwrap_or("")
        .to_string()
}

/// Consumes a raw string starting at `r`/`br`/`cr` with `hashes` `#`
/// fence characters already counted; the cursor sits on the opening
/// `"`. Returns the contents between the fences.
fn lex_raw_string(cur: &mut Cursor, hashes: usize) -> String {
    cur.bump();
    let start = cur.pos;
    while cur.peek().is_some() {
        if cur.peek() == Some(b'"') {
            let end = cur.pos;
            cur.bump();
            let mut seen = 0usize;
            while seen < hashes && cur.peek() == Some(b'#') {
                cur.bump();
                seen += 1;
            }
            if seen == hashes {
                return core::str::from_utf8(&cur.src[start..end])
                    .unwrap_or("")
                    .to_string();
            }
        } else {
            cur.bump();
        }
    }
    core::str::from_utf8(&cur.src[start..cur.pos])
        .unwrap_or("")
        .to_string()
}

/// Disambiguates `'a` (lifetime) from `'x'` (char literal) at a `'`.
///
/// A quote followed by an identifier-start byte is only a lifetime
/// when the whole identifier-continue run after it is *not* closed by
/// another quote. Checking just one byte ahead — the old heuristic —
/// misclassified multi-byte char literals like `'é'` as lifetimes,
/// which desynchronised the lexer for the rest of the file (the
/// trailing quote opened a phantom literal that swallowed real code).
fn lex_quote(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    let lifetime = match cur.peek_at(1) {
        Some(n) if is_ident_start(n) => {
            let mut k = 2usize;
            while cur.peek_at(k).is_some_and(is_ident_continue) {
                k += 1;
            }
            cur.peek_at(k) != Some(b'\'')
        }
        _ => false,
    };
    if lifetime {
        cur.bump();
        while cur.peek().is_some_and(is_ident_continue) {
            cur.bump();
        }
        out.tokens.push(Token {
            kind: TokKind::Lifetime,
            line,
        });
    } else {
        cur.bump();
        let start = cur.pos;
        let mut end = cur.pos;
        while let Some(b) = cur.bump() {
            match b {
                b'\\' => {
                    cur.bump();
                }
                b'\'' => break,
                _ => {}
            }
            end = cur.pos;
        }
        let text = core::str::from_utf8(&cur.src[start..end])
            .unwrap_or("")
            .to_string();
        out.tokens.push(Token {
            kind: TokKind::Str(text),
            line,
        });
    }
}

/// Lexes a numeric literal. `1.0`, `2e9` and `f32`/`f64`-suffixed
/// literals are floats; `0..n` correctly stops before the range.
fn lex_number(cur: &mut Cursor) -> TokKind {
    let mut float = false;
    if cur.peek() == Some(b'0') && matches!(cur.peek_at(1), Some(b'x') | Some(b'o') | Some(b'b')) {
        cur.bump();
        cur.bump();
        while cur
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            cur.bump();
        }
        return TokKind::Int;
    }
    while cur.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
        cur.bump();
    }
    if cur.peek() == Some(b'.') && cur.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
        float = true;
        cur.bump();
        while cur.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            cur.bump();
        }
    }
    if matches!(cur.peek(), Some(b'e') | Some(b'E'))
        && (cur.peek_at(1).is_some_and(|b| b.is_ascii_digit())
            || (matches!(cur.peek_at(1), Some(b'+') | Some(b'-'))
                && cur.peek_at(2).is_some_and(|b| b.is_ascii_digit())))
    {
        float = true;
        cur.bump();
        if matches!(cur.peek(), Some(b'+') | Some(b'-')) {
            cur.bump();
        }
        while cur.peek().is_some_and(|b| b.is_ascii_digit()) {
            cur.bump();
        }
    }
    let suffix_start = cur.pos;
    while cur.peek().is_some_and(is_ident_continue) {
        cur.bump();
    }
    let suffix = core::str::from_utf8(&cur.src[suffix_start..cur.pos]).unwrap_or("");
    if suffix == "f32" || suffix == "f64" {
        float = true;
    }
    if float {
        TokKind::Float
    } else {
        TokKind::Int
    }
}

/// Lexes an identifier, handling the string prefixes (`r""`, `b""`,
/// `br#""#`, `c""`, ...) and raw identifiers (`r#fn`).
fn lex_ident_or_prefixed(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    let start = cur.pos;
    while cur.peek().is_some_and(is_ident_continue) {
        cur.bump();
    }
    let text = core::str::from_utf8(&cur.src[start..cur.pos]).unwrap_or("");
    let is_str_prefix = matches!(text, "r" | "b" | "br" | "rb" | "c" | "cr" | "cb");
    match cur.peek() {
        Some(b'"') if is_str_prefix => {
            let s = lex_raw_string_or_cooked(cur, text, 0);
            out.tokens.push(Token {
                kind: TokKind::Str(s),
                line,
            });
        }
        Some(b'\'') if text == "b" => {
            lex_quote(cur, out, line);
            if let Some(last) = out.tokens.last_mut() {
                if !matches!(last.kind, TokKind::Str(_)) {
                    last.kind = TokKind::Str(String::new());
                }
            }
        }
        Some(b'#') if is_str_prefix && text != "b" && text != "c" => {
            // Either a fenced raw string (`r#"..."#`) or a raw
            // identifier (`r#fn`).
            let mut hashes = 0usize;
            while cur.peek_at(hashes) == Some(b'#') {
                hashes += 1;
            }
            if cur.peek_at(hashes) == Some(b'"') {
                for _ in 0..hashes {
                    cur.bump();
                }
                let s = lex_raw_string(cur, hashes);
                out.tokens.push(Token {
                    kind: TokKind::Str(s),
                    line,
                });
            } else if text == "r" && hashes == 1 && cur.peek_at(1).is_some_and(is_ident_start) {
                cur.bump();
                let id_start = cur.pos;
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                let id = core::str::from_utf8(&cur.src[id_start..cur.pos]).unwrap_or("");
                out.tokens.push(Token {
                    kind: TokKind::Ident(id.to_string()),
                    line,
                });
            } else {
                out.tokens.push(Token {
                    kind: TokKind::Ident(text.to_string()),
                    line,
                });
            }
        }
        _ => {
            out.tokens.push(Token {
                kind: TokKind::Ident(text.to_string()),
                line,
            });
        }
    }
}

/// Dispatches `r"` / `b"` / `br"` string forms once the prefix has
/// been consumed and the cursor sits on the `"`.
fn lex_raw_string_or_cooked(cur: &mut Cursor, prefix: &str, hashes: usize) -> String {
    if prefix.contains('r') {
        lex_raw_string(cur, hashes)
    } else {
        lex_string(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_are_opaque() {
        let toks = idents("let x = \"HashMap in a string\"; use std::time::Instant;");
        assert!(!toks.contains(&"HashMap".to_string()));
        assert!(toks.contains(&"Instant".to_string()));
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = idents("let s = r#\"Instant \" inside\"#; after");
        assert_eq!(toks, vec!["let", "s", "after"]);
        // The `r` prefix is folded into the string token.
        let lexed = lex("let s = r#\"x\"#;");
        assert!(lexed.tokens.iter().any(|t| t.str_text() == Some("x")));
        assert!(!lexed.tokens.iter().any(|t| t.ident() == Some("r")));
    }

    #[test]
    fn string_contents_are_preserved_verbatim() {
        let lexed = lex("f(\"gemm_stage\"); g(r#\"chunk \" send\"#); h('k');");
        let texts: Vec<_> = lexed.tokens.iter().filter_map(|t| t.str_text()).collect();
        assert_eq!(texts, vec!["gemm_stage", "chunk \" send", "k"]);
    }

    #[test]
    fn comments_are_captured_not_tokenised() {
        let lexed = lex("code(); // t3-lint: allow(float-cycles) -- why\nmore();");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("t3-lint"));
        assert_eq!(lexed.comments[0].line, 1);
        assert!(!lexed.tokens.iter().any(|t| t.ident() == Some("allow")));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* a /* b */ c */ token");
        assert_eq!(lexed.tokens.len(), 1);
        assert_eq!(lexed.tokens[0].ident(), Some("token"));
    }

    #[test]
    fn block_comment_lines_keep_anchoring() {
        let lexed = lex("/* first\n   t3-lint: allow(x) -- r\n   last */");
        assert_eq!(lexed.comments.len(), 3);
        assert_eq!(lexed.comments[1].line, 2);
        assert!(lexed.comments[1].text.starts_with("t3-lint"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Str(_)))
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn multibyte_char_literal_is_not_a_lifetime() {
        // Regression: `'é'` used to be classified as a lifetime (the
        // one-byte lookahead saw a continuation byte, not the closing
        // quote), leaving the trailing `'` to open a phantom literal
        // that swallowed the rest of the file — including `Instant`.
        let lexed = lex("let c = '\u{e9}'; use std::time::Instant;");
        assert!(lexed.tokens.iter().any(|t| t.ident() == Some("Instant")));
        assert!(!lexed.tokens.iter().any(|t| t.kind == TokKind::Lifetime));
        // Longer multi-byte scalars and plain lifetimes still work.
        let lexed = lex("fn f<'a>(x: &'a str) { let h = '\u{2665}'; }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.str_text() == Some("\u{2665}")));
    }

    #[test]
    fn raw_string_fences_with_excess_hashes_inside() {
        // Regression coverage: a `"#` sequence inside an `r##` string
        // must not terminate it, and unterminated raw strings consume
        // to EOF without panicking.
        let toks = idents("let s = r##\"a\"# Instant \"##; after");
        assert_eq!(toks, vec!["let", "s", "after"]);
        let lexed = lex("let s = r#\"never closed");
        assert!(lexed.tokens.iter().any(|t| t.str_text().is_some()));
    }

    #[test]
    fn nested_block_comment_terminators_inside_strings() {
        // Regression coverage: `*/` inside a nested comment's inner
        // level must close only that level, and `/*` appearing after
        // the comment (in code position, inside a string) is opaque.
        let lexed = lex("/* a /* b */ still comment */ fn x() { let s = \"/* not a comment\"; }");
        assert!(lexed.tokens.iter().any(|t| t.ident() == Some("fn")));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.str_text() == Some("/* not a comment")));
        assert!(!lexed.tokens.iter().any(|t| t.ident() == Some("still")));
    }

    #[test]
    fn numbers_classify_float_vs_int() {
        let lexed = lex("1 2.5 3e9 4f64 0xff 0..10 7u64");
        let kinds: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| t.kind.clone())
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Int,
                TokKind::Float,
                TokKind::Float,
                TokKind::Float,
                TokKind::Int,
                TokKind::Int,
                TokKind::Int,
                TokKind::Int,
            ]
        );
    }

    #[test]
    fn line_numbers_advance_through_all_forms() {
        let src = "a\n\"s\n t\"\nb /* c\n */ d\ne";
        let lexed = lex(src);
        let find = |name: &str| {
            lexed
                .tokens
                .iter()
                .find(|t| t.ident() == Some(name))
                .map(|t| t.line)
        };
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("d"), Some(5));
        assert_eq!(find("e"), Some(6));
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = idents("b\"Instant\" c\"SystemTime\" br#\"RandomState\"# x");
        assert_eq!(toks, vec!["x"]);
    }
}
