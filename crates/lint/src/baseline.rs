//! The checked-in violation baseline (`lint-baseline.txt`).
//!
//! A baseline entry grandfathers one *audited* pre-existing finding:
//! the diagnostic is still computed and still printed (marked
//! `baselined`), but it no longer fails the run — new violations do.
//! Entries match on `(code, path, anchor)`, never on line numbers, so
//! unrelated edits to a file cannot silently decouple the baseline
//! from the finding it excuses.
//!
//! Format, one entry per line (`#` comments and blank lines ignored):
//!
//! ```text
//! T3L006 crates/net/src/link.rs drain.unwrap -- queue non-empty by construction (pushed this cycle)
//! ```
//!
//! The baseline polices itself exactly like inline directives do: an
//! entry with no `-- reason`, an unknown rule code, or one that no
//! longer matches any finding is itself a `naked-allow` diagnostic,
//! so the file can only shrink to what is truly needed.

use crate::diag::Diagnostic;
use crate::rules;

/// One parsed baseline line.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    /// 1-based line in the baseline file.
    pub line: u32,
    /// Rule code (`T3L006`).
    pub code: String,
    /// Workspace-relative path the finding lands in.
    pub path: String,
    /// The diagnostic's line-independent anchor.
    pub anchor: String,
    /// The mandatory justification.
    pub reason: Option<String>,
}

/// Parses the baseline text. Unparseable lines are reported through
/// `bad` as (line, message) and skipped.
pub fn parse(text: &str, bad: &mut Vec<(u32, String)>) -> Vec<BaselineEntry> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = (i + 1) as u32;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (head, reason) = match trimmed.split_once("--") {
            Some((h, r)) => (h.trim(), {
                let r = r.trim();
                (!r.is_empty()).then(|| r.to_string())
            }),
            None => (trimmed, None),
        };
        let fields: Vec<&str> = head.split_whitespace().collect();
        let [code, path, anchor] = fields.as_slice() else {
            bad.push((
                line,
                "malformed baseline entry; expected `T3LXXX <path> <anchor> -- <reason>`"
                    .to_string(),
            ));
            continue;
        };
        out.push(BaselineEntry {
            line,
            code: code.to_string(),
            path: path.to_string(),
            anchor: anchor.to_string(),
            reason,
        });
    }
    out
}

/// The outcome of applying a baseline to a diagnostic set.
pub struct Applied {
    /// Findings with no baseline entry — these fail the run.
    pub failing: Vec<Diagnostic>,
    /// Findings excused by an entry — printed, but non-failing.
    pub baselined: Vec<Diagnostic>,
}

/// Splits `diags` against `entries`. Baseline hygiene failures
/// (malformed lines via `bad`, unknown codes, missing reasons, stale
/// entries) are appended to `failing` as `naked-allow` diagnostics at
/// `baseline_path` — the baseline cannot hide its own rot.
pub fn apply(
    diags: Vec<Diagnostic>,
    entries: &[BaselineEntry],
    bad: &[(u32, String)],
    baseline_path: &str,
) -> Applied {
    let naked = rules::rule_by_name("naked-allow").expect("registered");
    let mut used = vec![false; entries.len()];
    let mut applied = Applied {
        failing: Vec::new(),
        baselined: Vec::new(),
    };
    for d in diags {
        let mut hit = false;
        for (k, e) in entries.iter().enumerate() {
            if e.code == d.code && e.path == d.path && e.anchor == d.anchor {
                hit = true;
                used[k] = true;
            }
        }
        if hit {
            applied.baselined.push(d);
        } else {
            applied.failing.push(d);
        }
    }
    for (line, msg) in bad {
        applied.failing.push(Diagnostic {
            path: baseline_path.to_string(),
            line: *line,
            rule: naked.name,
            code: naked.code,
            anchor: "baseline".to_string(),
            message: msg.clone(),
        });
    }
    for (k, e) in entries.iter().enumerate() {
        let mut problems: Vec<String> = Vec::new();
        if !rules::RULES.iter().any(|r| r.code == e.code) {
            problems.push(format!("unknown rule code `{}`", e.code));
        }
        if e.reason.is_none() {
            problems.push("missing `-- <reason>`".to_string());
        }
        if !used[k] && problems.is_empty() {
            problems.push(format!(
                "matches no current finding ({} {} {}); remove the stale entry",
                e.code, e.path, e.anchor
            ));
        }
        for p in problems {
            applied.failing.push(Diagnostic {
                path: baseline_path.to_string(),
                line: e.line,
                rule: naked.name,
                code: naked.code,
                anchor: format!("baseline.{}", e.anchor),
                message: format!("baseline entry: {p}"),
            });
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(code: &'static str, path: &str, anchor: &str) -> Diagnostic {
        Diagnostic {
            path: path.to_string(),
            line: 10,
            rule: "panic-reachable",
            code,
            anchor: anchor.to_string(),
            message: "m".to_string(),
        }
    }

    #[test]
    fn matching_entry_excuses_and_stale_entry_fails() {
        let text = "# comment\n\
                    T3L006 crates/net/src/a.rs f.unwrap -- audited\n\
                    T3L006 crates/net/src/b.rs g.unwrap -- gone\n";
        let mut bad = Vec::new();
        let entries = parse(text, &mut bad);
        assert_eq!(entries.len(), 2);
        assert!(bad.is_empty());
        let applied = apply(
            vec![d("T3L006", "crates/net/src/a.rs", "f.unwrap")],
            &entries,
            &bad,
            "lint-baseline.txt",
        );
        assert_eq!(applied.baselined.len(), 1);
        assert_eq!(applied.failing.len(), 1, "{:?}", applied.failing);
        assert!(applied.failing[0].message.contains("stale"));
    }

    #[test]
    fn reasonless_and_malformed_entries_fail() {
        let mut bad = Vec::new();
        let entries = parse("T3L006 a.rs x\ntwo fields\n", &mut bad);
        assert_eq!(entries.len(), 1);
        assert_eq!(bad.len(), 1);
        let applied = apply(
            vec![d("T3L006", "a.rs", "x")],
            &entries,
            &bad,
            "lint-baseline.txt",
        );
        assert_eq!(applied.baselined.len(), 1);
        // one malformed-line failure + one missing-reason failure
        assert_eq!(applied.failing.len(), 2, "{:?}", applied.failing);
    }
}
