//! The workspace call graph and the transitive-reachability rules.
//!
//! T3L006 (`panic-reachable`) and T3L007 (`wall-clock-reachable`)
//! answer the question the token-local rules cannot: *can this
//! hot-path entry point transitively hit an abort or a wall-clock
//! read through any chain of helpers?* Nodes are every non-test `fn`
//! recovered by [`crate::parser`]; edges are conservative name-based
//! resolution of its call sites:
//!
//! 1. a call to `name` first resolves to `fn name` in the same file,
//! 2. then to any `fn name` in the same crate,
//! 3. then through the file's `use` edges (an import of `name` from
//!    `t3_gpu` restricts candidates to that crate; an import from
//!    `std`/`core`/`alloc` marks the call external),
//! 4. and otherwise to *every* workspace `fn` with that name —
//!    over-approximation can widen reachability but never hide it.
//!
//! Hot-path entry points are `step*`/`tick*`/`advance*`/`run_*`
//! functions defined outside test code in TIMING-scoped crates
//! ([`crate::rules::TIMING_CRATES`]). Diagnostics anchor at the sink
//! site (the `unwrap` / `Instant` itself) and print the full call
//! chain from the entry, so one suppression at a genuinely-justified
//! sink covers every entry that reaches it.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::engine::{is_hot_fn_name, FileAnalysis};
use crate::rules::{self, TIMING_CRATES};

/// One sink occurrence inside a function body.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Sink {
    line: u32,
    /// What was hit: `unwrap`, `expect`, `panic`, `Instant`, ...
    what: String,
}

/// One graph node: a non-test `fn` in a non-test file.
struct Node {
    /// Index into the engine's file list.
    file: usize,
    /// Index into that file's `parsed.fns`.
    fn_idx: usize,
    name: String,
    line: u32,
    panic_sinks: Vec<Sink>,
    clock_sinks: Vec<Sink>,
    /// Resolved callee node indices, deduplicated, in stable order.
    callees: Vec<usize>,
}

/// True when the entry name qualifies a function as a hot-path root.
fn is_entry_name(name: &str) -> bool {
    is_hot_fn_name(name) || name.starts_with("run_")
}

fn is_panic_sink_call(name: &str) -> bool {
    matches!(name, "unwrap" | "expect")
}

fn is_clock_ident(name: &str) -> bool {
    matches!(name, "Instant" | "SystemTime" | "RandomState")
}

/// Maps a `use` first segment to a crate directory name:
/// `t3_gpu` → `gpu`; `crate`/`self`/`super` → the file's own crate.
fn use_crate<'a>(first: &'a str, own: Option<&'a str>) -> Option<&'a str> {
    match first {
        "crate" | "self" | "super" => own,
        other => other.strip_prefix("t3_"),
    }
}

/// Builds the graph and runs both reachability rules over `files`.
pub fn check(files: &[FileAnalysis], out: &mut Vec<Diagnostic>) {
    // ---- nodes -------------------------------------------------------
    let mut nodes: Vec<Node> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        if f.is_test_code {
            continue;
        }
        for (ki, fun) in f.parsed.fns.iter().enumerate() {
            if fun.in_test {
                continue;
            }
            let mut panic_sinks: Vec<Sink> = fun
                .calls
                .iter()
                .filter(|c| is_panic_sink_call(&c.name))
                .map(|c| Sink {
                    line: c.line,
                    what: c.name.clone(),
                })
                .collect();
            panic_sinks.extend(
                fun.macros
                    .iter()
                    .filter(|m| m.name == "panic")
                    .map(|m| Sink {
                        line: m.line,
                        what: m.name.clone(),
                    }),
            );
            let clock_sinks: Vec<Sink> = f.lexed.tokens[fun.body.0..fun.body.1]
                .iter()
                .filter_map(|t| {
                    t.ident().filter(|id| is_clock_ident(id)).map(|id| Sink {
                        line: t.line,
                        what: id.to_string(),
                    })
                })
                .collect();
            nodes.push(Node {
                file: fi,
                fn_idx: ki,
                name: fun.name.clone(),
                line: fun.line,
                panic_sinks,
                clock_sinks,
                callees: Vec::new(),
            });
        }
    }

    // Name → node indices, for resolution.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (ni, n) in nodes.iter().enumerate() {
        by_name.entry(n.name.as_str()).or_default().push(ni);
    }

    // ---- edges -------------------------------------------------------
    let mut edges: Vec<Vec<usize>> = Vec::with_capacity(nodes.len());
    for n in &nodes {
        let f = &files[n.file];
        let fun = &f.parsed.fns[n.fn_idx];
        let mut callees: BTreeSet<usize> = BTreeSet::new();
        for call in &fun.calls {
            if is_panic_sink_call(&call.name) {
                continue; // modeled as a sink, not an edge
            }
            let Some(cands) = by_name.get(call.name.as_str()) else {
                continue; // external (std or dependency-free helper)
            };
            // `use std::…::name` marks the call external; `use
            // t3_x::…::name` restricts candidates to that crate.
            let mut hint: Option<&str> = None;
            let mut external = false;
            for u in &f.parsed.uses {
                if u.names.iter().any(|s| s == &call.name) {
                    match u.first.as_str() {
                        "std" | "core" | "alloc" => external = true,
                        _ => hint = use_crate(&u.first, f.crate_name.as_deref()),
                    }
                }
            }
            if external && hint.is_none() {
                continue;
            }
            let same_file: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| nodes[c].file == n.file)
                .collect();
            let chosen: Vec<usize> = if !same_file.is_empty() {
                same_file
            } else {
                let same_crate: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&c| {
                        f.crate_name.is_some() && files[nodes[c].file].crate_name == f.crate_name
                    })
                    .collect();
                if !same_crate.is_empty() {
                    same_crate
                } else if let Some(h) = hint {
                    let hinted: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&c| files[nodes[c].file].crate_name.as_deref() == Some(h))
                        .collect();
                    if hinted.is_empty() {
                        cands.clone()
                    } else {
                        hinted
                    }
                } else {
                    cands.clone()
                }
            };
            callees.extend(chosen);
        }
        edges.push(callees.into_iter().collect());
    }
    for (ni, callees) in edges.into_iter().enumerate() {
        nodes[ni].callees = callees;
    }

    // ---- reachability ------------------------------------------------
    // Entries in deterministic (path, line) order; per sink site the
    // first entry to reach it owns the diagnostic, with the shortest
    // chain from that entry (BFS order).
    let mut entry_order: Vec<usize> = (0..nodes.len())
        .filter(|&ni| {
            let f = &files[nodes[ni].file];
            is_entry_name(&nodes[ni].name)
                && f.crate_name
                    .as_deref()
                    .is_some_and(|c| TIMING_CRATES.contains(&c))
        })
        .collect();
    entry_order.sort_by(|&a, &b| {
        (&files[nodes[a].file].path, nodes[a].line)
            .cmp(&(&files[nodes[b].file].path, nodes[b].line))
    });

    let panic_info = rules::rule_by_name("panic-reachable").expect("registered");
    let clock_info = rules::rule_by_name("wall-clock-reachable").expect("registered");
    let mut claimed: BTreeSet<(usize, Sink, &'static str)> = BTreeSet::new();

    for &entry in &entry_order {
        // BFS with parent pointers for chain reconstruction.
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([entry]);
        let mut seen: BTreeSet<usize> = BTreeSet::from([entry]);
        while let Some(ni) = queue.pop_front() {
            let chain = chain_of(&nodes, &parent, ni);
            let node = &nodes[ni];
            let node_file = &files[node.file];
            let node_is_hot_body = is_hot_fn_name(&node.name);
            let in_timing_crate = node_file
                .crate_name
                .as_deref()
                .is_some_and(|c| TIMING_CRATES.contains(&c));
            // T3L006: panic sinks anywhere reachable, except inside
            // `step`/`tick`/`advance` bodies — those are T3L004's.
            if !node_is_hot_body {
                for s in &node.panic_sinks {
                    if claimed.insert((ni, s.clone(), "panic-reachable")) {
                        out.push(Diagnostic {
                            path: node_file.path.clone(),
                            line: s.line,
                            rule: panic_info.name,
                            code: panic_info.code,
                            anchor: format!("{}.{}", node.name, s.what),
                            message: format!(
                                "`{}` in `fn {}` is reachable from hot-path entry `{}` ({}:{}): {}; hot paths must not abort — return a modeled error or prove the invariant below the entry",
                                s.what,
                                node.name,
                                nodes[entry].name,
                                files[nodes[entry].file].path,
                                nodes[entry].line,
                                &chain,
                            ),
                        });
                    }
                }
            }
            // T3L007: wall-clock sinks in crates T3L001 does not
            // already police (non-TIMING crates and the facade).
            if !in_timing_crate {
                for s in &node.clock_sinks {
                    if claimed.insert((ni, s.clone(), "wall-clock-reachable")) {
                        out.push(Diagnostic {
                            path: node_file.path.clone(),
                            line: s.line,
                            rule: clock_info.name,
                            code: clock_info.code,
                            anchor: format!("{}.{}", node.name, s.what),
                            message: format!(
                                "`{}` in `fn {}` is reachable from timing-crate entry `{}` ({}:{}): {}; host time/entropy must never feed a simulated-cycle path, even through a non-timing crate",
                                s.what,
                                node.name,
                                nodes[entry].name,
                                files[nodes[entry].file].path,
                                nodes[entry].line,
                                &chain,
                            ),
                        });
                    }
                }
            }
            for &c in &nodes[ni].callees {
                if seen.insert(c) {
                    parent.insert(c, ni);
                    queue.push_back(c);
                }
            }
        }
    }
}

/// Reconstructs the entry→node call chain from BFS parent pointers.
fn chain_of(nodes: &[Node], parent: &BTreeMap<usize, usize>, ni: usize) -> String {
    let mut path = vec![ni];
    while let Some(&p) = parent.get(path.last().expect("non-empty")) {
        path.push(p);
    }
    path.reverse();
    path.iter()
        .map(|&x| nodes[x].name.as_str())
        .collect::<Vec<_>>()
        .join(" -> ")
}
