//! T3L009 `trace-schema` — cross-crate trace-schema consistency.
//!
//! The trace pipeline is string-keyed at its seam: `t3-trace` renders
//! events through `Event::name()` / `Event::visit_args()` (plus the
//! exporter's `cycle`/`cycle_start`/`cycle_end` keys chosen by
//! `Event::phase()`), and `t3-prof` re-reads them in `make_record`
//! with `get("key")` lookups keyed by event-name match arms. The two
//! sides live in different crates and compile independently, so a
//! renamed arg key ships silently and corrupts every downstream
//! analysis — including the `BENCH_*.json` perf gate.
//!
//! This rule extracts both sides from the token streams and fails on
//! any shape mismatch:
//!
//! * an event name consumed by `make_record` that t3-trace never
//!   emits (or vice versa: emitted but never consumed);
//! * an arg key consumed by an event's arm that the event does not
//!   emit (accounting for the exporter's phase-dependent cycle keys);
//! * an arg key emitted but never consumed by the arm;
//! * an `Event::Variant` matched by t3-prof analytics passes
//!   (`serve.rs`, `analyze.rs`, ...) that the emit side does not
//!   define.
//!
//! The analysis only runs when both sides are present in the linted
//! file set, so single-file fixture lints stay silent.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::engine::FileAnalysis;
use crate::lexer::Token;
use crate::rules::rule_by_name;

/// The emit-side path (event taxonomy + arg rendering).
pub const EMIT_PATH: &str = "crates/trace/src/event.rs";
/// The consume-side path (t3-prof's trace parser).
pub const CONSUME_PATH: &str = "crates/prof/src/load.rs";

/// What one side of the schema says about an event.
#[derive(Debug, Default, Clone)]
struct EventShape {
    /// Line the event name / arm was declared on.
    line: u32,
    /// Arg keys with the line each was seen on, in source order.
    keys: Vec<(String, u32)>,
}

/// Span / instant / counter, as recovered from `Event::phase()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhaseKind {
    Span,
    Point,
}

fn push_diag(out: &mut Vec<Diagnostic>, path: &str, line: u32, anchor: String, message: String) {
    let info = rule_by_name("trace-schema").expect("registered");
    out.push(Diagnostic {
        path: path.to_string(),
        line,
        rule: info.name,
        code: info.code,
        anchor,
        message,
    });
}

/// True when `toks[i..]` starts an `Event::Variant` path; returns the
/// variant name token index.
fn event_variant_at(toks: &[Token], i: usize) -> Option<usize> {
    if toks.get(i).and_then(|t| t.ident()) == Some("Event")
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).and_then(|t| t.ident()).is_some()
    {
        Some(i + 3)
    } else {
        None
    }
}

/// The token range of `fn <name>`'s body in `f`, if present. When the
/// file defines several fns with that name (`Event::name` vs
/// `Track::name`), the one whose body mentions `Event::` wins.
fn fn_body(f: &FileAnalysis, name: &str) -> Option<(usize, usize)> {
    let mut fallback = None;
    for fun in &f.parsed.fns {
        if fun.name != name || fun.in_test {
            continue;
        }
        let (lo, hi) = fun.body;
        let mentions_event = (lo..hi).any(|i| event_variant_at(&f.lexed.tokens, i).is_some());
        if mentions_event {
            return Some(fun.body);
        }
        fallback.get_or_insert(fun.body);
    }
    fallback
}

/// The emit-side schema: event name → shape, plus variant → phase and
/// the full set of declared variants.
#[derive(Debug, Default)]
struct EmitSchema {
    /// Chrome `name` → (variant, shape).
    events: BTreeMap<String, (String, EventShape)>,
    /// Variant → span-ness (drives which cycle keys the exporter adds).
    phases: BTreeMap<String, PhaseKind>,
    /// Every variant that appears anywhere in the emit file.
    variants: BTreeSet<String>,
}

fn extract_emit(f: &FileAnalysis) -> EmitSchema {
    let toks = &f.lexed.tokens;
    let mut schema = EmitSchema::default();
    for i in 0..toks.len() {
        if let Some(v) = event_variant_at(toks, i) {
            if let Some(name) = toks[v].ident() {
                schema.variants.insert(name.to_string());
            }
        }
    }
    // fn name(): `Event::Variant { .. } => "literal"`.
    if let Some((lo, hi)) = fn_body(f, "name") {
        let mut current: Option<String> = None;
        let mut i = lo;
        while i < hi {
            if let Some(v) = event_variant_at(toks, i) {
                current = toks[v].ident().map(str::to_string);
                i = v + 1;
                continue;
            }
            if toks[i].is_punct('=') && toks.get(i + 1).is_some_and(|t| t.is_punct('>')) {
                if let (Some(variant), Some(tok)) = (current.take(), toks.get(i + 2)) {
                    if let Some(text) = tok.str_text() {
                        schema.events.insert(
                            text.to_string(),
                            (
                                variant,
                                EventShape {
                                    line: tok.line,
                                    keys: Vec::new(),
                                },
                            ),
                        );
                    }
                }
                i += 2;
                continue;
            }
            i += 1;
        }
    }
    // fn visit_args(): keys are `f("key", ...)` under the last-seen
    // arm's variant group.
    if let Some((lo, hi)) = fn_body(f, "visit_args") {
        let mut pending: Vec<String> = Vec::new();
        let mut current: Vec<String> = Vec::new();
        let mut i = lo;
        while i < hi {
            if let Some(v) = event_variant_at(toks, i) {
                if let Some(name) = toks[v].ident() {
                    pending.push(name.to_string());
                }
                i = v + 1;
                continue;
            }
            if toks[i].is_punct('=') && toks.get(i + 1).is_some_and(|t| t.is_punct('>')) {
                if !pending.is_empty() {
                    current = core::mem::take(&mut pending);
                }
                i += 2;
                continue;
            }
            if toks[i].ident() == Some("f") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                if let Some(key_tok) = toks.get(i + 2) {
                    if let Some(key) = key_tok.str_text() {
                        for variant in &current {
                            for (v, shape) in schema.events.values_mut() {
                                if v == variant {
                                    shape.keys.push((key.to_string(), key_tok.line));
                                }
                            }
                        }
                    }
                }
                i += 3;
                continue;
            }
            i += 1;
        }
    }
    // fn phase(): variant groups mapped to Span / Instant / Counter.
    if let Some((lo, hi)) = fn_body(f, "phase") {
        let mut pending: Vec<String> = Vec::new();
        let mut current: Vec<String> = Vec::new();
        let mut i = lo;
        while i < hi {
            if let Some(v) = event_variant_at(toks, i) {
                if let Some(name) = toks[v].ident() {
                    pending.push(name.to_string());
                }
                i = v + 1;
                continue;
            }
            if toks[i].is_punct('=') && toks.get(i + 1).is_some_and(|t| t.is_punct('>')) {
                if !pending.is_empty() {
                    current = core::mem::take(&mut pending);
                }
                i += 2;
                continue;
            }
            if let Some(kind) = toks[i].ident() {
                let kind = match kind {
                    "Span" => Some(PhaseKind::Span),
                    "Instant" | "Counter" => Some(PhaseKind::Point),
                    _ => None,
                };
                if let Some(kind) = kind {
                    for variant in current.drain(..) {
                        schema.phases.insert(variant, kind);
                    }
                }
            }
            i += 1;
        }
    }
    schema
}

/// The consume-side schema: event name → shape, from `make_record`'s
/// `"name" => … get("key")? …` arms.
fn extract_consume(f: &FileAnalysis) -> BTreeMap<String, EventShape> {
    let toks = &f.lexed.tokens;
    let mut out: BTreeMap<String, EventShape> = BTreeMap::new();
    let Some((lo, hi)) = f
        .parsed
        .fns
        .iter()
        .find(|fun| fun.name == "make_record" && !fun.in_test)
        .map(|fun| fun.body)
    else {
        return out;
    };
    let mut current: Option<String> = None;
    let mut i = lo;
    while i < hi {
        // `"name" =>` starts an arm.
        if let Some(text) = toks[i].str_text() {
            if toks.get(i + 1).is_some_and(|t| t.is_punct('='))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('>'))
            {
                out.insert(
                    text.to_string(),
                    EventShape {
                        line: toks[i].line,
                        keys: Vec::new(),
                    },
                );
                current = Some(text.to_string());
                i += 3;
                continue;
            }
        }
        if toks[i].ident() == Some("get") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            if let Some(key_tok) = toks.get(i + 2) {
                if let (Some(key), Some(arm)) = (key_tok.str_text(), current.as_ref()) {
                    if let Some(shape) = out.get_mut(arm) {
                        shape.keys.push((key.to_string(), key_tok.line));
                    }
                }
            }
            i += 3;
            continue;
        }
        i += 1;
    }
    out
}

/// Runs the trace-schema consistency check over the linted file set.
pub fn check(files: &[FileAnalysis], out: &mut Vec<Diagnostic>) {
    let Some(emit_file) = files.iter().find(|f| f.path == EMIT_PATH) else {
        return;
    };
    let Some(consume_file) = files.iter().find(|f| f.path == CONSUME_PATH) else {
        return;
    };
    let emit = extract_emit(emit_file);
    let consume = extract_consume(consume_file);
    if emit.events.is_empty() || consume.is_empty() {
        // Extraction failed wholesale — a refactor moved the seam.
        // Surface one loud diagnostic instead of many misleading ones.
        let (path, line) = if emit.events.is_empty() {
            (EMIT_PATH, 1)
        } else {
            (CONSUME_PATH, 1)
        };
        push_diag(
            out,
            path,
            line,
            "schema-extraction".to_string(),
            "trace-schema extraction found no events here; if the emit/consume seam moved, update EMIT_PATH/CONSUME_PATH in the lint's schema analysis".to_string(),
        );
        return;
    }

    for (name, shape) in &consume {
        let Some((variant, emitted)) = emit.events.get(name) else {
            push_diag(
                out,
                CONSUME_PATH,
                shape.line,
                format!("event.{name}"),
                format!(
                    "t3-prof consumes event '{name}' which t3-trace never emits; parser and taxonomy have diverged"
                ),
            );
            continue;
        };
        // Exporter-provided cycle keys depend on the variant's phase;
        // unknown phase (extraction miss) conservatively allows all.
        let phase = emit.phases.get(variant).copied();
        let allowed_cycle = |k: &str| match phase {
            Some(PhaseKind::Span) => k == "cycle_start" || k == "cycle_end",
            Some(PhaseKind::Point) => k == "cycle",
            None => k == "cycle" || k == "cycle_start" || k == "cycle_end",
        };
        let emitted_keys: BTreeSet<&str> = emitted.keys.iter().map(|(k, _)| k.as_str()).collect();
        let consumed_keys: BTreeSet<&str> = shape.keys.iter().map(|(k, _)| k.as_str()).collect();
        for (k, line) in &shape.keys {
            if !emitted_keys.contains(k.as_str()) && !allowed_cycle(k) {
                push_diag(
                    out,
                    CONSUME_PATH,
                    *line,
                    format!("{name}.{k}"),
                    format!(
                        "event '{name}' arm consumes arg '{k}' which the emit side never writes (emitted: {}); a renamed key silently corrupts every trace round-trip",
                        emitted_keys.iter().copied().collect::<Vec<_>>().join(", "),
                    ),
                );
            }
        }
        for (k, line) in &emitted.keys {
            if !consumed_keys.contains(k.as_str()) {
                push_diag(
                    out,
                    EMIT_PATH,
                    *line,
                    format!("{name}.{k}"),
                    format!(
                        "event '{name}' emits arg '{k}' which t3-prof's parser never consumes; either read it back in make_record or justify the viewer-only arg"
                    ),
                );
            }
        }
    }
    for (name, (_, shape)) in &emit.events {
        if !consume.contains_key(name) {
            push_diag(
                out,
                EMIT_PATH,
                shape.line,
                format!("event.{name}"),
                format!(
                    "event '{name}' is emitted but t3-prof's parser has no arm for it; analytics would reject every trace containing one"
                ),
            );
        }
    }
    // Analytics passes must only match variants the taxonomy defines.
    for f in files {
        if !f.path.starts_with("crates/prof/src/") || f.path == CONSUME_PATH {
            continue;
        }
        let toks = &f.lexed.tokens;
        let mut reported: BTreeSet<String> = BTreeSet::new();
        for i in 0..toks.len() {
            if let Some(v) = event_variant_at(toks, i) {
                let Some(variant) = toks[v].ident() else {
                    continue;
                };
                if !emit.variants.contains(variant) && reported.insert(variant.to_string()) {
                    push_diag(
                        out,
                        &f.path,
                        toks[v].line,
                        format!("variant.{variant}"),
                        format!(
                            "analytics matches Event::{variant}, which the t3-trace taxonomy does not define"
                        ),
                    );
                }
            }
        }
    }
}
