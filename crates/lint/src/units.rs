//! T3L008 `unit-confusion` — units-flow checking over arithmetic.
//!
//! The workspace's integers carry implicit units in their names:
//! `_cycles`, `_bytes`, `_permille`, `_tokens` (and the bare words).
//! Mixing them with `+`, `-`, or a comparison type-checks fine — both
//! sides are `u64` — and yields plausible-looking numbers, which is
//! exactly the class of bug no test catches until a figure drifts.
//!
//! The analysis is statement-local and pattern-based: it flags
//! `a_cycles <op> b_bytes` where the two operands are *directly
//! adjacent* to the operator (modulo a `recv.` / `self.` field-access
//! prefix on the right operand) and their unit suffixes differ.
//! Deliberately exempt:
//!
//! * `*` and `/` — cross-unit products and ratios are the legitimate
//!   way units combine (`bytes / cycles` is bandwidth);
//! * operands followed by an explicit `as` cast — the conversion is
//!   visible at the site;
//! * test code, and everything outside the TIMING crate scope.
//!
//! Like every heuristic here, adjacency trades recall for precision:
//! a mixed-unit expression routed through a temporary is out of
//! reach, but every flagged site is a real mixed-unit operation.

use crate::diag::Diagnostic;
use crate::engine::FileCtx;
use crate::lexer::Token;
use crate::rules::{rule_by_name, TIMING_CRATES};

/// The unit a name carries, if any: `start_cycles` → `cycles`,
/// bare `bytes` → `bytes`.
fn unit_of(name: &str) -> Option<&'static str> {
    for unit in ["cycles", "bytes", "permille", "tokens"] {
        if name == unit || name.ends_with(&format!("_{unit}")) {
            return Some(unit);
        }
    }
    None
}

/// The binary operator starting at token `i`, with its token length.
/// `None` for non-operators and for the exempt/ambiguous forms
/// (`*`, `/`, `->`, `=>`, `<<`, `>>`, generics are excluded by the
/// both-sides-must-be-units requirement anyway).
fn operator_at(toks: &[Token], i: usize) -> Option<(&'static str, usize)> {
    let p = |k: usize, c: char| toks.get(k).is_some_and(|t| t.is_punct(c));
    if p(i, '+') {
        return Some(if p(i + 1, '=') { ("+=", 2) } else { ("+", 1) });
    }
    if p(i, '-') {
        if p(i + 1, '>') {
            return None; // arrow
        }
        return Some(if p(i + 1, '=') { ("-=", 2) } else { ("-", 1) });
    }
    if p(i, '=') {
        if p(i + 1, '=') {
            return Some(("==", 2));
        }
        return None; // assignment / `=>` are out of scope
    }
    if p(i, '!') && p(i + 1, '=') {
        return Some(("!=", 2));
    }
    if p(i, '<') {
        if p(i + 1, '<') {
            return None; // shift
        }
        return Some(if p(i + 1, '=') { ("<=", 2) } else { ("<", 1) });
    }
    if p(i, '>') {
        if p(i + 1, '>') {
            return None;
        }
        return Some(if p(i + 1, '=') { (">=", 2) } else { (">", 1) });
    }
    None
}

/// T3L008 — flags directly-adjacent cross-unit `+`/`-`/comparison.
pub fn check_unit_confusion(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !ctx.crate_in(TIMING_CRATES) || ctx.is_test_code {
        return;
    }
    let info = rule_by_name("unit-confusion").expect("registered");
    let toks = &ctx.lexed.tokens;
    let mut i = 1usize;
    while i < toks.len() {
        let Some((op, len)) = operator_at(toks, i) else {
            i += 1;
            continue;
        };
        // Left operand: the identifier immediately before the operator.
        let Some(left_unit) = toks[i - 1].ident().and_then(unit_of) else {
            i += len;
            continue;
        };
        if ctx.in_test_region(i) {
            i += len;
            continue;
        }
        // Right operand: skip a field-access path (`self.x.`, `recv.`).
        let mut j = i + len;
        while toks.get(j).and_then(|t| t.ident()).is_some()
            && toks.get(j + 1).is_some_and(|t| t.is_punct('.'))
        {
            j += 2;
        }
        let Some(right_name) = toks.get(j).and_then(|t| t.ident()) else {
            i += len;
            continue;
        };
        let Some(right_unit) = unit_of(right_name) else {
            i += len;
            continue;
        };
        // An explicit cast on the right operand is a visible,
        // intentional conversion.
        let casted = toks.get(j + 1).and_then(|t| t.ident()) == Some("as");
        if left_unit != right_unit && !casted {
            let left_name = toks[i - 1].ident().unwrap_or_default();
            out.push(Diagnostic {
                path: ctx.path.to_string(),
                line: toks[i].line,
                rule: info.name,
                code: info.code,
                anchor: format!("{left_unit}{op}{right_unit}"),
                message: format!(
                    "`{left_name} {op} {right_name}` mixes units ({left_unit} vs {right_unit}): both are integers, so this type-checks and silently corrupts whichever counter receives it; convert explicitly with `as` plus a named temporary, or justify with `t3-lint: allow(unit-confusion) -- <reason>`"
                ),
            });
        }
        i += len;
    }
}
