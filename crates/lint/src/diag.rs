//! Diagnostics: the lint's output type plus human- and
//! machine-readable rendering. JSON is hand-rolled (the workspace has
//! no external dependencies), matching the escaping rules used by
//! `t3-trace`'s exporters.

use std::fmt;

/// One finding: a rule firing at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule name (`wall-clock`, `float-cycles`, ...).
    pub rule: &'static str,
    /// Stable rule code (`T3L001`...).
    pub code: &'static str,
    /// A line-number-independent key for the finding — the offending
    /// identifier, `fn.sink` pair, unit pair, or `event.key` — used by
    /// the baseline file so entries survive unrelated edits.
    pub anchor: String,
    /// Human-readable explanation of the finding.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{} {}] {}",
            self.path, self.line, self.code, self.rule, self.message
        )
    }
}

/// Escapes a string for embedding in a JSON document (shared with the
/// SARIF exporter).
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as a JSON array, one object per finding, in a
/// stable order (the caller sorts). The schema is
/// `{"file", "line", "rule", "code", "anchor", "message"}`.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"code\": \"{}\", \"anchor\": \"{}\", \"message\": \"{}\"}}",
            escape_json(&d.path),
            d.line,
            d.rule,
            d.code,
            escape_json(&d.anchor),
            escape_json(&d.message)
        ));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_renders() {
        let d = Diagnostic {
            path: "crates/net/src/link.rs".to_string(),
            line: 7,
            rule: "wall-clock",
            code: "T3L001",
            anchor: "Instant".to_string(),
            message: "uses \"Instant\"".to_string(),
        };
        let json = to_json(std::slice::from_ref(&d));
        assert!(json.contains("\\\"Instant\\\""));
        assert!(json.contains("\"line\": 7"));
        assert!(json.starts_with("[\n"));
        assert_eq!(
            d.to_string(),
            "crates/net/src/link.rs:7: [T3L001 wall-clock] uses \"Instant\""
        );
    }
}
