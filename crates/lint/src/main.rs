//! The `t3-lint` binary: walks the workspace and reports every
//! determinism/fidelity violation.
//!
//! ```text
//! t3-lint [--root <dir>] [--json] [--list] [--explain <rule>]
//!         [--sarif <path>] [--baseline <path>]
//! ```
//!
//! The baseline defaults to `<root>/lint-baseline.txt` when that file
//! exists. Baselined findings are printed (and exported to SARIF as
//! `note`-level results) but do not fail the run; anything else does.
//!
//! Exit codes: 0 clean (or baselined-only), 1 diagnostics found, 2
//! usage or I/O error.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use t3_lint::{baseline, lint_workspace, to_json, to_sarif, RULES};

fn main() -> ExitCode {
    let mut json = false;
    let mut list = false;
    let mut explain: Option<String> = None;
    let mut sarif_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list" => list = true,
            "--explain" => match args.next() {
                Some(rule) => explain = Some(rule),
                None => return usage("--explain requires a rule name or code"),
            },
            "--sarif" => match args.next() {
                Some(p) => sarif_path = Some(PathBuf::from(p)),
                None => return usage("--sarif requires an output path"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage("--baseline requires a file path"),
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root requires a directory"),
            },
            other => return usage(&format!("unknown argument: {other}")),
        }
    }

    if list {
        println!("t3-lint rules (suppress with `// t3-lint: allow(<rule>) -- <reason>`):");
        for r in RULES {
            println!("  {}  {:<20} {}", r.code, r.name, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    if let Some(what) = explain {
        let Some(r) = RULES
            .iter()
            .find(|r| r.name == what || r.code == what.to_uppercase())
        else {
            return usage(&format!(
                "unknown rule `{what}`; run `t3-lint --list` for the registry"
            ));
        };
        println!("{} {}", r.code, r.name);
        println!("\nWHAT\n  {}", r.summary);
        println!("\nWHY\n  {}", r.rationale);
        println!("\nEXAMPLE VIOLATION\n{}", r.example);
        println!("\nSANCTIONED SUPPRESSION\n  {}", r.suppression);
        return ExitCode::SUCCESS;
    }

    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let diags = match lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("t3-lint: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    // Apply the baseline: explicit path, or <root>/lint-baseline.txt
    // when present. A missing explicit path is an error; a missing
    // default is simply "no baseline".
    let default_baseline = root.join("lint-baseline.txt");
    let (entries, bad, bl_name) = match &baseline_path {
        Some(p) => match fs::read_to_string(p) {
            Ok(text) => {
                let mut bad = Vec::new();
                (
                    baseline::parse(&text, &mut bad),
                    bad,
                    p.to_string_lossy().replace('\\', "/"),
                )
            }
            Err(e) => {
                eprintln!("t3-lint: cannot read baseline {}: {e}", p.display());
                return ExitCode::from(2);
            }
        },
        None => match fs::read_to_string(&default_baseline) {
            Ok(text) => {
                let mut bad = Vec::new();
                (
                    baseline::parse(&text, &mut bad),
                    bad,
                    "lint-baseline.txt".to_string(),
                )
            }
            Err(_) => (Vec::new(), Vec::new(), "lint-baseline.txt".to_string()),
        },
    };
    let applied = baseline::apply(diags, &entries, &bad, &bl_name);

    if let Some(p) = &sarif_path {
        let doc = to_sarif(&applied.failing, &applied.baselined);
        if let Err(e) = fs::write(p, doc) {
            eprintln!("t3-lint: cannot write SARIF to {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }

    if json {
        print!("{}", to_json(&applied.failing));
    } else {
        for d in &applied.baselined {
            println!("{d} [baselined]");
        }
        for d in &applied.failing {
            println!("{d}");
        }
        if applied.failing.is_empty() {
            if applied.baselined.is_empty() {
                eprintln!("t3-lint: workspace clean");
            } else {
                eprintln!(
                    "t3-lint: workspace clean ({} baselined finding(s) remain)",
                    applied.baselined.len()
                );
            }
        } else {
            eprintln!("t3-lint: {} diagnostic(s)", applied.failing.len());
        }
    }
    if applied.failing.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(error: &str) -> ExitCode {
    eprintln!("error: {error}");
    eprintln!(
        "usage: t3-lint [--root <dir>] [--json] [--list] [--explain <rule>] [--sarif <path>] [--baseline <path>]"
    );
    ExitCode::from(2)
}
