//! The `t3-lint` binary: walks the workspace and reports every
//! determinism/fidelity violation.
//!
//! ```text
//! t3-lint [--root <dir>] [--json] [--list]
//! ```
//!
//! Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O error.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use t3_lint::{lint_workspace, to_json, RULES};

fn main() -> ExitCode {
    let mut json = false;
    let mut list = false;
    let mut root: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list" => list = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root requires a directory"),
            },
            other => return usage(&format!("unknown argument: {other}")),
        }
    }

    if list {
        println!("t3-lint rules (suppress with `// t3-lint: allow(<rule>) -- <reason>`):");
        for r in RULES {
            println!("  {}  {:<16} {}", r.code, r.name, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let diags = match lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("t3-lint: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            eprintln!("t3-lint: workspace clean");
        } else {
            eprintln!("t3-lint: {} diagnostic(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(error: &str) -> ExitCode {
    eprintln!("error: {error}");
    eprintln!("usage: t3-lint [--root <dir>] [--json] [--list]");
    ExitCode::from(2)
}
