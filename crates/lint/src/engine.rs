//! The per-file analysis pipeline and the workspace walker.
//!
//! For each file: lex → compute regions (`#[cfg(test)]` spans,
//! hot-path `fn step*`/`tick*`/`advance*` bodies, fast-forward
//! `fn next_event*` predictor bodies) → run rules →
//! apply `t3-lint: allow` suppressions → emit directive-hygiene
//! diagnostics. The walker visits every workspace source set in a
//! deterministic (sorted) order, so output and exit codes are stable
//! run-to-run — the lint holds itself to the invariant it enforces.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::diag::Diagnostic;
use crate::lexer::{self, Lexed, Token};
use crate::parser::{self, ParsedFile};
use crate::{callgraph, rules, schema, units};

/// A parsed `t3-lint: allow(rule) -- reason` comment directive.
#[derive(Debug, Clone)]
pub struct Directive {
    pub line: u32,
    pub rule: String,
    /// `allow-file(...)` suppresses the rule for the whole file.
    pub file_wide: bool,
    pub reason: Option<String>,
}

/// Everything a token-local rule needs to know about one file — a
/// borrowed view into a [`FileAnalysis`].
pub struct FileCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    /// `crates/<name>/...` → `Some(name)`.
    pub crate_name: Option<&'a str>,
    /// True for integration-test and bench sources (`tests/`,
    /// `benches/` path components).
    pub is_test_code: bool,
    pub lexed: &'a Lexed,
    /// Token-index ranges covered by `#[cfg(test)]` items.
    pub test_regions: &'a [(usize, usize)],
    /// Token-index body ranges of per-cycle functions, with the
    /// function name.
    pub hot_fns: &'a [(usize, usize, String)],
    /// Token-index body ranges of fast-forward event predictors
    /// (`next_event`/`next_arrival`/`*_next_event`), with name.
    pub next_event_fns: &'a [(usize, usize, String)],
}

impl FileCtx<'_> {
    /// True when this file belongs to one of `names` under `crates/`.
    pub fn crate_in(&self, names: &[&str]) -> bool {
        self.crate_name.is_some_and(|c| names.contains(&c))
    }

    /// True when token index `i` falls inside a `#[cfg(test)]` item.
    pub fn in_test_region(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(lo, hi)| i >= lo && i < hi)
    }

    /// True when a comment on `line` or the line above carries a
    /// `-- <reason>` justification.
    pub fn reasoned_comment_near(&self, line: u32) -> bool {
        self.lexed
            .comments
            .iter()
            .any(|c| (c.line == line || c.line + 1 == line) && comment_reason(&c.text).is_some())
    }
}

/// The fully-analyzed form of one source file: everything the
/// token-local rules read through [`FileCtx`], plus the parsed item
/// structure the workspace-wide rules ([`crate::callgraph`],
/// [`crate::schema`]) consume, plus the file's suppression
/// directives.
pub struct FileAnalysis {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// `crates/<name>/...` → `Some(name)`.
    pub crate_name: Option<String>,
    /// True for integration-test and bench sources.
    pub is_test_code: bool,
    pub lexed: Lexed,
    /// Items recovered by the lightweight parser.
    pub parsed: ParsedFile,
    /// Token-index ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// Token-index body ranges of per-cycle functions, with name.
    pub hot_fns: Vec<(usize, usize, String)>,
    /// Token-index body ranges of fast-forward event predictors.
    pub next_event_fns: Vec<(usize, usize, String)>,
    /// Well-formed `t3-lint:` directives, in comment order.
    pub directives: Vec<Directive>,
    /// Malformed directives: (line, message).
    pub bad_directives: Vec<(u32, String)>,
}

impl FileAnalysis {
    /// Lexes, parses and region-maps one file.
    pub fn analyze(path: &str, source: &str) -> FileAnalysis {
        let lexed = lexer::lex(source);
        let test_regions = test_regions(&lexed.tokens);
        let parsed = parser::parse(&lexed.tokens, &|i| {
            test_regions.iter().any(|&(lo, hi)| i >= lo && i < hi)
        });
        let hot_fns = fn_bodies(&lexed.tokens, is_hot_fn_name);
        let next_event_fns = fn_bodies(&lexed.tokens, is_next_event_fn_name);
        let mut bad_directives = Vec::new();
        let directives = parse_directives(&lexed, &mut bad_directives);
        FileAnalysis {
            path: path.to_string(),
            crate_name: path
                .strip_prefix("crates/")
                .and_then(|r| r.split('/').next())
                .map(str::to_string),
            is_test_code: path.starts_with("tests/")
                || path.contains("/tests/")
                || path.contains("/benches/"),
            lexed,
            parsed,
            test_regions,
            hot_fns,
            next_event_fns,
            directives,
            bad_directives,
        }
    }

    /// The borrowed view the token-local rules take.
    pub fn ctx(&self) -> FileCtx<'_> {
        FileCtx {
            path: &self.path,
            crate_name: self.crate_name.as_deref(),
            is_test_code: self.is_test_code,
            lexed: &self.lexed,
            test_regions: &self.test_regions,
            hot_fns: &self.hot_fns,
            next_event_fns: &self.next_event_fns,
        }
    }
}

/// Extracts the text after the first `--` in a comment, if non-empty.
fn comment_reason(text: &str) -> Option<&str> {
    let (_, tail) = text.split_once("--")?;
    let tail = tail.trim();
    (!tail.is_empty()).then_some(tail)
}

/// Parses every `t3-lint:` directive in the comment stream. A
/// directive must *begin* its comment (`// t3-lint: allow(...)`), so
/// prose and rustdoc that merely mention the syntax are inert.
/// Malformed directives (the marker present at the start but not
/// followed by a well-formed `allow(...)`/`allow-file(...)`) are
/// reported through `bad`.
pub fn parse_directives(lexed: &Lexed, bad: &mut Vec<(u32, String)>) -> Vec<Directive> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let Some(rest) = c.text.strip_prefix("t3-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let (file_wide, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow(") {
            (false, r)
        } else {
            bad.push((
                c.line,
                format!(
                    "malformed t3-lint directive `{}`; expected `t3-lint: allow(<rule>) -- <reason>`",
                    c.text
                ),
            ));
            continue;
        };
        let Some((rule, tail)) = rest.split_once(')') else {
            bad.push((
                c.line,
                "unterminated t3-lint directive; missing `)` after rule name".to_string(),
            ));
            continue;
        };
        out.push(Directive {
            line: c.line,
            rule: rule.trim().to_string(),
            file_wide,
            reason: comment_reason(tail).map(str::to_string),
        });
    }
    out
}

/// Token index of the `}` matching the `{` at `open` (exclusive end
/// of the body), or `toks.len()` if unbalanced.
fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0isize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len()
}

/// From item-keyword position, the index of the `{` opening its body —
/// `None` when a `;` ends the item first (trait method, `mod x;`).
fn body_open(toks: &[Token], from: usize) -> Option<usize> {
    for (i, t) in toks.iter().enumerate().skip(from) {
        if t.is_punct('{') {
            return Some(i);
        }
        if t.is_punct(';') {
            return None;
        }
    }
    None
}

/// Token index one past the `]` closing the attribute whose `#` is at
/// `hash`.
fn attr_close(toks: &[Token], hash: usize) -> usize {
    let mut i = hash + 1;
    if toks.get(i).is_some_and(|t| t.is_punct('!')) {
        i += 1;
    }
    let mut depth = 0isize;
    while i < toks.len() {
        if toks[i].is_punct('[') {
            depth += 1;
        } else if toks[i].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// True when the attribute starting at `#` (index `hash`) gates on
/// test compilation: `#[test]`, `#[cfg(test)]`, `#[cfg(all(test,..))]`.
fn is_test_attr(toks: &[Token], hash: usize) -> bool {
    let close = attr_close(toks, hash);
    let mut idents = toks[hash..close].iter().filter_map(|t| t.ident());
    match idents.next() {
        Some("test") => true,
        Some("cfg") => idents.any(|id| id == "test"),
        _ => false,
    }
}

/// Computes `#[cfg(test)]`/`#[test]` item spans as token ranges.
fn test_regions(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && is_test_attr(toks, i) {
            let mut j = attr_close(toks, i);
            // Skip any further attributes stacked on the same item.
            while toks.get(j).is_some_and(|t| t.is_punct('#')) {
                j = attr_close(toks, j);
            }
            // Skip visibility and fn qualifiers to reach the item
            // keyword; only `mod` and `fn` own brace bodies we track.
            while toks
                .get(j)
                .and_then(|t| t.ident())
                .is_some_and(|id| matches!(id, "pub" | "unsafe" | "const" | "async" | "extern"))
                || toks.get(j).is_some_and(|t| t.is_punct('('))
            {
                if toks[j].is_punct('(') {
                    // `pub(crate)` / `pub(in path)` — skip the group.
                    let mut depth = 0isize;
                    while j < toks.len() {
                        if toks[j].is_punct('(') {
                            depth += 1;
                        } else if toks[j].is_punct(')') {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        j += 1;
                    }
                } else {
                    j += 1;
                }
            }
            if toks
                .get(j)
                .and_then(|t| t.ident())
                .is_some_and(|id| id == "mod" || id == "fn")
            {
                if let Some(open) = body_open(toks, j) {
                    let end = match_brace(toks, open);
                    out.push((open, end + 1));
                    i = end + 1;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

/// True when `name` denotes a per-cycle hot-path function.
pub fn is_hot_fn_name(name: &str) -> bool {
    name == "step"
        || name == "tick"
        || name == "advance"
        || name.starts_with("step_")
        || name.starts_with("tick_")
        || name.starts_with("advance_")
}

/// True when `name` denotes a fast-forward event predictor: the
/// `next_event` methods themselves plus the `next_arrival` and
/// `*_next_event` variants. Test names that merely *start* with
/// `next_event_` (e.g. `next_event_is_exact`) are deliberately not
/// matched — they assert on predictors rather than being one.
pub fn is_next_event_fn_name(name: &str) -> bool {
    name == "next_event" || name == "next_arrival" || name.ends_with("_next_event")
}

/// Finds the token-range bodies of functions whose name satisfies
/// `pred` (hot-path `step*`/`tick*`/`advance*`, event predictors).
fn fn_bodies(toks: &[Token], pred: fn(&str) -> bool) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].ident() != Some("fn") {
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) else {
            continue;
        };
        if !pred(name) {
            continue;
        }
        if let Some(open) = body_open(toks, i + 2) {
            let end = match_brace(toks, open);
            out.push((open, end, name.to_string()));
        }
    }
    out
}

/// Lints one file's source text. `path` is the workspace-relative
/// path (forward slashes) used for crate scoping and reporting.
/// Workspace-wide rules run too — over a universe of one file — so
/// single-file fixtures can exercise the call-graph rules, while the
/// trace-schema rule stays silent (its anchor files are absent).
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    lint_files(&[(path.to_string(), source.to_string())])
}

/// Lints a set of `(path, source)` files as one universe: per-file
/// rules, then the workspace-wide rules (call-graph reachability,
/// trace-schema consistency), then suppression and directive hygiene.
pub fn lint_files(inputs: &[(String, String)]) -> Vec<Diagnostic> {
    let files: Vec<FileAnalysis> = inputs
        .iter()
        .map(|(p, s)| FileAnalysis::analyze(p, s))
        .collect();

    let mut raw = Vec::new();
    for f in &files {
        let ctx = f.ctx();
        rules::check_wall_clock(&ctx, &mut raw);
        rules::check_hash_iteration(&ctx, &mut raw);
        rules::check_float_cycles(&ctx, &mut raw);
        rules::check_panic_hot_path(&ctx, &mut raw);
        rules::check_next_event_drift(&ctx, &mut raw);
        units::check_unit_confusion(&ctx, &mut raw);
    }
    callgraph::check(&files, &mut raw);
    schema::check(&files, &mut raw);

    // Suppression: a directive covers its own line and the next line
    // (trailing comment, or standalone comment above the site) in the
    // file the diagnostic lands in; `allow-file` covers that whole
    // file. Workspace-rule diagnostics anchor at the sink site, so a
    // directive there covers every entry that reaches the sink.
    let by_path: BTreeMap<&str, usize> = files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.path.as_str(), i))
        .collect();
    let mut used: Vec<Vec<bool>> = files
        .iter()
        .map(|f| vec![false; f.directives.len()])
        .collect();
    let mut out: Vec<Diagnostic> = Vec::new();
    for d in raw {
        let mut suppressed = false;
        if let Some(&fi) = by_path.get(d.path.as_str()) {
            for (k, dir) in files[fi].directives.iter().enumerate() {
                if dir.rule == d.rule
                    && (dir.file_wide || dir.line == d.line || dir.line + 1 == d.line)
                {
                    suppressed = true;
                    used[fi][k] = true;
                }
            }
        }
        if !suppressed {
            out.push(d);
        }
    }

    // Hygiene after suppression: `naked-allow` findings are never
    // suppressible — the escape hatch cannot hide its own rot.
    let naked = rules::rule_by_name("naked-allow").expect("registered");
    for (fi, f) in files.iter().enumerate() {
        rules::check_naked_allow_attrs(&f.ctx(), &mut out);
        for (line, msg) in &f.bad_directives {
            out.push(Diagnostic {
                path: f.path.clone(),
                line: *line,
                rule: naked.name,
                code: naked.code,
                anchor: "directive".to_string(),
                message: msg.clone(),
            });
        }
        for (k, dir) in f.directives.iter().enumerate() {
            let what = if dir.file_wide { "allow-file" } else { "allow" };
            if rules::rule_by_name(&dir.rule).is_none() {
                out.push(Diagnostic {
                    path: f.path.clone(),
                    line: dir.line,
                    rule: naked.name,
                    code: naked.code,
                    anchor: format!("allow.{}", dir.rule),
                    message: format!(
                        "t3-lint: {what}({}) names an unknown rule; known rules: {}",
                        dir.rule,
                        rules::RULES
                            .iter()
                            .map(|r| r.name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
                continue;
            }
            if dir.reason.is_none() {
                out.push(Diagnostic {
                    path: f.path.clone(),
                    line: dir.line,
                    rule: naked.name,
                    code: naked.code,
                    anchor: format!("allow.{}", dir.rule),
                    message: format!(
                        "t3-lint: {what}({}) without a `-- <reason>`; every suppression must say why it is sound",
                        dir.rule
                    ),
                });
            }
            if !used[fi][k] {
                out.push(Diagnostic {
                    path: f.path.clone(),
                    line: dir.line,
                    rule: naked.name,
                    code: naked.code,
                    anchor: format!("allow.{}", dir.rule),
                    message: format!(
                        "t3-lint: {what}({}) suppresses nothing here; remove the stale directive",
                        dir.rule
                    ),
                });
            }
        }
    }

    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.code, a.anchor.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.code,
            b.anchor.as_str(),
        ))
    });
    out
}

/// Directory names the walker never descends into.
fn skip_dir(name: &str) -> bool {
    matches!(name, "target" | "fixtures" | ".git" | ".claude")
}

/// Collects every lintable `.rs` file under `root` in sorted order:
/// all of `crates/*`, plus the facade `src/`, `tests/` and
/// `examples/`.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !skip_dir(&name) {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root` as one universe (the
/// call-graph and schema rules see every file at once). Paths in
/// diagnostics are reported relative to `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut inputs = Vec::new();
    for file in workspace_files(root)? {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        inputs.push((rel, fs::read_to_string(&file)?));
    }
    Ok(lint_files(&inputs))
}
