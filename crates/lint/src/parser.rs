//! A lightweight item parser on top of the lexer.
//!
//! The line/token-local rules of t3-lint v1 could not see a hot path
//! that calls a helper three frames deep. This module recovers just
//! enough structure from the token stream — modules, `fn` items with
//! their body extents, the calls and macro invocations inside each
//! body, and `use` edges — for the workspace call graph
//! ([`crate::callgraph`]) and the trace-schema analysis
//! ([`crate::schema`]) to reason across files.
//!
//! Like the lexer, the parser is deliberately forgiving: it never
//! fails, and constructs it does not model (trait objects, closures,
//! macro definitions) degrade to conservative over-approximation. A
//! closure's calls are attributed to the enclosing function; a nested
//! `fn`'s calls are attributed to both the nested and the enclosing
//! function, which can only widen reachability, never hide it.

use crate::lexer::Token;

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The called simple name (`helper`, `unwrap`, `run_schedule`).
    /// Path qualifiers are dropped: resolution is name-based.
    pub name: String,
    /// 1-based source line of the call.
    pub line: u32,
    /// True for `.name(...)` method-call syntax.
    pub method: bool,
}

/// One macro invocation (`name!(...)` / `name![...]` / `name!{...}`)
/// inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroSite {
    /// Macro name without the `!`.
    pub name: String,
    /// 1-based source line.
    pub line: u32,
}

/// One recovered `fn` item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's simple name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Enclosing in-file module path (`["tests"]` for
    /// `mod tests { fn f() {} }`).
    pub module: Vec<String>,
    /// Token-index range of the body: `body.0` is the `{`, `body.1`
    /// the matching `}` (exclusive end is `body.1`).
    pub body: (usize, usize),
    /// Calls made inside the body, in source order.
    pub calls: Vec<CallSite>,
    /// Macro invocations inside the body, in source order.
    pub macros: Vec<MacroSite>,
    /// True when the item sits inside a `#[cfg(test)]`/`#[test]`
    /// region — test-only code is excluded from hot-path reachability.
    pub in_test: bool,
}

/// One `use` declaration, flattened: the leading path segment (the
/// crate, or `crate`/`super`/`self`) plus every identifier the
/// declaration mentions. `use t3_gpu::engine::{run_gemm, GemmEngine}`
/// yields `first = "t3_gpu"`, `names = [engine, run_gemm, GemmEngine]`.
/// Call-graph resolution uses this as a hint: a call to `run_gemm` in
/// a file that imports it from `t3_gpu` resolves into that crate.
#[derive(Debug, Clone)]
pub struct UseEdge {
    /// Line of the `use` keyword.
    pub line: u32,
    /// First path segment.
    pub first: String,
    /// Every identifier mentioned anywhere in the declaration.
    pub names: Vec<String>,
}

/// The parse of one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every recovered `fn`, in source order.
    pub fns: Vec<FnDef>,
    /// Every `use` declaration.
    pub uses: Vec<UseEdge>,
    /// Every in-file `mod name {` with its line, in source order.
    pub mods: Vec<(String, u32)>,
}

/// Keywords that can precede a `(` without being a call.
fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "in"
            | "as"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "fn"
            | "impl"
            | "dyn"
            | "where"
            | "pub"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "unsafe"
            | "extern"
            | "crate"
            | "super"
            | "self"
            | "Self"
    )
}

/// Token index of the `}` matching the `{` at `open`, or `toks.len()`
/// if unbalanced.
pub fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0isize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len()
}

/// From item-keyword position, the index of the `{` opening its body —
/// `None` when a `;` ends the item first (trait method, `mod x;`).
/// Braces inside intervening expressions (const generics, where
/// clauses with closures) are rare enough to accept the first `{`.
fn body_open(toks: &[Token], from: usize) -> Option<usize> {
    for (i, t) in toks.iter().enumerate().skip(from) {
        if t.is_punct('{') {
            return Some(i);
        }
        if t.is_punct(';') {
            return None;
        }
    }
    None
}

/// Scans a body range for call sites and macro invocations.
fn scan_body(
    toks: &[Token],
    lo: usize,
    hi: usize,
    calls: &mut Vec<CallSite>,
    macros: &mut Vec<MacroSite>,
) {
    let mut i = lo;
    while i < hi {
        let Some(name) = toks[i].ident() else {
            i += 1;
            continue;
        };
        if is_keyword(name) {
            i += 1;
            continue;
        }
        let next = toks.get(i + 1);
        if next.is_some_and(|t| t.is_punct('!'))
            && toks
                .get(i + 2)
                .is_some_and(|t| t.is_punct('(') || t.is_punct('[') || t.is_punct('{'))
        {
            macros.push(MacroSite {
                name: name.to_string(),
                line: toks[i].line,
            });
            i += 2;
            continue;
        }
        if next.is_some_and(|t| t.is_punct('(')) {
            // `fn name(` is a declaration, not a call.
            let declared = i > 0 && toks[i - 1].ident() == Some("fn");
            if !declared {
                let method = i > 0 && toks[i - 1].is_punct('.');
                calls.push(CallSite {
                    name: name.to_string(),
                    line: toks[i].line,
                    method,
                });
            }
        }
        i += 1;
    }
}

/// Parses one file's token stream. `in_test` is a predicate over token
/// indices (the engine's `#[cfg(test)]` region map).
pub fn parse(toks: &[Token], in_test: &dyn Fn(usize) -> bool) -> ParsedFile {
    let mut out = ParsedFile::default();
    // Module scope stack: (name, close-brace token index).
    let mut mod_stack: Vec<(String, usize)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        while mod_stack.last().is_some_and(|&(_, end)| i >= end) {
            mod_stack.pop();
        }
        let Some(id) = toks[i].ident() else {
            i += 1;
            continue;
        };
        match id {
            "use" => {
                let line = toks[i].line;
                let mut j = i + 1;
                let mut names = Vec::new();
                while j < toks.len() && !toks[j].is_punct(';') {
                    if let Some(seg) = toks[j].ident() {
                        if seg != "as" {
                            names.push(seg.to_string());
                        }
                    }
                    j += 1;
                }
                if let Some(first) = names.first().cloned() {
                    out.uses.push(UseEdge { line, first, names });
                }
                i = j + 1;
            }
            "mod" => {
                let name = toks.get(i + 1).and_then(|t| t.ident());
                match (name, body_open(toks, i + 1)) {
                    (Some(name), Some(open)) => {
                        let end = match_brace(toks, open);
                        out.mods.push((name.to_string(), toks[i].line));
                        mod_stack.push((name.to_string(), end));
                        i = open + 1;
                    }
                    _ => i += 1,
                }
            }
            "fn" => {
                let Some(name) = toks.get(i + 1).and_then(|t| t.ident()) else {
                    i += 1;
                    continue;
                };
                let Some(open) = body_open(toks, i + 2) else {
                    i += 2;
                    continue;
                };
                let close = match_brace(toks, open);
                let mut calls = Vec::new();
                let mut macros = Vec::new();
                scan_body(toks, open + 1, close, &mut calls, &mut macros);
                out.fns.push(FnDef {
                    name: name.to_string(),
                    line: toks[i].line,
                    module: mod_stack.iter().map(|(n, _)| n.clone()).collect(),
                    body: (open, close),
                    calls,
                    macros,
                    in_test: in_test(i),
                });
                // Continue scanning *inside* the body so nested fns
                // are recovered too (their calls are double-counted
                // into the outer fn — conservative by design).
                i += 2;
            }
            _ => i += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        let lexed = lex(src);
        parse(&lexed.tokens, &|_| false)
    }

    #[test]
    fn recovers_fns_calls_and_methods() {
        let p = parse_src(
            "fn step(&mut self) { self.helper(); compute(3); }\n\
             fn helper(&self) { queue.pop().unwrap(); }\n",
        );
        assert_eq!(p.fns.len(), 2);
        let step = &p.fns[0];
        assert_eq!(step.name, "step");
        let names: Vec<_> = step.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["helper", "compute"]);
        assert!(step.calls[0].method);
        assert!(!step.calls[1].method);
        let helper = &p.fns[1];
        let names: Vec<_> = helper.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["pop", "unwrap"]);
    }

    #[test]
    fn recovers_macros_not_as_calls() {
        let p = parse_src("fn f() { panic!(\"boom\"); vec![1]; assert_eq!(a, b); }");
        let macros: Vec<_> = p.fns[0].macros.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(macros, vec!["panic", "vec", "assert_eq"]);
        assert!(p.fns[0].calls.is_empty());
    }

    #[test]
    fn recovers_modules_and_use_edges() {
        let p = parse_src(
            "use t3_gpu::engine::{run_gemm, GemmEngine};\n\
             use crate::helper;\n\
             mod inner { fn f() { g(); } }\n\
             fn outer() {}\n",
        );
        assert_eq!(p.uses.len(), 2);
        assert_eq!(p.uses[0].first, "t3_gpu");
        assert!(p.uses[0].names.iter().any(|n| n == "run_gemm"));
        assert_eq!(p.mods, vec![("inner".to_string(), 3)]);
        assert_eq!(p.fns[0].module, vec!["inner".to_string()]);
        assert!(p.fns[1].module.is_empty());
    }

    #[test]
    fn fn_decl_is_not_a_call_and_paths_flatten() {
        let p = parse_src("fn f() { Fabric::run_schedule(x); t3_gpu::engine::run_gemm(); }");
        let names: Vec<_> = p.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["run_schedule", "run_gemm"]);
    }

    #[test]
    fn trait_methods_without_bodies_are_skipped() {
        let p = parse_src("trait T { fn a(&self); fn b(&self) { self.a(); } }");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "b");
    }

    #[test]
    fn test_regions_mark_fns() {
        let lexed = lex("fn prod() {} fn test_only() { x.unwrap(); }");
        // Mark everything past token 4 as test code.
        let p = parse(&lexed.tokens, &|i| i > 4);
        assert!(!p.fns[0].in_test);
        assert!(p.fns[1].in_test);
    }
}
