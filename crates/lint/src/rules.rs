//! The determinism & fidelity rules.
//!
//! Every rule works on the token/comment streams produced by
//! [`crate::lexer`] plus the region maps computed by
//! [`crate::engine`] (test spans, hot-path function bodies). Rules are
//! deliberately syntactic — this is a zero-dependency analyzer, not a
//! type checker — and the limits of each heuristic are documented on
//! the rule itself.

use crate::diag::Diagnostic;
use crate::engine::FileCtx;
use crate::lexer::TokKind;

/// Crates whose cycle math *is* the simulator's output: wall-clock,
/// OS entropy and float-derived counters are forbidden here. `bench`
/// is deliberately absent (its harness measures host wall time by
/// design) and so are `trace` and `lint` themselves. `runtime` is
/// in scope — its simulated cycles must come from job outputs, never
/// the host clock — with file-wide allows on the two modules that
/// legitimately measure host-side scheduler wall time. `prof` is in
/// scope: analytics re-derive cycle quantities from traces, and a
/// wall-clock read there would contaminate golden-pinned output.
/// `serve` is in scope: its arrival generator and engine produce the
/// request timelines behind the serving figures, so a host-clock read
/// there would make the tail-latency percentiles irreproducible.
/// `spec` is in scope: its point executor prices sweep rows in cycles,
/// so a wall-clock or float-truncated counter there would corrupt the
/// sweep figures the specs exist to reproduce.
pub const TIMING_CRATES: &[&str] = &[
    "sim",
    "gpu",
    "mem",
    "net",
    "core",
    "topo",
    "collectives",
    "models",
    "serve",
    "runtime",
    "prof",
    "spec",
];

/// Crates (and root dirs) whose iteration order reaches timing or
/// exported artifacts: the timing crates plus `trace` (exporters) and
/// the facade's `src/` and `tests/` (golden pipelines). `runtime`
/// qualifies through its merged stdout, cache entries and run
/// reports — all byte-exact artifacts; `prof` through its analysis,
/// collective-record, and gate-verdict renderings, all golden-pinned;
/// `serve` through the canonical request log and batch assembly —
/// hash-ordered admission would leak into every latency percentile.
/// `spec` qualifies through sweep enumeration: point order is the row
/// order of the emitted sweep table, so hash-map iteration anywhere in
/// axis expansion would scramble a byte-pinned artifact.
pub const ORDERED_OUTPUT_CRATES: &[&str] = &[
    "sim",
    "gpu",
    "mem",
    "net",
    "core",
    "topo",
    "collectives",
    "models",
    "trace",
    "serve",
    "runtime",
    "prof",
    "spec",
];

/// Static description of one rule: the `--list` line plus the longer
/// `--explain` material (rationale, an example violation, and the
/// sanctioned suppression form).
pub struct RuleInfo {
    pub name: &'static str,
    pub code: &'static str,
    pub summary: &'static str,
    /// Why the rule exists — what rots when it is violated.
    pub rationale: &'static str,
    /// A minimal example that fires the rule.
    pub example: &'static str,
    /// The sanctioned way to suppress a justified occurrence.
    pub suppression: &'static str,
}

/// The rule registry, in code order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "wall-clock",
        code: "T3L001",
        summary: "std::time::Instant / SystemTime / RandomState forbidden in timing crates \
                  (host time and OS entropy must never reach simulated cycles)",
        rationale: "Every headline figure rests on bit-identical simulated cycle counts. A host \
                    clock read or OS-seeded hash state anywhere in a timing crate lets wall-time \
                    jitter or process entropy shape simulated results, breaking run-to-run \
                    byte-identity and every pinned seed timing.",
        example: "    let t0 = std::time::Instant::now(); // in crates/gpu",
        suppression: "// t3-lint: allow(wall-clock) -- <why host time cannot reach cycles>\n\
                      (or allow-file for a module that legitimately measures host time)",
    },
    RuleInfo {
        name: "hash-iteration",
        code: "T3L002",
        summary: "HashMap/HashSet forbidden where iteration order can reach timing or exported \
                  output; use BTreeMap/BTreeSet",
        rationale: "std hash containers iterate in RandomState order, different every process. \
                    If that order decides an arbitration tie or the order of exported records, \
                    output differs run to run while every individual value looks correct.",
        example: "    let mut queues: HashMap<StreamId, Vec<Txn>> = HashMap::new();",
        suppression: "// t3-lint: allow(hash-iteration) -- <why iteration order is never observed>",
    },
    RuleInfo {
        name: "float-cycles",
        code: "T3L003",
        summary: "float expression cast into a cycle/byte counter (u64/Cycle/Bytes) without a \
                  justified allow directive",
        rationale: "Float accumulation order and rounding direction silently shape integer cycle \
                    counts: (a+b)+c != a+(b+c) in f64, and `as u64` truncates toward zero. A \
                    justified cast must state why the value is exact or the rounding direction \
                    is the documented semantic.",
        example: "    let cycles = (bytes as f64 / bw).ceil() as u64;",
        suppression: "// t3-lint: allow(float-cycles) -- <why the rounding is deterministic and \
                      direction-explicit>",
    },
    RuleInfo {
        name: "panic-hot-path",
        code: "T3L004",
        summary: "unwrap()/expect()/panic! inside a per-cycle step/tick/advance body",
        rationale: "step/tick/advance run once per simulated cycle. An abort there takes down \
                    the whole sweep (and, under the parallel runtime, poisons a worker) instead \
                    of surfacing a modeled error the harness can report.",
        example: "    fn step(&mut self) { let txn = self.queue.pop().unwrap(); }",
        suppression: "// t3-lint: allow(panic-hot-path) -- <why the invariant provably holds>",
    },
    RuleInfo {
        name: "naked-allow",
        code: "T3L005",
        summary: "#[allow(...)] or t3-lint: allow(...) without a `-- reason`, an unknown rule \
                  name, or a suppression that matches nothing",
        rationale: "Suppressions rot: an allow without a written reason cannot be audited, an \
                    allow naming an unknown rule guards nothing, and a stale allow hides that \
                    the violation it excused is gone. The escape hatch polices itself so the \
                    allowlist can only shrink to what is truly needed.",
        example: "    #[allow(dead_code)]  // no reason given",
        suppression: "This rule is not suppressible; write the `-- <reason>` (or `reason = \
                      \"...\"` attribute field) it demands, or delete the stale directive.",
    },
    RuleInfo {
        name: "panic-reachable",
        code: "T3L006",
        summary: "unwrap()/expect()/panic! transitively reachable from a hot-path entry \
                  (step*/tick*/advance*/run_* in a timing crate), any call depth",
        rationale: "T3L004 sees a panic typed directly into a step() body; it cannot see a hot \
                    path that calls a helper three frames deep that unwraps. The workspace call \
                    graph closes that hole: any abort reachable from a per-cycle or run_* entry \
                    in a timing crate can kill a sweep mid-experiment. The diagnostic prints \
                    the full call chain and anchors at the sink, so one justified suppression \
                    at a provably-safe unwrap covers every entry that reaches it.",
        example: "    fn step(&mut self) { self.drain(); }\n\
                  \x20   fn drain(&mut self) { self.queue.pop().unwrap(); } // reachable abort",
        suppression: "// t3-lint: allow(panic-reachable) -- <why the invariant provably holds>\n\
                      (placed at the sink line; or a lint-baseline.txt entry for pre-existing \
                      audited sites)",
    },
    RuleInfo {
        name: "wall-clock-reachable",
        code: "T3L007",
        summary: "Instant/SystemTime/RandomState transitively reachable from a timing-crate \
                  entry through helpers in non-timing crates",
        rationale: "T3L001 polices timing crates themselves, but a hot path may call into a \
                    crate outside the timing scope (trace, bench, the facade) whose helper \
                    reads the host clock — contaminating simulated results through the back \
                    door. Reachability closes the gap without forcing the whole workspace into \
                    wall-clock scope.",
        example: "    // crates/gpu: fn run_sweep() { t3_bench::now_marker(); }\n\
                  \x20   // crates/bench: pub fn now_marker() -> Instant { Instant::now() }",
        suppression: "// t3-lint: allow(wall-clock-reachable) -- <why host time cannot reach \
                      simulated cycles on this chain>",
    },
    RuleInfo {
        name: "unit-confusion",
        code: "T3L008",
        summary: "identifiers of different units (_cycles/_bytes/_permille/_tokens) combined \
                  with +, -, or a comparison, without an explicit cast",
        rationale: "The simulator's integers carry implicit units. Adding a byte count to a \
                    cycle count, or comparing tokens against permille, type-checks fine (both \
                    are u64) and produces numbers that look plausible — the class of bug no \
                    test catches until a figure drifts. Cross-unit * and / are legitimate \
                    (bytes/cycle = bandwidth) and exempt.",
        example: "    let deadline_cycles = start_cycles + payload_bytes; // bytes are not cycles",
        suppression: "// t3-lint: allow(unit-confusion) -- <why the mixed-unit arithmetic is \
                      intended>, or make the conversion explicit with `as`",
    },
    RuleInfo {
        name: "trace-schema",
        code: "T3L009",
        summary: "trace event/arg literals emitted by t3-trace must exactly match what \
                  t3-prof's parser consumes (names, arg keys, span-vs-instant cycle keys)",
        rationale: "The emit side (Event::name/visit_args/phase in t3-trace) and the consume \
                    side (t3-prof's make_record) are string-keyed and compiled independently: \
                    rename an arg key on one side and every trace round-trip silently drops or \
                    mis-reads a field, corrupting the BENCH_* gate inputs downstream. This rule \
                    cross-checks both sides (and the Event variants t3-prof analytics match on) \
                    at lint time.",
        example: "    // t3-trace:  f(\"comm_depth\", comm_depth);\n\
                  \x20   // t3-prof:   comm_depth: get(\"queue_comm_depth\")?,  // key mismatch",
        suppression: "// t3-lint: allow(trace-schema) -- <why the asymmetry is intended> \
                      (e.g. an arg emitted for human trace viewers only)",
    },
    RuleInfo {
        name: "next-event-drift",
        code: "T3L010",
        summary: "division or float math inside a `next_event`/`next_arrival` fast-forward \
                  predictor body in a timing crate",
        rationale: "The fast-forward engines leap `now` straight to the minimum predicted next \
                    event and replay the skipped cycles in closed form. A predictor stays sound \
                    only when it reuses the stepped path's exact integer arithmetic: a \
                    hand-rolled division (floor) or float round can predict a cycle *after* the \
                    real state change, and the leap then silently jumps over it — the stepped \
                    and fast-forward runs diverge with no panic, just wrong bytes. Predictors \
                    must derive events from stored integer deadlines (arrival cycles, `until` \
                    phases, `now + 1`), never re-derive them by dividing rates.",
        example: "    fn next_event(&self, now: Cycle) -> Option<Cycle> {\n\
                  \x20       Some(now + self.queued_bytes / self.chunk_bytes) // floor: too late\n\
                  \x20   }",
        suppression: "// t3-lint: allow(next-event-drift) -- <why the arithmetic cannot predict \
                      later than the true event cycle>",
    },
];

/// Looks up a rule by name.
pub fn rule_by_name(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

fn diag(
    ctx: &FileCtx,
    line: u32,
    rule: &'static str,
    anchor: String,
    message: String,
) -> Diagnostic {
    let info = rule_by_name(rule).expect("rule registered");
    Diagnostic {
        path: ctx.path.to_string(),
        line,
        rule: info.name,
        code: info.code,
        anchor,
        message,
    }
}

/// T3L001 — no wall-clock / OS entropy in timing crates.
///
/// Fires on any `Instant`, `SystemTime` or `RandomState` identifier in
/// a timing crate, including its unit tests: a test that consults host
/// time can mask a nondeterministic model.
pub fn check_wall_clock(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !ctx.crate_in(TIMING_CRATES) {
        return;
    }
    for tok in &ctx.lexed.tokens {
        if let Some(name @ ("Instant" | "SystemTime" | "RandomState")) = tok.ident() {
            out.push(diag(
                ctx,
                tok.line,
                "wall-clock",
                name.to_string(),
                format!("`{name}` leaks host time/entropy into a timing crate; derive everything from simulated cycles (t3-sim) or a seeded SplitMix64 (t3_sim::rng)"),
            ));
        }
    }
}

/// T3L002 — no hash-ordered containers where order is observable.
///
/// Fires on `HashMap`/`HashSet` identifiers in the timing crates,
/// `trace`, and the facade's `src/`+`tests/`. `BTreeMap`/`BTreeSet`
/// iterate in key order and are the workspace convention.
pub fn check_hash_iteration(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let in_scope = ctx.crate_in(ORDERED_OUTPUT_CRATES)
        || ctx.path.starts_with("src/")
        || ctx.path.starts_with("tests/");
    if !in_scope {
        return;
    }
    for tok in &ctx.lexed.tokens {
        if let Some(name @ ("HashMap" | "HashSet")) = tok.ident() {
            let fix = if name == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            out.push(diag(
                ctx,
                tok.line,
                "hash-iteration",
                name.to_string(),
                format!("`{name}` iteration order is randomized per-process (RandomState); use `{fix}` so arbitration ties and exported output stay bit-identical"),
            ));
        }
    }
}

/// Integer types that hold cycle/byte counters.
fn is_counter_type(name: &str) -> bool {
    matches!(name, "u64" | "u32" | "Cycle" | "Bytes")
}

/// Identifiers that mark a float-valued computation.
fn is_float_marker(name: &str) -> bool {
    matches!(
        name,
        "f32" | "f64" | "ceil" | "floor" | "round" | "powi" | "powf"
    )
}

/// T3L003 — no float math silently truncated into cycle counters.
///
/// Heuristic: within one statement (tokens between `;`/`,`/`{`/`}`
/// boundaries), an `as u64`/`as u32`/`as Cycle`/`as Bytes` cast whose
/// statement also contains earlier float evidence (an `f32`/`f64`
/// token, a float literal, or `ceil`/`floor`/`round`/`powi`/`powf`)
/// is flagged. Such sites must either restructure into integer math
/// or carry `// t3-lint: allow(float-cycles) -- <reason>` stating why
/// the rounding is deterministic and direction-explicit. Cross-
/// statement float flows (a float `let` later cast in another
/// statement) are out of reach for a syntactic pass and reviewed by
/// convention instead. Test code is skipped: float assertions on
/// ratios are the dominant *legitimate* use.
pub fn check_float_cycles(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !ctx.crate_in(TIMING_CRATES) || ctx.is_test_code {
        return;
    }
    let toks = &ctx.lexed.tokens;
    let mut stmt_start = 0usize;
    let mut i = 0usize;
    while i <= toks.len() {
        let boundary = i == toks.len()
            || matches!(
                toks[i].kind,
                TokKind::Punct(';')
                    | TokKind::Punct(',')
                    | TokKind::Punct('{')
                    | TokKind::Punct('}')
            );
        if boundary {
            scan_statement(ctx, &toks[stmt_start..i], stmt_start, out);
            stmt_start = i + 1;
        }
        i += 1;
    }
}

fn scan_statement(
    ctx: &FileCtx,
    stmt: &[crate::lexer::Token],
    stmt_offset: usize,
    out: &mut Vec<Diagnostic>,
) {
    let mut float_seen = false;
    let mut j = 0usize;
    while j < stmt.len() {
        let tok = &stmt[j];
        match &tok.kind {
            TokKind::Float => float_seen = true,
            TokKind::Ident(name) if is_float_marker(name) => float_seen = true,
            TokKind::Ident(name) if name == "as" && float_seen => {
                if let Some(next) = stmt.get(j + 1) {
                    if let Some(ty) = next.ident() {
                        if is_counter_type(ty) && !ctx.in_test_region(stmt_offset + j) {
                            out.push(diag(
                                ctx,
                                next.line,
                                "float-cycles",
                                ty.to_string(),
                                format!("float expression truncated into `{ty}`: accumulation order and rounding direction silently shape cycle counts; restructure as integer math or justify with `t3-lint: allow(float-cycles) -- <reason>`"),
                            ));
                        }
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
}

/// T3L004 — no panics in per-cycle hot paths.
///
/// Fires on `.unwrap(`, `.expect(` and `panic!` inside the body of
/// any `fn step*` / `fn tick*` / `fn advance*` outside test code:
/// these run once per simulated cycle, and an abort there takes the
/// whole sweep down instead of surfacing a modeled error.
pub fn check_panic_hot_path(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    for (lo, hi, fn_name) in ctx.hot_fns {
        for i in *lo..*hi {
            if ctx.in_test_region(i) {
                continue;
            }
            let tok = &toks[i];
            let Some(name) = tok.ident() else { continue };
            let flagged = match name {
                "unwrap" | "expect" => toks.get(i + 1).is_some_and(|t| t.is_punct('(')),
                "panic" => toks.get(i + 1).is_some_and(|t| t.is_punct('!')),
                _ => false,
            };
            if flagged {
                out.push(diag(
                    ctx,
                    tok.line,
                    "panic-hot-path",
                    format!("{fn_name}.{name}"),
                    format!("`{name}` in per-cycle `fn {fn_name}`: hot-path aborts kill the whole sweep; return a modeled error or make the invariant unrepresentable"),
                ));
            }
        }
    }
}

/// T3L010 — no re-derived arithmetic in fast-forward predictors.
///
/// Fires on any `/` or `%` operator, float literal, or float marker
/// (`f32`/`f64`/`ceil`/`floor`/`round`/`powi`/`powf`) inside the body
/// of a `fn next_event`/`next_arrival`/`*_next_event` in a timing
/// crate, outside test code. The stepped engines compute transfer and
/// stage durations once, at enqueue time, with direction-explicit
/// rounding; a predictor that divides or rounds again can disagree
/// with that stored deadline and return a too-late cycle — the one
/// failure mode the leap cannot detect, because it simply never steps
/// the cycle where the real event fired.
pub fn check_next_event_drift(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !ctx.crate_in(TIMING_CRATES) || ctx.is_test_code {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (lo, hi, fn_name) in ctx.next_event_fns {
        for (i, tok) in toks.iter().enumerate().take(*hi).skip(*lo) {
            if ctx.in_test_region(i) {
                continue;
            }
            let what = match &tok.kind {
                TokKind::Punct(c @ ('/' | '%')) => c.to_string(),
                TokKind::Float => "float literal".to_string(),
                TokKind::Ident(name) if is_float_marker(name) => name.clone(),
                _ => continue,
            };
            out.push(diag(
                ctx,
                tok.line,
                "next-event-drift",
                format!("{fn_name}.{what}"),
                format!("`{what}` inside fast-forward predictor `fn {fn_name}`: re-derived rounding can predict a too-late cycle and make the leap skip a real state change; return stored integer deadlines, or justify with `t3-lint: allow(next-event-drift) -- <reason>`"),
            ));
        }
    }
}

/// T3L005 (part 1) — every `#[allow(...)]`/`#![allow(...)]` attribute
/// must justify itself: either `reason = "..."` inside the attribute
/// or a comment containing `-- <reason>` on the same or previous line.
///
/// Directive hygiene (missing reasons, unknown rules, unused
/// suppressions in `t3-lint: allow(...)` comments) is the engine's
/// half of this rule, because it needs the post-suppression state.
pub fn check_naked_allow_attrs(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct('!')) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct('['))
                && toks.get(j + 1).and_then(|t| t.ident()) == Some("allow")
            {
                let line = toks[j + 1].line;
                let close = attr_end(toks, j);
                let has_reason_field = toks[j..close].iter().any(|t| t.ident() == Some("reason"));
                let has_reason_comment = ctx.reasoned_comment_near(line);
                if !has_reason_field && !has_reason_comment {
                    out.push(diag(
                        ctx,
                        line,
                        "naked-allow",
                        "attr".to_string(),
                        "`#[allow(...)]` without a written reason; append `reason = \"...\"` or a `// -- <reason>` comment on the same or previous line".to_string(),
                    ));
                }
                i = close;
                continue;
            }
        }
        i += 1;
    }
}

/// Token index one past the `]` closing the attribute whose `[` is at
/// `open`.
fn attr_end(toks: &[crate::lexer::Token], open: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}
