//! Hand-rolled SARIF 2.1.0 export — the static-analysis interchange
//! format CI dashboards and editors ingest. Like every serializer in
//! this workspace it is written by hand against the schema (no
//! dependencies) and byte-deterministic: rules in registry order,
//! results in the caller's (already sorted) order, no timestamps.
//!
//! Failing findings are `"level": "error"`; baselined ones are
//! emitted too, as `"level": "note"` with a `suppressions` entry, so
//! the grandfathered debt stays visible in every viewer without
//! failing the gate. Each result carries a `partialFingerprints`
//! entry built from the diagnostic's line-independent anchor, so
//! SARIF consumers can track findings across unrelated edits the same
//! way the baseline file does.

use crate::diag::{escape_json, Diagnostic};
use crate::rules::RULES;

fn result_json(d: &Diagnostic, baselined: bool, out: &mut String) {
    let rule_index = RULES
        .iter()
        .position(|r| r.code == d.code)
        .expect("diagnostic code registered");
    let level = if baselined { "note" } else { "error" };
    out.push_str(&format!(
        "      {{\n        \"ruleId\": \"{}\",\n        \"ruleIndex\": {},\n        \"level\": \"{}\",\n        \"message\": {{\"text\": \"{}\"}},\n        \"partialFingerprints\": {{\"t3LintAnchor/v1\": \"{}\"}},\n",
        d.code,
        rule_index,
        level,
        escape_json(&d.message),
        escape_json(&format!("{}:{}", d.path, d.anchor)),
    ));
    if baselined {
        out.push_str(
            "        \"suppressions\": [{\"kind\": \"external\", \"justification\": \"lint-baseline.txt entry\"}],\n",
        );
    }
    out.push_str(&format!(
        "        \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]\n      }}",
        escape_json(&d.path),
        d.line,
    ));
}

/// Renders one SARIF 2.1.0 document containing both failing and
/// baselined findings. Output is byte-identical for identical inputs.
pub fn to_sarif(failing: &[Diagnostic], baselined: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"version\": \"2.1.0\",\n  \"runs\": [{\n    \"tool\": {\"driver\": {\n      \"name\": \"t3-lint\",\n      \"informationUri\": \"https://example.invalid/t3-lint\",\n      \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "        {{\"id\": \"{}\", \"name\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \"fullDescription\": {{\"text\": \"{}\"}}, \"help\": {{\"text\": \"{}\"}}}}",
            r.code,
            r.name,
            escape_json(r.summary),
            escape_json(r.rationale),
            escape_json(r.suppression),
        ));
    }
    out.push_str(
        "\n      ]\n    }},\n    \"columnKind\": \"utf16CodeUnits\",\n    \"results\": [\n",
    );
    let mut first = true;
    for d in failing {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        result_json(d, false, &mut out);
    }
    for d in baselined {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        result_json(d, true, &mut out);
    }
    out.push_str("\n    ]\n  }]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(code: &'static str, anchor: &str) -> Diagnostic {
        Diagnostic {
            path: "crates/net/src/link.rs".to_string(),
            line: 7,
            rule: "panic-reachable",
            code,
            anchor: anchor.to_string(),
            message: "reachable \"abort\"".to_string(),
        }
    }

    #[test]
    fn sarif_shape_and_determinism() {
        let failing = vec![d("T3L006", "f.unwrap")];
        let baselined = vec![d("T3L006", "g.unwrap")];
        let a = to_sarif(&failing, &baselined);
        let b = to_sarif(&failing, &baselined);
        assert_eq!(a, b, "export must be byte-deterministic");
        assert!(a.contains("\"version\": \"2.1.0\""));
        assert!(a.contains("\"ruleId\": \"T3L006\""));
        assert!(a.contains("\"level\": \"error\""));
        assert!(a.contains("\"level\": \"note\""));
        assert!(a.contains("t3LintAnchor/v1"));
        assert!(a.contains("reachable \\\"abort\\\""));
        // one rules entry per registered rule
        assert_eq!(a.matches("\"shortDescription\"").count(), RULES.len());
    }

    #[test]
    fn empty_run_is_valid() {
        let a = to_sarif(&[], &[]);
        assert!(a.contains("\"results\": [\n\n    ]"));
    }
}
