//! t3-lint — a workspace-wide determinism & fidelity lint pass.
//!
//! Every headline number in this repository rests on bit-identical,
//! pinned cycle timings (the seed-timing pins in `t3-core::multigpu`
//! and `t3-topo::fabric`). The classic ways GPU simulators rot are
//! not caught by the compiler: wall-clock or OS entropy leaking into
//! timing paths, hash-map iteration order deciding arbitration ties,
//! or float accumulation order silently shifting cycle counts. This
//! crate enforces those invariants statically, with zero external
//! dependencies:
//!
//! | rule | code | what it forbids |
//! |------|------|-----------------|
//! | `wall-clock` | T3L001 | `Instant`/`SystemTime`/`RandomState` in timing crates |
//! | `hash-iteration` | T3L002 | `HashMap`/`HashSet` where order reaches timing or output |
//! | `float-cycles` | T3L003 | float expressions truncated into `u64`/`Cycle`/`Bytes` counters |
//! | `panic-hot-path` | T3L004 | `unwrap`/`expect`/`panic!` inside per-cycle `step`/`tick`/`advance` |
//! | `naked-allow` | T3L005 | any suppression without a written `-- reason` |
//!
//! Suppressions are comment directives with mandatory justification:
//!
//! ```text
//! let c = (bytes as f64 / bw).ceil() as Cycle; // t3-lint: allow(float-cycles) -- ceil of a rational is exact & direction-explicit
//! // t3-lint: allow-file(hash-iteration) -- this file never iterates the map
//! ```
//!
//! A directive covers its own line and the next; `allow-file` covers
//! the file. Directives that name unknown rules, omit the reason, or
//! suppress nothing are themselves diagnostics, so the allowlist can
//! only shrink to what is truly needed. Run `t3-lint --list` for the rule
//! table and `t3-lint --json` for machine-readable output; `ci.sh`
//! gates on a clean pass.

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use diag::{to_json, Diagnostic};
pub use engine::{lint_source, lint_workspace, workspace_files};
pub use rules::{RuleInfo, RULES};
