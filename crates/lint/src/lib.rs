//! t3-lint — a workspace-wide determinism & fidelity lint pass.
//!
//! Every headline number in this repository rests on bit-identical,
//! pinned cycle timings (the seed-timing pins in `t3-core::multigpu`
//! and `t3-topo::fabric`). The classic ways GPU simulators rot are
//! not caught by the compiler: wall-clock or OS entropy leaking into
//! timing paths, hash-map iteration order deciding arbitration ties,
//! float accumulation order silently shifting cycle counts, a helper
//! three frames below `step()` that unwraps, or a renamed trace-arg
//! key that desynchronizes the emit and consume sides of the trace
//! pipeline. This crate enforces those invariants statically, with
//! zero external dependencies:
//!
//! | rule | code | what it forbids |
//! |------|------|-----------------|
//! | `wall-clock` | T3L001 | `Instant`/`SystemTime`/`RandomState` in timing crates |
//! | `hash-iteration` | T3L002 | `HashMap`/`HashSet` where order reaches timing or output |
//! | `float-cycles` | T3L003 | float expressions truncated into `u64`/`Cycle`/`Bytes` counters |
//! | `panic-hot-path` | T3L004 | `unwrap`/`expect`/`panic!` inside per-cycle `step`/`tick`/`advance` |
//! | `naked-allow` | T3L005 | any suppression without a written `-- reason` |
//! | `panic-reachable` | T3L006 | aborts *transitively* reachable from hot-path entries (call graph) |
//! | `wall-clock-reachable` | T3L007 | host time reachable from timing entries through non-timing crates |
//! | `unit-confusion` | T3L008 | `_cycles`/`_bytes`/`_permille`/`_tokens` mixed via `+`/`-`/comparison |
//! | `trace-schema` | T3L009 | t3-trace emit side diverging from t3-prof's consume side |
//!
//! T3L001–T3L005 and T3L008 are token-local. T3L006/T3L007 run on a
//! workspace call graph built by a lightweight item parser
//! ([`parser`]) with conservative name-based resolution
//! ([`callgraph`]); T3L009 cross-checks string literals between
//! crates ([`schema`]).
//!
//! Suppressions are comment directives with mandatory justification:
//!
//! ```text
//! let c = (bytes as f64 / bw).ceil() as Cycle; // t3-lint: allow(float-cycles) -- ceil of a rational is exact & direction-explicit
//! // t3-lint: allow-file(hash-iteration) -- this file never iterates the map
//! ```
//!
//! A directive covers its own line and the next; `allow-file` covers
//! the file. Directives that name unknown rules, omit the reason, or
//! suppress nothing are themselves diagnostics, so the allowlist can
//! only shrink to what is truly needed. Pre-existing audited findings
//! can instead live in the checked-in [`baseline`] file
//! (`lint-baseline.txt`): still printed, no longer failing, policed
//! for staleness. Run `t3-lint --list` for the rule table, `t3-lint
//! --explain T3L006` for any rule's rationale and sanctioned
//! suppression, `--json` / `--sarif <path>` for machine-readable
//! output; `ci.sh` gates on a clean pass.

pub mod baseline;
pub mod callgraph;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod schema;
pub mod units;

pub use diag::{to_json, Diagnostic};
pub use engine::{lint_files, lint_source, lint_workspace, workspace_files, FileAnalysis};
pub use rules::{RuleInfo, RULES};
pub use sarif::to_sarif;
