//! T3L009 fixture, consume half (CLEAN): every arm consumes exactly
//! what the emit side writes, plus the phase-appropriate exporter
//! cycle keys (span events get cycle_start/cycle_end, counters get
//! cycle).

pub struct Record {
    pub stage: u64,
    pub lo: u64,
    pub hi: u64,
}

pub fn make_record(name: &str, get: impl Fn(&str) -> Option<u64>) -> Option<Record> {
    match name {
        "gemm_stage" => Some(Record {
            stage: get("stage")?,
            lo: get("cycle_start")?,
            hi: get("cycle_end")?,
        }),
        "queue_depth" => Some(Record {
            stage: get("depth")?,
            lo: get("cycle")?,
            hi: 0,
        }),
        _ => None,
    }
}
