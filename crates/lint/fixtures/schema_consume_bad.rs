//! T3L009 fixture, consume half (BAD): the `gemm_stage` arm asks for
//! `stage_id`, but the emit side writes `stage` — a renamed arg key
//! that would silently corrupt every trace round-trip. Lint at path
//! `crates/prof/src/load.rs` together with `schema_emit.rs`.

pub struct Record {
    pub stage: u64,
    pub depth: u64,
}

pub fn make_record(name: &str, get: impl Fn(&str) -> Option<u64>) -> Option<Record> {
    match name {
        "gemm_stage" => Some(Record {
            stage: get("stage_id")?,
            depth: get("cycle_start")?,
        }),
        "queue_depth" => Some(Record {
            stage: get("depth")?,
            depth: get("cycle")?,
        }),
        _ => None,
    }
}
