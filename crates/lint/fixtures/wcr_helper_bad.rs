//! T3L007 fixture, helper half: a non-timing crate reads the host
//! clock. Legal on its own (bench measures wall time by design) —
//! illegal when a timing-crate entry can reach it.

use std::time::Instant;

pub fn now_marker() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}
