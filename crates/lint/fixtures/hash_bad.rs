// Fixture: hash-ordered containers in an order-observable crate.
use std::collections::HashMap;

pub fn naughty() -> usize {
    let m: HashMap<u32, u32> = HashMap::new();
    let s = std::collections::HashSet::<u32>::new();
    m.len() + s.len()
}
