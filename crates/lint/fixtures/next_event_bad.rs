//! Fast-forward predictors that re-derive their deadlines instead of
//! returning the stepped path's stored ones. The floor division in
//! `next_event` predicts the *final* drain cycle while the stepped
//! engine frees queue space (and emits side effects) every cycle in
//! between; the float comparison in `device_next_event` rounds the
//! same way the wire model does not.

pub struct DrainQueue {
    pub queued_bytes: u64,
    pub chunk_bytes: u64,
}

impl DrainQueue {
    pub fn next_event(&self, now: u64) -> Option<u64> {
        if self.queued_bytes == 0 {
            return None;
        }
        Some(now + self.queued_bytes / self.chunk_bytes)
    }

    pub fn device_next_event(&self, now: u64) -> Option<u64> {
        if (self.queued_bytes as f64) < 1.5 {
            return None;
        }
        self.next_event(now)
    }
}
