//! T3L006 fixture: the abort is not IN the hot entry (T3L004 cannot
//! see it) but two frames below it.

pub struct Sweep {
    queue: Vec<u64>,
}

impl Sweep {
    pub fn run_sweep(&mut self) -> u64 {
        self.drain_all()
    }

    fn drain_all(&mut self) -> u64 {
        let mut total = 0;
        while !self.queue.is_empty() {
            total += self.take_one();
        }
        total
    }

    fn take_one(&mut self) -> u64 {
        self.queue.pop().unwrap()
    }
}
