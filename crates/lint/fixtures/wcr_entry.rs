//! T3L007 fixture, entry half: a timing-crate `run_*` entry that
//! calls a helper living OUTSIDE the timing scope (where T3L001 is
//! silent). Lint together with `wcr_helper_bad.rs`.

use t3_bench::host::now_marker;

pub fn run_probe() -> u64 {
    now_marker()
}
