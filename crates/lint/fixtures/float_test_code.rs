// Fixture: float truncation inside #[cfg(test)] is out of scope —
// assertions on ratios are the dominant legitimate use.
pub fn shipped(x: u64) -> u64 {
    x + 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn ratio_check() {
        let ideal = (1000 as f64 / 3.0).ceil() as u64;
        assert!(ideal > 0);
    }
}
