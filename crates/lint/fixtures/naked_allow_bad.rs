// Fixture: every way a suppression can fail to justify itself.
#[allow(dead_code)]
fn unjustified_attr() {}

// t3-lint: allow(float-cycles)
fn directive_without_reason() {}

// t3-lint: allow(no-such-rule) -- the rule name is wrong
fn unknown_rule() {}

// t3-lint: allow(wall-clock) -- nothing on this line or the next uses wall-clock
fn stale_directive() {}
