// Fixture: panics outside hot paths are fine (constructors may
// assert), and hot paths that return modeled errors are fine. The
// unwrap inside the #[cfg(test)] mod's step helper is also exempt.
pub struct Engine {
    queue: Vec<u64>,
}

impl Engine {
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "capacity must be positive");
        Engine { queue: Vec::new() }
    }

    pub fn step(&mut self, now: u64) -> Option<u64> {
        let head = self.queue.last()?;
        Some(now + head)
    }

    pub fn drain(&mut self) -> u64 {
        self.queue.pop().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn step_in_tests_may_unwrap() {
        fn step(v: &[u64]) -> u64 {
            *v.last().unwrap()
        }
        assert_eq!(step(&[3]), 3);
    }
}
