//! T3L008 fixture: cross-unit +, -, and comparison — each
//! type-checks (all u64) and silently corrupts whichever counter
//! receives it.

pub fn mix(start_cycles: u64, payload_bytes: u64, budget_tokens: u64, load_permille: u64) -> u64 {
    let deadline_cycles = start_cycles + payload_bytes;
    let drift = budget_tokens - load_permille;
    if payload_bytes < budget_tokens {
        deadline_cycles + drift
    } else {
        deadline_cycles
    }
}
