// t3-lint: allow-file(wall-clock) -- fixture: host-side scheduler timing; never reaches simulated cycles
use std::time::Instant;

pub fn tolerated() -> u128 {
    Instant::now().elapsed().as_nanos()
}
