// Fixture: both accepted justification forms for attributes.
#[allow(dead_code)] // -- fixture exercising the comment-reason form
fn comment_reason() {}

#[allow(dead_code, reason = "fixture exercising the attribute-reason form")]
fn attribute_reason() {}
