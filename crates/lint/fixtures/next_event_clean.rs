//! A sound fast-forward predictor: events come from stored integer
//! deadlines (arrival cycles, `now + 1`), never re-derived rates.
//! Division elsewhere in the file is legal — only predictor bodies
//! are in scope.

pub struct Wire {
    pub arrivals: Vec<u64>,
    pub queued_bytes: u64,
}

impl Wire {
    pub fn next_event(&self, now: u64) -> Option<u64> {
        self.arrivals
            .iter()
            .copied()
            .map(|a| a.max(now + 1))
            .min()
    }

    pub fn occupancy_permille(&self, capacity_bytes: u64) -> u64 {
        self.queued_bytes * 1000 / capacity_bytes
    }
}
