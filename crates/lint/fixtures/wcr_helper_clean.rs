//! T3L007 clean twin: the helper derives its marker from a seeded
//! counter, so the reachable chain carries no host time.

pub fn now_marker() -> u64 {
    static mut COUNTER: u64 = 0;
    // Fixture-only: a deterministic monotone source stands in for the
    // simulated clock.
    unsafe {
        COUNTER += 1;
        COUNTER
    }
}
