//! A justified suppression: the division is exact by construction,
//! and the directive says why.

pub struct DrainQueue {
    pub queued_bytes: u64,
    pub chunk_bytes: u64,
}

impl DrainQueue {
    pub fn next_event(&self, now: u64) -> Option<u64> {
        if self.queued_bytes == 0 {
            return None;
        }
        // t3-lint: allow(next-event-drift) -- both counters are whole cache lines, so chunk_bytes divides queued_bytes exactly and the quotient is the exact drain cycle
        Some(now + self.queued_bytes / self.chunk_bytes)
    }
}
