// Fixture: both nondeterminism classes an analytics crate could
// smuggle in — a wall-clock read feeding a reported number, and a
// hash map whose iteration order reaches rendered output.
use std::collections::HashMap;
use std::time::Instant;

pub fn analyze() -> String {
    let started = Instant::now();
    let mut per_chunk: HashMap<u64, u64> = HashMap::new();
    per_chunk.insert(0, started.elapsed().as_nanos() as u64);
    per_chunk
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",")
}
