// Fixture: the same truncations, each carrying a justified directive
// (trailing on the site, and standalone on the line above).
pub fn tolerated(bytes: u64, bw: f64) -> u64 {
    let cycles = (bytes as f64 / bw).ceil() as u64; // t3-lint: allow(float-cycles) -- single ceil of a rational; direction explicit
    // t3-lint: allow(float-cycles) -- fixture: scaling factor is a config constant
    let more = (bytes as f64 * 1.5) as u32;
    cycles + more as u64
}
