// Fixture: cycle math derived purely from simulated time; the words
// "instant" and "system time" in comments and strings must not fire.
pub fn fine(now: u64) -> u64 {
    let msg = "Instant and SystemTime in a string are data, not code";
    now + msg.len() as u64
}
