// Fixture: float math truncated into cycle/byte counters.
pub fn naughty(bytes: u64, bw: f64) -> u64 {
    let cycles = (bytes as f64 / bw).ceil() as u64;
    let more = (bytes as f64 * 1.5) as u32;
    cycles + more as u64
}
