// Fixture: the nondeterminism a spec frontend could smuggle in — a
// sweep expander that collects axes into a HashMap and enumerates
// points by iterating it. Point order is the row order of the emitted
// sweep table, so hash-ordered expansion would scramble a byte-pinned
// artifact run to run.
use std::collections::HashMap;

pub fn expand_points(axes: &HashMap<String, Vec<u64>>) -> Vec<(String, u64)> {
    let mut points = Vec::new();
    for (key, values) in axes.iter() {
        for &v in values {
            points.push((key.clone(), v));
        }
    }
    points
}
