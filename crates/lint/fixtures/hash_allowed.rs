// t3-lint: allow-file(hash-iteration) -- fixture: counts only, never iterated; order cannot escape
use std::collections::HashMap;

pub fn tolerated() -> usize {
    HashMap::<u32, u32>::new().len()
}
