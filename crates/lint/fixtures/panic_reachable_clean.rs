//! T3L006 clean twin: the helper surfaces a modeled error instead of
//! aborting, and test-only code may panic freely.

pub struct Sweep {
    queue: Vec<u64>,
}

impl Sweep {
    pub fn run_sweep(&mut self) -> Result<u64, String> {
        self.drain_all()
    }

    fn drain_all(&mut self) -> Result<u64, String> {
        let mut total = 0;
        while !self.queue.is_empty() {
            total += self.take_one().ok_or("queue drained concurrently")?;
        }
        Ok(total)
    }

    fn take_one(&mut self) -> Option<u64> {
        self.queue.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains() {
        let mut s = Sweep { queue: vec![1, 2] };
        assert_eq!(s.run_sweep().unwrap(), 3);
    }
}
