// Fixture: every forbidden wall-clock/entropy identifier, one per line.
use std::time::Instant;

pub fn naughty() -> u64 {
    let _t = std::time::SystemTime::now();
    let _s = std::collections::hash_map::RandomState::new();
    0
}
