//! T3L009 fixture, emit half: a miniature of t3-trace's `event.rs` —
//! `name()` / `visit_args()` / `phase()` define the wire schema.
//! Lint at path `crates/trace/src/event.rs` together with one of the
//! consume fixtures.

pub enum Event {
    GemmStage { stage: u64, start: u64, end: u64 },
    QueueDepth { depth: u64, at: u64 },
}

pub enum Phase {
    Span { start: u64, end: u64 },
    Counter { at: u64 },
}

impl Event {
    pub fn name(&self) -> &'static str {
        match self {
            Event::GemmStage { .. } => "gemm_stage",
            Event::QueueDepth { .. } => "queue_depth",
        }
    }

    pub fn visit_args(&self, f: &mut dyn FnMut(&'static str, u64)) {
        match *self {
            Event::GemmStage { stage, .. } => {
                f("stage", stage);
            }
            Event::QueueDepth { depth, .. } => {
                f("depth", depth);
            }
        }
    }

    pub fn phase(&self) -> Phase {
        match *self {
            Event::GemmStage { start, end, .. } => Phase::Span { start, end },
            Event::QueueDepth { at, .. } => Phase::Counter { at },
        }
    }
}
