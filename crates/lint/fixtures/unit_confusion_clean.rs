//! T3L008 clean twin: same-unit arithmetic, cross-unit ratios
//! (legitimate — bytes per cycle is bandwidth), and an explicit cast
//! marking the one intended conversion.

pub fn combine(start_cycles: u64, more_cycles: u64, payload_bytes: u64, window_cycles: u64) -> u64 {
    let total_cycles = start_cycles + more_cycles;
    let bandwidth = payload_bytes / window_cycles;
    let adjusted = total_cycles + payload_bytes as u64;
    adjusted + bandwidth
}

pub fn same_unit_compare(a_bytes: u64, b_bytes: u64) -> bool {
    a_bytes < b_bytes
}
