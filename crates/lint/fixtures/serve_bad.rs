// Fixture: the two nondeterminism classes a serving subsystem could
// smuggle in — a wall-clock read inside the request-arrival
// generator (arrival times must come from the seeded RNG alone), and
// a hash-ordered container in batch assembly whose iteration order
// would leak into admission order and every latency percentile.
use std::collections::HashMap;
use std::time::Instant;

pub fn generate_arrivals(n: u64) -> Vec<u64> {
    let epoch = Instant::now();
    (0..n)
        .map(|_| epoch.elapsed().as_nanos() as u64)
        .collect()
}

pub fn assemble_batch(waiting: &HashMap<u64, u64>, budget: u64) -> Vec<u64> {
    let mut batch = Vec::new();
    let mut tokens = 0;
    for (&id, &prompt) in waiting.iter() {
        if tokens + prompt > budget {
            break;
        }
        tokens += prompt;
        batch.push(id);
    }
    batch
}
