// Fixture: aborts inside per-cycle hot paths.
pub struct Engine {
    queue: Vec<u64>,
}

impl Engine {
    pub fn step(&mut self, now: u64) -> u64 {
        let head = self.queue.last().unwrap();
        now + head
    }

    pub fn tick(&mut self) {
        let _v = self.queue.pop().expect("queue drained early");
    }

    pub fn advance_traced(&mut self, now: u64) {
        if now == 0 {
            panic!("time went backwards");
        }
    }
}
