//! Fixture-based self-tests: each rule must fire on its violating
//! fixture and stay silent on the suppressed/clean one, and the real
//! workspace must be clean (the CI gate's twin).

use std::path::Path;

use t3_lint::{lint_source, to_json, Diagnostic};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

fn rules_fired(diags: &[Diagnostic]) -> Vec<&'static str> {
    let mut rules: Vec<_> = diags.iter().map(|d| d.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn wall_clock_fires_in_timing_crate() {
    let diags = lint_source("crates/net/src/fx.rs", &fixture("wall_clock_bad.rs"));
    assert_eq!(rules_fired(&diags), vec!["wall-clock"]);
    assert_eq!(
        diags.len(),
        3,
        "Instant, SystemTime, RandomState: {diags:?}"
    );
    assert_eq!(diags[0].line, 2);
    assert_eq!(diags[0].code, "T3L001");
}

#[test]
fn wall_clock_fires_in_runtime_crate() {
    // The runtime schedules simulator jobs and is a timing crate: its
    // simulated cycles must come from job outputs, never the host
    // clock...
    let diags = lint_source("crates/runtime/src/fx.rs", &fixture("wall_clock_bad.rs"));
    assert_eq!(rules_fired(&diags), vec!["wall-clock"]);
    assert_eq!(diags.len(), 3, "{diags:?}");
    // ...and its justified file-wide allows (scheduler wall-time
    // measurement) suppress cleanly without tripping naked-allow.
    let diags = lint_source(
        "crates/runtime/src/fx.rs",
        &fixture("wall_clock_allowed.rs"),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn prof_crate_is_in_both_scopes() {
    // The analytics crate renders golden-pinned output: a wall-clock
    // read or a hash-ordered iteration there is a lint failure.
    let diags = lint_source("crates/prof/src/fx.rs", &fixture("prof_bad.rs"));
    let mut rules: Vec<_> = diags.iter().map(|d| d.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    assert_eq!(rules, vec!["hash-iteration", "wall-clock"], "{diags:?}");
    let diags = lint_source("crates/prof/src/fx.rs", &fixture("wall_clock_bad.rs"));
    assert_eq!(rules_fired(&diags), vec!["wall-clock"]);
    let diags = lint_source("crates/prof/src/fx.rs", &fixture("hash_bad.rs"));
    assert_eq!(rules_fired(&diags), vec!["hash-iteration"]);
}

#[test]
fn serve_crate_is_in_both_scopes() {
    // The serving subsystem's arrival generator and batch assembly
    // feed the tail-latency figures: host time or hash order there
    // would make the request log and percentiles irreproducible.
    let diags = lint_source("crates/serve/src/fx.rs", &fixture("serve_bad.rs"));
    let mut rules: Vec<_> = diags.iter().map(|d| d.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    assert_eq!(rules, vec!["hash-iteration", "wall-clock"], "{diags:?}");
    let diags = lint_source("crates/serve/src/fx.rs", &fixture("wall_clock_bad.rs"));
    assert_eq!(rules_fired(&diags), vec!["wall-clock"]);
    let diags = lint_source("crates/serve/src/fx.rs", &fixture("hash_bad.rs"));
    assert_eq!(rules_fired(&diags), vec!["hash-iteration"]);
}

#[test]
fn spec_crate_is_in_both_scopes() {
    // Sweep enumeration order is the row order of the emitted table:
    // a hash-ordered axis map would scramble nothing visibly in one
    // run yet break byte-identity across runs, so T3L002 must fire.
    let diags = lint_source("crates/spec/src/fx.rs", &fixture("spec_bad.rs"));
    assert_eq!(rules_fired(&diags), vec!["hash-iteration"], "{diags:?}");
    // The point executor prices rows in simulated cycles, so the
    // timing rules cover the crate too.
    let diags = lint_source("crates/spec/src/fx.rs", &fixture("wall_clock_bad.rs"));
    assert_eq!(rules_fired(&diags), vec!["wall-clock"]);
    let diags = lint_source("crates/spec/src/fx.rs", &fixture("float_bad.rs"));
    assert_eq!(rules_fired(&diags), vec!["float-cycles"]);
}

#[test]
fn wall_clock_out_of_scope_in_bench_crate() {
    // The bench harness measures host wall time by design.
    let diags = lint_source("crates/bench/src/fx.rs", &fixture("wall_clock_bad.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn wall_clock_silent_on_clean_file() {
    let diags = lint_source("crates/sim/src/fx.rs", &fixture("wall_clock_clean.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn hash_iteration_fires_where_order_is_observable() {
    for path in [
        "crates/mem/src/fx.rs",
        "crates/trace/src/fx.rs",
        "tests/fx.rs",
    ] {
        let diags = lint_source(path, &fixture("hash_bad.rs"));
        assert_eq!(rules_fired(&diags), vec!["hash-iteration"], "at {path}");
        assert_eq!(
            diags.len(),
            4,
            "three HashMap tokens + one HashSet at {path}"
        );
    }
}

#[test]
fn hash_iteration_out_of_scope_in_examples() {
    let diags = lint_source("examples/fx.rs", &fixture("hash_bad.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn hash_iteration_file_directive_honoured() {
    let diags = lint_source("crates/mem/src/fx.rs", &fixture("hash_allowed.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn float_cycles_fires_in_timing_crate() {
    let diags = lint_source("crates/gpu/src/fx.rs", &fixture("float_bad.rs"));
    assert_eq!(rules_fired(&diags), vec!["float-cycles"]);
    assert_eq!(diags.len(), 2, "u64 and u32 truncations: {diags:?}");
    assert_eq!(diags[0].line, 3);
    assert_eq!(diags[1].line, 4);
}

#[test]
fn float_cycles_suppressions_honoured_both_placements() {
    let diags = lint_source("crates/gpu/src/fx.rs", &fixture("float_allowed.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn float_cycles_skips_test_code() {
    // Integration-test files are out of scope entirely...
    let diags = lint_source("crates/gpu/tests/fx.rs", &fixture("float_bad.rs"));
    assert!(diags.is_empty(), "{diags:?}");
    // ...and so are #[cfg(test)] modules inside a timing crate.
    let diags = lint_source("crates/gpu/src/fx.rs", &fixture("float_test_code.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn panic_hot_path_fires_in_step_tick_advance() {
    let diags = lint_source("crates/mem/src/fx.rs", &fixture("panic_bad.rs"));
    assert_eq!(rules_fired(&diags), vec!["panic-hot-path"]);
    let msgs: Vec<_> = diags.iter().map(|d| d.message.as_str()).collect();
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(msgs[0].contains("`unwrap` in per-cycle `fn step`"));
    assert!(msgs[1].contains("`expect` in per-cycle `fn tick`"));
    assert!(msgs[2].contains("`panic` in per-cycle `fn advance_traced`"));
}

#[test]
fn panic_hot_path_silent_on_clean_engine() {
    let diags = lint_source("crates/mem/src/fx.rs", &fixture("panic_clean.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn naked_allow_catches_every_hygiene_failure() {
    let diags = lint_source("crates/topo/src/fx.rs", &fixture("naked_allow_bad.rs"));
    assert_eq!(rules_fired(&diags), vec!["naked-allow"]);
    // The reasonless directive is both naked and stale: 5 findings.
    assert_eq!(diags.len(), 5, "{diags:?}");
    assert!(
        diags[0].message.contains("without a written reason"),
        "{diags:?}"
    );
    assert!(
        diags[1].message.contains("without a `-- <reason>`"),
        "{diags:?}"
    );
    assert!(diags[2].message.contains("suppresses nothing"), "{diags:?}");
    assert!(diags[3].message.contains("unknown rule"), "{diags:?}");
    assert!(diags[4].message.contains("suppresses nothing"), "{diags:?}");
}

#[test]
fn naked_allow_accepts_both_reason_forms() {
    let diags = lint_source("crates/topo/src/fx.rs", &fixture("naked_allow_ok.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn json_output_is_stable_and_parseable_shaped() {
    let diags = lint_source("crates/net/src/fx.rs", &fixture("wall_clock_bad.rs"));
    let json = to_json(&diags);
    assert!(json.starts_with("[\n"));
    assert!(json.trim_end().ends_with(']'));
    assert_eq!(json.matches("\"rule\": \"wall-clock\"").count(), 3);
    assert!(json.contains("\"file\": \"crates/net/src/fx.rs\""));
}

// ---------------------------------------------------------------
// Call-graph rules (T3L006 / T3L007)
// ---------------------------------------------------------------

#[test]
fn panic_reachable_fires_through_helper_chain() {
    let diags = lint_source("crates/gpu/src/fx.rs", &fixture("panic_reachable_bad.rs"));
    assert_eq!(rules_fired(&diags), vec!["panic-reachable"], "{diags:?}");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "T3L006");
    assert_eq!(diags[0].anchor, "take_one.unwrap");
    // The full chain from the entry is printed in the diagnostic.
    assert!(
        diags[0]
            .message
            .contains("run_sweep -> drain_all -> take_one"),
        "{}",
        diags[0].message
    );
}

#[test]
fn panic_reachable_silent_on_modeled_errors_and_test_code() {
    let diags = lint_source("crates/gpu/src/fx.rs", &fixture("panic_reachable_clean.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn wall_clock_reachable_crosses_crate_boundaries() {
    // The helper lives in `bench`, where T3L001 is deliberately
    // silent; reachability from a timing-crate entry still flags it.
    let diags = t3_lint::lint_files(&[
        (
            "crates/gpu/src/probe.rs".to_string(),
            fixture("wcr_entry.rs"),
        ),
        (
            "crates/bench/src/host.rs".to_string(),
            fixture("wcr_helper_bad.rs"),
        ),
    ]);
    assert_eq!(
        rules_fired(&diags),
        vec!["wall-clock-reachable"],
        "{diags:?}"
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "T3L007");
    assert_eq!(diags[0].path, "crates/bench/src/host.rs");
    assert_eq!(diags[0].anchor, "now_marker.Instant");
    assert!(diags[0].message.contains("run_probe -> now_marker"));
}

#[test]
fn wall_clock_reachable_silent_when_chain_is_deterministic() {
    let diags = t3_lint::lint_files(&[
        (
            "crates/gpu/src/probe.rs".to_string(),
            fixture("wcr_entry.rs"),
        ),
        (
            "crates/bench/src/host.rs".to_string(),
            fixture("wcr_helper_clean.rs"),
        ),
    ]);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------
// Units flow (T3L008)
// ---------------------------------------------------------------

#[test]
fn unit_confusion_fires_on_cross_unit_arithmetic() {
    let diags = lint_source("crates/net/src/fx.rs", &fixture("unit_confusion_bad.rs"));
    assert_eq!(rules_fired(&diags), vec!["unit-confusion"], "{diags:?}");
    let anchors: Vec<&str> = diags.iter().map(|d| d.anchor.as_str()).collect();
    assert_eq!(
        anchors,
        vec!["cycles+bytes", "tokens-permille", "bytes<tokens"],
        "{diags:?}"
    );
}

#[test]
fn unit_confusion_exempts_ratios_casts_and_same_unit() {
    let diags = lint_source("crates/net/src/fx.rs", &fixture("unit_confusion_clean.rs"));
    assert!(diags.is_empty(), "{diags:?}");
    // Out of scope entirely in non-timing crates.
    let diags = lint_source("crates/bench/src/fx.rs", &fixture("unit_confusion_bad.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------
// Trace schema (T3L009)
// ---------------------------------------------------------------

#[test]
fn trace_schema_catches_renamed_arg_key() {
    let diags = t3_lint::lint_files(&[
        (
            "crates/trace/src/event.rs".to_string(),
            fixture("schema_emit.rs"),
        ),
        (
            "crates/prof/src/load.rs".to_string(),
            fixture("schema_consume_bad.rs"),
        ),
    ]);
    assert_eq!(rules_fired(&diags), vec!["trace-schema"], "{diags:?}");
    assert_eq!(diags.len(), 2, "{diags:?}");
    // The consume side asks for a key the emit side never writes...
    assert_eq!(diags[0].path, "crates/prof/src/load.rs");
    assert_eq!(diags[0].anchor, "gemm_stage.stage_id");
    // ...and the emitted key is, symmetrically, never consumed.
    assert_eq!(diags[1].path, "crates/trace/src/event.rs");
    assert_eq!(diags[1].anchor, "gemm_stage.stage");
}

#[test]
fn trace_schema_clean_when_sides_agree() {
    let diags = t3_lint::lint_files(&[
        (
            "crates/trace/src/event.rs".to_string(),
            fixture("schema_emit.rs"),
        ),
        (
            "crates/prof/src/load.rs".to_string(),
            fixture("schema_consume_clean.rs"),
        ),
    ]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn trace_schema_silent_without_both_anchor_files() {
    // A single-file lint (fixtures, editors) must not fire the rule.
    let diags = lint_source("crates/prof/src/load.rs", &fixture("schema_consume_bad.rs"));
    assert!(diags.is_empty(), "{diags:?}");
    let diags = lint_source("crates/trace/src/event.rs", &fixture("schema_emit.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------
// Fast-forward predictors (T3L010)
// ---------------------------------------------------------------

#[test]
fn next_event_drift_fires_on_rederived_arithmetic() {
    let diags = lint_source("crates/net/src/fx.rs", &fixture("next_event_bad.rs"));
    assert_eq!(rules_fired(&diags), vec!["next-event-drift"], "{diags:?}");
    // One floor division in next_event, an `f64` cast and a float
    // literal in device_next_event.
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert_eq!(diags[0].code, "T3L010");
    assert_eq!(diags[0].anchor, "next_event./");
    let anchors: Vec<&str> = diags.iter().map(|d| d.anchor.as_str()).collect();
    assert!(
        anchors.contains(&"device_next_event.f64")
            && anchors.contains(&"device_next_event.float literal"),
        "{diags:?}"
    );
}

#[test]
fn next_event_drift_scopes_to_predictor_bodies_and_timing_crates() {
    // Division outside the predictor body is legal...
    let diags = lint_source("crates/net/src/fx.rs", &fixture("next_event_clean.rs"));
    assert!(diags.is_empty(), "{diags:?}");
    // ...and so is the whole file outside the timing-crate scope.
    let diags = lint_source("crates/bench/src/fx.rs", &fixture("next_event_bad.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn next_event_drift_suppression_honoured() {
    let diags = lint_source("crates/net/src/fx.rs", &fixture("next_event_allowed.rs"));
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------
// Registry, workspace gate, determinism
// ---------------------------------------------------------------

#[test]
fn every_rule_has_full_explain_material() {
    assert_eq!(t3_lint::RULES.len(), 10, "ten rules T3L001..T3L010");
    for r in t3_lint::RULES {
        assert!(!r.summary.is_empty(), "{} summary", r.code);
        assert!(!r.rationale.is_empty(), "{} rationale", r.code);
        assert!(!r.example.is_empty(), "{} example", r.code);
        assert!(!r.suppression.is_empty(), "{} suppression", r.code);
    }
}

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf()
}

fn apply_baseline(root: &Path, diags: Vec<Diagnostic>) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    let text = std::fs::read_to_string(root.join("lint-baseline.txt"))
        .expect("checked-in lint-baseline.txt");
    let mut bad = Vec::new();
    let entries = t3_lint::baseline::parse(&text, &mut bad);
    let applied = t3_lint::baseline::apply(diags, &entries, &bad, "lint-baseline.txt");
    (applied.failing, applied.baselined)
}

/// The CI gate's twin: the actual workspace must stay clean modulo
/// the checked-in baseline, with every suppression justified and
/// every baseline entry still matching a live finding. Fails here =
/// fails `./ci.sh`.
#[test]
fn workspace_is_clean() {
    let root = workspace_root();
    let diags = t3_lint::lint_workspace(&root).expect("walk workspace");
    let (failing, _baselined) = apply_baseline(&root, diags);
    assert!(
        failing.is_empty(),
        "t3-lint violations in the workspace:\n{}",
        failing
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Double-run byte-identity: the lint holds itself to the invariant
/// it enforces — JSON and SARIF artifacts are byte-identical across
/// runs over the same tree.
#[test]
fn json_and_sarif_output_byte_identical_across_runs() {
    let root = workspace_root();
    let run_a = t3_lint::lint_workspace(&root).expect("walk workspace");
    let run_b = t3_lint::lint_workspace(&root).expect("walk workspace");
    assert_eq!(to_json(&run_a), to_json(&run_b));
    let (fail_a, base_a) = apply_baseline(&root, run_a);
    let (fail_b, base_b) = apply_baseline(&root, run_b);
    let sarif_a = t3_lint::to_sarif(&fail_a, &base_a);
    let sarif_b = t3_lint::to_sarif(&fail_b, &base_b);
    assert_eq!(sarif_a, sarif_b, "SARIF export must be byte-identical");
    assert!(sarif_a.contains("\"version\": \"2.1.0\""));
}
