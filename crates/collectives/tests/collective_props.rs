//! Property tests for the functional collectives: all implementations
//! agree with the mathematical definitions for arbitrary device
//! counts, lengths, and data, generated from a seeded deterministic
//! PRNG.

#![allow(clippy::needless_range_loop)] // -- index loops mirror the mathematical definitions under test

use t3_collectives::cluster::Cluster;
use t3_collectives::direct::{all_to_all, direct_reduce_scatter};
use t3_collectives::gemm::{matmul, matmul_tile, scatter_tile};
use t3_collectives::reference::{all_to_all_expected, assert_close, elementwise_sum};
use t3_collectives::ring::{ring_all_reduce, ring_reduce_scatter};
use t3_net::ring::{chunk_bounds, Ring};
use t3_sim::rng::SplitMix64;

fn random_buffers(rng: &mut SplitMix64, n: usize, len: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|_| (0..len).map(|_| rng.gen_f32(100.0)).collect())
        .collect()
}

/// Ring all-reduce == element-wise sum, on every device.
#[test]
fn ring_all_reduce_is_sum() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::new(seed);
        let n = rng.gen_range_usize(2, 10);
        let len = rng.gen_range_usize(1, 120);
        let bufs = random_buffers(&mut rng, n, len);
        let expected = elementwise_sum(&bufs);
        let mut cluster = Cluster::from_buffers(bufs);
        ring_all_reduce(&mut cluster);
        for d in 0..cluster.num_devices() {
            assert_close(cluster.device(d).as_slice(), &expected, 1e-3);
        }
    }
}

/// Ring-RS and direct-RS agree on every owned chunk (up to their
/// different ownership conventions).
#[test]
fn ring_and_direct_rs_agree() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::new(seed);
        let n = rng.gen_range_usize(2, 9);
        let len = rng.gen_range_usize(1, 100);
        let bufs = random_buffers(&mut rng, n, len);
        let expected = elementwise_sum(&bufs);
        let mut ring_cluster = Cluster::from_buffers(bufs.clone());
        ring_reduce_scatter(&mut ring_cluster);
        let mut direct_cluster = Cluster::from_buffers(bufs);
        direct_reduce_scatter(&mut direct_cluster);
        let ring = Ring::new(n);
        for d in 0..n {
            // Ring: device d owns chunk (d+1)%n; direct: chunk d.
            let rc = ring.rs_owned_chunk(d);
            let (rs, re) = chunk_bounds(len, n, rc);
            assert_close(
                &ring_cluster.device(d).as_slice()[rs..re],
                &expected[rs..re],
                1e-3,
            );
            let (ds, de) = chunk_bounds(len, n, d);
            assert_close(
                &direct_cluster.device(d).as_slice()[ds..de],
                &expected[ds..de],
                1e-3,
            );
        }
    }
}

/// All-to-all matches its definition and transposing twice is the
/// identity.
#[test]
fn all_to_all_definition_and_involution() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::new(seed);
        let n = rng.gen_range_usize(2, 8);
        let chunk = rng.gen_range_usize(1, 16);
        let len = n * chunk;
        let bufs = random_buffers(&mut rng, n, len);
        let mut cluster = Cluster::from_buffers(bufs.clone());
        all_to_all(&mut cluster);
        for d in 0..n {
            assert_close(
                cluster.device(d).as_slice(),
                &all_to_all_expected(&bufs, d),
                0.0,
            );
        }
        all_to_all(&mut cluster);
        for d in 0..n {
            assert_close(cluster.device(d).as_slice(), &bufs[d], 0.0);
        }
    }
}

/// Tiled matmul reassembles to the full product for arbitrary shapes
/// and tile sizes.
#[test]
fn tiles_reassemble() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::new(seed);
        let m = rng.gen_range_usize(1, 24);
        let n = rng.gen_range_usize(1, 24);
        let k = rng.gen_range_usize(0, 16);
        let tile = rng.gen_range_usize(1, 9);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_f32(5.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_f32(5.0)).collect();
        let full = matmul(&a, &b, m, n, k);
        let mut assembled = vec![0.0f32; m * n];
        for r0 in (0..m).step_by(tile) {
            for c0 in (0..n).step_by(tile) {
                let h = tile.min(m - r0);
                let w = tile.min(n - c0);
                let t = matmul_tile(&a, &b, m, n, k, r0, c0, h, w);
                scatter_tile(&t, n, r0, c0, h, w, |idx, v| assembled[idx] = v);
            }
        }
        assert_close(&assembled, &full, 1e-3);
    }
}

/// Reduce-scatter update counts: each device absorbs exactly (N-1)
/// chunk-loads of updates, however uneven the chunks.
#[test]
fn rs_update_accounting() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::new(seed);
        let n = rng.gen_range_usize(2, 7);
        let len = rng.gen_range_usize(1, 60);
        let bufs = random_buffers(&mut rng, n, len);
        let mut cluster = Cluster::from_buffers(bufs);
        ring_reduce_scatter(&mut cluster);
        let ring = Ring::new(n);
        for d in 0..n {
            let expected: usize = (0..ring.steps())
                .map(|s| {
                    let c = ring.rs_recv_chunk(d, s);
                    let (cs, ce) = chunk_bounds(len, n, c);
                    ce - cs
                })
                .sum();
            assert_eq!(
                cluster.device(d).update_count(),
                expected as u64,
                "seed {seed}"
            );
        }
    }
}
