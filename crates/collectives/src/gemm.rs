//! Functional matrix multiplication — the "producer kernel" of the
//! functional layer.
//!
//! Row-major `C[M,N] = A[M,K] * B[K,N]` in `f32`, whole or one output
//! tile at a time. The per-tile entry point matters: T3's fused engine
//! executes the GEMM workgroup-by-workgroup and routes each tile's
//! stores through the address-space configuration, so it needs to
//! produce exactly one WG tile at a time (Section 4.2.1's tiled-GEMM
//! assumption).

/// Computes the full `m x n` product of row-major `a` (`m x k`) and
/// `b` (`k x n`).
///
/// # Panics
///
/// Panics if slice lengths do not match the dimensions.
pub fn matmul(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A dimension mismatch");
    assert_eq!(b.len(), k * n, "B dimension mismatch");
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for kk in 0..k {
            let aik = a[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += aik * bv;
            }
        }
    }
    c
}

/// Computes one output tile: rows `[row0, row0+height)` by columns
/// `[col0, col0+width)`, returned row-major (`height x width`).
///
/// # Panics
///
/// Panics if the tile exceeds the output bounds or slice lengths
/// mismatch the dimensions.
#[allow(clippy::too_many_arguments)] // -- the argument list is the tile spec itself (A, B, C plus 4 tile coordinates)
pub fn matmul_tile(
    a: &[f32],
    b: &[f32],
    m: usize,
    n: usize,
    k: usize,
    row0: usize,
    col0: usize,
    height: usize,
    width: usize,
) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A dimension mismatch");
    assert_eq!(b.len(), k * n, "B dimension mismatch");
    assert!(
        row0 + height <= m && col0 + width <= n,
        "tile out of bounds"
    );
    let mut tile = vec![0.0f32; height * width];
    for r in 0..height {
        let i = row0 + r;
        for kk in 0..k {
            let aik = a[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n + col0..kk * n + col0 + width];
            let t_row = &mut tile[r * width..(r + 1) * width];
            for (tv, bv) in t_row.iter_mut().zip(b_row) {
                *tv += aik * bv;
            }
        }
    }
    tile
}

/// Computes one output tile's *partial* product over the K range
/// `[k0, k1)` — a split-K workgroup's contribution (Section 7.7).
/// Summing the partials over a partition of `0..k` equals
/// [`matmul_tile`].
///
/// # Panics
///
/// Panics if the tile or K range exceeds bounds.
#[allow(clippy::too_many_arguments)] // -- tile spec plus the K split; same shape as matmul_tile by design
pub fn matmul_tile_krange(
    a: &[f32],
    b: &[f32],
    m: usize,
    n: usize,
    k: usize,
    row0: usize,
    col0: usize,
    height: usize,
    width: usize,
    k0: usize,
    k1: usize,
) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A dimension mismatch");
    assert_eq!(b.len(), k * n, "B dimension mismatch");
    assert!(
        row0 + height <= m && col0 + width <= n,
        "tile out of bounds"
    );
    assert!(k0 <= k1 && k1 <= k, "K range out of bounds");
    let mut tile = vec![0.0f32; height * width];
    for r in 0..height {
        let i = row0 + r;
        for kk in k0..k1 {
            let aik = a[i * k + kk];
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n + col0..kk * n + col0 + width];
            let t_row = &mut tile[r * width..(r + 1) * width];
            for (tv, bv) in t_row.iter_mut().zip(b_row) {
                *tv += aik * bv;
            }
        }
    }
    tile
}

/// Scatters a row-major tile into a row-major `m x n` output buffer via
/// a store callback — the seam where the fused engine swaps plain
/// stores for remote stores or NMC updates.
pub fn scatter_tile<F: FnMut(usize, f32)>(
    tile: &[f32],
    n: usize,
    row0: usize,
    col0: usize,
    height: usize,
    width: usize,
    mut store: F,
) {
    assert_eq!(tile.len(), height * width, "tile shape mismatch");
    for r in 0..height {
        for c in 0..width {
            store((row0 + r) * n + col0 + c, tile[r * width + c]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::assert_close;

    fn deterministic(len: usize, seed: usize) -> Vec<f32> {
        (0..len)
            .map(|i| (((i * 31 + seed * 17) % 23) as f32 - 11.0) / 7.0)
            .collect()
    }

    #[test]
    fn identity_multiplication() {
        let k = 4;
        let mut eye = vec![0.0f32; k * k];
        for i in 0..k {
            eye[i * k + i] = 1.0;
        }
        let b = deterministic(k * 3, 1);
        let c = matmul(&eye, &b, k, 3, k);
        assert_close(&c, &b, 0.0);
    }

    #[test]
    fn known_2x2() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let c = matmul(&a, &b, 2, 2, 2);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn tiles_reassemble_to_full_product() {
        let (m, n, k) = (7, 9, 5);
        let a = deterministic(m * k, 2);
        let b = deterministic(k * n, 3);
        let full = matmul(&a, &b, m, n, k);
        let mut assembled = vec![0.0f32; m * n];
        let tile_dim = 4;
        for row0 in (0..m).step_by(tile_dim) {
            for col0 in (0..n).step_by(tile_dim) {
                let h = tile_dim.min(m - row0);
                let w = tile_dim.min(n - col0);
                let tile = matmul_tile(&a, &b, m, n, k, row0, col0, h, w);
                scatter_tile(&tile, n, row0, col0, h, w, |idx, v| assembled[idx] = v);
            }
        }
        assert_close(&assembled, &full, 1e-5);
    }

    #[test]
    fn scatter_tile_visits_each_cell_once() {
        let mut count = [0u32; 12];
        let tile = vec![1.0f32; 6];
        scatter_tile(&tile, 4, 1, 1, 2, 3, |idx, _| count[idx] += 1);
        assert_eq!(count.iter().sum::<u32>(), 6);
        assert!(count.iter().all(|&c| c <= 1));
        assert_eq!(count[5], 1); // row 1, col 1
    }

    #[test]
    fn split_k_partials_sum_to_full_tile() {
        let (m, n, k) = (6, 7, 9);
        let a = deterministic(m * k, 4);
        let b = deterministic(k * n, 5);
        let full = matmul_tile(&a, &b, m, n, k, 1, 2, 4, 5);
        for split in [2usize, 3, 4] {
            let mut sum = vec![0.0f32; 4 * 5];
            for s in 0..split {
                let k0 = k * s / split;
                let k1 = k * (s + 1) / split;
                let part = matmul_tile_krange(&a, &b, m, n, k, 1, 2, 4, 5, k0, k1);
                for (acc, v) in sum.iter_mut().zip(part) {
                    *acc += v;
                }
            }
            assert_close(&sum, &full, 1e-5);
        }
    }

    #[test]
    fn empty_k_range_is_zero() {
        let a = vec![1.0f32; 4];
        let b = vec![1.0f32; 4];
        let t = matmul_tile_krange(&a, &b, 2, 2, 2, 0, 0, 2, 2, 1, 1);
        assert_eq!(t, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "K range out of bounds")]
    fn k_range_bounds_checked() {
        let a = vec![0.0f32; 4];
        let b = vec![0.0f32; 4];
        let _ = matmul_tile_krange(&a, &b, 2, 2, 2, 0, 0, 2, 2, 1, 3);
    }

    #[test]
    #[should_panic(expected = "tile out of bounds")]
    fn tile_bounds_checked() {
        let a = vec![0.0f32; 4];
        let b = vec![0.0f32; 4];
        let _ = matmul_tile(&a, &b, 2, 2, 2, 1, 1, 2, 2);
    }

    #[test]
    #[should_panic(expected = "A dimension mismatch")]
    fn dim_mismatch_panics() {
        let _ = matmul(&[0.0; 3], &[0.0; 4], 2, 2, 2);
    }
}
