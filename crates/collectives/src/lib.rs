//! Functional multi-device collectives over real `f32` data.
//!
//! The timing simulator (in `t3-gpu`/`t3-core`) answers *how fast*;
//! this crate answers *is it correct*. Every collective here actually
//! moves and reduces data across a [`cluster::Cluster`] of simulated
//! device memories ([`t3_mem::nmc::NmcBuffer`]s), using the exact ring
//! schedule of [`t3_net::ring::Ring`]. The fused T3 engine in
//! `t3-core` is verified against these implementations: a fused
//! GEMM-reduce-scatter must produce bit-comparable results to a GEMM
//! followed by [`ring::ring_reduce_scatter`].
//!
//! Implemented collectives (Sections 2.3 and 7.1):
//!
//! * [`ring::ring_reduce_scatter`], [`ring::ring_all_gather`],
//!   [`ring::ring_all_reduce`] — the ring implementations the paper
//!   focuses on;
//! * [`direct::direct_reduce_scatter`] — the fully-connected-topology
//!   variant T3 also supports;
//! * [`direct::all_to_all`] — the exchange used by expert parallelism;
//! * [`scheduled`] — executors that run a topology-derived
//!   [`t3_topo::Schedule`] (ring, switch, torus, hierarchical, …)
//!   against a cluster, sharing one schedule source with the timing
//!   engines.
//!
//! [`gemm`] provides the functional matrix multiply (whole and
//! per-tile) that the fused engine uses as its "producer kernel".

pub mod cluster;
pub mod direct;
pub mod gemm;
pub mod reference;
pub mod ring;
pub mod scheduled;
