//! Schedule-driven functional collectives.
//!
//! [`crate::ring`] and [`crate::direct`] hand-code their send loops;
//! this module instead *executes* a topology-derived
//! [`t3_topo::Schedule`] against a [`Cluster`], so the same send lists
//! that drive the timing fabric and the fused engines also move real
//! `f32` data. On a ring topology the executed sends are the exact
//! `(src, dst, chunk)` sequence of [`crate::ring::ring_reduce_scatter`]
//! / [`crate::ring::ring_all_gather`] — one schedule source, verified
//! bit-for-bit by the tests.
//!
//! Within one step every chunk moves exactly once (a schedule
//! invariant), and no device sends a chunk it receives in the same
//! step, so applying a step's sends sequentially is equivalent to
//! applying them simultaneously.

use crate::cluster::Cluster;
use t3_net::ring::chunk_bounds;
use t3_topo::{CollectiveKind, Schedule};

/// Executes a reduce-scatter schedule: every send is a remote
/// *update* (op-and-store reduction at the receiver). Afterwards
/// device `d`'s chunk `sched.owned_chunk(d)` holds the full sum.
///
/// # Panics
///
/// Panics if the schedule is not a reduce-scatter or its device count
/// differs from the cluster's.
pub fn scheduled_reduce_scatter(cluster: &mut Cluster, sched: &Schedule) {
    check(cluster, sched, CollectiveKind::ReduceScatter);
    let n = sched.devices();
    let len = cluster.array_len();
    for step in sched.steps() {
        for send in step {
            let (s, e) = chunk_bounds(len, n, send.chunk);
            if s == e {
                continue;
            }
            cluster.remote_update(send.src, send.dst, s..e);
        }
    }
}

/// Executes an all-gather schedule: every send is a plain remote
/// store of an owned (fully reduced) chunk. Afterwards every device
/// holds every owned chunk.
///
/// # Panics
///
/// Panics if the schedule is not an all-gather or its device count
/// differs from the cluster's.
pub fn scheduled_all_gather(cluster: &mut Cluster, sched: &Schedule) {
    check(cluster, sched, CollectiveKind::AllGather);
    let n = sched.devices();
    let len = cluster.array_len();
    for step in sched.steps() {
        for send in step {
            let (s, e) = chunk_bounds(len, n, send.chunk);
            if s == e {
                continue;
            }
            cluster.remote_store(send.src, send.dst, s..e);
        }
    }
}

/// Executes an all-to-all schedule: afterwards device `d`'s chunk `j`
/// holds device `j`'s original chunk `d` (the same transpose contract
/// as [`crate::direct::all_to_all`]).
///
/// Sources are snapshotted up front: all-to-all destinations overwrite
/// regions other devices still need to send, so in-place sequential
/// application would corrupt later sends.
///
/// # Panics
///
/// Panics if the schedule is not an all-to-all, its device count
/// differs from the cluster's, or the array length is not divisible by
/// the device count (all-to-all requires an even split).
pub fn scheduled_all_to_all(cluster: &mut Cluster, sched: &Schedule) {
    check(cluster, sched, CollectiveKind::AllToAll);
    let n = sched.devices();
    let len = cluster.array_len();
    assert!(
        len.is_multiple_of(n),
        "all-to-all needs len divisible by devices"
    );
    let c = len / n;
    let snapshots: Vec<Vec<f32>> = (0..n)
        .map(|d| cluster.device(d).as_slice().to_vec())
        .collect();
    for step in sched.steps() {
        for send in step {
            // Device `src`'s chunk `dst` lands on device `dst` at
            // chunk position `src` (the transpose).
            debug_assert_eq!(send.chunk, send.dst);
            let data = &snapshots[send.src][send.dst * c..(send.dst + 1) * c];
            cluster.device_mut(send.dst).store_slice(send.src * c, data);
        }
    }
}

fn check(cluster: &Cluster, sched: &Schedule, kind: CollectiveKind) {
    assert_eq!(sched.kind(), kind, "wrong schedule kind for this executor");
    assert_eq!(
        sched.devices(),
        cluster.num_devices(),
        "schedule and cluster disagree on device count"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{all_to_all_expected, assert_close, elementwise_sum};
    use crate::ring::{ring_all_gather, ring_reduce_scatter};
    use t3_sim::config::SystemConfig;
    use t3_topo::Topology;

    fn cfg() -> t3_sim::config::LinkConfig {
        SystemConfig::paper_default().link
    }

    fn fabrics(n: usize) -> Vec<Topology> {
        let mut v = vec![
            Topology::fully_connected(n, &cfg()),
            Topology::switch(n, &cfg()),
        ];
        if n >= 4 {
            v.push(Topology::ring(n, &cfg()));
            v.push(Topology::torus2d(2, n / 2, &cfg()));
            v.push(Topology::hierarchical(2, n / 2, &cfg(), &cfg()));
        }
        v
    }

    fn inputs(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|d| (0..len).map(|i| ((d * 37 + i * 3) % 101) as f32).collect())
            .collect()
    }

    #[test]
    fn ring_schedule_execution_is_bit_identical_to_ring_module() {
        for n in [2usize, 4, 8] {
            let len = 50; // uneven chunks included
            let topo = Topology::ring(n, &cfg());
            let bufs = inputs(n, len);
            let mut via_schedule = Cluster::from_buffers(bufs.clone());
            let mut via_ring = Cluster::from_buffers(bufs);
            scheduled_reduce_scatter(&mut via_schedule, &Schedule::reduce_scatter(&topo));
            ring_reduce_scatter(&mut via_ring);
            assert_eq!(via_schedule, via_ring, "RS diverged at n={n}");
            scheduled_all_gather(&mut via_schedule, &Schedule::all_gather(&topo));
            ring_all_gather(&mut via_ring);
            assert_eq!(via_schedule, via_ring, "AG diverged at n={n}");
        }
    }

    #[test]
    fn rs_owned_chunks_hold_full_sums_on_every_fabric() {
        for n in [4usize, 8] {
            let len = 53;
            for topo in fabrics(n) {
                let bufs = inputs(n, len);
                let expected = elementwise_sum(&bufs);
                let mut cluster = Cluster::from_buffers(bufs);
                let sched = Schedule::reduce_scatter(&topo);
                scheduled_reduce_scatter(&mut cluster, &sched);
                for d in 0..n {
                    let (s, e) = chunk_bounds(len, n, sched.owned_chunk(d));
                    assert_close(&cluster.device(d).as_slice()[s..e], &expected[s..e], 1e-4);
                }
            }
        }
    }

    #[test]
    fn rs_then_ag_is_an_all_reduce_on_every_fabric() {
        let n = 8;
        let len = 40;
        for topo in fabrics(n) {
            let bufs = inputs(n, len);
            let expected = elementwise_sum(&bufs);
            let mut cluster = Cluster::from_buffers(bufs);
            scheduled_reduce_scatter(&mut cluster, &Schedule::reduce_scatter(&topo));
            scheduled_all_gather(&mut cluster, &Schedule::all_gather(&topo));
            for d in 0..n {
                assert_close(cluster.device(d).as_slice(), &expected, 1e-4);
            }
        }
    }

    #[test]
    fn a2a_matches_direct_reference_on_every_fabric() {
        let n = 4;
        let len = n * 5;
        for topo in fabrics(n) {
            let bufs = inputs(n, len);
            let mut cluster = Cluster::from_buffers(bufs.clone());
            scheduled_all_to_all(&mut cluster, &Schedule::all_to_all(&topo));
            for d in 0..n {
                let expected = all_to_all_expected(&bufs, d);
                assert_close(cluster.device(d).as_slice(), &expected, 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "wrong schedule kind")]
    fn kind_mismatch_rejected() {
        let topo = Topology::ring(4, &cfg());
        let mut cluster = Cluster::new(4, 8);
        scheduled_reduce_scatter(&mut cluster, &Schedule::all_gather(&topo));
    }

    #[test]
    #[should_panic(expected = "disagree on device count")]
    fn device_count_mismatch_rejected() {
        let topo = Topology::ring(8, &cfg());
        let mut cluster = Cluster::new(4, 8);
        scheduled_reduce_scatter(&mut cluster, &Schedule::reduce_scatter(&topo));
    }
}
