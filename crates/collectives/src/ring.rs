//! Functional ring collectives (Section 2.3, Figure 3).
//!
//! The schedule comes from [`t3_net::ring::Ring`]; data movement is
//! performed on a [`Cluster`]. Reduce-scatter sends are *updates*
//! (op-and-store reductions at the receiver, as T3's NMC performs
//! them); all-gather sends are plain stores.
//!
//! After [`ring_reduce_scatter`], device `d`'s chunk
//! `ring.rs_owned_chunk(d)` holds the element-wise sum of every
//! device's original copy of that chunk; other chunks hold partial
//! sums (as in NCCL/RCCL, their contents are unspecified outputs).
//! After [`ring_all_gather`], every device holds every owned chunk.

use crate::cluster::Cluster;
use t3_net::ring::chunk_bounds;

/// Runs ring reduce-scatter in place. See the module docs for the
/// output contract.
pub fn ring_reduce_scatter(cluster: &mut Cluster) {
    let ring = cluster.ring();
    let n = ring.len();
    let len = cluster.array_len();
    for step in 0..ring.steps() {
        // All devices send simultaneously; each device's send chunk at
        // a given step is distinct, so applying updates sequentially
        // after computing the send set is equivalent.
        for d in 0..n {
            let chunk = ring.rs_send_chunk(d, step);
            let (s, e) = chunk_bounds(len, n, chunk);
            if s == e {
                continue;
            }
            cluster.remote_update(d, ring.next(d), s..e);
        }
    }
}

/// Runs ring all-gather in place: every device's *owned* chunk (the
/// reduce-scatter output placement) is propagated to all devices.
pub fn ring_all_gather(cluster: &mut Cluster) {
    let ring = cluster.ring();
    let n = ring.len();
    let len = cluster.array_len();
    for step in 0..ring.steps() {
        for d in 0..n {
            let chunk = ring.ag_send_chunk(d, step);
            let (s, e) = chunk_bounds(len, n, chunk);
            if s == e {
                continue;
            }
            cluster.remote_store(d, ring.next(d), s..e);
        }
    }
}

/// Ring all-reduce: reduce-scatter followed by all-gather. Afterwards
/// every device's full array equals the element-wise sum of all
/// devices' original arrays.
///
/// # Examples
///
/// ```
/// use t3_collectives::cluster::Cluster;
/// use t3_collectives::ring::ring_all_reduce;
///
/// let mut cluster = Cluster::from_buffers(vec![
///     vec![1.0, 2.0, 3.0, 4.0],
///     vec![10.0, 20.0, 30.0, 40.0],
/// ]);
/// ring_all_reduce(&mut cluster);
/// assert_eq!(cluster.device(0).as_slice(), &[11.0, 22.0, 33.0, 44.0]);
/// assert_eq!(cluster.device(1).as_slice(), &[11.0, 22.0, 33.0, 44.0]);
/// ```
pub fn ring_all_reduce(cluster: &mut Cluster) {
    ring_reduce_scatter(cluster);
    ring_all_gather(cluster);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{assert_close, elementwise_sum};

    fn random_inputs(n: usize, len: usize, seed: u64) -> Vec<Vec<f32>> {
        // Small deterministic LCG so tests don't need rand here.
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let mut next = || {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        (0..n).map(|_| (0..len).map(|_| next()).collect()).collect()
    }

    #[test]
    fn rs_owned_chunks_hold_full_sums() {
        for n in [2usize, 3, 4, 8] {
            let len = 64;
            let inputs = random_inputs(n, len, n as u64);
            let expected = elementwise_sum(&inputs);
            let mut cluster = Cluster::from_buffers(inputs);
            ring_reduce_scatter(&mut cluster);
            let ring = cluster.ring();
            for d in 0..n {
                let c = ring.rs_owned_chunk(d);
                let (s, e) = chunk_bounds(len, n, c);
                assert_close(&cluster.device(d).as_slice()[s..e], &expected[s..e], 1e-4);
            }
        }
    }

    #[test]
    fn all_reduce_matches_reference_everywhere() {
        for n in [2usize, 4, 5, 16] {
            let len = 50; // deliberately not divisible by n
            let inputs = random_inputs(n, len, 7 + n as u64);
            let expected = elementwise_sum(&inputs);
            let mut cluster = Cluster::from_buffers(inputs);
            ring_all_reduce(&mut cluster);
            for d in 0..n {
                assert_close(cluster.device(d).as_slice(), &expected, 1e-4);
            }
        }
    }

    #[test]
    fn rs_update_traffic_matches_algorithm() {
        // Each device receives one chunk update per step.
        let n = 4;
        let len = 40; // chunks of 10
        let inputs = random_inputs(n, len, 3);
        let mut cluster = Cluster::from_buffers(inputs);
        ring_reduce_scatter(&mut cluster);
        for d in 0..n {
            assert_eq!(cluster.device(d).update_count(), (n as u64 - 1) * 10);
            assert_eq!(cluster.device(d).store_count(), 0);
        }
    }

    #[test]
    fn ag_store_traffic_matches_algorithm() {
        let n = 4;
        let len = 40;
        let inputs = random_inputs(n, len, 4);
        let mut cluster = Cluster::from_buffers(inputs);
        ring_all_reduce(&mut cluster);
        for d in 0..n {
            // AG: one chunk stored per step.
            assert_eq!(cluster.device(d).store_count(), (n as u64 - 1) * 10);
        }
    }

    #[test]
    fn tiny_array_with_empty_chunks_still_correct() {
        // len < n: some chunks are empty.
        let n = 8;
        let len = 5;
        let inputs = random_inputs(n, len, 9);
        let expected = elementwise_sum(&inputs);
        let mut cluster = Cluster::from_buffers(inputs);
        ring_all_reduce(&mut cluster);
        for d in 0..n {
            assert_close(cluster.device(d).as_slice(), &expected, 1e-4);
        }
    }

    #[test]
    fn two_device_ring_is_a_swap_reduce() {
        let inputs = vec![vec![1.0f32, 2.0], vec![10.0, 20.0]];
        let mut cluster = Cluster::from_buffers(inputs);
        ring_all_reduce(&mut cluster);
        for d in 0..2 {
            assert_eq!(cluster.device(d).as_slice(), &[11.0, 22.0]);
        }
    }
}
