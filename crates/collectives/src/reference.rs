//! Naive reference results for collective verification.
//!
//! These are the mathematical definitions the optimised (ring/direct)
//! implementations are tested against. They never move data "across
//! devices"; they just compute what the final buffers must contain.

/// Element-wise sum across all device buffers: the all-reduce result.
///
/// # Panics
///
/// Panics if buffers have differing lengths or `inputs` is empty.
pub fn elementwise_sum(inputs: &[Vec<f32>]) -> Vec<f32> {
    assert!(!inputs.is_empty(), "need at least one input buffer");
    let len = inputs[0].len();
    assert!(
        inputs.iter().all(|b| b.len() == len),
        "all inputs must have equal length"
    );
    let mut out = vec![0.0f32; len];
    for buf in inputs {
        for (o, v) in out.iter_mut().zip(buf) {
            *o += v;
        }
    }
    out
}

/// The all-to-all result for device `dst`: its chunk `j` is device
/// `j`'s chunk `dst`. All-to-all requires an even split.
///
/// # Panics
///
/// Panics if the array length is not a multiple of the device count.
pub fn all_to_all_expected(inputs: &[Vec<f32>], dst: usize) -> Vec<f32> {
    let n = inputs.len();
    let len = inputs[0].len();
    assert!(
        len.is_multiple_of(n),
        "all-to-all needs len divisible by devices"
    );
    let c = len / n;
    let mut out = vec![0.0f32; len];
    for (j, src) in inputs.iter().enumerate() {
        out[j * c..(j + 1) * c].copy_from_slice(&src[dst * c..(dst + 1) * c]);
    }
    out
}

/// Asserts two buffers match within `tol` absolute/relative error.
///
/// # Panics
///
/// Panics (with a diagnostic) if any element differs by more than the
/// tolerance.
pub fn assert_close(actual: &[f32], expected: &[f32], tol: f32) {
    assert_eq!(actual.len(), expected.len(), "length mismatch");
    for (i, (a, e)) in actual.iter().zip(expected).enumerate() {
        let scale = 1.0f32.max(e.abs());
        assert!(
            (a - e).abs() <= tol * scale,
            "mismatch at {i}: actual {a}, expected {e}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_of_two() {
        let s = elementwise_sum(&[vec![1.0, 2.0], vec![3.0, -1.0]]);
        assert_eq!(s, vec![4.0, 1.0]);
    }

    #[test]
    fn assert_close_accepts_small_error() {
        assert_close(&[1.0 + 1e-7], &[1.0], 1e-5);
    }

    #[test]
    #[should_panic(expected = "mismatch at 1")]
    fn assert_close_rejects_large_error() {
        assert_close(&[1.0, 2.0], &[1.0, 3.0], 1e-5);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn sum_rejects_ragged() {
        let _ = elementwise_sum(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
