//! Fully-connected-topology collectives (Section 7.1) and all-to-all
//! (Section 7.2, expert parallelism).
//!
//! With dedicated links between all device pairs, reduce-scatter needs
//! no ring: every device scatters each chunk directly to its owner,
//! which reduces in (near-)memory. T3 supports this by `remote_map`ing
//! each GEMM-stage output slice to its destination device — the
//! collective then has *zero* dedicated memory accesses.

use crate::cluster::Cluster;
use t3_net::ring::chunk_bounds;

/// Direct reduce-scatter: device `d` ends up owning chunk `d`, the
/// element-wise sum of every device's copy of chunk `d`.
///
/// (Chunk ownership differs from the ring schedule, which rotates
/// ownership by one; callers pick the collective and use its
/// placement, as collective libraries do.)
pub fn direct_reduce_scatter(cluster: &mut Cluster) {
    let n = cluster.num_devices();
    let len = cluster.array_len();
    for owner in 0..n {
        let (s, e) = chunk_bounds(len, n, owner);
        if s == e {
            continue;
        }
        for src in 0..n {
            if src != owner {
                cluster.remote_update(src, owner, s..e);
            }
        }
    }
}

/// All-to-all chunk exchange: afterwards device `d`'s chunk `j` holds
/// device `j`'s original chunk `d`.
///
/// # Panics
///
/// Panics if the array length is not divisible by the device count
/// (all-to-all requires an even split).
pub fn all_to_all(cluster: &mut Cluster) {
    let n = cluster.num_devices();
    let len = cluster.array_len();
    assert!(
        len.is_multiple_of(n),
        "all-to-all needs len divisible by devices"
    );
    let c = len / n;
    // Snapshot sources: unlike reduce-scatter, destinations here
    // overwrite regions other devices still need to send.
    let snapshots: Vec<Vec<f32>> = (0..n)
        .map(|d| cluster.device(d).as_slice().to_vec())
        .collect();
    for (dst, _) in snapshots.iter().enumerate() {
        for (src, snap) in snapshots.iter().enumerate() {
            if src == dst {
                continue;
            }
            let data = &snap[dst * c..(dst + 1) * c];
            cluster.device_mut(dst).store_slice(src * c, data);
        }
    }
}

#[allow(clippy::needless_range_loop)] // -- index loops mirror the per-element reference math being checked
#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{all_to_all_expected, assert_close, elementwise_sum};

    fn inputs(n: usize, len: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|d| (0..len).map(|i| (d * 100 + i) as f32).collect())
            .collect()
    }

    #[test]
    fn direct_rs_owned_chunks_hold_sums() {
        for n in [2usize, 4, 8] {
            let len = 33;
            let bufs = inputs(n, len);
            let expected = elementwise_sum(&bufs);
            let mut cluster = Cluster::from_buffers(bufs);
            direct_reduce_scatter(&mut cluster);
            for d in 0..n {
                let (s, e) = chunk_bounds(len, n, d);
                assert_close(&cluster.device(d).as_slice()[s..e], &expected[s..e], 1e-4);
            }
        }
    }

    #[test]
    fn direct_rs_update_counts() {
        let n = 4;
        let len = 40;
        let mut cluster = Cluster::from_buffers(inputs(n, len));
        direct_reduce_scatter(&mut cluster);
        for d in 0..n {
            // Each owner receives n-1 updates of its 10-element chunk.
            assert_eq!(cluster.device(d).update_count(), 30);
        }
    }

    #[test]
    fn all_to_all_matches_reference() {
        for n in [2usize, 4, 8] {
            let len = n * 6;
            let bufs = inputs(n, len);
            let mut cluster = Cluster::from_buffers(bufs.clone());
            all_to_all(&mut cluster);
            for d in 0..n {
                let expected = all_to_all_expected(&bufs, d);
                // Own chunk keeps original data: expected already
                // encodes that (chunk d of device d).
                assert_close(cluster.device(d).as_slice(), &expected, 0.0);
            }
        }
    }

    #[test]
    fn all_to_all_is_an_involution_for_two_devices() {
        let bufs = inputs(2, 8);
        let mut cluster = Cluster::from_buffers(bufs.clone());
        all_to_all(&mut cluster);
        all_to_all(&mut cluster);
        for d in 0..2 {
            assert_close(cluster.device(d).as_slice(), &bufs[d], 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn all_to_all_rejects_uneven_split() {
        let mut cluster = Cluster::new(3, 10);
        all_to_all(&mut cluster);
    }
}
