//! A cluster of simulated device memories.
//!
//! Each device holds one [`NmcBuffer`] of the collective's array.
//! Remote writes and DMA transfers in the functional layer are plain
//! slice copies/updates into another device's buffer — the same
//! peer-to-peer store and DMA-update capabilities T3's address-space
//! configuration relies on (Section 4.4).

use t3_mem::nmc::NmcBuffer;
use t3_net::ring::Ring;

/// `N` devices, each with an `len`-element array buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    devices: Vec<NmcBuffer>,
}

impl Cluster {
    /// Creates `n` devices with zeroed `len`-element buffers.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize, len: usize) -> Self {
        assert!(n >= 2, "a cluster needs at least two devices");
        Cluster {
            devices: (0..n).map(|_| NmcBuffer::new(len)).collect(),
        }
    }

    /// Builds a cluster from per-device initial contents.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two devices are given or lengths differ.
    pub fn from_buffers(buffers: Vec<Vec<f32>>) -> Self {
        assert!(buffers.len() >= 2, "a cluster needs at least two devices");
        let len = buffers[0].len();
        assert!(
            buffers.iter().all(|b| b.len() == len),
            "all device buffers must have equal length"
        );
        Cluster {
            devices: buffers.into_iter().map(NmcBuffer::from_vec).collect(),
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Array length per device.
    pub fn array_len(&self) -> usize {
        self.devices[0].len()
    }

    /// The ring over this cluster's devices.
    pub fn ring(&self) -> Ring {
        Ring::new(self.num_devices())
    }

    /// Immutable view of one device's buffer.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn device(&self, device: usize) -> &NmcBuffer {
        &self.devices[device]
    }

    /// Mutable view of one device's buffer.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range.
    pub fn device_mut(&mut self, device: usize) -> &mut NmcBuffer {
        &mut self.devices[device]
    }

    /// Copies `range` from `src` device and *stores* it into the same
    /// range on `dst` (peer-to-peer remote write).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range devices/ranges or `src == dst`.
    pub fn remote_store(&mut self, src: usize, dst: usize, range: core::ops::Range<usize>) {
        let data = self.read_slice(src, range.clone());
        self.devices[dst].store_slice(range.start, &data);
    }

    /// Copies `range` from `src` device and *updates* (op-and-store
    /// reduces) it into the same range on `dst` — a DMA update landing
    /// in NMC-enhanced memory.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range devices/ranges or `src == dst`.
    pub fn remote_update(&mut self, src: usize, dst: usize, range: core::ops::Range<usize>) {
        let data = self.read_slice(src, range.clone());
        self.devices[dst].update_slice(range.start, &data);
    }

    fn read_slice(&self, src: usize, range: core::ops::Range<usize>) -> Vec<f32> {
        self.devices[src].as_slice()[range].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_geometry() {
        let c = Cluster::new(4, 10);
        assert_eq!(c.num_devices(), 4);
        assert_eq!(c.array_len(), 10);
        assert_eq!(c.ring().len(), 4);
    }

    #[test]
    fn remote_store_overwrites() {
        let mut c = Cluster::from_buffers(vec![vec![1.0, 2.0, 3.0], vec![9.0, 9.0, 9.0]]);
        c.remote_store(0, 1, 1..3);
        assert_eq!(c.device(1).as_slice(), &[9.0, 2.0, 3.0]);
    }

    #[test]
    fn remote_update_reduces() {
        let mut c = Cluster::from_buffers(vec![vec![1.0, 2.0], vec![10.0, 20.0]]);
        c.remote_update(0, 1, 0..2);
        assert_eq!(c.device(1).as_slice(), &[11.0, 22.0]);
        assert_eq!(c.device(1).update_count(), 2);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_buffers_rejected() {
        let _ = Cluster::from_buffers(vec![vec![0.0], vec![0.0, 1.0]]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_device_rejected() {
        let _ = Cluster::new(1, 4);
    }
}
