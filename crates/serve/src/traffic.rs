//! Deterministic open-loop request traffic.
//!
//! A [`TrafficConfig`] plus a seed fully determine a request trace:
//! prompt/output token lengths are drawn first from bucketed mixture
//! distributions, then arrival gaps are drawn relative to the engine's
//! estimated decode capacity, so a `load_permille` of 900 means "90%
//! of what the decode engine can sustain at full batch". Everything
//! flows from one [`SplitMix64`] stream — equal seeds give equal
//! traces, byte for byte, on any host.

use t3_sim::rng::SplitMix64;
use t3_sim::Cycle;

use crate::request::Request;

/// The inter-arrival process shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Poisson arrivals: exponential inter-arrival gaps around the
    /// configured mean.
    Poisson,
    /// Bursty arrivals: the trace alternates ON windows (gaps 1/4 of
    /// the mean) and OFF windows (gaps 7/4 of the mean) of
    /// [`BURST_WINDOW_GAPS`] requests each — the window means average
    /// back to the configured mean, so the long-run rate matches
    /// Poisson's while the ON clumps are 7x denser.
    Bursty,
}

impl ArrivalKind {
    /// Canonical label for reports and fingerprints.
    pub fn label(self) -> &'static str {
        match self {
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::Bursty => "bursty",
        }
    }
}

/// Requests per ON/OFF window of the bursty process.
pub const BURST_WINDOW_GAPS: u64 = 8;

/// Shape of one tenant's request stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficConfig {
    /// Number of requests in the trace.
    pub requests: usize,
    /// Inter-arrival process.
    pub arrival: ArrivalKind,
    /// Mean inter-arrival gap in cycles (derived from the engine's
    /// capacity estimate by [`mean_gap_cycles`]).
    pub mean_gap_cycles: Cycle,
    /// Divides every sampled token length (mirrors
    /// `ExperimentScale::token_divisor` so `--fast` smoke runs stay
    /// quick).
    pub token_divisor: u64,
}

/// Mean inter-arrival gap for a target load: the decode engine
/// sustains roughly `max_batch` tokens per `decode_iter_cycles`, so a
/// request costing `avg_output_tokens` decode steps arrives every
/// `decode_iter_cycles * avg_output_tokens / (max_batch * load)`
/// cycles at `load_permille / 1000` of capacity. Pure integer math.
pub fn mean_gap_cycles(
    decode_iter_cycles: Cycle,
    avg_output_tokens: u64,
    max_batch: u64,
    load_permille: u64,
) -> Cycle {
    assert!(load_permille > 0, "load must be positive");
    assert!(max_batch > 0, "batch must be positive");
    let num = decode_iter_cycles as u128 * avg_output_tokens.max(1) as u128 * 1000;
    let den = max_batch as u128 * load_permille as u128;
    (num / den).max(1) as Cycle
}

/// Samples a prompt length (tokens): 70% short (64..256), 25% medium
/// (256..1024), 5% long (1024..2048), then scaled down by
/// `token_divisor` with a floor of 16.
fn sample_prompt_tokens(rng: &mut SplitMix64, token_divisor: u64) -> u64 {
    let class = rng.gen_range(0, 100);
    let raw = if class < 70 {
        rng.gen_range(64, 256)
    } else if class < 95 {
        rng.gen_range(256, 1024)
    } else {
        rng.gen_range(1024, 2048)
    };
    (raw / token_divisor).max(16)
}

/// Samples an output length (tokens): 50% short (16..64), 40% medium
/// (64..256), 10% long (256..512), scaled by `token_divisor` with a
/// floor of 4.
fn sample_output_tokens(rng: &mut SplitMix64, token_divisor: u64) -> u64 {
    let class = rng.gen_range(0, 100);
    let raw = if class < 50 {
        rng.gen_range(16, 64)
    } else if class < 90 {
        rng.gen_range(64, 256)
    } else {
        rng.gen_range(256, 512)
    };
    (raw / token_divisor).max(4)
}

/// One exponential inter-arrival gap around `mean` cycles, clamped to
/// at least one cycle.
fn sample_gap(rng: &mut SplitMix64, mean: Cycle) -> Cycle {
    // 53 uniform mantissa bits in (0, 1]; `1 - u` stays away from 0 so
    // ln() is finite.
    let u = ((rng.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    // t3-lint: allow(float-cycles) -- seeded exponential sample: one rounding per arrival gap, never accumulated across requests
    let gap = (-u.ln() * mean as f64) as Cycle;
    gap.max(1)
}

/// Generates one tenant's request trace. `tenant` tags every request
/// and perturbs nothing else — the caller derives a distinct seed per
/// tenant. Arrival cycles are strictly increasing (gaps are >= 1).
pub fn generate_requests(cfg: &TrafficConfig, tenant: u64, seed: u64) -> Vec<Request> {
    let mut rng = SplitMix64::new(seed);
    // Phase 1: lengths. Drawn before gaps so the same seed gives the
    // same workload mix regardless of the arrival process.
    let lengths: Vec<(u64, u64)> = (0..cfg.requests)
        .map(|_| {
            (
                sample_prompt_tokens(&mut rng, cfg.token_divisor),
                sample_output_tokens(&mut rng, cfg.token_divisor),
            )
        })
        .collect();
    // Phase 2: arrival cycles.
    let mut now: Cycle = 0;
    lengths
        .into_iter()
        .enumerate()
        .map(|(i, (prompt_tokens, output_tokens))| {
            let mean = match cfg.arrival {
                ArrivalKind::Poisson => cfg.mean_gap_cycles,
                ArrivalKind::Bursty => {
                    // Alternate ON (mean/4) and OFF (7*mean/4)
                    // windows; the two means average back to the
                    // configured mean, preserving the long-run rate.
                    let window = (i as u64 / BURST_WINDOW_GAPS) % 2;
                    if window == 0 {
                        (cfg.mean_gap_cycles / 4).max(1)
                    } else {
                        7 * cfg.mean_gap_cycles / 4
                    }
                }
            };
            now += sample_gap(&mut rng, mean);
            Request {
                id: i as u64,
                tenant,
                arrival: now,
                prompt_tokens,
                output_tokens,
            }
        })
        .collect()
}

/// Mean output length of the workload mix for a divisor, computed by
/// sampling the distribution itself with a fixed internal seed — the
/// capacity estimate and the trace then agree on what "average
/// request" means without hand-maintained constants.
pub fn expected_output_tokens(token_divisor: u64) -> u64 {
    let mut rng = SplitMix64::new(0x5EED_CA11);
    let n = 512u64;
    let sum: u64 = (0..n)
        .map(|_| sample_output_tokens(&mut rng, token_divisor))
        .sum();
    (sum / n).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(arrival: ArrivalKind) -> TrafficConfig {
        TrafficConfig {
            requests: 64,
            arrival,
            mean_gap_cycles: 10_000,
            token_divisor: 1,
        }
    }

    #[test]
    fn equal_seeds_give_identical_traces() {
        let a = generate_requests(&cfg(ArrivalKind::Poisson), 0, 42);
        let b = generate_requests(&cfg(ArrivalKind::Poisson), 0, 42);
        assert_eq!(a, b);
        let c = generate_requests(&cfg(ArrivalKind::Poisson), 0, 43);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn arrivals_strictly_increase_and_ids_are_dense() {
        let reqs = generate_requests(&cfg(ArrivalKind::Bursty), 3, 7);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert_eq!(r.tenant, 3);
            assert!(r.prompt_tokens >= 16 && r.output_tokens >= 4);
        }
        for w in reqs.windows(2) {
            assert!(w[1].arrival > w[0].arrival);
        }
    }

    #[test]
    fn bursty_same_long_run_rate_worse_clumping() {
        let mut poisson = cfg(ArrivalKind::Poisson);
        let mut bursty = cfg(ArrivalKind::Bursty);
        poisson.requests = 256;
        bursty.requests = 256;
        let p = generate_requests(&poisson, 0, 11);
        let b = generate_requests(&bursty, 0, 11);
        let span = |r: &[Request]| r.last().expect("non-empty").arrival;
        // Long-run rates within 2x of each other.
        let (ps, bs) = (span(&p), span(&b));
        assert!(bs < ps * 2 && ps < bs * 2, "poisson {ps} vs bursty {bs}");
        // Bursty has a much smaller minimum gap (ON windows clump).
        let min_gap = |r: &[Request]| {
            r.windows(2)
                .map(|w| w[1].arrival - w[0].arrival)
                .min()
                .expect("gaps")
        };
        assert!(min_gap(&b) <= min_gap(&p));
    }

    #[test]
    fn token_divisor_shrinks_lengths() {
        let full = generate_requests(&cfg(ArrivalKind::Poisson), 0, 5);
        let mut small_cfg = cfg(ArrivalKind::Poisson);
        small_cfg.token_divisor = 8;
        let small = generate_requests(&small_cfg, 0, 5);
        let sum = |r: &[Request]| r.iter().map(|q| q.prompt_tokens).sum::<u64>();
        assert!(sum(&small) < sum(&full));
    }

    #[test]
    fn mean_gap_is_integer_and_monotone_in_load() {
        let low = mean_gap_cycles(1_000_000, 100, 16, 300);
        let high = mean_gap_cycles(1_000_000, 100, 16, 900);
        assert!(low > high, "higher load must mean shorter gaps");
        assert!(high >= 1);
    }

    #[test]
    fn expected_output_tokens_tracks_divisor() {
        let full = expected_output_tokens(1);
        let eighth = expected_output_tokens(8);
        assert!(full > eighth);
        assert!(eighth >= 4);
    }
}
