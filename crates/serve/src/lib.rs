//! # t3-serve — deterministic inference serving on the T3 simulator
//!
//! The T3 paper reports static per-sublayer speedups; this crate asks
//! what they are worth in *serving* terms — p99 latency and
//! tokens/sec/GPU under live traffic. It models a serving fleet end
//! to end, deterministically:
//!
//! * [`traffic`] — seeded open-loop request generation: Poisson and
//!   bursty arrival processes with bucketed prompt/output-length
//!   mixtures, all drawn from one [`t3_sim::rng::SplitMix64`] stream.
//! * [`engine`] — a continuous-batching scheduler with
//!   prefill/decode phase switching: prefill-priority admission under
//!   a token budget, one generated token per decode iteration, exact
//!   cycle accounting for every request's enqueue → admission →
//!   first-token → completion lifecycle.
//! * [`cost`] — the iteration-cost oracle: token counts are bucketed
//!   to powers of two and each bucket's sublayer cost is simulated
//!   once with the paper's [`t3_core::configs::Configuration`]
//!   engines (Sequential vs T3-MCA), then memoised.
//! * [`interference`] — multi-tenant fabric contention priced by
//!   running staggered concurrent reduce-scatters on one shared
//!   [`t3_topo::fabric::Fabric`].
//! * [`request`] — lifecycle records, the canonical request log, and
//!   exact-integer nearest-rank percentiles (p50/p95/p99).
//! * [`study`] — the headline `figures serving` /
//!   `figures serving-fused` experiments: two fabrics × two load
//!   points × baseline-vs-fused, plus a tenant sweep.
//!
//! Everything is integer-cycle arithmetic on seeded streams: the same
//! seed and config produce byte-identical request logs, percentiles,
//! and traces on any host, at any parallelism.
//!
//! ```
//! use t3_serve::cost::EngineMode;
//! use t3_serve::engine::{run_engine, EngineConfig};
//! use t3_serve::study::serve_cost_model;
//! use t3_serve::traffic::{generate_requests, ArrivalKind, TrafficConfig};
//!
//! let cfg = TrafficConfig {
//!     requests: 8,
//!     arrival: ArrivalKind::Poisson,
//!     mean_gap_cycles: 100_000,
//!     token_divisor: 8,
//! };
//! let requests = generate_requests(&cfg, 0, 42);
//! let mut cost = serve_cost_model();
//! let run = run_engine(
//!     &mut cost,
//!     &EngineConfig::with_mode(EngineMode::Fused),
//!     &requests,
//!     None,
//! );
//! assert_eq!(run.outcomes.len(), 8);
//! ```

pub mod cost;
pub mod engine;
pub mod interference;
pub mod request;
pub mod study;
pub mod traffic;

pub use cost::{CostModel, EngineMode};
pub use engine::{run_engine, EngineConfig, EngineRun};
pub use request::{percentile, request_log, LatencySummary, Request, RequestOutcome};
pub use traffic::{generate_requests, ArrivalKind, TrafficConfig};
