//! The headline serving studies behind the `figures serving` and
//! `figures serving-fused` targets.
//!
//! One deployment — a scaled transformer slice on an 8-GPU TP group —
//! is driven by seeded open-loop traffic at two load points on two
//! fabrics, under the baseline (sequential GEMM → RS → AG) and the
//! T3-fused engine. Both engines see **byte-identical request
//! traces**: arrival gaps are derived from the *baseline* engine's
//! decode capacity, so the comparison isolates the execution mode.
//! Co-tenant interference is priced by
//! [`contention_factor_permille`] on the same fabric the TP group
//! runs on.

use t3_sim::config::SystemConfig;
use t3_sim::{Cycle, SimMode};
use t3_topo::graph::Topology;
use t3_trace::Instruments;

use crate::cost::{CostModel, EngineMode, MAX_BUCKET_TOKENS};
use crate::engine::{run_engine, EngineConfig, EngineRun};
use crate::interference::contention_factor_permille;
use crate::request::{LatencySummary, Request};
use crate::traffic::{
    expected_output_tokens, generate_requests, mean_gap_cycles, ArrivalKind, TrafficConfig,
};

/// TP degree of the serving deployment (one 8-GPU group).
pub const SERVE_TP: u64 = 8;
/// Hidden dimension of the served model slice — scaled down from the
/// Table 2 models so debug-mode smoke runs stay quick while keeping
/// the GEMM-vs-collective balance the paper studies.
pub const SERVE_HIDDEN: u64 = 1024;
/// Transformer layers of the served model slice.
pub const SERVE_LAYERS: u64 = 4;
/// Request streams sharing the fabric in the headline study.
pub const SERVE_TENANTS: u64 = 2;
/// Decode slots of the continuous-batching engine.
pub const SERVE_MAX_BATCH: u64 = 16;
/// Prefill token budget per iteration.
pub const SERVE_MAX_PREFILL_TOKENS: u64 = 2048;
/// Base seed of every serving trace ("serve" in ASCII).
pub const SERVE_SEED: u64 = 0x73_65_72_76_65;
/// The fabrics of the headline study.
pub const SERVE_TOPOLOGIES: [&str; 2] = ["ring", "hierarchical"];
/// The load points: (permille of decode capacity, arrival process).
/// Low load arrives smoothly; high load arrives in bursts — the
/// regime where tail latency separates the engines.
pub const SERVE_LOAD_POINTS: [(u64, ArrivalKind); 2] =
    [(400, ArrivalKind::Poisson), (900, ArrivalKind::Bursty)];

/// The serving deployment's system: paper-default GPUs, one TP group.
pub fn serve_system() -> SystemConfig {
    SystemConfig::paper_default().with_num_gpus(SERVE_TP as usize)
}

/// Builds the named serving fabric over the TP group. `hierarchical`
/// joins two half-size nodes by links with 1/4 bandwidth and 4x
/// latency (the multinode study's convention). Returns `None` for
/// unknown names.
pub fn serve_topology(name: &str, sys: &SystemConfig) -> Option<Topology> {
    let n = SERVE_TP as usize;
    let link = &sys.link;
    Some(match name {
        "ring" => Topology::ring(n, link),
        "hierarchical" => {
            let mut slow = link.clone();
            slow.link_gb_s /= 4.0;
            slow.latency_ns *= 4.0;
            Topology::hierarchical(2, n / 2, link, &slow)
        }
        _ => return None,
    })
}

/// Requests per tenant at a token divisor (fast scales shrink the
/// trace alongside the token lengths).
pub fn requests_per_tenant(token_divisor: u64) -> usize {
    if token_divisor >= 8 {
        24
    } else {
        64
    }
}

/// One measured serving point: a (fabric, load, engine) cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServingRow {
    /// Fabric name (see [`SERVE_TOPOLOGIES`]).
    pub topology: &'static str,
    /// Offered load in permille of baseline decode capacity.
    pub load_permille: u64,
    /// Arrival process of the trace.
    pub arrival: ArrivalKind,
    /// Engine mode the point ran under.
    pub mode: EngineMode,
    /// Tenants sharing the fabric.
    pub tenants: u64,
    /// Priced fabric-contention factor (permille).
    pub contention_permille: u64,
    /// Time-to-first-token percentiles (cycles).
    pub ttft: LatencySummary,
    /// End-to-end latency percentiles (cycles).
    pub e2e: LatencySummary,
    /// The full engine run (outcomes, iteration counts, makespan).
    pub run: EngineRun,
}

impl ServingRow {
    /// Generated tokens per second per GPU at `clock_ghz`.
    pub fn tokens_per_sec_per_gpu(&self, clock_ghz: f64) -> f64 {
        let seconds = self.run.makespan as f64 / (clock_ghz * 1e9);
        self.run.generated_tokens as f64 / seconds / SERVE_TP as f64
    }
}

/// The merged multi-tenant request trace for one load point. Every
/// tenant draws from its own seeded stream; gaps are calibrated
/// against the **baseline** engine's decode capacity so both engines
/// serve identical traffic.
pub fn serving_traffic(
    cost: &mut CostModel,
    load_permille: u64,
    arrival: ArrivalKind,
    tenants: u64,
    token_divisor: u64,
) -> Vec<Request> {
    let decode_iter = cost.iteration_cycles(EngineMode::Baseline, SERVE_MAX_BATCH, 1000);
    let mean_gap = mean_gap_cycles(
        decode_iter,
        expected_output_tokens(token_divisor),
        SERVE_MAX_BATCH,
        load_permille,
    );
    let cfg = TrafficConfig {
        requests: requests_per_tenant(token_divisor),
        arrival,
        mean_gap_cycles: mean_gap,
        token_divisor,
    };
    let mut all = Vec::new();
    for tenant in 0..tenants {
        let seed = SERVE_SEED.wrapping_add(tenant.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        all.extend(generate_requests(&cfg, tenant, seed));
    }
    all
}

/// Runs one serving point. The caller shares `cost` across points so
/// sublayer simulations are paid once per token bucket.
#[allow(clippy::too_many_arguments)] // -- one serving cell is genuinely this many knobs; every study wrapper names them explicitly
pub fn serving_point(
    cost: &mut CostModel,
    topology: &'static str,
    load_permille: u64,
    arrival: ArrivalKind,
    mode: EngineMode,
    tenants: u64,
    token_divisor: u64,
    ins: Option<&mut Instruments>,
) -> ServingRow {
    let sys = serve_system();
    let topo = serve_topology(topology, &sys).expect("known serving fabric");
    // Price co-tenancy with the heaviest recurring collective: the
    // prefill-scale reduce-scatter payload.
    let payload = SERVE_MAX_PREFILL_TOKENS.min(MAX_BUCKET_TOKENS) * SERVE_HIDDEN * 2;
    let contention = contention_factor_permille(&topo, payload, tenants);
    let requests = serving_traffic(cost, load_permille, arrival, tenants, token_divisor);
    let cfg = EngineConfig {
        mode,
        max_batch: SERVE_MAX_BATCH,
        max_prefill_tokens: SERVE_MAX_PREFILL_TOKENS,
        contention_permille: contention,
    };
    let run = run_engine(cost, &cfg, &requests, ins);
    let ttft: Vec<Cycle> = run.outcomes.iter().map(|o| o.ttft_cycles()).collect();
    let e2e: Vec<Cycle> = run.outcomes.iter().map(|o| o.e2e_cycles()).collect();
    ServingRow {
        topology,
        load_permille,
        arrival,
        mode,
        tenants,
        contention_permille: contention,
        ttft: LatencySummary::of(&ttft),
        e2e: LatencySummary::of(&e2e),
        run,
    }
}

/// A fresh cost model for the serving deployment.
pub fn serve_cost_model() -> CostModel {
    CostModel::new(&serve_system(), SERVE_HIDDEN, SERVE_LAYERS, SERVE_TP)
}

/// [`serve_cost_model`] pricing its sublayer buckets with an explicit
/// simulation mode (stepped reference vs fast-forward); the modes are
/// byte-identical, which the determinism pipeline asserts through
/// [`serving_study_in_mode`].
pub fn serve_cost_model_in_mode(mode: SimMode) -> CostModel {
    CostModel::new_in_mode(&serve_system(), SERVE_HIDDEN, SERVE_LAYERS, SERVE_TP, mode)
}

/// The headline serving study: every fabric × load point × engine
/// mode, [`SERVE_TENANTS`] tenants, in deterministic row order
/// (fabric-major, then load, then baseline before fused).
pub fn serving_study(token_divisor: u64) -> Vec<ServingRow> {
    serving_study_in_mode(token_divisor, SimMode::default())
}

/// [`serving_study`] with the sublayer simulations running in an
/// explicit mode. Every row must be identical across modes.
pub fn serving_study_in_mode(token_divisor: u64, mode: SimMode) -> Vec<ServingRow> {
    let mut cost = serve_cost_model_in_mode(mode);
    let mut rows = Vec::new();
    for topology in SERVE_TOPOLOGIES {
        for (load, arrival) in SERVE_LOAD_POINTS {
            for mode in [EngineMode::Baseline, EngineMode::Fused] {
                rows.push(serving_point(
                    &mut cost,
                    topology,
                    load,
                    arrival,
                    mode,
                    SERVE_TENANTS,
                    token_divisor,
                    None,
                ));
            }
        }
    }
    rows
}

/// The fused deep-dive: the high-load bursty point on the ring,
/// swept over tenant counts, both engines — how much of the fused
/// advantage survives as fabric contention grows.
pub fn tenant_sweep(token_divisor: u64) -> Vec<ServingRow> {
    let (load, arrival) = SERVE_LOAD_POINTS[1];
    let mut cost = serve_cost_model();
    let mut rows = Vec::new();
    for tenants in [1u64, 2, 4] {
        for mode in [EngineMode::Baseline, EngineMode::Fused] {
            rows.push(serving_point(
                &mut cost,
                "ring",
                load,
                arrival,
                mode,
                tenants,
                token_divisor,
                None,
            ));
        }
    }
    rows
}

/// A fully-instrumented serving run — the high-load bursty point on
/// the ring under the fused engine — for `figures --trace` exports
/// and the determinism pipeline. Returns the populated instruments,
/// the measured row, and the core clock.
pub fn traced_serving(token_divisor: u64) -> (Instruments, ServingRow, f64) {
    traced_serving_in_mode(token_divisor, SimMode::default())
}

/// [`traced_serving`] with the sublayer simulations priced under an
/// explicit mode; exported bytes must not depend on it.
pub fn traced_serving_in_mode(token_divisor: u64, mode: SimMode) -> (Instruments, ServingRow, f64) {
    let mut cost = serve_cost_model_in_mode(mode);
    let mut ins = Instruments::full();
    let (load, arrival) = SERVE_LOAD_POINTS[1];
    let row = serving_point(
        &mut cost,
        "ring",
        load,
        arrival,
        EngineMode::Fused,
        SERVE_TENANTS,
        token_divisor,
        Some(&mut ins),
    );
    (ins, row, serve_system().gpu.clock_ghz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::request_log;

    /// Fast-scale divisor used throughout (mirrors `--fast` figures).
    const FAST: u64 = 8;

    #[test]
    fn headline_study_shape_and_acceptance() {
        let rows = serving_study(FAST);
        assert_eq!(
            rows.len(),
            SERVE_TOPOLOGIES.len() * SERVE_LOAD_POINTS.len() * 2
        );
        // Identical traffic per (fabric, load): baseline and fused
        // rows serve the same number of requests.
        for pair in rows.chunks(2) {
            let (base, fused) = (&pair[0], &pair[1]);
            assert_eq!(base.mode, EngineMode::Baseline);
            assert_eq!(fused.mode, EngineMode::Fused);
            assert_eq!(base.run.outcomes.len(), fused.run.outcomes.len());
            assert_eq!(base.contention_permille, fused.contention_permille);
            // Fused never loses on p99, and strictly wins at the
            // high-load point (the ISSUE's acceptance criterion).
            assert!(fused.e2e.p99 <= base.e2e.p99);
            if base.load_permille == 900 {
                assert!(
                    fused.e2e.p99 < base.e2e.p99,
                    "{} @900: fused p99 {} vs baseline {}",
                    base.topology,
                    fused.e2e.p99,
                    base.e2e.p99
                );
            }
        }
    }

    #[test]
    fn stepped_and_fast_forward_studies_agree() {
        assert_eq!(
            serving_study_in_mode(FAST, SimMode::Stepped),
            serving_study_in_mode(FAST, SimMode::FastForward),
            "serving rows must not depend on the time-advancement mode"
        );
    }

    #[test]
    fn study_is_deterministic() {
        let a = serving_study(FAST);
        let b = serving_study(FAST);
        assert_eq!(a, b);
        let log_a: String = a.iter().map(|r| request_log(&r.run.outcomes)).collect();
        let log_b: String = b.iter().map(|r| request_log(&r.run.outcomes)).collect();
        assert_eq!(log_a, log_b);
    }

    #[test]
    fn tenant_sweep_contention_monotone() {
        let rows = tenant_sweep(FAST);
        assert_eq!(rows.len(), 6);
        let factors: Vec<u64> = rows
            .iter()
            .filter(|r| r.mode == EngineMode::Baseline)
            .map(|r| r.contention_permille)
            .collect();
        assert_eq!(factors[0], 1000, "single tenant is parity");
        assert!(factors[1] >= factors[0] && factors[2] >= factors[1]);
        assert!(factors[2] > 1000, "four tenants must contend");
    }

    #[test]
    fn throughput_is_positive_and_fused_wins() {
        let rows = serving_study(FAST);
        let clock = serve_system().gpu.clock_ghz;
        for pair in rows.chunks(2) {
            let base = pair[0].tokens_per_sec_per_gpu(clock);
            let fused = pair[1].tokens_per_sec_per_gpu(clock);
            assert!(base > 0.0);
            assert!(
                fused >= base,
                "{} @{}: fused {fused:.0} tok/s < baseline {base:.0}",
                pair[0].topology,
                pair[0].load_permille
            );
        }
    }

    #[test]
    fn traced_run_matches_untraced() {
        let (ins, row, clock) = traced_serving(FAST);
        assert!(clock > 0.0);
        let records = ins.tracer.as_ref().expect("tracer on").records();
        assert!(!records.is_empty());
        // Tracing must not perturb simulated results.
        let mut cost = serve_cost_model();
        let (load, arrival) = SERVE_LOAD_POINTS[1];
        let bare = serving_point(
            &mut cost,
            "ring",
            load,
            arrival,
            EngineMode::Fused,
            SERVE_TENANTS,
            FAST,
            None,
        );
        assert_eq!(bare, row);
    }
}
