//! Iteration cost model: prices one continuous-batching iteration by
//! running the paper's sublayer configurations on bucketed token
//! counts.
//!
//! The serving engine asks "what does an iteration over `t` tokens
//! cost?" thousands of times; simulating a cycle-accurate GEMM +
//! collective for every distinct `t` would dwarf the serving study
//! itself. Instead token counts are rounded up to power-of-two
//! buckets and each bucket's sublayer costs are simulated **once**
//! ([`Configuration::Sequential`] and [`Configuration::T3Mca`] on the
//! FC-2-style sliced shape), then memoised in a [`BTreeMap`] — ordered,
//! so iteration over the cache is deterministic. Fabric contention
//! from co-tenants scales only the *exposed* communication: the fused
//! engine absorbs slowdown until the reduce-scatter outgrows the
//! GEMM span it hides inside, which is exactly the T3 mechanism the
//! serving figures quantify.

use std::collections::BTreeMap;

use t3_core::configs::Configuration;
use t3_gpu::gemm::GemmShape;
use t3_sim::config::SystemConfig;
use t3_sim::{Cycle, SimMode};

/// Which execution mode the serving engine prices iterations with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Sequential GEMM → reduce-scatter → all-gather per sublayer.
    Baseline,
    /// T3-MCA fused GEMM-RS (tracking & triggering + MCA arbitration).
    Fused,
}

impl EngineMode {
    /// Canonical label for reports and fingerprints.
    pub fn label(self) -> &'static str {
        match self {
            EngineMode::Baseline => "baseline",
            EngineMode::Fused => "t3-fused",
        }
    }
}

/// Simulated per-sublayer costs for one token bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerCosts {
    /// Sequential GEMM cycles.
    pub seq_gemm: Cycle,
    /// Sequential exposed reduce-scatter cycles.
    pub seq_rs: Cycle,
    /// All-gather cycles (sequential in both modes).
    pub seq_ag: Cycle,
    /// Fused GEMM+RS span under T3-MCA (the RS is hidden inside).
    pub fused_span: Cycle,
}

/// Scales `cycles` by a permille factor with u128 intermediates.
fn scale_permille(cycles: Cycle, permille: u64) -> Cycle {
    (cycles as u128 * permille as u128 / 1000) as Cycle
}

/// Memoising iteration-cost oracle for one (system, model slice)
/// deployment.
#[derive(Debug, Clone)]
pub struct CostModel {
    sys: SystemConfig,
    hidden: u64,
    layers: u64,
    tp: u64,
    mode: SimMode,
    cache: BTreeMap<u64, LayerCosts>,
}

/// Largest token bucket the model will simulate; bigger iteration
/// token counts are priced as multiples of this bucket.
pub const MAX_BUCKET_TOKENS: u64 = 2048;

/// Smallest token bucket (decode iterations with few running
/// sequences all share it).
pub const MIN_BUCKET_TOKENS: u64 = 8;

/// Tensor-sliced sublayers per transformer layer whose all-reduce the
/// serving engine prices (OP and FC-2 in the forward pass).
pub const SLICED_SUBLAYERS_PER_LAYER: u64 = 2;

impl CostModel {
    /// Builds an empty cost model for a `hidden`-wide, `layers`-deep
    /// model sliced `tp` ways on `sys`.
    ///
    /// # Panics
    ///
    /// Panics if `tp` or `layers` is zero.
    pub fn new(sys: &SystemConfig, hidden: u64, layers: u64, tp: u64) -> Self {
        Self::new_in_mode(sys, hidden, layers, tp, SimMode::default())
    }

    /// [`CostModel::new`] with an explicit sublayer simulation mode.
    /// Stepped and fast-forward price every bucket identically — the
    /// determinism pipeline asserts it — so this only exists to run
    /// the equivalence tests and to benchmark the two engines.
    ///
    /// # Panics
    ///
    /// As [`CostModel::new`].
    pub fn new_in_mode(
        sys: &SystemConfig,
        hidden: u64,
        layers: u64,
        tp: u64,
        mode: SimMode,
    ) -> Self {
        assert!(tp > 0, "TP degree must be positive");
        assert!(layers > 0, "model must have layers");
        CostModel {
            sys: sys.clone(),
            hidden,
            layers,
            tp,
            mode,
            cache: BTreeMap::new(),
        }
    }

    /// The power-of-two bucket a token count is priced at.
    pub fn bucket(tokens: u64) -> u64 {
        tokens
            .max(1)
            .next_power_of_two()
            .clamp(MIN_BUCKET_TOKENS, MAX_BUCKET_TOKENS)
    }

    /// Per-sublayer costs for `tokens`, simulating and memoising the
    /// bucket on first use.
    pub fn layer_costs(&mut self, tokens: u64) -> LayerCosts {
        let bucket = Self::bucket(tokens);
        if let Some(&hit) = self.cache.get(&bucket) {
            return hit;
        }
        // The FC-2-style sliced sublayer: full `tokens x hidden`
        // output, K shrunk by the TP degree (Megatron slicing).
        let shape = GemmShape::new(bucket, self.hidden, (4 * self.hidden).div_ceil(self.tp));
        let seq = Configuration::Sequential.run_in_mode(&self.sys, &shape, self.mode);
        let fused = Configuration::T3Mca.run_in_mode(&self.sys, &shape, self.mode);
        let costs = LayerCosts {
            seq_gemm: seq.gemm_cycles,
            seq_rs: seq.rs_cycles,
            seq_ag: seq.ag_cycles,
            fused_span: fused.gemm_cycles,
        };
        self.cache.insert(bucket, costs);
        costs
    }

    /// Cycles for one engine iteration over `tokens` under `mode`,
    /// with fabric contention inflating exposed communication by
    /// `contention_permille / 1000` (1000 = no co-tenants).
    ///
    /// Baseline exposes RS and AG fully; the fused engine hides the
    /// (contended) RS inside the GEMM span until it no longer fits.
    /// Token counts above [`MAX_BUCKET_TOKENS`] are priced as whole
    /// multiples of the largest bucket, so huge prefill batches stay
    /// integer-exact.
    ///
    /// # Panics
    ///
    /// Panics if `contention_permille < 1000` (co-tenancy cannot speed
    /// the fabric up).
    pub fn iteration_cycles(
        &mut self,
        mode: EngineMode,
        tokens: u64,
        contention_permille: u64,
    ) -> Cycle {
        assert!(
            contention_permille >= 1000,
            "contention factor below parity: {contention_permille}"
        );
        let repeats = tokens.max(1).div_ceil(MAX_BUCKET_TOKENS).max(1);
        let per_bucket_tokens = tokens.max(1).div_ceil(repeats);
        let c = self.layer_costs(per_bucket_tokens);
        let sublayer = match mode {
            EngineMode::Baseline => {
                c.seq_gemm + scale_permille(c.seq_rs + c.seq_ag, contention_permille)
            }
            EngineMode::Fused => {
                c.fused_span
                    .max(scale_permille(c.seq_rs, contention_permille))
                    + scale_permille(c.seq_ag, contention_permille)
            }
        };
        sublayer * SLICED_SUBLAYERS_PER_LAYER * self.layers * repeats
    }

    /// Number of distinct buckets simulated so far.
    pub fn cached_buckets(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        // A narrow slice keeps debug-mode sublayer sims quick while
        // preserving the GEMM-vs-collective balance the paper studies.
        CostModel::new(&SystemConfig::paper_default(), 1024, 4, 8)
    }

    #[test]
    fn buckets_are_powers_of_two_and_clamped() {
        assert_eq!(CostModel::bucket(1), MIN_BUCKET_TOKENS);
        assert_eq!(CostModel::bucket(8), 8);
        assert_eq!(CostModel::bucket(9), 16);
        assert_eq!(CostModel::bucket(1000), 1024);
        assert_eq!(CostModel::bucket(1 << 20), MAX_BUCKET_TOKENS);
    }

    #[test]
    fn memoisation_reuses_buckets() {
        let mut m = model();
        let a = m.iteration_cycles(EngineMode::Baseline, 10, 1000);
        let b = m.iteration_cycles(EngineMode::Fused, 12, 1000);
        assert_eq!(m.cached_buckets(), 1, "10 and 12 share the 16 bucket");
        assert!(a > 0 && b > 0);
        let _ = m.iteration_cycles(EngineMode::Baseline, 100, 1000);
        assert_eq!(m.cached_buckets(), 2);
    }

    #[test]
    fn fused_strictly_beats_baseline_at_any_contention() {
        let mut m = model();
        for contention in [1000u64, 1300, 2000] {
            for tokens in [8u64, 64, 512] {
                let base = m.iteration_cycles(EngineMode::Baseline, tokens, contention);
                let fused = m.iteration_cycles(EngineMode::Fused, tokens, contention);
                assert!(
                    fused < base,
                    "{tokens} tokens @ {contention}: fused {fused} >= baseline {base}"
                );
            }
        }
    }

    #[test]
    fn fused_absorbs_contention_better() {
        // The fused engine hides the contended RS inside the GEMM
        // span, so its absolute slowdown from co-tenancy is at most
        // the baseline's (which exposes the whole RS).
        let mut m = model();
        let tokens = 256;
        let base_solo = m.iteration_cycles(EngineMode::Baseline, tokens, 1000);
        let base_hot = m.iteration_cycles(EngineMode::Baseline, tokens, 1800);
        let fused_solo = m.iteration_cycles(EngineMode::Fused, tokens, 1000);
        let fused_hot = m.iteration_cycles(EngineMode::Fused, tokens, 1800);
        assert!(base_hot > base_solo);
        assert!(fused_hot >= fused_solo);
        assert!(
            fused_hot - fused_solo <= base_hot - base_solo,
            "fused contention penalty {} vs baseline {}",
            fused_hot - fused_solo,
            base_hot - base_solo
        );
    }

    #[test]
    fn oversized_iterations_price_as_bucket_multiples() {
        let mut m = model();
        let one = m.iteration_cycles(EngineMode::Baseline, MAX_BUCKET_TOKENS, 1000);
        let two = m.iteration_cycles(EngineMode::Baseline, 2 * MAX_BUCKET_TOKENS, 1000);
        assert_eq!(two, 2 * one);
    }

    #[test]
    #[should_panic(expected = "below parity")]
    fn contention_below_parity_rejected() {
        let _ = model().iteration_cycles(EngineMode::Baseline, 8, 999);
    }

    #[test]
    fn stepped_and_fast_forward_price_buckets_identically() {
        let sys = SystemConfig::paper_default();
        let mut stepped = CostModel::new_in_mode(&sys, 1024, 4, 8, SimMode::Stepped);
        let mut fast = CostModel::new_in_mode(&sys, 1024, 4, 8, SimMode::FastForward);
        for tokens in [8u64, 64, 512] {
            assert_eq!(
                stepped.layer_costs(tokens),
                fast.layer_costs(tokens),
                "bucket for {tokens} tokens diverged between engines"
            );
        }
    }
}
