//! Multi-tenant fabric interference.
//!
//! When several request streams share TP groups on one fabric, their
//! collectives contend for the same link serialisers. This module
//! prices that contention with the existing t3-topo timing model: it
//! runs one tenant's ring reduce-scatter alone, then `tenants`
//! staggered copies of the same schedule on a **single shared
//! [`Fabric`]**, and reports the worst per-tenant elapsed time as a
//! permille slowdown factor. The serving cost model then inflates
//! exposed communication by that factor — no synthetic constants, the
//! store-and-forward fabric decides.

use t3_sim::{Bytes, Cycle};
use t3_topo::fabric::Fabric;
use t3_topo::graph::Topology;
use t3_topo::schedule::Schedule;

/// Contention factor (permille) for `tenants` concurrent copies of
/// the reduce-scatter over `payload_bytes` on `topo`.
///
/// 1000 means "no slowdown"; 1500 means co-tenancy makes each
/// tenant's collective 1.5x slower. One tenant always returns 1000
/// by construction. Tenant `t`'s schedule is offset by
/// `t * solo / (4 * tenants)` cycles so the copies overlap heavily
/// but not in lockstep — in lockstep symmetric rings can interleave
/// perfectly and hide real contention.
///
/// # Panics
///
/// Panics if `tenants` is zero or `payload_bytes` is zero.
pub fn contention_factor_permille(topo: &Topology, payload_bytes: Bytes, tenants: u64) -> u64 {
    assert!(tenants > 0, "at least one tenant");
    assert!(payload_bytes > 0, "payload must be positive");
    let sched = Schedule::reduce_scatter(topo);
    let solo = Fabric::new(topo).run_schedule(&sched, payload_bytes, None);
    if tenants == 1 {
        return 1000;
    }
    let contended = contended_elapsed(topo, &sched, payload_bytes, tenants, solo);
    ((contended as u128 * 1000).div_ceil(solo as u128) as u64).max(1000)
}

/// Runs `tenants` staggered copies of `sched` on one shared fabric
/// and returns the worst per-tenant elapsed time (finish minus that
/// tenant's stagger offset).
///
/// This replicates [`Fabric::run_schedule`]'s recv-gated executor,
/// with one ready-vector per tenant: a tenant's step `s + 1` send
/// from a device waits for its own step `s` receive there, while all
/// tenants' messages contend on the shared link serialisers.
fn contended_elapsed(
    topo: &Topology,
    sched: &Schedule,
    payload_bytes: Bytes,
    tenants: u64,
    solo: Cycle,
) -> Cycle {
    let n = sched.devices();
    let gated = sched.kind().is_recv_gated();
    let stagger = (solo / (4 * tenants)).max(1);
    let mut fabric = Fabric::new(topo);
    let offsets: Vec<Cycle> = (0..tenants).map(|t| t * stagger).collect();
    let mut ready: Vec<Vec<Cycle>> = offsets.iter().map(|&o| vec![o; n]).collect();
    let mut finish: Vec<Cycle> = offsets.clone();
    for step in sched.steps() {
        // Interleave tenants *within* each schedule step: every
        // tenant's step-s sends enter the serialisers before anyone's
        // step s+1, which is how concurrent collectives actually
        // share a fabric.
        let mut next_ready: Vec<Vec<Cycle>> = vec![vec![0; n]; tenants as usize];
        for (t, t_ready) in ready.iter().enumerate() {
            for send in step {
                let bytes = sched.chunk_size(payload_bytes, send.chunk);
                if bytes == 0 {
                    continue;
                }
                let start = if gated { t_ready[send.src] } else { offsets[t] };
                let arrival = fabric.send(start, send.src, send.dst, send.chunk as u64, bytes);
                let nr = &mut next_ready[t][send.dst];
                *nr = (*nr).max(arrival);
                finish[t] = finish[t].max(arrival);
            }
        }
        if gated {
            for (t_ready, t_next) in ready.iter_mut().zip(&next_ready) {
                for (r, &nr) in t_ready.iter_mut().zip(t_next) {
                    *r = (*r).max(nr);
                }
            }
        }
    }
    let worst = finish
        .iter()
        .zip(&offsets)
        .map(|(&f, &o)| f - o)
        .max()
        .expect("at least one tenant");
    // Consume arrivals so the borrow-checker-visible fabric state is
    // fully drained (mirrors run_schedule's own cleanup).
    let horizon = *finish.iter().max().expect("tenants");
    for gpu in 0..n {
        let _ = fabric.deliveries_until(gpu, horizon);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use t3_sim::config::SystemConfig;

    fn link() -> t3_sim::config::LinkConfig {
        SystemConfig::paper_default().link
    }

    #[test]
    fn single_tenant_is_parity() {
        let topo = Topology::ring(8, &link());
        assert_eq!(contention_factor_permille(&topo, 1 << 20, 1), 1000);
    }

    #[test]
    fn contention_grows_with_tenants() {
        let topo = Topology::ring(8, &link());
        let two = contention_factor_permille(&topo, 1 << 20, 2);
        let four = contention_factor_permille(&topo, 1 << 20, 4);
        assert!(two > 1000, "two tenants must contend: {two}");
        assert!(four >= two, "four tenants {four} vs two {two}");
        // Sanity bound: k tenants can at worst serialise fully.
        assert!(four <= 4000 + 500, "four-tenant factor {four} implausible");
    }

    #[test]
    fn richer_fabrics_contend_less() {
        let payload = 1 << 20;
        let ring = Topology::ring(8, &link());
        let full = Topology::fully_connected(8, &link());
        let ring_f = contention_factor_permille(&ring, payload, 4);
        let full_f = contention_factor_permille(&full, payload, 4);
        assert!(
            full_f <= ring_f,
            "fully-connected {full_f} should not contend more than ring {ring_f}"
        );
    }

    #[test]
    fn deterministic_across_calls() {
        let topo = Topology::hierarchical(2, 4, &link(), &link());
        let a = contention_factor_permille(&topo, 3 << 19, 3);
        let b = contention_factor_permille(&topo, 3 << 19, 3);
        assert_eq!(a, b);
    }
}
