//! The continuous-batching serving engine.
//!
//! An iteration-level scheduler in the vLLM/Orca mould, driven
//! entirely by simulated cycles: requests arrive on an open-loop
//! trace, wait in a FIFO admission queue, get batched into **prefill**
//! iterations (prompt processing, bounded by a token budget and free
//! decode slots), then generate one token per **decode** iteration
//! until done. Prefill has priority — a waiting request preempts the
//! next decode iteration, which is what keeps time-to-first-token
//! bounded under load. Iteration costs come from [`CostModel`], so
//! the baseline-vs-fused comparison inherits the paper's simulated
//! GEMM/collective timings, including fabric contention from
//! co-tenants.

use t3_sim::Cycle;
use t3_trace::{Event, Instruments};

use crate::cost::{CostModel, EngineMode};
use crate::request::{Request, RequestOutcome};

/// `kind` arg value of a prefill [`Event::ServeIteration`].
pub const ITER_KIND_PREFILL: u64 = 0;
/// `kind` arg value of a decode [`Event::ServeIteration`].
pub const ITER_KIND_DECODE: u64 = 1;

/// Engine scheduling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Execution mode iterations are priced with.
    pub mode: EngineMode,
    /// Decode slots: maximum concurrently running sequences.
    pub max_batch: u64,
    /// Token budget of one prefill iteration (a request is always
    /// admitted alone if its prompt alone exceeds the budget).
    pub max_prefill_tokens: u64,
    /// Fabric contention factor from co-tenants (1000 = alone).
    pub contention_permille: u64,
}

impl EngineConfig {
    /// A reasonable default: 16 decode slots, 2048-token prefill
    /// budget, no co-tenants.
    pub fn with_mode(mode: EngineMode) -> Self {
        EngineConfig {
            mode,
            max_batch: 16,
            max_prefill_tokens: 2048,
            contention_permille: 1000,
        }
    }
}

/// Aggregate result of one engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineRun {
    /// Per-request lifecycles, in completion order.
    pub outcomes: Vec<RequestOutcome>,
    /// Prefill iterations executed.
    pub prefill_iterations: u64,
    /// Decode iterations executed.
    pub decode_iterations: u64,
    /// Total tokens generated (decode output, first tokens included).
    pub generated_tokens: u64,
    /// Cycle the last request completed.
    pub makespan: Cycle,
}

/// A sequence occupying a decode slot.
#[derive(Debug, Clone, Copy)]
struct Running {
    req: Request,
    admitted: Cycle,
    first_token: Cycle,
    remaining: u64,
}

/// Runs the engine over `requests` (any order; scheduled in arrival
/// order with `(arrival, tenant, id)` tie-breaks) and returns every
/// request's lifecycle. Pass `ins` to record per-iteration and
/// per-request trace events.
///
/// # Panics
///
/// Panics if `cfg.max_batch` is zero or any request generates zero
/// tokens.
pub fn run_engine(
    cost: &mut CostModel,
    cfg: &EngineConfig,
    requests: &[Request],
    mut ins: Option<&mut Instruments>,
) -> EngineRun {
    assert!(cfg.max_batch > 0, "engine needs at least one decode slot");
    let mut pending: Vec<Request> = requests.to_vec();
    pending.sort_by_key(|r| (r.arrival, r.tenant, r.id));
    for r in &pending {
        assert!(r.output_tokens > 0, "request must generate tokens");
    }
    let mut next_pending = 0usize;
    let mut waiting: std::collections::VecDeque<Request> = std::collections::VecDeque::new();
    let mut running: Vec<Running> = Vec::new();
    let mut run = EngineRun {
        outcomes: Vec::with_capacity(pending.len()),
        prefill_iterations: 0,
        decode_iterations: 0,
        generated_tokens: 0,
        makespan: 0,
    };
    let mut now: Cycle = 0;
    loop {
        // Admit everything that has arrived by now into the FIFO.
        while next_pending < pending.len() && pending[next_pending].arrival <= now {
            waiting.push_back(pending[next_pending]);
            next_pending += 1;
        }
        let free_slots = (cfg.max_batch as usize).saturating_sub(running.len());
        if !waiting.is_empty() && free_slots > 0 {
            // Prefill iteration: fill free slots under the token
            // budget; the head request always gets in so oversized
            // prompts cannot starve.
            let mut batch: Vec<Request> = Vec::new();
            let mut batch_tokens = 0u64;
            while batch.len() < free_slots {
                let Some(head) = waiting.front() else { break };
                if !batch.is_empty() && batch_tokens + head.prompt_tokens > cfg.max_prefill_tokens {
                    break;
                }
                let r = waiting.pop_front().expect("peeked head exists");
                batch_tokens += r.prompt_tokens;
                batch.push(r);
            }
            let cycles = cost.iteration_cycles(cfg.mode, batch_tokens, cfg.contention_permille);
            let end = now + cycles;
            if let Some(i) = ins.as_deref_mut() {
                i.record(
                    end,
                    Event::ServeIteration {
                        kind: ITER_KIND_PREFILL,
                        batch: batch.len() as u64,
                        tokens: batch_tokens,
                        start: now,
                        end,
                    },
                );
            }
            run.prefill_iterations += 1;
            run.generated_tokens += batch.len() as u64;
            for req in batch {
                let seq = Running {
                    req,
                    admitted: now,
                    first_token: end,
                    remaining: req.output_tokens - 1,
                };
                if seq.remaining == 0 {
                    retire(&mut run, &seq, end, ins.as_deref_mut());
                } else {
                    running.push(seq);
                }
            }
            now = end;
        } else if !running.is_empty() {
            // Decode iteration: one token per running sequence.
            let batch = running.len() as u64;
            let cycles = cost.iteration_cycles(cfg.mode, batch, cfg.contention_permille);
            let end = now + cycles;
            if let Some(i) = ins.as_deref_mut() {
                i.record(
                    end,
                    Event::ServeIteration {
                        kind: ITER_KIND_DECODE,
                        batch,
                        tokens: batch,
                        start: now,
                        end,
                    },
                );
            }
            run.decode_iterations += 1;
            run.generated_tokens += batch;
            let mut still_running = Vec::with_capacity(running.len());
            for mut seq in running {
                seq.remaining -= 1;
                if seq.remaining == 0 {
                    retire(&mut run, &seq, end, ins.as_deref_mut());
                } else {
                    still_running.push(seq);
                }
            }
            running = still_running;
            now = end;
        } else if next_pending < pending.len() {
            // Idle: jump to the next arrival.
            now = pending[next_pending].arrival;
        } else {
            break;
        }
    }
    run
}

/// Records a completed request into the run (and the trace).
fn retire(run: &mut EngineRun, seq: &Running, end: Cycle, ins: Option<&mut Instruments>) {
    let outcome = RequestOutcome {
        request: seq.req,
        admitted: seq.admitted,
        first_token: seq.first_token,
        completed: end,
    };
    if let Some(i) = ins {
        i.record(
            end,
            Event::RequestLifecycle {
                id: seq.req.id,
                tenant: seq.req.tenant,
                prompt_tokens: seq.req.prompt_tokens,
                output_tokens: seq.req.output_tokens,
                admitted: seq.admitted,
                first_token: seq.first_token,
                start: seq.req.arrival,
                end,
            },
        );
    }
    run.makespan = run.makespan.max(end);
    run.outcomes.push(outcome);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{generate_requests, ArrivalKind, TrafficConfig};
    use t3_sim::config::SystemConfig;

    fn cost() -> CostModel {
        CostModel::new(&SystemConfig::paper_default(), 1024, 2, 8)
    }

    fn traffic(n: usize) -> Vec<Request> {
        generate_requests(
            &TrafficConfig {
                requests: n,
                arrival: ArrivalKind::Poisson,
                mean_gap_cycles: 200_000,
                token_divisor: 8,
            },
            0,
            99,
        )
    }

    #[test]
    fn every_request_completes_with_ordered_lifecycle() {
        let reqs = traffic(24);
        let mut c = cost();
        let run = run_engine(
            &mut c,
            &EngineConfig::with_mode(EngineMode::Baseline),
            &reqs,
            None,
        );
        assert_eq!(run.outcomes.len(), reqs.len());
        let expected_tokens: u64 = reqs.iter().map(|r| r.output_tokens).sum();
        assert_eq!(run.generated_tokens, expected_tokens);
        for o in &run.outcomes {
            assert!(o.request.arrival <= o.admitted);
            assert!(o.admitted < o.first_token, "prefill takes time");
            assert!(o.first_token <= o.completed);
            assert!(o.completed <= run.makespan);
            if o.request.output_tokens > 1 {
                assert!(o.first_token < o.completed, "decode takes time");
            }
        }
        assert!(run.prefill_iterations > 0 && run.decode_iterations > 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let reqs = traffic(16);
        let cfg = EngineConfig::with_mode(EngineMode::Fused);
        let a = run_engine(&mut cost(), &cfg, &reqs, None);
        let b = run_engine(&mut cost(), &cfg, &reqs, None);
        assert_eq!(a, b);
    }

    #[test]
    fn fused_completes_no_later_and_wins_somewhere() {
        let reqs = traffic(24);
        let base = run_engine(
            &mut cost(),
            &EngineConfig::with_mode(EngineMode::Baseline),
            &reqs,
            None,
        );
        let fused = run_engine(
            &mut cost(),
            &EngineConfig::with_mode(EngineMode::Fused),
            &reqs,
            None,
        );
        assert!(fused.makespan < base.makespan);
        let e2e =
            |run: &EngineRun| -> u64 { run.outcomes.iter().map(|o| o.e2e_cycles()).sum::<u64>() };
        assert!(e2e(&fused) < e2e(&base), "fused must cut total latency");
    }

    #[test]
    fn batch_cap_is_respected_via_iteration_counts() {
        // One decode slot: every request prefills alone and decodes
        // alone, so iteration counts are exactly determined.
        let reqs = traffic(6);
        let mut cfg = EngineConfig::with_mode(EngineMode::Baseline);
        cfg.max_batch = 1;
        let run = run_engine(&mut cost(), &cfg, &reqs, None);
        assert_eq!(run.prefill_iterations, 6);
        let decode_tokens: u64 = reqs.iter().map(|r| r.output_tokens - 1).sum();
        assert_eq!(run.decode_iterations, decode_tokens);
    }

    #[test]
    fn traces_cover_every_request_and_iteration() {
        let reqs = traffic(8);
        let mut ins = Instruments::full();
        let run = run_engine(
            &mut cost(),
            &EngineConfig::with_mode(EngineMode::Fused),
            &reqs,
            Some(&mut ins),
        );
        let records = ins.tracer.as_ref().expect("tracer on").records();
        let iters = records
            .iter()
            .filter(|r| matches!(r.event, Event::ServeIteration { .. }))
            .count() as u64;
        let lives = records
            .iter()
            .filter(|r| matches!(r.event, Event::RequestLifecycle { .. }))
            .count();
        assert_eq!(iters, run.prefill_iterations + run.decode_iterations);
        assert_eq!(lives, reqs.len());
    }

    #[test]
    fn single_token_requests_complete_at_prefill() {
        let mut reqs = traffic(4);
        for r in &mut reqs {
            r.output_tokens = 1;
        }
        let run = run_engine(
            &mut cost(),
            &EngineConfig::with_mode(EngineMode::Baseline),
            &reqs,
            None,
        );
        assert_eq!(run.decode_iterations, 0);
        for o in &run.outcomes {
            assert_eq!(o.first_token, o.completed);
        }
    }
}
