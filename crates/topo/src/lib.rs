//! Network-fabric subsystem (Section 7.1's topology generalisation).
//!
//! The paper evaluates T3 on a unidirectional intra-node ring and
//! argues (Section 7.1) that the Tracker/trigger mechanism is
//! topology-independent: the address-space configuration decides
//! *where* chunks go, and the fabric decides *how* they get there.
//! This crate makes the fabric explicit:
//!
//! * [`graph`] — a topology graph: nodes are GPUs or switches, edges
//!   are directed links with their own [`t3_sim::config::LinkConfig`].
//!   Constructors cover the fabrics the paper discusses (bidirectional
//!   ring, fully-connected) plus switch (star), 2D torus, and a
//!   hierarchical two-level "ring of rings" multi-node fabric.
//!   Shortest-path routes are precomputed for every GPU pair.
//! * [`schedule`] — topology-derived collective schedules:
//!   reduce-scatter, all-gather and all-to-all expressed as per-step
//!   `(src, dst, chunk, route)` send lists. On a ring topology the
//!   reduce-scatter/all-gather schedules are **bit-identical** to
//!   [`t3_net::ring::Ring`]'s algebra, so the functional collectives
//!   and both timing engines keep consuming one schedule source.
//! * [`fabric`] — the timing executor: one [`t3_net::link::Link`] per
//!   topology edge, store-and-forward per-hop serialisation (a
//!   multi-hop message occupies every link on its route, so messages
//!   sharing a switch port contend realistically), per-destination
//!   delivery queues, and per-link byte accounting that must match the
//!   schedule's closed-form prediction.

pub mod fabric;
pub mod graph;
pub mod schedule;

pub use fabric::{Arrival, Fabric};
pub use graph::{LinkId, NodeKind, TopoLink, Topology, TopologyKind};
pub use schedule::{CollectiveKind, Schedule, ScheduledSend};
