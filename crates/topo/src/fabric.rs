//! Timing fabric: one [`Link`] per topology edge, store-and-forward
//! routing, and a dependency-driven schedule executor.
//!
//! A message from GPU `s` to GPU `d` serialises onto **every** link of
//! the precomputed route in turn (store-and-forward): the hop `k + 1`
//! transmission starts only once the message fully arrives at hop
//! `k`'s far end, and each hop's serialiser is shared FIFO state — so
//! two messages crossing the same switch port contend exactly like the
//! single-link engines' sends do. Per-link byte counters come straight
//! from [`Link::total_sent`], which lets tests pin observed wire bytes
//! to [`Schedule::predicted_link_bytes`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use t3_net::link::Link;
use t3_sim::{Bytes, Cycle};
use t3_trace::{reborrow, Instruments};

use crate::graph::{LinkId, Topology};
use crate::schedule::Schedule;

/// A message that has fully arrived at a GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Caller-chosen tag (e.g. DMA command id).
    pub tag: u64,
    /// Sending GPU.
    pub src: usize,
    /// Payload size.
    pub bytes: Bytes,
    /// Cycle at which the last hop delivered the message.
    pub arrival: Cycle,
}

/// Pending inbox entry, ordered by `(arrival, seq)` so draining is
/// deterministic even when two messages land on the same cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Pending {
    arrival: Cycle,
    seq: u64,
    src: usize,
    tag: u64,
    bytes: Bytes,
}

/// The timing state of a whole fabric: every link's serialiser plus a
/// per-GPU inbox of in-flight messages.
#[derive(Debug, Clone)]
pub struct Fabric {
    topo: Topology,
    links: Vec<Link>,
    inboxes: Vec<BinaryHeap<Reverse<Pending>>>,
    seq: u64,
}

impl Fabric {
    /// Builds an idle fabric over `topo` (one [`Link`] per edge).
    pub fn new(topo: &Topology) -> Self {
        Fabric {
            links: topo.links().iter().map(|l| Link::new(&l.cfg)).collect(),
            inboxes: (0..topo.num_gpus()).map(|_| BinaryHeap::new()).collect(),
            topo: topo.clone(),
            seq: 0,
        }
    }

    /// The topology this fabric times.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Sends `bytes` from GPU `src` to GPU `dst` along the precomputed
    /// route, starting no earlier than `now`; returns the arrival
    /// cycle at `dst` and queues an [`Arrival`] in its inbox.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`, either id is not a GPU, or `bytes` is
    /// zero (links reject empty messages).
    pub fn send(&mut self, now: Cycle, src: usize, dst: usize, tag: u64, bytes: Bytes) -> Cycle {
        self.send_traced(now, src, dst, tag, bytes, None)
    }

    /// [`Fabric::send`] that also records every hop's serialiser busy
    /// span (one [`t3_trace::Event::LinkBusy`] per link on the route).
    /// Passing `None` is identical to `send`.
    pub fn send_traced(
        &mut self,
        now: Cycle,
        src: usize,
        dst: usize,
        tag: u64,
        bytes: Bytes,
        mut ins: Option<&mut Instruments>,
    ) -> Cycle {
        assert_ne!(src, dst, "no self sends");
        let route: Vec<LinkId> = self.topo.route(src, dst).to_vec();
        let mut t = now;
        for id in route {
            t = self.links[id.0].send_traced(t, tag, bytes, reborrow(&mut ins));
            // The fabric's inbox is the delivery record; drain the
            // link's own queue so it doesn't grow without bound.
            let _ = self.links[id.0].deliveries_until(Cycle::MAX);
        }
        let seq = self.seq;
        self.seq += 1;
        self.inboxes[dst].push(Reverse(Pending {
            arrival: t,
            seq,
            src,
            tag,
            bytes,
        }));
        t
    }

    /// Pops every message that has fully arrived at GPU `gpu` by
    /// `now`, in `(arrival, send order)` order.
    pub fn deliveries_until(&mut self, gpu: usize, now: Cycle) -> Vec<Arrival> {
        let mut out = Vec::new();
        while let Some(Reverse(head)) = self.inboxes[gpu].peek() {
            if head.arrival > now {
                break;
            }
            let Reverse(p) = self.inboxes[gpu].pop().expect("peeked entry exists");
            out.push(Arrival {
                tag: p.tag,
                src: p.src,
                bytes: p.bytes,
                arrival: p.arrival,
            });
        }
        out
    }

    /// The link behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Observed wire bytes per link, indexed by [`LinkId`]. After a
    /// schedule runs, this must equal
    /// [`Schedule::predicted_link_bytes`].
    pub fn link_bytes(&self) -> Vec<Bytes> {
        self.links.iter().map(Link::total_sent).collect()
    }

    /// Total wire bytes across every link (multi-hop messages count
    /// once per hop).
    pub fn total_wire_bytes(&self) -> Bytes {
        self.links.iter().map(Link::total_sent).sum()
    }

    /// Latest cycle at which any serialiser frees up.
    pub fn busy_until(&self) -> Cycle {
        self.links.iter().map(Link::busy_until).max().unwrap_or(0)
    }

    /// True when every link is idle and every inbox drained.
    pub fn is_idle(&self, now: Cycle) -> bool {
        self.links.iter().all(|l| l.is_idle(now)) && self.inboxes.iter().all(BinaryHeap::is_empty)
    }

    /// The next cycle strictly after `now` at which polling
    /// [`Fabric::deliveries_until`] for GPU `gpu` can return something
    /// new: the head inbox arrival, clamped forward to `now + 1` (a
    /// head already due pops on the very next poll). `None` when the
    /// inbox is empty. Sends record their arrival eagerly, so inbox
    /// heads are the fabric's only future events.
    pub fn next_arrival(&self, gpu: usize, now: Cycle) -> Option<Cycle> {
        self.inboxes[gpu]
            .peek()
            .map(|Reverse(p)| p.arrival.max(now + 1))
    }

    /// The next cycle strictly after `now` at which any GPU's inbox can
    /// deliver; `None` when the whole fabric has nothing in flight.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        (0..self.inboxes.len())
            .filter_map(|gpu| self.next_arrival(gpu, now))
            .min()
    }

    /// Executes `sched` as a standalone collective over `payload_bytes`
    /// and returns the finish cycle (latest arrival).
    ///
    /// The executor is dependency-driven: for recv-gated collectives
    /// (reduce-scatter, all-gather — see
    /// [`crate::schedule::CollectiveKind::is_recv_gated`]) a device's
    /// step `s + 1` send starts no earlier than its step `s` receive
    /// arrived, because it forwards that very data. All-to-all sends
    /// are all resident up front, so they only contend on link
    /// serialisers. Zero-byte chunks (payloads smaller than the device
    /// count) are skipped — they have no wire representation.
    ///
    /// # Panics
    ///
    /// Panics if the schedule's device count does not match the
    /// fabric's GPU count.
    pub fn run_schedule(
        &mut self,
        sched: &Schedule,
        payload_bytes: Bytes,
        mut ins: Option<&mut Instruments>,
    ) -> Cycle {
        assert_eq!(
            sched.devices(),
            self.topo.num_gpus(),
            "schedule and fabric disagree on device count"
        );
        let n = sched.devices();
        let gated = sched.kind().is_recv_gated();
        let mut ready: Vec<Cycle> = vec![0; n];
        let mut finish: Cycle = 0;
        for step in sched.steps() {
            let mut next_ready: Vec<Cycle> = vec![0; n];
            for send in step {
                let bytes = sched.chunk_size(payload_bytes, send.chunk);
                if bytes == 0 {
                    continue;
                }
                let start = if gated { ready[send.src] } else { 0 };
                let arrival = self.send_traced(
                    start,
                    send.src,
                    send.dst,
                    send.chunk as u64,
                    bytes,
                    reborrow(&mut ins),
                );
                next_ready[send.dst] = next_ready[send.dst].max(arrival);
                finish = finish.max(arrival);
            }
            if gated {
                for d in 0..n {
                    ready[d] = ready[d].max(next_ready[d]);
                }
            }
        }
        // Drain the inboxes: standalone execution consumes its own
        // arrivals so the fabric ends idle.
        for gpu in 0..n {
            let _ = self.deliveries_until(gpu, finish);
        }
        finish
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t3_sim::config::{LinkConfig, SystemConfig};

    fn cfg() -> LinkConfig {
        SystemConfig::paper_default().link
    }

    #[test]
    fn single_hop_matches_bare_link_arithmetic() {
        let topo = Topology::ring(4, &cfg());
        let mut fabric = Fabric::new(&topo);
        let mut bare = Link::new(&cfg());
        let arrival = fabric.send(0, 0, 1, 7, 107_000);
        assert_eq!(arrival, bare.send(0, 7, 107_000));
        let got = fabric.deliveries_until(1, arrival);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].src, 0);
        assert_eq!(got[0].tag, 7);
        assert!(fabric.is_idle(arrival));
    }

    #[test]
    fn two_hops_store_and_forward() {
        let topo = Topology::switch(4, &cfg());
        let mut fabric = Fabric::new(&topo);
        let bytes = 107_000;
        let link = Link::new(&cfg());
        let one_hop = link.serialization_cycles(bytes) + link.latency();
        let arrival = fabric.send(0, 0, 2, 1, bytes);
        assert_eq!(arrival, 2 * one_hop);
    }

    #[test]
    fn switch_port_contention_serialises() {
        // GPUs 0 and 1 both send to GPU 2: the hub->2 port is shared,
        // so the second message queues behind the first there.
        let topo = Topology::switch(4, &cfg());
        let mut fabric = Fabric::new(&topo);
        let bytes = 107_000;
        let a = fabric.send(0, 0, 2, 1, bytes);
        let b = fabric.send(0, 1, 2, 2, bytes);
        let ser = Link::new(&cfg()).serialization_cycles(bytes);
        assert_eq!(b - a, ser, "second message waits a full serialisation");
    }

    #[test]
    fn distinct_ports_do_not_contend() {
        let topo = Topology::fully_connected(4, &cfg());
        let mut fabric = Fabric::new(&topo);
        let a = fabric.send(0, 0, 2, 1, 107_000);
        let b = fabric.send(0, 1, 3, 2, 107_000);
        assert_eq!(a, b, "dedicated links carry both at once");
    }

    #[test]
    fn deliveries_sorted_by_arrival_then_send_order() {
        let topo = Topology::fully_connected(4, &cfg());
        let mut fabric = Fabric::new(&topo);
        // Larger message first: arrives later despite earlier send.
        fabric.send(0, 1, 0, 10, 500_000);
        fabric.send(0, 2, 0, 20, 1_000);
        let got = fabric.deliveries_until(0, 10_000_000);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].tag, 20);
        assert_eq!(got[1].tag, 10);
        assert!(got[0].arrival <= got[1].arrival);
    }

    #[test]
    fn ring_rs_wire_cycles_match_closed_form() {
        // Equal chunks, symmetric ring: each of the n-1 gated steps
        // costs one chunk serialisation plus one link latency.
        let n = 8;
        let topo = Topology::ring(n, &cfg());
        let sched = Schedule::reduce_scatter(&topo);
        let payload: Bytes = 8 * 107_000;
        let chunk = payload / n as u64;
        let mut fabric = Fabric::new(&topo);
        let finish = fabric.run_schedule(&sched, payload, None);
        let link = Link::new(&cfg());
        let per_step = link.serialization_cycles(chunk) + link.latency();
        assert_eq!(finish, (n as Cycle - 1) * per_step);
        assert!(fabric.is_idle(finish));
    }

    #[test]
    fn observed_link_bytes_equal_prediction_on_every_fabric() {
        let payload: Bytes = 8 * 1024;
        for topo in [
            Topology::ring(8, &cfg()),
            Topology::fully_connected(8, &cfg()),
            Topology::switch(8, &cfg()),
            Topology::torus2d(2, 4, &cfg()),
            Topology::hierarchical(2, 4, &cfg(), &cfg()),
        ] {
            for sched in [
                Schedule::reduce_scatter(&topo),
                Schedule::all_gather(&topo),
                Schedule::all_to_all(&topo),
            ] {
                let mut fabric = Fabric::new(&topo);
                let finish = fabric.run_schedule(&sched, payload, None);
                assert!(finish > 0);
                assert_eq!(
                    fabric.link_bytes(),
                    sched.predicted_link_bytes(&topo, payload),
                    "{:?} on {}",
                    sched.kind(),
                    topo.kind().label()
                );
            }
        }
    }

    #[test]
    fn slow_inter_node_links_dominate_hierarchical_collectives() {
        let fast = cfg();
        let mut slow = cfg();
        slow.link_gb_s /= 10.0;
        let flat = Topology::ring(8, &fast);
        let hier = Topology::hierarchical(2, 4, &fast, &slow);
        let payload: Bytes = 8 * 107_000;
        let t_flat = Fabric::new(&flat).run_schedule(&Schedule::all_to_all(&flat), payload, None);
        let t_hier = Fabric::new(&hier).run_schedule(&Schedule::all_to_all(&hier), payload, None);
        assert!(
            t_hier > t_flat,
            "crossing slow node boundaries must cost more ({t_hier} <= {t_flat})"
        );
    }

    #[test]
    fn tiny_payload_skips_empty_chunks() {
        // payload 3 over 8 devices: five chunks are empty; the
        // schedule must still run without tripping Link's zero-byte
        // panic.
        let topo = Topology::switch(8, &cfg());
        let sched = Schedule::reduce_scatter(&topo);
        let finish = Fabric::new(&topo).run_schedule(&sched, 3, None);
        assert!(finish > 0);
    }

    #[test]
    fn traced_run_counts_every_hop() {
        let topo = Topology::switch(4, &cfg());
        let sched = Schedule::all_to_all(&topo);
        let payload: Bytes = 4 * 1024;
        let mut ins = Instruments::full();
        let mut fabric = Fabric::new(&topo);
        fabric.run_schedule(&sched, payload, Some(&mut ins));
        let traced = ins
            .metrics
            .as_ref()
            .expect("metrics on")
            .counter("link.bytes_sent");
        assert_eq!(traced, fabric.total_wire_bytes());
    }

    #[test]
    fn next_event_is_the_exact_inbox_arrival() {
        let topo = Topology::fully_connected(4, &cfg());
        let mut fabric = Fabric::new(&topo);
        assert_eq!(fabric.next_event(0), None, "idle fabric has no events");
        let slow = fabric.send(0, 1, 0, 10, 500_000);
        let fast = fabric.send(0, 2, 3, 20, 1_000);
        assert!(fast < slow);
        // Global minimum across inboxes, and exact per GPU.
        assert_eq!(fabric.next_event(0), Some(fast));
        assert_eq!(fabric.next_arrival(0, 0), Some(slow));
        assert_eq!(fabric.next_arrival(3, 0), Some(fast));
        assert_eq!(fabric.next_arrival(1, 0), None);
        // Stepping deliveries cycle by cycle pops exactly at the
        // predicted cycles.
        for now in 1..fast {
            assert!(fabric.deliveries_until(3, now).is_empty());
        }
        assert_eq!(fabric.deliveries_until(3, fast).len(), 1);
        assert_eq!(fabric.next_event(0), Some(slow));
        // An overdue head clamps forward to now + 1.
        assert_eq!(fabric.next_arrival(0, slow + 10), Some(slow + 11));
        fabric.deliveries_until(0, slow);
        assert_eq!(fabric.next_event(slow), None);
    }

    #[test]
    #[should_panic(expected = "disagree on device count")]
    fn mismatched_schedule_rejected() {
        let topo4 = Topology::ring(4, &cfg());
        let topo8 = Topology::ring(8, &cfg());
        let sched = Schedule::reduce_scatter(&topo8);
        let _ = Fabric::new(&topo4).run_schedule(&sched, 1024, None);
    }
}
