//! Topology-derived collective schedules.
//!
//! A [`Schedule`] is the full send plan of one collective: `steps`
//! lists, per step, every `(src, dst, chunk, route)` send in the
//! fabric. Two derivations exist:
//!
//! * **Ring** fabrics reproduce [`t3_net::ring::Ring`]'s algebra
//!   exactly — same step count, same `(src, dst, chunk)` triples — so
//!   the functional collectives and both timing engines keep one
//!   schedule source and cannot drift.
//! * **Every other fabric** uses the direct schedule: each device
//!   exchanges chunks straight with their final owner/recipient over
//!   the shortest route (Section 7.1's direct/switch generalisation).
//!   Each step is still a permutation — every chunk index appears
//!   exactly once per step — so the per-step property tests are shared
//!   by all fabrics.
//!
//! All schedules use the ring's ownership convention: after
//! reduce-scatter, device `d` owns the fully-reduced chunk
//! `(d + 1) % n`.

use t3_net::ring::{chunk_bounds, Ring};
use t3_sim::Bytes;

use crate::graph::{LinkId, Topology};

/// Which collective a [`Schedule`] implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveKind {
    /// Reduce-scatter: every device ends up owning one fully-reduced
    /// chunk.
    ReduceScatter,
    /// All-gather: every device ends up with every owned chunk.
    AllGather,
    /// All-to-all: device `d`'s chunk `c` ends up on device `c`
    /// (chunk-transpose, the MoE dispatch/combine pattern).
    AllToAll,
}

impl CollectiveKind {
    /// True for collectives whose step `s + 1` sends forward data
    /// received in step `s` (so the executor must gate on arrival).
    /// All-to-all payloads are all resident before the collective
    /// starts, so its steps only contend on link serialisers.
    pub fn is_recv_gated(&self) -> bool {
        !matches!(self, CollectiveKind::AllToAll)
    }
}

/// One send of one chunk in one step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledSend {
    /// Sending GPU.
    pub src: usize,
    /// Receiving GPU.
    pub dst: usize,
    /// Chunk index (`0..devices`).
    pub chunk: usize,
    /// Links the message traverses, in order (`src` to `dst`).
    pub route: Vec<LinkId>,
}

/// A complete collective schedule over some fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    kind: CollectiveKind,
    devices: usize,
    steps: Vec<Vec<ScheduledSend>>,
}

impl Schedule {
    /// Derives the reduce-scatter schedule for `topo`.
    ///
    /// On a ring this is exactly [`Ring`]'s schedule: in step `s`
    /// device `d` sends `rs_send_chunk(d, s)` to its ring successor.
    /// On any other fabric it is the direct schedule: in step `s`
    /// device `d` sends the partial chunk owned by device
    /// `(d + s + 1) % n` straight to that owner.
    pub fn reduce_scatter(topo: &Topology) -> Self {
        let n = topo.num_gpus();
        let steps = if topo.is_ring() {
            let ring = Ring::new(n);
            (0..ring.steps())
                .map(|s| {
                    (0..n)
                        .map(|d| sent(topo, d, ring.next(d), ring.rs_send_chunk(d, s)))
                        .collect()
                })
                .collect()
        } else {
            (0..n - 1)
                .map(|s| {
                    (0..n)
                        .map(|d| {
                            let dst = (d + s + 1) % n;
                            sent(topo, d, dst, (dst + 1) % n)
                        })
                        .collect()
                })
                .collect()
        };
        Schedule {
            kind: CollectiveKind::ReduceScatter,
            devices: n,
            steps,
        }
    }

    /// Derives the all-gather schedule for `topo` (ring algebra on a
    /// ring; direct broadcast of each device's owned chunk otherwise).
    pub fn all_gather(topo: &Topology) -> Self {
        let n = topo.num_gpus();
        let steps = if topo.is_ring() {
            let ring = Ring::new(n);
            (0..ring.steps())
                .map(|s| {
                    (0..n)
                        .map(|d| sent(topo, d, ring.next(d), ring.ag_send_chunk(d, s)))
                        .collect()
                })
                .collect()
        } else {
            (0..n - 1)
                .map(|s| {
                    (0..n)
                        .map(|d| sent(topo, d, (d + s + 1) % n, (d + 1) % n))
                        .collect()
                })
                .collect()
        };
        Schedule {
            kind: CollectiveKind::AllGather,
            devices: n,
            steps,
        }
    }

    /// Derives the all-to-all schedule for `topo`: in step `s` device
    /// `d` sends its chunk `(d + s + 1) % n` to device `(d + s + 1) %
    /// n` (chunk `c` belongs on device `c`; the resident chunk `d`
    /// never moves). The same rotation is used on every fabric — on a
    /// ring the messages simply take multi-hop routes.
    pub fn all_to_all(topo: &Topology) -> Self {
        let n = topo.num_gpus();
        let steps = (0..n - 1)
            .map(|s| {
                (0..n)
                    .map(|d| {
                        let dst = (d + s + 1) % n;
                        sent(topo, d, dst, dst)
                    })
                    .collect()
            })
            .collect();
        Schedule {
            kind: CollectiveKind::AllToAll,
            devices: n,
            steps,
        }
    }

    /// Which collective this schedules.
    pub fn kind(&self) -> CollectiveKind {
        self.kind
    }

    /// Number of participating devices (and chunks).
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Number of steps.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// The sends of step `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.num_steps()`.
    pub fn step(&self, s: usize) -> &[ScheduledSend] {
        &self.steps[s]
    }

    /// All steps.
    pub fn steps(&self) -> &[Vec<ScheduledSend>] {
        &self.steps
    }

    /// Every send of every step, flattened in execution order.
    pub fn sends(&self) -> impl Iterator<Item = &ScheduledSend> {
        self.steps.iter().flatten()
    }

    /// Chunk that `device` owns after reduce-scatter (the ring
    /// convention, shared by every fabric).
    pub fn owned_chunk(&self, device: usize) -> usize {
        (device + 1) % self.devices
    }

    /// Device that owns `chunk` after reduce-scatter.
    pub fn owner_of(&self, chunk: usize) -> usize {
        (chunk + self.devices - 1) % self.devices
    }

    /// Byte range `[start, end)` of `chunk` inside a `payload_bytes`
    /// buffer (remainder spread over the first chunks, exactly as the
    /// engines split arrays).
    pub fn chunk_byte_range(&self, payload_bytes: Bytes, chunk: usize) -> (Bytes, Bytes) {
        let (s, e) = chunk_bounds(payload_bytes as usize, self.devices, chunk);
        (s as Bytes, e as Bytes)
    }

    /// Size of `chunk` for a `payload_bytes` buffer.
    pub fn chunk_size(&self, payload_bytes: Bytes, chunk: usize) -> Bytes {
        let (s, e) = self.chunk_byte_range(payload_bytes, chunk);
        e - s
    }

    /// Payload bytes device `device` injects over the whole collective
    /// (the closed-form `(n-1)/n * payload` when `payload_bytes`
    /// divides evenly).
    pub fn bytes_sent_by(&self, device: usize, payload_bytes: Bytes) -> Bytes {
        self.sends()
            .filter(|send| send.src == device)
            .map(|send| self.chunk_size(payload_bytes, send.chunk))
            .sum()
    }

    /// Predicted per-link wire bytes for a `payload_bytes` collective:
    /// every send contributes its chunk's bytes to **each** link on
    /// its route (store-and-forward occupies every hop). Indexed by
    /// [`LinkId`]; the fabric's observed per-link counters must match
    /// this exactly.
    pub fn predicted_link_bytes(&self, topo: &Topology, payload_bytes: Bytes) -> Vec<Bytes> {
        let mut per_link = vec![0; topo.num_links()];
        for send in self.sends() {
            let bytes = self.chunk_size(payload_bytes, send.chunk);
            for &id in &send.route {
                per_link[id.0] += bytes;
            }
        }
        per_link
    }
}

/// Builds one send, resolving the route from the topology.
fn sent(topo: &Topology, src: usize, dst: usize, chunk: usize) -> ScheduledSend {
    ScheduledSend {
        src,
        dst,
        chunk,
        route: topo.route(src, dst).to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t3_sim::config::SystemConfig;

    fn cfg() -> t3_sim::config::LinkConfig {
        SystemConfig::paper_default().link
    }

    /// Every fabric the crate can build, at 8 GPUs.
    fn fabrics8() -> Vec<Topology> {
        vec![
            Topology::ring(8, &cfg()),
            Topology::fully_connected(8, &cfg()),
            Topology::switch(8, &cfg()),
            Topology::torus2d(2, 4, &cfg()),
            Topology::hierarchical(2, 4, &cfg(), &cfg()),
        ]
    }

    #[test]
    fn ring_rs_matches_net_ring_bit_for_bit() {
        for n in [2, 3, 4, 8, 16] {
            let topo = Topology::ring(n, &cfg());
            let sched = Schedule::reduce_scatter(&topo);
            let ring = Ring::new(n);
            assert_eq!(sched.num_steps(), ring.steps());
            for s in 0..ring.steps() {
                for d in 0..n {
                    let send = &sched.step(s)[d];
                    assert_eq!(send.src, d);
                    assert_eq!(send.dst, ring.next(d));
                    assert_eq!(send.chunk, ring.rs_send_chunk(d, s));
                    assert_eq!(send.route.len(), 1);
                }
            }
        }
    }

    #[test]
    fn ring_ag_matches_net_ring_bit_for_bit() {
        for n in [2, 4, 8] {
            let topo = Topology::ring(n, &cfg());
            let sched = Schedule::all_gather(&topo);
            let ring = Ring::new(n);
            for s in 0..ring.steps() {
                for d in 0..n {
                    let send = &sched.step(s)[d];
                    assert_eq!(
                        (send.src, send.dst, send.chunk),
                        (d, ring.next(d), ring.ag_send_chunk(d, s))
                    );
                }
            }
        }
    }

    #[test]
    fn every_step_is_a_chunk_permutation_on_every_fabric() {
        for topo in fabrics8() {
            for sched in [
                Schedule::reduce_scatter(&topo),
                Schedule::all_gather(&topo),
                Schedule::all_to_all(&topo),
            ] {
                let n = sched.devices();
                for (s, step) in sched.steps().iter().enumerate() {
                    let mut chunk_seen = vec![false; n];
                    let mut src_seen = vec![false; n];
                    let mut dst_seen = vec![false; n];
                    for send in step {
                        assert_ne!(send.src, send.dst, "self-send in step {s}");
                        assert!(
                            !chunk_seen[send.chunk],
                            "{:?} step {s}: chunk {} sent twice on {}",
                            sched.kind(),
                            send.chunk,
                            topo.kind().label()
                        );
                        chunk_seen[send.chunk] = true;
                        assert!(!src_seen[send.src], "device {} sends twice", send.src);
                        src_seen[send.src] = true;
                        assert!(!dst_seen[send.dst], "device {} receives twice", send.dst);
                        dst_seen[send.dst] = true;
                    }
                }
            }
        }
    }

    /// Functional reduce-scatter replay: applying the schedule to
    /// per-device partials must leave device `d` owning the full
    /// reduction of chunk `(d+1) % n` — on every fabric.
    #[test]
    fn rs_replay_leaves_ring_convention_ownership() {
        for topo in fabrics8() {
            let n = topo.num_gpus();
            let sched = Schedule::reduce_scatter(&topo);
            // contrib[d][c] = set of devices whose partial of chunk c
            // device d currently holds (reduced in).
            let mut contrib: Vec<Vec<Vec<bool>>> = (0..n)
                .map(|d| {
                    (0..n)
                        .map(|_| (0..n).map(|src| src == d).collect())
                        .collect()
                })
                .collect();
            for step in sched.steps() {
                // Within a step every chunk moves exactly once, so the
                // sequential order of application cannot matter.
                let snapshot = contrib.clone();
                for send in step {
                    let incoming = snapshot[send.src][send.chunk].clone();
                    for (slot, had) in contrib[send.dst][send.chunk].iter_mut().zip(incoming) {
                        *slot = *slot || had;
                    }
                }
            }
            for (d, chunks) in contrib.iter().enumerate() {
                let owned = sched.owned_chunk(d);
                assert_eq!(owned, (d + 1) % n);
                assert!(
                    chunks[owned].iter().all(|&b| b),
                    "{}: device {d} missing partials for its owned chunk",
                    topo.kind().label()
                );
            }
        }
    }

    /// RS then AG restores full replication: every device ends up
    /// holding every (fully reduced) chunk.
    #[test]
    fn rs_then_ag_restores_full_replication() {
        for topo in fabrics8() {
            let n = topo.num_gpus();
            let rs = Schedule::reduce_scatter(&topo);
            let ag = Schedule::all_gather(&topo);
            // After RS, device d holds the reduced chunk it owns.
            let mut has: Vec<Vec<bool>> = (0..n)
                .map(|d| (0..n).map(|c| c == rs.owned_chunk(d)).collect())
                .collect();
            for step in ag.steps() {
                let snapshot = has.clone();
                for send in step {
                    assert!(
                        snapshot[send.src][send.chunk],
                        "{}: device {} forwards chunk {} it does not hold",
                        topo.kind().label(),
                        send.src,
                        send.chunk
                    );
                    has[send.dst][send.chunk] = true;
                }
            }
            for (d, row) in has.iter().enumerate() {
                assert!(
                    row.iter().all(|&b| b),
                    "{}: device {d} missing chunks after AG",
                    topo.kind().label()
                );
            }
        }
    }

    #[test]
    fn a2a_transposes_chunks() {
        for topo in fabrics8() {
            let sched = Schedule::all_to_all(&topo);
            let n = sched.devices();
            let mut delivered = vec![vec![false; n]; n]; // [dst][src]
            for send in sched.sends() {
                assert_eq!(send.chunk, send.dst, "A2A chunk c lands on device c");
                assert!(!delivered[send.dst][send.src], "duplicate A2A send");
                delivered[send.dst][send.src] = true;
            }
            for (dst, row) in delivered.iter().enumerate() {
                for (src, &got) in row.iter().enumerate() {
                    assert_eq!(got, src != dst);
                }
            }
        }
    }

    #[test]
    fn per_device_bytes_match_closed_form() {
        let payload: Bytes = 8 * 1024; // divides evenly by 8
        for topo in fabrics8() {
            let n = topo.num_gpus() as u64;
            for sched in [
                Schedule::reduce_scatter(&topo),
                Schedule::all_gather(&topo),
                Schedule::all_to_all(&topo),
            ] {
                for d in 0..topo.num_gpus() {
                    assert_eq!(
                        sched.bytes_sent_by(d, payload),
                        (n - 1) * payload / n,
                        "{:?} on {}",
                        sched.kind(),
                        topo.kind().label()
                    );
                }
            }
        }
    }

    #[test]
    fn uneven_payload_bytes_still_total_per_chunk() {
        let topo = Topology::switch(3, &cfg());
        let sched = Schedule::reduce_scatter(&topo);
        let payload: Bytes = 10;
        let total: Bytes = (0..3).map(|c| sched.chunk_size(payload, c)).sum();
        assert_eq!(total, payload);
        // Each chunk is sent n-1 = 2 times in RS.
        let moved: Bytes = sched
            .sends()
            .map(|s| sched.chunk_size(payload, s.chunk))
            .sum();
        assert_eq!(moved, 2 * payload);
    }

    #[test]
    fn predicted_link_bytes_count_every_hop() {
        let topo = Topology::switch(4, &cfg());
        let sched = Schedule::all_to_all(&topo);
        let payload: Bytes = 4 * 100;
        let per_link = sched.predicted_link_bytes(&topo, payload);
        // Every A2A message crosses 2 links (GPU->hub, hub->GPU), so
        // wire bytes are double the payload bytes injected.
        let injected: Bytes = (0..4).map(|d| sched.bytes_sent_by(d, payload)).sum();
        assert_eq!(per_link.iter().sum::<Bytes>(), 2 * injected);
    }

    #[test]
    fn owner_roundtrip() {
        let topo = Topology::fully_connected(5, &cfg());
        let sched = Schedule::reduce_scatter(&topo);
        for c in 0..5 {
            assert_eq!(sched.owned_chunk(sched.owner_of(c)), c);
        }
    }
}
