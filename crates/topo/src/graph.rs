//! Topology graphs: GPUs and switches connected by directed links.
//!
//! A [`Topology`] is a directed multigraph. GPU nodes come first
//! (ids `0..num_gpus`), switch nodes after. Every edge carries its own
//! [`LinkConfig`], so a fabric can mix link speeds — the hierarchical
//! constructor uses fast intra-node links and slow inter-node links.
//!
//! Routes between every GPU pair are precomputed at construction with
//! Dijkstra over per-link costs (`latency_cycles + 1`, so equal-hop
//! ties resolve toward lower-latency links, and among equal-cost paths
//! the lowest node index wins — routing is fully deterministic).

use t3_sim::config::LinkConfig;
use t3_sim::Cycle;

/// What a topology node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A GPU endpoint: sources and sinks collective traffic.
    Gpu,
    /// A switch: only forwards traffic, never originates it.
    Switch,
}

/// Index of one directed link in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub usize);

/// One directed link of the graph.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoLink {
    /// Source node index.
    pub src: usize,
    /// Destination node index.
    pub dst: usize,
    /// Bandwidth/latency parameters of this link.
    pub cfg: LinkConfig,
}

/// Which canned fabric a [`Topology`] was built as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// Bidirectional ring over the GPUs (the paper's fabric; the
    /// collective schedules use the forward direction only, exactly as
    /// [`t3_net::ring::Ring`] does).
    Ring,
    /// A dedicated link per ordered GPU pair (Section 7.1).
    FullyConnected,
    /// A single central switch; every GPU hangs off it (star).
    Switch,
    /// A 2D torus with wrap-around row/column links.
    Torus2d {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// Two-level "ring of rings": a fast bidirectional ring inside
    /// each node, a slow bidirectional ring over the node leaders.
    Hierarchical {
        /// Number of nodes (servers).
        nodes: usize,
        /// GPUs per node.
        gpus_per_node: usize,
    },
}

impl TopologyKind {
    /// Human-readable fabric name (matches the `figures --topology`
    /// accepted values).
    pub fn label(&self) -> &'static str {
        match self {
            TopologyKind::Ring => "ring",
            TopologyKind::FullyConnected => "fully-connected",
            TopologyKind::Switch => "switch",
            TopologyKind::Torus2d { .. } => "torus",
            TopologyKind::Hierarchical { .. } => "hierarchical",
        }
    }
}

/// A network fabric: nodes, directed links, and precomputed GPU-pair
/// routes.
#[derive(Debug, Clone)]
pub struct Topology {
    kind: TopologyKind,
    nodes: Vec<NodeKind>,
    num_gpus: usize,
    links: Vec<TopoLink>,
    /// Outgoing link ids per node.
    out: Vec<Vec<LinkId>>,
    /// `routes[src][dst]` is the link path from GPU `src` to GPU
    /// `dst`; empty on the diagonal.
    routes: Vec<Vec<Vec<LinkId>>>,
}

impl Topology {
    /// Bidirectional ring over `n` GPUs, every link configured as
    /// `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn ring(n: usize, cfg: &LinkConfig) -> Self {
        assert!(n >= 2, "a ring needs at least two GPUs");
        let mut b = Builder::new(TopologyKind::Ring, n);
        for d in 0..n {
            b.bidi(d, (d + 1) % n, cfg);
        }
        b.finish()
    }

    /// Fully-connected fabric: one dedicated directed link per ordered
    /// GPU pair.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn fully_connected(n: usize, cfg: &LinkConfig) -> Self {
        assert!(n >= 2, "a fabric needs at least two GPUs");
        let mut b = Builder::new(TopologyKind::FullyConnected, n);
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    b.link(s, d, cfg);
                }
            }
        }
        b.finish()
    }

    /// Star fabric: `n` GPUs around one central switch. Every GPU↔
    /// switch port is a link pair, so all GPU-pair traffic shares the
    /// switch's per-port serialisers.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn switch(n: usize, cfg: &LinkConfig) -> Self {
        assert!(n >= 2, "a fabric needs at least two GPUs");
        let mut b = Builder::new(TopologyKind::Switch, n);
        let hub = b.add_switch();
        for d in 0..n {
            b.bidi(d, hub, cfg);
        }
        b.finish()
    }

    /// `rows x cols` 2D torus with wrap-around links in both
    /// directions. Duplicate edges from degenerate wraps (a dimension
    /// of length 2 wraps onto the same neighbour) are collapsed.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols < 2`.
    pub fn torus2d(rows: usize, cols: usize, cfg: &LinkConfig) -> Self {
        assert!(rows * cols >= 2, "a fabric needs at least two GPUs");
        let n = rows * cols;
        let mut b = Builder::new(TopologyKind::Torus2d { rows, cols }, n);
        let id = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                if cols > 1 {
                    b.bidi(id(r, c), id(r, (c + 1) % cols), cfg);
                }
                if rows > 1 {
                    b.bidi(id(r, c), id((r + 1) % rows, c), cfg);
                }
            }
        }
        b.finish()
    }

    /// Two-level multi-node fabric: inside each node a fast
    /// bidirectional ring over its GPUs; the first GPU of each node
    /// ("leader") additionally sits on a slow bidirectional inter-node
    /// ring. GPU ids are `node * gpus_per_node + local`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2` or `gpus_per_node < 2`.
    pub fn hierarchical(
        nodes: usize,
        gpus_per_node: usize,
        fast: &LinkConfig,
        slow: &LinkConfig,
    ) -> Self {
        assert!(nodes >= 2, "a hierarchy needs at least two nodes");
        assert!(gpus_per_node >= 2, "each node needs at least two GPUs");
        let n = nodes * gpus_per_node;
        let mut b = Builder::new(
            TopologyKind::Hierarchical {
                nodes,
                gpus_per_node,
            },
            n,
        );
        for node in 0..nodes {
            let base = node * gpus_per_node;
            for local in 0..gpus_per_node {
                b.bidi(base + local, base + (local + 1) % gpus_per_node, fast);
            }
        }
        for node in 0..nodes {
            let leader = node * gpus_per_node;
            let next_leader = ((node + 1) % nodes) * gpus_per_node;
            b.bidi(leader, next_leader, slow);
        }
        b.finish()
    }

    /// Builds the canned fabric named `label` over `n` GPUs — the
    /// inverse of [`TopologyKind::label`], shared by the `figures
    /// --topology` CLI and the t3-spec frontend. `torus` is a
    /// `2 × n/2` torus; `hierarchical` is two `n/2`-GPU nodes whose
    /// leader GPUs are joined by `inter_node` links (`intra` everywhere
    /// else). Returns `None` for unknown labels, and for `torus` /
    /// `hierarchical` when `n` is odd or below 4 (those shapes need
    /// two even halves — callers degrade to `ring` or reject).
    pub fn by_label(
        label: &str,
        n: usize,
        intra: &LinkConfig,
        inter_node: &LinkConfig,
    ) -> Option<Self> {
        let two_even_halves = n >= 4 && n.is_multiple_of(2);
        Some(match label {
            "ring" => Topology::ring(n, intra),
            "fully-connected" => Topology::fully_connected(n, intra),
            "switch" => Topology::switch(n, intra),
            "torus" if two_even_halves => Topology::torus2d(2, n / 2, intra),
            "hierarchical" if two_even_halves => {
                Topology::hierarchical(2, n / 2, intra, inter_node)
            }
            _ => return None,
        })
    }

    /// Which canned fabric this is.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// True for the ring fabric (the validated special case).
    pub fn is_ring(&self) -> bool {
        self.kind == TopologyKind::Ring
    }

    /// Number of GPU endpoints.
    pub fn num_gpus(&self) -> usize {
        self.num_gpus
    }

    /// Total nodes (GPUs + switches).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// The link behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link(&self, id: LinkId) -> &TopoLink {
        &self.links[id.0]
    }

    /// All links, indexed by [`LinkId`].
    pub fn links(&self) -> &[TopoLink] {
        &self.links
    }

    /// Kind of node `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_kind(&self, node: usize) -> NodeKind {
        self.nodes[node]
    }

    /// The direct link from `src` to `dst`, if the graph has one.
    pub fn link_between(&self, src: usize, dst: usize) -> Option<LinkId> {
        self.out[src]
            .iter()
            .copied()
            .find(|&id| self.links[id.0].dst == dst)
    }

    /// Precomputed shortest route from GPU `src` to GPU `dst` (empty
    /// iff `src == dst`).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a GPU index.
    pub fn route(&self, src: usize, dst: usize) -> &[LinkId] {
        assert!(src < self.num_gpus && dst < self.num_gpus, "GPU ids only");
        &self.routes[src][dst]
    }

    /// Sum of link latencies along the `src -> dst` route.
    pub fn route_latency(&self, src: usize, dst: usize) -> Cycle {
        self.route(src, dst)
            .iter()
            .map(|&id| self.links[id.0].cfg.latency_cycles())
            .sum()
    }

    /// Number of hops on the `src -> dst` route.
    pub fn hops(&self, src: usize, dst: usize) -> usize {
        self.route(src, dst).len()
    }

    /// The maximum hop count over all GPU pairs (the fabric diameter
    /// as routed).
    pub fn diameter(&self) -> usize {
        let mut max = 0;
        for s in 0..self.num_gpus {
            for d in 0..self.num_gpus {
                max = max.max(self.hops(s, d));
            }
        }
        max
    }
}

/// Internal construction helper: accumulates nodes/links, then runs
/// all-pairs Dijkstra.
struct Builder {
    kind: TopologyKind,
    nodes: Vec<NodeKind>,
    num_gpus: usize,
    links: Vec<TopoLink>,
    out: Vec<Vec<LinkId>>,
}

impl Builder {
    fn new(kind: TopologyKind, num_gpus: usize) -> Self {
        Builder {
            kind,
            nodes: vec![NodeKind::Gpu; num_gpus],
            num_gpus,
            links: Vec::new(),
            out: vec![Vec::new(); num_gpus],
        }
    }

    fn add_switch(&mut self) -> usize {
        self.nodes.push(NodeKind::Switch);
        self.out.push(Vec::new());
        self.nodes.len() - 1
    }

    /// Adds the directed link `src -> dst` unless an identical edge
    /// already exists (collapses degenerate duplicates).
    fn link(&mut self, src: usize, dst: usize, cfg: &LinkConfig) {
        assert_ne!(src, dst, "no self links");
        if self.out[src].iter().any(|&id| self.links[id.0].dst == dst) {
            return;
        }
        let id = LinkId(self.links.len());
        self.links.push(TopoLink {
            src,
            dst,
            cfg: cfg.clone(),
        });
        self.out[src].push(id);
    }

    fn bidi(&mut self, a: usize, b: usize, cfg: &LinkConfig) {
        self.link(a, b, cfg);
        self.link(b, a, cfg);
    }

    fn finish(self) -> Topology {
        let mut topo = Topology {
            kind: self.kind,
            nodes: self.nodes,
            num_gpus: self.num_gpus,
            links: self.links,
            out: self.out,
            routes: Vec::new(),
        };
        topo.routes = (0..topo.num_gpus)
            .map(|src| shortest_paths(&topo, src))
            .collect();
        topo
    }
}

/// Dijkstra from `src` to every GPU. Cost per link is
/// `latency_cycles + 1`; ties resolve by node index (deterministic).
fn shortest_paths(topo: &Topology, src: usize) -> Vec<Vec<LinkId>> {
    let n = topo.num_nodes();
    let mut dist: Vec<u64> = vec![u64::MAX; n];
    let mut prev: Vec<Option<LinkId>> = vec![None; n];
    let mut heap = std::collections::BinaryHeap::new();
    dist[src] = 0;
    heap.push(std::cmp::Reverse((0u64, src)));
    while let Some(std::cmp::Reverse((d, node))) = heap.pop() {
        if d > dist[node] {
            continue;
        }
        for &id in &topo.out[node] {
            let link = &topo.links[id.0];
            let next = d + link.cfg.latency_cycles() + 1;
            if next < dist[link.dst] {
                dist[link.dst] = next;
                prev[link.dst] = Some(id);
                heap.push(std::cmp::Reverse((next, link.dst)));
            }
        }
    }
    (0..topo.num_gpus)
        .map(|dst| {
            if dst == src {
                return Vec::new();
            }
            assert!(dist[dst] != u64::MAX, "fabric is disconnected");
            let mut path = Vec::new();
            let mut at = dst;
            while at != src {
                let id = prev[at].expect("reached node has a predecessor");
                path.push(id);
                at = topo.links[id.0].src;
            }
            path.reverse();
            path
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use t3_sim::config::SystemConfig;

    fn cfg() -> LinkConfig {
        SystemConfig::paper_default().link
    }

    #[test]
    fn by_label_round_trips_every_kind() {
        let link = cfg();
        let mut slow = link.clone();
        slow.link_gb_s /= 4.0;
        for label in ["ring", "fully-connected", "switch", "torus", "hierarchical"] {
            let t = Topology::by_label(label, 8, &link, &slow).expect("known label");
            assert_eq!(t.kind().label(), label);
            assert_eq!(t.num_gpus(), 8, "{label}");
        }
        assert!(Topology::by_label("mesh", 8, &link, &slow).is_none());
        // Two-even-halves shapes reject odd and tiny GPU counts.
        assert!(Topology::by_label("torus", 7, &link, &slow).is_none());
        assert!(Topology::by_label("hierarchical", 2, &link, &slow).is_none());
        assert!(Topology::by_label("ring", 2, &link, &slow).is_some());
    }

    #[test]
    fn ring_has_two_links_per_gpu_and_direct_neighbour_routes() {
        let t = Topology::ring(8, &cfg());
        assert_eq!(t.num_gpus(), 8);
        assert_eq!(t.num_links(), 16);
        assert!(t.is_ring());
        for d in 0..8 {
            let next = (d + 1) % 8;
            let prev = (d + 8 - 1) % 8;
            assert_eq!(t.route(d, next).len(), 1);
            assert_eq!(t.route(d, prev).len(), 1);
            assert!(t.link_between(d, next).is_some());
            assert!(t.link_between(d, prev).is_some());
        }
        // Opposite side of the ring is 4 hops either way.
        assert_eq!(t.hops(0, 4), 4);
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn fully_connected_is_always_one_hop() {
        let t = Topology::fully_connected(6, &cfg());
        assert_eq!(t.num_links(), 30);
        assert_eq!(t.diameter(), 1);
    }

    #[test]
    fn switch_routes_pass_the_hub() {
        let t = Topology::switch(8, &cfg());
        assert_eq!(t.num_nodes(), 9);
        assert_eq!(t.node_kind(8), NodeKind::Switch);
        assert_eq!(t.num_links(), 16);
        for s in 0..8 {
            for d in 0..8 {
                if s != d {
                    let r = t.route(s, d);
                    assert_eq!(r.len(), 2);
                    assert_eq!(t.link(r[0]).dst, 8, "first hop enters the switch");
                }
            }
        }
    }

    #[test]
    fn torus_wraps_and_keeps_diameter_small() {
        let t = Topology::torus2d(2, 4, &cfg());
        assert_eq!(t.num_gpus(), 8);
        // Each GPU: 2 horizontal neighbours + 1 deduped vertical pair.
        assert_eq!(t.num_links(), 8 * 2 + 8);
        assert_eq!(t.diameter(), 3); // 2 around the row + 1 across
        let sq = Topology::torus2d(4, 4, &cfg());
        assert_eq!(sq.diameter(), 4);
    }

    #[test]
    fn hierarchical_prefers_fast_links_and_crosses_leaders() {
        let fast = cfg();
        let mut slow = cfg();
        slow.link_gb_s /= 4.0;
        slow.latency_ns *= 4.0;
        let t = Topology::hierarchical(2, 4, &fast, &slow);
        assert_eq!(t.num_gpus(), 8);
        // Intra-node routes never leave the node.
        let r = t.route(1, 3);
        assert!(r.iter().all(|&id| t.link(id).dst < 4));
        // Cross-node routes pass both leaders (0 and 4).
        let x = t.route(2, 6);
        assert!(x
            .iter()
            .any(|&id| t.link(id).dst == 4 || t.link(id).src == 4));
        let crossing = x
            .iter()
            .filter(|&&id| t.link(id).cfg.latency_cycles() == slow.latency_cycles())
            .count();
        assert_eq!(crossing, 1, "exactly one slow hop per cross-node route");
    }

    #[test]
    fn routes_are_connected_chains() {
        for t in [
            Topology::ring(5, &cfg()),
            Topology::fully_connected(4, &cfg()),
            Topology::switch(5, &cfg()),
            Topology::torus2d(3, 3, &cfg()),
            Topology::hierarchical(3, 2, &cfg(), &cfg()),
        ] {
            for s in 0..t.num_gpus() {
                for d in 0..t.num_gpus() {
                    let r = t.route(s, d);
                    if s == d {
                        assert!(r.is_empty());
                        continue;
                    }
                    let mut at = s;
                    for &id in r {
                        assert_eq!(t.link(id).src, at);
                        at = t.link(id).dst;
                    }
                    assert_eq!(at, d);
                }
            }
        }
    }

    #[test]
    fn labels_match_cli_names() {
        assert_eq!(TopologyKind::Ring.label(), "ring");
        assert_eq!(Topology::torus2d(2, 2, &cfg()).kind().label(), "torus");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_ring_rejected() {
        let _ = Topology::ring(1, &cfg());
    }
}
