//! Mixture-of-experts layers under expert parallelism (Section 7.2).
//!
//! Expert parallelism places one expert per device and exchanges
//! tokens with two serialized all-to-alls per MoE layer (dispatch and
//! combine). Like the tensor-parallel all-reduce, these sit on the
//! critical path — and T3 fuses the *combine* all-to-all with the
//! producing expert FFN GEMM through the same address-space
//! configuration (`remote_map` with store semantics, Section 7.1).

use t3_core::engine::{run_fused_gemm_all_to_all, FusedOptions};
use t3_gpu::gemm::{GemmGrid, GemmShape};
use t3_sim::config::SystemConfig;
use t3_sim::Cycle;
use t3_topo::{Fabric, Schedule, Topology};

/// One MoE layer's configuration under expert parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoeConfig {
    /// Model hidden dimension.
    pub hidden: u64,
    /// FFN expansion factor (4 in standard Transformers).
    pub ffn_mult: u64,
    /// Tokens per device after routing (assumes balanced experts,
    /// capacity factor 1).
    pub tokens_per_device: u64,
}

impl MoeConfig {
    /// A Switch-Transformer-like MoE layer.
    pub fn switch_like(hidden: u64, tokens_per_device: u64) -> Self {
        MoeConfig {
            hidden,
            ffn_mult: 4,
            tokens_per_device,
        }
    }

    /// The expert's second FFN GEMM (the producer of the combine
    /// all-to-all): `[tokens, H] = [tokens, f*H] x [f*H, H]`.
    pub fn expert_fc2(&self) -> GemmShape {
        GemmShape::new(
            self.tokens_per_device,
            self.hidden,
            self.ffn_mult * self.hidden,
        )
    }

    /// Bytes exchanged by one all-to-all (every device's activations).
    pub fn a2a_payload_bytes(&self) -> u64 {
        self.tokens_per_device * self.hidden * 2
    }
}

/// Timing breakdown of one expert-parallel MoE layer half (the FC-2 +
/// combine all-to-all that T3 fuses).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoeOutcome {
    /// Sequential: expert GEMM then the combine all-to-all.
    pub sequential_cycles: Cycle,
    /// T3: all-to-all fused into the GEMM's stores.
    pub fused_cycles: Cycle,
    /// Speedup of the fused execution.
    pub speedup: f64,
    /// Exposed all-to-all cycles in the sequential baseline.
    pub a2a_cycles: Cycle,
}

/// All-to-all time on a fully-connected topology. Kept as the default
/// fabric for [`moe_combine_study`]; the wire time now comes from
/// executing the topology-derived schedule (see
/// [`scheduled_all_to_all_cycles`]), which on dedicated links resolves
/// to the old closed form — one chunk's serialisation plus latency.
pub fn all_to_all_cycles(sys: &SystemConfig, payload_bytes: u64) -> Cycle {
    let topo = Topology::fully_connected(sys.num_gpus, &sys.link);
    scheduled_all_to_all_cycles(sys, &topo, payload_bytes)
}

/// All-to-all time over an arbitrary fabric: the wire term executes
/// the topology-derived schedule on a [`Fabric`] (per-hop
/// serialisation, shared-port contention, slow inter-node links), and
/// the memory term adds the DRAM cost of landing the `N-1` incoming
/// chunks plus one kernel launch.
///
/// # Panics
///
/// Panics if the topology's GPU count differs from `sys.num_gpus`.
pub fn scheduled_all_to_all_cycles(
    sys: &SystemConfig,
    topo: &Topology,
    payload_bytes: u64,
) -> Cycle {
    assert_eq!(
        topo.num_gpus(),
        sys.num_gpus,
        "topology and system disagree on GPU count"
    );
    let n = sys.num_gpus as u64;
    let sched = Schedule::all_to_all(topo);
    let wire = Fabric::new(topo).run_schedule(&sched, payload_bytes, None);
    let chunk = payload_bytes / n;
    let dram = ((n - 1) * chunk) as f64 / sys.mem.bytes_per_cycle();
    // t3-lint: allow(float-cycles) -- DRAM drain bound: single ceil of a bandwidth ratio added to integer wire time
    wire + dram.ceil() as Cycle + sys.gpu.kernel_launch_cycles
}

/// Runs the expert FC-2 + combine all-to-all under the sequential
/// baseline and under T3's fused execution.
pub fn moe_combine_study(sys: &SystemConfig, cfg: &MoeConfig) -> MoeOutcome {
    let grid = GemmGrid::new(&sys.gpu, cfg.expert_fc2());
    let gemm = t3_gpu::engine::run_gemm_isolated(
        sys,
        grid.clone(),
        t3_gpu::engine::WritePolicy::CachedLocal,
    );
    let a2a = all_to_all_cycles(sys, cfg.a2a_payload_bytes());
    let sequential = gemm.cycles + a2a;
    let fused = run_fused_gemm_all_to_all(sys, grid, &FusedOptions::default());
    MoeOutcome {
        sequential_cycles: sequential,
        fused_cycles: fused.cycles,
        speedup: sequential as f64 / fused.cycles as f64,
        a2a_cycles: a2a,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SystemConfig {
        SystemConfig::paper_default()
    }

    #[test]
    fn fused_combine_beats_sequential() {
        let s = sys();
        let cfg = MoeConfig::switch_like(4096, 4096);
        let out = moe_combine_study(&s, &cfg);
        assert!(
            out.speedup > 1.0,
            "fused MoE combine must win: {:.3}",
            out.speedup
        );
        assert!(out.fused_cycles < out.sequential_cycles);
    }

    #[test]
    fn a2a_time_scales_with_payload_and_devices() {
        let s8 = sys();
        let s16 = sys().with_num_gpus(16);
        let t_small = all_to_all_cycles(&s8, 8 << 20);
        let t_big = all_to_all_cycles(&s8, 64 << 20);
        assert!(t_big > t_small);
        // More devices -> smaller chunks -> shorter wire time.
        assert!(all_to_all_cycles(&s16, 64 << 20) < all_to_all_cycles(&s8, 64 << 20));
    }

    #[test]
    fn scheduled_a2a_feels_the_fabric() {
        let s = sys();
        let payload = 64 << 20;
        let fc = Topology::fully_connected(s.num_gpus, &s.link);
        let hub = Topology::switch(s.num_gpus, &s.link);
        let mut slow = s.link.clone();
        slow.link_gb_s /= 8.0;
        let hier = Topology::hierarchical(2, s.num_gpus / 2, &s.link, &slow);
        let t_fc = scheduled_all_to_all_cycles(&s, &fc, payload);
        let t_hub = scheduled_all_to_all_cycles(&s, &hub, payload);
        let t_hier = scheduled_all_to_all_cycles(&s, &hier, payload);
        // A shared switch port serialises the N-1 outgoing chunks that
        // dedicated links would stream concurrently.
        assert!(t_hub > t_fc, "switch {t_hub} vs fully-connected {t_fc}");
        // Slow inter-node links dominate the hierarchical exchange.
        assert!(
            t_hier > t_fc,
            "hierarchical {t_hier} vs fully-connected {t_fc}"
        );
    }

    #[test]
    fn expert_shapes_follow_config() {
        let cfg = MoeConfig::switch_like(1024, 2048);
        let g = cfg.expert_fc2();
        assert_eq!((g.m, g.n, g.k), (2048, 1024, 4096));
        assert_eq!(cfg.a2a_payload_bytes(), 2048 * 1024 * 2);
    }
}
