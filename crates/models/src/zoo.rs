//! The model zoo of Table 2 and the tensor-sliced sublayer GEMMs.
//!
//! Transformer layers have four GEMMs whose outputs require an
//! all-reduce under tensor parallelism (Megatron-style slicing,
//! Sections 2.4 and 6.1): the attention output projection (OP) and the
//! second fully-connected layer (FC-2) in the forward pass, and the
//! data-gradient GEMMs of FC-1 and the input projection (IP) in
//! backpropagation. All four keep the full `tokens x hidden` output
//! and shrink only the dot-product dimension as TP grows (Figure 5).

use t3_gpu::gemm::GemmShape;

/// A Transformer model configuration (Table 2 row).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Model name as the paper reports it.
    pub name: &'static str,
    /// Hidden dimension `H`.
    pub hidden: u64,
    /// Number of layers `L`.
    pub layers: u64,
    /// Sequence length per input.
    pub seq_len: u64,
    /// Batch size.
    pub batch: u64,
    /// TP degrees the paper evaluates for this model.
    pub tp_degrees: &'static [u64],
    /// Approximate parameter count, for reporting.
    pub approx_params: f64,
}

impl ModelConfig {
    /// Input tokens per iteration (`seq_len x batch`).
    pub fn tokens(&self) -> u64 {
        self.seq_len * self.batch
    }

    /// The sliced GEMM of `sublayer` at TP degree `tp`.
    ///
    /// # Panics
    ///
    /// Panics if `tp` is zero or exceeds the sublayer's K dimension.
    pub fn sublayer_gemm(&self, sublayer: Sublayer, tp: u64) -> GemmShape {
        let m = self.tokens();
        let h = self.hidden;
        let (full_k, transposed) = match sublayer {
            // Forward GEMMs in MLPerf BERT use transposed inputs;
            // backward GEMMs do not (Section 5.2).
            Sublayer::Op => (h, true),
            Sublayer::Fc2 => (4 * h, true),
            Sublayer::Fc1Bwd => (4 * h, false),
            Sublayer::IpBwd => (3 * h, false),
        };
        GemmShape::new(m, h, full_k)
            .with_transposed(transposed)
            .tp_sliced(tp)
    }

    /// Approximate parameter count from the standard 12·L·H² estimate.
    pub fn estimated_params(&self) -> f64 {
        12.0 * self.layers as f64 * (self.hidden as f64).powi(2)
    }

    /// Minimum tensor-parallel degree for the FP16 weights (plus an
    /// `overhead` factor for activations/optimizer state) to fit in
    /// `hbm_bytes` of per-GPU memory — the capacity argument of
    /// Section 2.4 for why large models need ever-larger TP.
    ///
    /// # Panics
    ///
    /// Panics unless `hbm_bytes` is positive and `overhead >= 1.0`.
    pub fn min_tp_for_capacity(&self, hbm_bytes: u64, overhead: f64) -> u64 {
        assert!(hbm_bytes > 0, "memory capacity must be positive");
        assert!(overhead >= 1.0, "overhead factor must be at least 1");
        let bytes_needed = self.estimated_params() * 2.0 * overhead;
        (bytes_needed / hbm_bytes as f64).ceil().max(1.0) as u64 // t3-lint: allow(float-cycles) -- capacity planning, not cycle timing; explicit ceil, result >= 1
    }
}

/// The four tensor-sliced sublayer GEMMs requiring an all-reduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sublayer {
    /// Attention output projection, forward pass.
    Op,
    /// Second fully-connected layer, forward pass.
    Fc2,
    /// FC-1 data gradient, backward pass.
    Fc1Bwd,
    /// Input (QKV) projection data gradient, backward pass.
    IpBwd,
}

impl Sublayer {
    /// All sliced sublayers, in the paper's reporting order
    /// (Figure 15: OP fwd, FC-2 fwd, FC-1 bwd, IP bwd).
    pub const ALL: [Sublayer; 4] = [
        Sublayer::Op,
        Sublayer::Fc2,
        Sublayer::Fc1Bwd,
        Sublayer::IpBwd,
    ];

    /// The forward-pass sublayers (inference prompt phase).
    pub const FORWARD: [Sublayer; 2] = [Sublayer::Op, Sublayer::Fc2];

    /// Short label as in Figure 15/16.
    pub fn label(self) -> &'static str {
        match self {
            Sublayer::Op => "OP (fwd)",
            Sublayer::Fc2 => "FC-2 (fwd)",
            Sublayer::Fc1Bwd => "FC-1 (bwd)",
            Sublayer::IpBwd => "IP (bwd)",
        }
    }
}

/// Megatron-GPT-2 (Table 2: H=3072, L=74, SL=1K, B=16, TP 8/16).
pub fn mega_gpt2() -> ModelConfig {
    ModelConfig {
        name: "Mega-GPT-2",
        hidden: 3072,
        layers: 74,
        seq_len: 1024,
        batch: 16,
        tp_degrees: &[8, 16],
        approx_params: 8.3e9,
    }
}

/// T-NLG (Table 2: H=4256, L=78, SL=1K, B=8, TP 8/16).
pub fn t_nlg() -> ModelConfig {
    ModelConfig {
        name: "T-NLG",
        hidden: 4256,
        layers: 78,
        seq_len: 1024,
        batch: 8,
        tp_degrees: &[8, 16],
        approx_params: 17e9,
    }
}

/// GPT-3 (Table 2: H=12K, L=96, SL=1K, B=2, TP 32).
pub fn gpt3() -> ModelConfig {
    ModelConfig {
        name: "GPT-3",
        hidden: 12 * 1024,
        layers: 96,
        seq_len: 1024,
        batch: 2,
        tp_degrees: &[32],
        approx_params: 175e9,
    }
}

/// PALM (Table 2: H=18K, L=118, SL=1K, B=2, TP 32).
pub fn palm() -> ModelConfig {
    ModelConfig {
        name: "PALM",
        hidden: 18 * 1024,
        layers: 118,
        seq_len: 1024,
        batch: 2,
        tp_degrees: &[32],
        approx_params: 530e9,
    }
}

/// MT-NLG (Table 2: H=20K, L=105, SL=1K, B=2, TP 32).
pub fn mt_nlg() -> ModelConfig {
    ModelConfig {
        name: "MT-NLG",
        hidden: 20 * 1024,
        layers: 105,
        seq_len: 1024,
        batch: 2,
        tp_degrees: &[32],
        approx_params: 540e9,
    }
}

/// A futuristic ~1-trillion-parameter model (Figure 4's "1T", 64-way
/// TP). Dimensions chosen so 12·L·H² ≈ 1e12.
pub fn futuristic_1t() -> ModelConfig {
    ModelConfig {
        name: "1T",
        hidden: 25 * 1024,
        layers: 128,
        seq_len: 1024,
        batch: 2,
        tp_degrees: &[64],
        approx_params: 1e12,
    }
}

/// A futuristic ~10-trillion-parameter model (Figure 4's "10T",
/// 64-way TP).
pub fn futuristic_10t() -> ModelConfig {
    ModelConfig {
        name: "10T",
        hidden: 72 * 1024,
        layers: 160,
        seq_len: 1024,
        batch: 2,
        tp_degrees: &[64],
        approx_params: 1e13,
    }
}

/// Spec-file spellings of the zoo models, in Table 2 / Figure 4
/// order. `by_name` accepts exactly these.
pub const NAMES: [&str; 7] = ["mega-gpt2", "t-nlg", "gpt3", "palm", "mt-nlg", "1t", "10t"];

/// Looks up a zoo model by its spec-file spelling (see [`NAMES`]).
pub fn by_name(name: &str) -> Option<ModelConfig> {
    match name {
        "mega-gpt2" => Some(mega_gpt2()),
        "t-nlg" => Some(t_nlg()),
        "gpt3" => Some(gpt3()),
        "palm" => Some(palm()),
        "mt-nlg" => Some(mt_nlg()),
        "1t" => Some(futuristic_1t()),
        "10t" => Some(futuristic_10t()),
        _ => None,
    }
}

/// A custom model outside the zoo (spec files with explicit
/// `hidden`/`layers`). Sequence length and batch default to the
/// paper's usual 1K×2 and are meant to be overridden; the parameter
/// estimate is the standard 12·L·H².
pub fn custom(hidden: u64, layers: u64) -> ModelConfig {
    let mut m = ModelConfig {
        name: "custom",
        hidden,
        layers,
        seq_len: 1024,
        batch: 2,
        tp_degrees: &[],
        approx_params: 0.0,
    };
    m.approx_params = m.estimated_params();
    m
}

/// The models of Table 2, in reporting order.
pub fn table2_models() -> Vec<ModelConfig> {
    vec![mega_gpt2(), t_nlg(), gpt3(), palm(), mt_nlg()]
}

/// Table 2 models plus Figure 4's futuristic configurations.
pub fn all_models() -> Vec<ModelConfig> {
    let mut models = table2_models();
    models.push(futuristic_1t());
    models.push(futuristic_10t());
    models
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let m = mega_gpt2();
        assert_eq!(m.hidden, 3072);
        assert_eq!(m.tokens(), 16 * 1024);
        let t = t_nlg();
        assert_eq!(t.hidden, 4256);
        assert_eq!(t.tokens(), 8 * 1024);
        assert_eq!(gpt3().tp_degrees, &[32]);
        assert_eq!(table2_models().len(), 5);
        assert_eq!(all_models().len(), 7);
    }

    #[test]
    fn parameter_estimates_are_in_the_right_ballpark() {
        for m in all_models() {
            let est = m.estimated_params();
            let ratio = est / m.approx_params;
            assert!(
                ratio > 0.45 && ratio < 2.2,
                "{}: estimate {est:.2e} vs reported {:.2e}",
                m.name,
                m.approx_params
            );
        }
    }

    #[test]
    fn sublayer_shapes_follow_megatron_slicing() {
        let m = t_nlg();
        let op = m.sublayer_gemm(Sublayer::Op, 8);
        assert_eq!((op.m, op.n, op.k), (8192, 4256, 4256 / 8));
        assert!(op.transposed);
        let fc2 = m.sublayer_gemm(Sublayer::Fc2, 8);
        assert_eq!(fc2.k, 4 * 4256 / 8);
        let fc1 = m.sublayer_gemm(Sublayer::Fc1Bwd, 16);
        assert_eq!(fc1.k, 4 * 4256 / 16);
        assert!(!fc1.transposed);
        let ip = m.sublayer_gemm(Sublayer::IpBwd, 8);
        assert_eq!(ip.k, 3 * 4256 / 8);
    }

    #[test]
    fn tp_slicing_preserves_output() {
        let m = mega_gpt2();
        for tp in [8u64, 16] {
            for sub in Sublayer::ALL {
                let s = m.sublayer_gemm(sub, tp);
                assert_eq!(s.m, m.tokens());
                assert_eq!(s.n, m.hidden);
            }
        }
    }

    #[test]
    fn capacity_argument_of_section_2_4() {
        // 40 GB HBM per GPU, 1.5x overhead for activations: the large
        // models need the larger TP degrees the paper assigns them.
        let hbm = 40u64 << 30;
        assert!(mega_gpt2().min_tp_for_capacity(hbm, 1.5) <= 8);
        assert!(t_nlg().min_tp_for_capacity(hbm, 1.5) <= 8);
        let mt = mt_nlg().min_tp_for_capacity(hbm, 1.5);
        assert!(
            mt > 16 && mt <= 64,
            "MT-NLG needs ~32-way slicing, got {mt}"
        );
        assert!(futuristic_10t().min_tp_for_capacity(hbm, 1.5) > 32);
    }

    #[test]
    fn zoo_names_round_trip() {
        for name in NAMES {
            let m = by_name(name).unwrap_or_else(|| panic!("{name} resolves"));
            assert!(m.hidden > 0);
        }
        assert!(by_name("gpt9").is_none());
        let c = custom(1024, 12);
        assert_eq!(c.name, "custom");
        assert_eq!(c.approx_params, c.estimated_params());
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<_> =
            Sublayer::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
