//! Other distributed techniques of Section 2.2: pipeline parallelism
//! and ZeRO-style sharded weights (FSDP).
//!
//! The paper's focus is the *serialized* all-reduce of tensor
//! parallelism; these techniques' communication largely overlaps with
//! independent compute. They matter to T3 in two ways (Section 7.2):
//! their overlapped traffic still *contends* for memory bandwidth
//! (where MCA helps — see `t3_core::study::coarse_overlap_study`), and
//! ZeRO's pre-layer weight all-gathers are exactly the AG→consumer
//! pattern `t3_core::agfuse` fuses.

use crate::zoo::ModelConfig;
use t3_sim::config::SystemConfig;
use t3_sim::{Bytes, Cycle};
use t3_topo::{Fabric, Schedule, Topology};

/// A GPipe-style pipeline-parallel schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Pipeline stages (devices).
    pub stages: u64,
    /// Micro-batches per iteration.
    pub microbatches: u64,
}

impl PipelineConfig {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(stages: u64, microbatches: u64) -> Self {
        assert!(
            stages >= 1 && microbatches >= 1,
            "parameters must be positive"
        );
        PipelineConfig {
            stages,
            microbatches,
        }
    }

    /// The pipeline-bubble fraction `(S-1)/(M+S-1)` of GPipe.
    pub fn bubble_fraction(&self) -> f64 {
        (self.stages - 1) as f64 / (self.microbatches + self.stages - 1) as f64
    }

    /// Cycles to transfer one micro-batch's activations between
    /// adjacent stages (a peer-to-peer send of
    /// `tokens_mb x hidden x 2` bytes).
    pub fn p2p_cycles(&self, sys: &SystemConfig, model: &ModelConfig) -> Cycle {
        let tokens_mb = model.tokens().div_ceil(self.microbatches);
        let bytes = tokens_mb * model.hidden * 2;
        // t3-lint: allow(float-cycles) -- single ceil of a bandwidth ratio; no accumulation, rounding direction explicit
        (bytes as f64 / sys.link.bytes_per_cycle()).ceil() as Cycle + sys.link.latency_cycles()
    }

    /// Whether the per-micro-batch P2P transfer hides under one
    /// stage's compute (`stage_cycles`): if so, pipeline communication
    /// is off the critical path (the usual case, and why the paper
    /// focuses on TP instead).
    pub fn p2p_hidden(&self, sys: &SystemConfig, model: &ModelConfig, stage_cycles: Cycle) -> bool {
        self.p2p_cycles(sys, model) <= stage_cycles
    }

    /// Event-driven GPipe makespan over a fabric: forward fill then
    /// backward drain across `stages` devices, each micro-batch
    /// costing `stage_fwd`/`stage_bwd` cycles per stage, with the
    /// inter-stage activation hand-off of `bytes` priced by
    /// [`Fabric::send`] on `fabric`. `None` makes hand-offs
    /// instantaneous — the ideal bound, so the exposed pipeline
    /// communication of a point is `makespan(Some(f)) -
    /// makespan(None)`. With instantaneous hand-offs and uniform stage
    /// times this reduces to the GPipe closed form
    /// `(S + M - 1) · (fwd + bwd)`.
    ///
    /// # Panics
    ///
    /// Panics if a fabric is given whose GPU count differs from
    /// `stages`.
    pub fn fabric_makespan(
        &self,
        mut fabric: Option<&mut Fabric>,
        stage_fwd: Cycle,
        stage_bwd: Cycle,
        bytes: Bytes,
    ) -> Cycle {
        if let Some(f) = fabric.as_deref() {
            assert_eq!(
                f.topo().num_gpus() as u64,
                self.stages,
                "pipeline fabric must have one GPU per stage"
            );
        }
        let stages = self.stages as usize;
        let mbs = self.microbatches as usize;
        let mut stage_free = vec![0u64; stages];
        // When each micro-batch's data becomes available at the stage
        // currently processing it (activations forward, gradients
        // backward).
        let mut arrive = vec![0u64; mbs];
        let mut tag = 0u64;
        let mut hand_off = |f: &mut Option<&mut Fabric>, now: Cycle, src: usize, dst: usize| {
            tag += 1;
            match f {
                Some(fab) => fab.send(now, src, dst, tag, bytes),
                None => now,
            }
        };
        for (stage, free) in stage_free.iter_mut().enumerate() {
            for arr in arrive.iter_mut() {
                let done = (*free).max(*arr) + stage_fwd;
                *free = done;
                *arr = if stage + 1 < stages {
                    hand_off(&mut fabric, done, stage, stage + 1)
                } else {
                    done
                };
            }
        }
        for (stage, free) in stage_free.iter_mut().enumerate().rev() {
            for arr in arrive.iter_mut() {
                let done = (*free).max(*arr) + stage_bwd;
                *free = done;
                *arr = if stage > 0 {
                    hand_off(&mut fabric, done, stage, stage - 1)
                } else {
                    done
                };
            }
        }
        stage_free.into_iter().max().unwrap_or(0)
    }
}

/// Reduce-scatter time over an arbitrary fabric: the wire term
/// executes the topology-derived schedule on a [`Fabric`] (per-hop
/// serialisation, shared ports, slow inter-node links), and the memory
/// term adds the DRAM cost of landing and reducing the `N-1` incoming
/// chunks plus one kernel launch — the RS analogue of
/// [`crate::moe::scheduled_all_to_all_cycles`]. This is the exposed
/// collective a sequential data-parallel gradient exchange pays; T3
/// instead overlaps it with backward compute.
///
/// # Panics
///
/// Panics if the topology's GPU count differs from `sys.num_gpus`.
pub fn scheduled_reduce_scatter_cycles(
    sys: &SystemConfig,
    topo: &Topology,
    payload_bytes: u64,
) -> Cycle {
    scheduled_collective_cycles(sys, topo, &Schedule::reduce_scatter(topo), payload_bytes)
}

/// All-gather time over an arbitrary fabric; see
/// [`scheduled_reduce_scatter_cycles`] for the cost terms.
///
/// # Panics
///
/// Panics if the topology's GPU count differs from `sys.num_gpus`.
pub fn scheduled_all_gather_cycles(
    sys: &SystemConfig,
    topo: &Topology,
    payload_bytes: u64,
) -> Cycle {
    scheduled_collective_cycles(sys, topo, &Schedule::all_gather(topo), payload_bytes)
}

fn scheduled_collective_cycles(
    sys: &SystemConfig,
    topo: &Topology,
    sched: &Schedule,
    payload_bytes: u64,
) -> Cycle {
    assert_eq!(
        topo.num_gpus(),
        sys.num_gpus,
        "topology and system disagree on GPU count"
    );
    let n = sys.num_gpus as u64;
    let wire = Fabric::new(topo).run_schedule(sched, payload_bytes, None);
    let chunk = payload_bytes / n;
    let dram = ((n - 1) * chunk) as f64 / sys.mem.bytes_per_cycle();
    // t3-lint: allow(float-cycles) -- DRAM drain bound: single ceil of a bandwidth ratio added to integer wire time
    wire + dram.ceil() as Cycle + sys.gpu.kernel_launch_cycles
}

/// ZeRO-3 / FSDP weight sharding: every layer's weights are
/// all-gathered right before use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsdpConfig {
    /// Sharding degree (devices holding one shard each).
    pub shards: u64,
}

impl FsdpConfig {
    /// Bytes of weights one Transformer layer must gather
    /// (approximately `12 H^2` FP16 parameters).
    pub fn layer_weight_bytes(&self, model: &ModelConfig) -> u64 {
        12 * model.hidden * model.hidden * 2
    }

    /// Ring all-gather cycles for one layer's weights.
    pub fn weight_ag_cycles(&self, sys: &SystemConfig, model: &ModelConfig) -> Cycle {
        let bytes = self.layer_weight_bytes(model);
        let chunk = bytes as f64 / self.shards as f64;
        let per_step = chunk / sys.link.bytes_per_cycle()
            + sys.link.latency_cycles() as f64
            + sys.gpu.coll_step_overhead_cycles as f64;
        // t3-lint: allow(float-cycles) -- analytic ZeRO-3 model: one ceil at the end, fixed evaluation order
        ((self.shards - 1) as f64 * per_step).ceil() as Cycle
    }

    /// Fraction of the weight all-gather that T3's AG→consumer fusion
    /// can hide under a consumer of `consumer_cycles` (Section 7.2):
    /// the exposed remainder is whatever the consumer is too short to
    /// cover.
    pub fn hidden_fraction(
        &self,
        sys: &SystemConfig,
        model: &ModelConfig,
        consumer_cycles: Cycle,
    ) -> f64 {
        let ag = self.weight_ag_cycles(sys, model) as f64;
        if ag <= 0.0 {
            return 1.0;
        }
        (consumer_cycles as f64 / ag).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn sys() -> SystemConfig {
        SystemConfig::paper_default()
    }

    #[test]
    fn bubble_fraction_shrinks_with_more_microbatches() {
        let few = PipelineConfig::new(8, 8).bubble_fraction();
        let many = PipelineConfig::new(8, 64).bubble_fraction();
        assert!(many < few);
        assert!((PipelineConfig::new(1, 4).bubble_fraction()).abs() < 1e-12);
        // GPipe's canonical numbers: S=4, M=12 -> 3/15.
        assert!((PipelineConfig::new(4, 12).bubble_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn p2p_usually_hides_under_stage_compute() {
        let s = sys();
        let model = zoo::t_nlg();
        let pp = PipelineConfig::new(8, 16);
        // A pipeline stage runs many layers; even one layer's GEMM time
        // (hundreds of microseconds) dwarfs the P2P transfer.
        let one_layer_cycles = 1_000_000;
        assert!(pp.p2p_hidden(&s, &model, one_layer_cycles));
        assert!(pp.p2p_cycles(&s, &model) > 0);
    }

    #[test]
    fn fsdp_ag_scales_with_model_and_shards() {
        let small = FsdpConfig { shards: 8 };
        let tn = zoo::t_nlg();
        let mg = zoo::mega_gpt2();
        assert!(small.layer_weight_bytes(&tn) > small.layer_weight_bytes(&mg));
        let s16 = FsdpConfig { shards: 16 };
        let sys16 = sys().with_num_gpus(16);
        // More shards, more steps, but smaller chunks: total wire time
        // is similar; overheads grow.
        assert!(s16.weight_ag_cycles(&sys16, &tn) > 0);
    }

    #[test]
    fn hidden_fraction_saturates_at_one() {
        let s = sys();
        let model = zoo::t_nlg();
        let f = FsdpConfig { shards: 8 };
        let ag = f.weight_ag_cycles(&s, &model);
        assert!((f.hidden_fraction(&s, &model, ag * 2) - 1.0).abs() < 1e-12);
        let half = f.hidden_fraction(&s, &model, ag / 2);
        assert!(half > 0.4 && half < 0.6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_stages_rejected() {
        let _ = PipelineConfig::new(0, 4);
    }

    #[test]
    fn ideal_makespan_matches_the_gpipe_closed_form() {
        for (s, m) in [(1u64, 4u64), (2, 1), (4, 12), (8, 16)] {
            let pp = PipelineConfig::new(s, m);
            let got = pp.fabric_makespan(None, 700, 1_300, 1 << 20);
            assert_eq!(got, (s + m - 1) * (700 + 1_300), "S={s} M={m}");
        }
    }

    #[test]
    fn fabric_hand_offs_expose_pipeline_communication() {
        let s = sys().with_num_gpus(4);
        let topo = Topology::ring(4, &s.link);
        let pp = PipelineConfig::new(4, 8);
        let ideal = pp.fabric_makespan(None, 10_000, 20_000, 1 << 22);
        let mut fabric = Fabric::new(&topo);
        let priced = pp.fabric_makespan(Some(&mut fabric), 10_000, 20_000, 1 << 22);
        assert!(
            priced > ideal,
            "a 4 MiB hand-off on a real link must cost something: {priced} vs {ideal}"
        );
        // Determinism: a fresh fabric replays the same makespan.
        let mut again = Fabric::new(&topo);
        assert_eq!(
            pp.fabric_makespan(Some(&mut again), 10_000, 20_000, 1 << 22),
            priced
        );
    }

    #[test]
    #[should_panic(expected = "one GPU per stage")]
    fn pipeline_fabric_must_match_stage_count() {
        let s = sys().with_num_gpus(8);
        let topo = Topology::ring(8, &s.link);
        let mut fabric = Fabric::new(&topo);
        let _ = PipelineConfig::new(4, 4).fabric_makespan(Some(&mut fabric), 1, 1, 1);
    }

    #[test]
    fn scheduled_rs_and_ag_price_wire_dram_and_launch() {
        let s = sys().with_num_gpus(8);
        let ring = Topology::ring(8, &s.link);
        let payload = 8 << 20;
        let rs = scheduled_reduce_scatter_cycles(&s, &ring, payload);
        let ag = scheduled_all_gather_cycles(&s, &ring, payload);
        assert!(rs > s.gpu.kernel_launch_cycles);
        assert!(ag > s.gpu.kernel_launch_cycles);
        // A slower fabric exposes more collective time.
        let mut slow = s.clone();
        slow.link.link_gb_s /= 4.0;
        let slow_ring = Topology::ring(8, &slow.link);
        assert!(scheduled_reduce_scatter_cycles(&slow, &slow_ring, payload) > rs);
    }
}
