//! Other distributed techniques of Section 2.2: pipeline parallelism
//! and ZeRO-style sharded weights (FSDP).
//!
//! The paper's focus is the *serialized* all-reduce of tensor
//! parallelism; these techniques' communication largely overlaps with
//! independent compute. They matter to T3 in two ways (Section 7.2):
//! their overlapped traffic still *contends* for memory bandwidth
//! (where MCA helps — see `t3_core::study::coarse_overlap_study`), and
//! ZeRO's pre-layer weight all-gathers are exactly the AG→consumer
//! pattern `t3_core::agfuse` fuses.

use crate::zoo::ModelConfig;
use t3_sim::config::SystemConfig;
use t3_sim::Cycle;

/// A GPipe-style pipeline-parallel schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Pipeline stages (devices).
    pub stages: u64,
    /// Micro-batches per iteration.
    pub microbatches: u64,
}

impl PipelineConfig {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(stages: u64, microbatches: u64) -> Self {
        assert!(
            stages >= 1 && microbatches >= 1,
            "parameters must be positive"
        );
        PipelineConfig {
            stages,
            microbatches,
        }
    }

    /// The pipeline-bubble fraction `(S-1)/(M+S-1)` of GPipe.
    pub fn bubble_fraction(&self) -> f64 {
        (self.stages - 1) as f64 / (self.microbatches + self.stages - 1) as f64
    }

    /// Cycles to transfer one micro-batch's activations between
    /// adjacent stages (a peer-to-peer send of
    /// `tokens_mb x hidden x 2` bytes).
    pub fn p2p_cycles(&self, sys: &SystemConfig, model: &ModelConfig) -> Cycle {
        let tokens_mb = model.tokens().div_ceil(self.microbatches);
        let bytes = tokens_mb * model.hidden * 2;
        // t3-lint: allow(float-cycles) -- single ceil of a bandwidth ratio; no accumulation, rounding direction explicit
        (bytes as f64 / sys.link.bytes_per_cycle()).ceil() as Cycle + sys.link.latency_cycles()
    }

    /// Whether the per-micro-batch P2P transfer hides under one
    /// stage's compute (`stage_cycles`): if so, pipeline communication
    /// is off the critical path (the usual case, and why the paper
    /// focuses on TP instead).
    pub fn p2p_hidden(&self, sys: &SystemConfig, model: &ModelConfig, stage_cycles: Cycle) -> bool {
        self.p2p_cycles(sys, model) <= stage_cycles
    }
}

/// ZeRO-3 / FSDP weight sharding: every layer's weights are
/// all-gathered right before use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsdpConfig {
    /// Sharding degree (devices holding one shard each).
    pub shards: u64,
}

impl FsdpConfig {
    /// Bytes of weights one Transformer layer must gather
    /// (approximately `12 H^2` FP16 parameters).
    pub fn layer_weight_bytes(&self, model: &ModelConfig) -> u64 {
        12 * model.hidden * model.hidden * 2
    }

    /// Ring all-gather cycles for one layer's weights.
    pub fn weight_ag_cycles(&self, sys: &SystemConfig, model: &ModelConfig) -> Cycle {
        let bytes = self.layer_weight_bytes(model);
        let chunk = bytes as f64 / self.shards as f64;
        let per_step = chunk / sys.link.bytes_per_cycle()
            + sys.link.latency_cycles() as f64
            + sys.gpu.coll_step_overhead_cycles as f64;
        // t3-lint: allow(float-cycles) -- analytic ZeRO-3 model: one ceil at the end, fixed evaluation order
        ((self.shards - 1) as f64 * per_step).ceil() as Cycle
    }

    /// Fraction of the weight all-gather that T3's AG→consumer fusion
    /// can hide under a consumer of `consumer_cycles` (Section 7.2):
    /// the exposed remainder is whatever the consumer is too short to
    /// cover.
    pub fn hidden_fraction(
        &self,
        sys: &SystemConfig,
        model: &ModelConfig,
        consumer_cycles: Cycle,
    ) -> f64 {
        let ag = self.weight_ag_cycles(sys, model) as f64;
        if ag <= 0.0 {
            return 1.0;
        }
        (consumer_cycles as f64 / ag).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn sys() -> SystemConfig {
        SystemConfig::paper_default()
    }

    #[test]
    fn bubble_fraction_shrinks_with_more_microbatches() {
        let few = PipelineConfig::new(8, 8).bubble_fraction();
        let many = PipelineConfig::new(8, 64).bubble_fraction();
        assert!(many < few);
        assert!((PipelineConfig::new(1, 4).bubble_fraction()).abs() < 1e-12);
        // GPipe's canonical numbers: S=4, M=12 -> 3/15.
        assert!((PipelineConfig::new(4, 12).bubble_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn p2p_usually_hides_under_stage_compute() {
        let s = sys();
        let model = zoo::t_nlg();
        let pp = PipelineConfig::new(8, 16);
        // A pipeline stage runs many layers; even one layer's GEMM time
        // (hundreds of microseconds) dwarfs the P2P transfer.
        let one_layer_cycles = 1_000_000;
        assert!(pp.p2p_hidden(&s, &model, one_layer_cycles));
        assert!(pp.p2p_cycles(&s, &model) > 0);
    }

    #[test]
    fn fsdp_ag_scales_with_model_and_shards() {
        let small = FsdpConfig { shards: 8 };
        let tn = zoo::t_nlg();
        let mg = zoo::mega_gpt2();
        assert!(small.layer_weight_bytes(&tn) > small.layer_weight_bytes(&mg));
        let s16 = FsdpConfig { shards: 16 };
        let sys16 = sys().with_num_gpus(16);
        // More shards, more steps, but smaller chunks: total wire time
        // is similar; overheads grow.
        assert!(s16.weight_ag_cycles(&sys16, &tn) > 0);
    }

    #[test]
    fn hidden_fraction_saturates_at_one() {
        let s = sys();
        let model = zoo::t_nlg();
        let f = FsdpConfig { shards: 8 };
        let ag = f.weight_ag_cycles(&s, &model);
        assert!((f.hidden_fraction(&s, &model, ag * 2) - 1.0).abs() < 1e-12);
        let half = f.hidden_fraction(&s, &model, ag / 2);
        assert!(half > 0.4 && half < 0.6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_stages_rejected() {
        let _ = PipelineConfig::new(0, 4);
    }
}
