//! End-to-end analytical model (Sections 5.1.2, 6.3; Figures 4, 19).
//!
//! The paper derives end-to-end numbers by combining a profiled
//! operator breakdown with analytical scaling, then multiplying the
//! "sliced GEMM → AR" portions by the *simulated* sublayer speedups.
//! We substitute an analytical operator model built on the same
//! throughput/bandwidth parameters as the timing simulator:
//!
//! * GEMMs and attention batched-matmuls: a roofline of
//!   compute (sustained FLOP rate) vs memory (operand bytes at HBM
//!   bandwidth), plus launch overhead;
//! * all-reduces: the ring collective model of `t3-gpu`;
//! * element-wise work (softmax, dropout, residual, layer-norm):
//!   memory passes at HBM bandwidth. The paper notes its MLPerf v1.1
//!   baseline has *unfused* attention making those ops 40-45% of
//!   runtime; [`E2eParams::attention_unfused_factor`] models that
//!   (calibrated, see DESIGN.md).
//!
//! [`LayerTime::sliced_fraction`] regenerates Figure 4;
//! [`LayerTime::speedup_with`] regenerates Figure 19 when fed the
//! simulated per-sublayer speedups.

use crate::zoo::{ModelConfig, Sublayer};
use t3_gpu::collective::{CollectiveKind, RingCollective};
use t3_sim::config::SystemConfig;

/// Which execution phase is modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// A training iteration (forward + backward).
    Training,
    /// The inference prompt phase (forward only, full sequence).
    InferencePrompt,
}

impl Phase {
    /// The sliced sublayers active in this phase.
    pub fn sublayers(self) -> &'static [Sublayer] {
        match self {
            Phase::Training => &Sublayer::ALL,
            Phase::InferencePrompt => &Sublayer::FORWARD,
        }
    }
}

/// Calibration parameters of the analytical operator model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E2eParams {
    /// Attention head dimension (used to size score matrices).
    pub head_dim: u64,
    /// Multiplier on attention element-wise passes modelling the
    /// unfused MLPerf v1.1 attention the paper's baseline uses.
    pub attention_unfused_factor: f64,
    /// Memory passes for residual/dropout/layer-norm per layer.
    pub elementwise_passes: f64,
}

impl Default for E2eParams {
    fn default() -> Self {
        E2eParams {
            head_dim: 128,
            attention_unfused_factor: 6.0,
            elementwise_passes: 4.0,
        }
    }
}

/// Time of one sliced sublayer: its GEMM and its all-reduce.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlicedTime {
    /// GEMM cycles.
    pub gemm_cycles: f64,
    /// All-reduce (RS + AG) cycles.
    pub ar_cycles: f64,
}

impl SlicedTime {
    /// Total sublayer cycles.
    pub fn total(&self) -> f64 {
        self.gemm_cycles + self.ar_cycles
    }
}

/// Analytical time breakdown of one Transformer layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTime {
    /// Per sliced sublayer (GEMM + AR) times.
    pub sliced: Vec<(Sublayer, SlicedTime)>,
    /// Everything else: non-sliced GEMMs, attention, element-wise ops.
    pub other_cycles: f64,
}

impl LayerTime {
    /// Total layer cycles.
    pub fn total(&self) -> f64 {
        self.other_cycles + self.sliced.iter().map(|(_, t)| t.total()).sum::<f64>()
    }

    /// Fraction of the layer in "sliced GEMM → AR" (Figure 4's dark
    /// portion).
    pub fn sliced_fraction(&self) -> f64 {
        self.sliced.iter().map(|(_, t)| t.total()).sum::<f64>() / self.total()
    }

    /// Fraction of the layer in collectives alone.
    pub fn comm_fraction(&self) -> f64 {
        self.sliced.iter().map(|(_, t)| t.ar_cycles).sum::<f64>() / self.total()
    }

    /// End-to-end speedup when each sliced sublayer's (GEMM + AR) time
    /// is divided by `speedup(sublayer)` — the paper's methodology for
    /// Figure 19: scale the baseline breakdown by simulated speedups.
    ///
    /// # Panics
    ///
    /// Panics if any speedup is not positive.
    pub fn speedup_with<F: Fn(Sublayer) -> f64>(&self, speedup: F) -> f64 {
        let mut new_total = self.other_cycles;
        for (sub, t) in &self.sliced {
            let s = speedup(*sub);
            assert!(s > 0.0, "speedup for {sub:?} must be positive");
            new_total += t.total() / s;
        }
        self.total() / new_total
    }

    /// What happens to the sliced fraction if compute gets `factor`x
    /// faster while the network stays fixed (the Section 2.4 thought
    /// experiment: 2x faster GEMMs push communication to 75%).
    pub fn sliced_fraction_with_faster_compute(&self, factor: f64) -> f64 {
        assert!(factor > 0.0);
        let comm: f64 = self.sliced.iter().map(|(_, t)| t.ar_cycles).sum();
        let sliced_gemm: f64 = self.sliced.iter().map(|(_, t)| t.gemm_cycles).sum();
        let new_total = self.other_cycles / factor + sliced_gemm / factor + comm;
        (sliced_gemm / factor + comm) / new_total
    }
}

/// Roofline GEMM time in cycles: compute vs memory bound.
fn gemm_cycles(sys: &SystemConfig, m: u64, n: u64, k: u64) -> f64 {
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    let bytes = 2.0 * (m * k + k * n + m * n) as f64;
    let compute = flops / (sys.gpu.peak_flops_per_cycle() * sys.gpu.gemm_efficiency);
    let memory = bytes / sys.mem.bytes_per_cycle();
    compute.max(memory) + sys.gpu.kernel_launch_cycles as f64
}

/// Element-wise op time: `passes` memory sweeps over `bytes`.
fn elementwise_cycles(sys: &SystemConfig, bytes: f64, passes: f64) -> f64 {
    passes * bytes / sys.mem.bytes_per_cycle() + sys.gpu.kernel_launch_cycles as f64
}

/// Ring all-reduce time for a `bytes` payload.
fn ar_cycles(sys: &SystemConfig, bytes: u64) -> f64 {
    RingCollective::baseline(CollectiveKind::AllReduce, bytes, sys)
        .simulate(sys)
        .cycles as f64
}

/// Builds the analytical layer breakdown for `model` at TP degree `tp`
/// in `phase`.
///
/// # Panics
///
/// Panics if `tp` does not divide the model's head count sensibly
/// (i.e. `hidden / tp` must be positive).
pub fn layer_time(
    sys: &SystemConfig,
    model: &ModelConfig,
    tp: u64,
    phase: Phase,
    params: &E2eParams,
) -> LayerTime {
    assert!(tp >= 1 && model.hidden / tp > 0, "invalid TP degree");
    let m = model.tokens();
    let h = model.hidden;
    let h_tp = h / tp;
    let ar_bytes = m * h * 2;

    // --- Forward, non-sliced ---------------------------------------
    // QKV input projection (column-sliced, no AR).
    let ip = gemm_cycles(sys, m, 3 * h_tp, h);
    // Attention BMMs: scores (Q·K^T) and context (P·V).
    let bmm_flops = 4.0 * model.batch as f64 * (model.seq_len as f64).powi(2) * h_tp as f64;
    let bmm = bmm_flops / (sys.gpu.peak_flops_per_cycle() * sys.gpu.gemm_efficiency)
        + 2.0 * sys.gpu.kernel_launch_cycles as f64;
    // Unfused attention element-wise work over the score matrices.
    let heads_dev = (h_tp as f64 / params.head_dim as f64).max(1.0);
    let score_bytes = model.batch as f64 * heads_dev * (model.seq_len as f64).powi(2) * 2.0;
    let attn_elem = elementwise_cycles(sys, score_bytes, params.attention_unfused_factor);
    // FC-1 (column-sliced, no AR) + GELU.
    let fc1 = gemm_cycles(sys, m, 4 * h_tp, h);
    let gelu = elementwise_cycles(sys, (m * 4 * h_tp * 2) as f64, 1.0);
    // Residual / dropout / layer-norm.
    let elem = elementwise_cycles(sys, (m * h * 2) as f64, params.elementwise_passes);
    let fwd_other = ip + bmm + attn_elem + fc1 + gelu + elem;

    // --- Forward, sliced --------------------------------------------
    let op_fwd = SlicedTime {
        gemm_cycles: gemm_cycles(sys, m, h, h_tp),
        ar_cycles: ar_cycles(sys, ar_bytes),
    };
    let fc2_fwd = SlicedTime {
        gemm_cycles: gemm_cycles(sys, m, h, 4 * h_tp),
        ar_cycles: ar_cycles(sys, ar_bytes),
    };

    match phase {
        Phase::InferencePrompt => LayerTime {
            sliced: vec![(Sublayer::Op, op_fwd), (Sublayer::Fc2, fc2_fwd)],
            other_cycles: fwd_other,
        },
        Phase::Training => {
            // Backward: data-grad + weight-grad GEMMs (2x the forward
            // FLOPs for every forward GEMM), 2x attention, 2x
            // element-wise. The sliced backward sublayers are the
            // FC-1 and IP data gradients (their weight gradients and
            // everything else land in `other`).
            let fc1_bwd = SlicedTime {
                gemm_cycles: gemm_cycles(sys, m, h, 4 * h_tp),
                ar_cycles: ar_cycles(sys, ar_bytes),
            };
            let ip_bwd = SlicedTime {
                gemm_cycles: gemm_cycles(sys, m, h, 3 * h_tp),
                ar_cycles: ar_cycles(sys, ar_bytes),
            };
            // Weight gradients of all four sliced GEMMs + both
            // passes of the non-sliced GEMMs + attention + element-wise.
            let wgrads = gemm_cycles(sys, h, h_tp, m) // OP wgrad
                + gemm_cycles(sys, 4 * h_tp, h, m)    // FC-2 wgrad
                + gemm_cycles(sys, h, 4 * h_tp, m)    // FC-1 wgrad
                + gemm_cycles(sys, h, 3 * h_tp, m); // IP wgrad
            let bwd_nonsliced_dgrads = gemm_cycles(sys, m, h, h_tp) // OP dgrad feeds attention
                + gemm_cycles(sys, m, 4 * h_tp, h); // FC-2 dgrad
            let bwd_other =
                bmm * 2.0 + attn_elem * 2.0 + elem * 2.0 + wgrads + bwd_nonsliced_dgrads;
            LayerTime {
                sliced: vec![
                    (Sublayer::Op, op_fwd),
                    (Sublayer::Fc2, fc2_fwd),
                    (Sublayer::Fc1Bwd, fc1_bwd),
                    (Sublayer::IpBwd, ip_bwd),
                ],
                other_cycles: fwd_other + bwd_other,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn sys(gpus: usize) -> SystemConfig {
        SystemConfig::paper_default().with_num_gpus(gpus)
    }

    #[test]
    fn sliced_fraction_is_substantial_like_figure_4() {
        // Paper: Mega-GPT-2 and T-NLG spend up to 34%/43% of time in
        // sliced GEMM -> AR.
        let p = E2eParams::default();
        for (model, tp) in [(zoo::mega_gpt2(), 16u64), (zoo::t_nlg(), 16)] {
            let lt = layer_time(&sys(tp as usize), &model, tp, Phase::Training, &p);
            let f = lt.sliced_fraction();
            assert!(
                f > 0.20 && f < 0.55,
                "{}: sliced fraction {f:.2} out of Figure-4 band",
                model.name
            );
        }
    }

    #[test]
    fn sliced_fraction_grows_with_tp() {
        let p = E2eParams::default();
        let model = zoo::t_nlg();
        let f8 = layer_time(&sys(8), &model, 8, Phase::Training, &p).sliced_fraction();
        let f16 = layer_time(&sys(16), &model, 16, Phase::Training, &p).sliced_fraction();
        assert!(
            f16 > f8,
            "TP=16 fraction {f16:.2} should exceed TP=8 {f8:.2}"
        );
    }

    #[test]
    fn inference_prompt_has_higher_comm_share_than_training() {
        // No backprop compute => sliced portion is relatively larger
        // (Section 6.3's reasoning for higher inference speedups).
        let p = E2eParams::default();
        let model = zoo::t_nlg();
        let tr = layer_time(&sys(8), &model, 8, Phase::Training, &p);
        let inf = layer_time(&sys(8), &model, 8, Phase::InferencePrompt, &p);
        assert!(inf.comm_fraction() > tr.comm_fraction());
    }

    #[test]
    fn faster_compute_exposes_communication() {
        // Section 2.4: with 2x faster GEMMs communication grows toward
        // dominating the sliced portion.
        let p = E2eParams::default();
        let lt = layer_time(&sys(8), &zoo::t_nlg(), 8, Phase::Training, &p);
        let now = lt.sliced_fraction();
        let fut = lt.sliced_fraction_with_faster_compute(2.0);
        assert!(fut > now * 0.8, "fraction should not collapse");
        let comm_now = lt.comm_fraction();
        // Communication share of the *sliced* portion grows.
        let comm_share_now = comm_now / now;
        let comm_fut: f64 = lt.sliced.iter().map(|(_, t)| t.ar_cycles).sum::<f64>()
            / (lt.other_cycles / 2.0
                + lt.sliced
                    .iter()
                    .map(|(_, t)| t.gemm_cycles / 2.0 + t.ar_cycles)
                    .sum::<f64>());
        assert!(comm_fut > comm_now, "comm {comm_fut:.2} vs {comm_now:.2}");
        assert!(comm_share_now < 1.0);
    }

    #[test]
    fn speedup_with_uniform_factor_bounded_by_amdahl() {
        let p = E2eParams::default();
        let lt = layer_time(&sys(8), &zoo::t_nlg(), 8, Phase::Training, &p);
        let f = lt.sliced_fraction();
        let s = lt.speedup_with(|_| 1.30);
        let amdahl = 1.0 / (1.0 - f + f / 1.30);
        assert!((s - amdahl).abs() / amdahl < 1e-9);
        assert!(s > 1.0 && s < 1.30);
    }

    #[test]
    fn training_speedups_land_in_papers_band() {
        // Feeding the paper's ~30% sublayer speedup into the breakdown
        // must give end-to-end training speedups in the ~5-15% band
        // (paper: max 12%, geomean 10% for T3-MCA).
        let p = E2eParams::default();
        for (model, tp) in [(zoo::mega_gpt2(), 16u64), (zoo::t_nlg(), 16)] {
            let lt = layer_time(&sys(tp as usize), &model, tp, Phase::Training, &p);
            let s = lt.speedup_with(|_| 1.30);
            assert!(
                s > 1.04 && s < 1.18,
                "{}: end-to-end speedup {s:.3} out of band",
                model.name
            );
        }
    }

    #[test]
    fn larger_models_keep_substantial_sliced_fractions() {
        let p = E2eParams::default();
        for model in [zoo::gpt3(), zoo::palm(), zoo::mt_nlg()] {
            let lt = layer_time(&sys(32), &model, 32, Phase::Training, &p);
            let f = lt.sliced_fraction();
            assert!(
                f > 0.25 && f < 0.60,
                "{}: sliced fraction {f:.2}",
                model.name
            );
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_speedup_rejected() {
        let p = E2eParams::default();
        let lt = layer_time(&sys(8), &zoo::t_nlg(), 8, Phase::Training, &p);
        let _ = lt.speedup_with(|_| 0.0);
    }
}
