//! Transformer model zoo and end-to-end analytics for the T3
//! reproduction.
//!
//! * [`zoo`] — the models of Table 2 (Mega-GPT-2, T-NLG, GPT-3, PALM,
//!   MT-NLG) plus the 1-trillion and 10-trillion parameter futuristic
//!   configurations of Figure 4, with their tensor-parallel sublayer
//!   GEMM shapes (OP and FC-2 in the forward pass; FC-1 and IP data
//!   gradients in the backward pass — the four GEMMs whose outputs
//!   need an all-reduce).
//! * [`moe`] — mixture-of-experts layers under expert parallelism and
//!   T3's fusion of the combine all-to-all (Section 7.2).
//! * [`parallelism`] — pipeline parallelism and ZeRO/FSDP weight
//!   sharding (Section 2.2): where their communication hides, and what
//!   T3's AG fusion buys for sharded weights.
//! * [`e2e`] — the analytical per-layer operation model used, like the
//!   paper's Section 5.1.2 methodology, to (a) compute how much of a
//!   training/prompt iteration sits in "sliced GEMM → AR" (Figure 4)
//!   and (b) scale that portion by simulated sublayer speedups to get
//!   end-to-end speedups (Figure 19).

pub mod e2e;
pub mod moe;
pub mod parallelism;
pub mod zoo;

pub use zoo::{ModelConfig, Sublayer};
