//! The shared line-oriented reader behind both spec kinds.
//!
//! A spec file is a header line (`workload "name"` or `system
//! "name"`), then `[section]` headers with `key = value` entries.
//! Values are integers, floats, bare idents, quoted strings, or —
//! inside `[sweep]` — bracketed lists (`tp = [4, 8, 16]`). `#` starts
//! a comment anywhere outside quotes.
//!
//! Every failure is a single [`SpecError`] carrying the file label and
//! 1-based line number; the parser stops at the first error so the
//! diagnostic a user sees (and the byte-exact message the robustness
//! tests pin) is always the earliest problem in the file.

use std::fmt;

/// A parse or validation failure, rendered as `file:line: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The file label given to the parser (usually the path).
    pub file: String,
    /// 1-based line of the offending construct (0 for file-level
    /// errors such as an unreadable file).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl SpecError {
    /// A located error.
    pub fn at(file: &str, line: usize, message: impl Into<String>) -> Self {
        SpecError {
            file: file.to_string(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}", self.file, self.message)
        } else {
            write!(f, "{}:{}: {}", self.file, self.line, self.message)
        }
    }
}

impl std::error::Error for SpecError {}

/// Which of the two file kinds a header declared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecKind {
    /// A `.t3w` workload spec (`workload "name"`).
    Workload,
    /// A `.t3s` system spec (`system "name"`).
    System,
}

impl SpecKind {
    /// The header keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            SpecKind::Workload => "workload",
            SpecKind::System => "system",
        }
    }
}

/// One parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer literal.
    Int(u64),
    /// A float literal (only accepted where a number is expected).
    Float(f64),
    /// A bare identifier (enum values, zoo names, topology names).
    Ident(String),
    /// A double-quoted string.
    Str(String),
    /// A bracketed list of scalars (sweep axes only).
    List(Vec<Value>),
}

impl Value {
    /// Short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "an integer",
            Value::Float(_) => "a float",
            Value::Ident(_) => "an identifier",
            Value::Str(_) => "a string",
            Value::List(_) => "a list",
        }
    }
}

/// One `key = value` line.
#[derive(Debug, Clone, PartialEq)]
pub struct RawEntry {
    /// The key left of `=`.
    pub key: String,
    /// The parsed value.
    pub value: Value,
    /// 1-based source line.
    pub line: usize,
}

/// One `[section]` with its entries.
#[derive(Debug, Clone, PartialEq)]
pub struct RawSection {
    /// Section name without brackets.
    pub name: String,
    /// 1-based line of the `[section]` header.
    pub line: usize,
    /// Entries in file order.
    pub entries: Vec<RawEntry>,
}

impl RawSection {
    /// The entry for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&RawEntry> {
        self.entries.iter().find(|e| e.key == key)
    }

    /// Errors on the first entry whose key is not in `allowed`,
    /// listing the accepted keys.
    pub fn check_keys(&self, file: &str, allowed: &[&str]) -> Result<(), SpecError> {
        for e in &self.entries {
            if !allowed.contains(&e.key.as_str()) {
                return Err(SpecError::at(
                    file,
                    e.line,
                    format!(
                        "unknown key '{}' in [{}] (expected one of: {})",
                        e.key,
                        self.name,
                        allowed.join(", ")
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// A fully tokenized spec file: header plus sections in file order.
#[derive(Debug, Clone, PartialEq)]
pub struct RawSpec {
    /// Declared kind (`workload` / `system`).
    pub kind: SpecKind,
    /// The quoted name from the header line.
    pub name: String,
    /// Sections in declaration order (order matters: the sweep
    /// cross-product enumerates axes exactly as declared).
    pub sections: Vec<RawSection>,
}

impl RawSpec {
    /// The section named `name`, if present.
    pub fn section(&self, name: &str) -> Option<&RawSection> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Errors on the first section whose name is not in `allowed`.
    pub fn check_sections(&self, file: &str, allowed: &[&str]) -> Result<(), SpecError> {
        for s in &self.sections {
            if !allowed.contains(&s.name.as_str()) {
                return Err(SpecError::at(
                    file,
                    s.line,
                    format!(
                        "unknown section [{}] (expected one of: {})",
                        s.name,
                        allowed
                            .iter()
                            .map(|a| format!("[{a}]"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// Strips a `#` comment (quote-aware) and surrounding whitespace.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return line[..i].trim(),
            _ => {}
        }
    }
    line.trim()
}

/// True for the identifier alphabet (letters, digits, `_`, `-`, `.`).
fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
}

/// Parses one scalar value (no lists).
fn parse_scalar(file: &str, line: usize, text: &str) -> Result<Value, SpecError> {
    if let Some(body) = text.strip_prefix('"') {
        return match body.strip_suffix('"') {
            Some(inner) if !inner.contains('"') => Ok(Value::Str(inner.to_string())),
            _ => Err(SpecError::at(file, line, "unterminated string value")),
        };
    }
    if let Ok(v) = text.parse::<u64>() {
        return Ok(Value::Int(v));
    }
    if let Ok(v) = text.parse::<f64>() {
        if v.is_finite() {
            return Ok(Value::Float(v));
        }
    }
    if is_ident(text) {
        return Ok(Value::Ident(text.to_string()));
    }
    Err(SpecError::at(
        file,
        line,
        format!(
            "cannot parse value '{text}' (expected a number, identifier, \"string\", or [list])"
        ),
    ))
}

/// Parses a value, including bracketed lists.
fn parse_value(file: &str, line: usize, text: &str) -> Result<Value, SpecError> {
    let Some(body) = text.strip_prefix('[') else {
        return parse_scalar(file, line, text);
    };
    let Some(inner) = body.strip_suffix(']') else {
        return Err(SpecError::at(file, line, "unterminated list (missing ']')"));
    };
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Value::List(Vec::new()));
    }
    let mut items = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            return Err(SpecError::at(file, line, "empty element in list"));
        }
        items.push(parse_scalar(file, line, part)?);
    }
    Ok(Value::List(items))
}

/// Tokenizes `text` (labelled `file` in diagnostics) into a
/// [`RawSpec`], checking only *structure*: header first, sections
/// unique, keys unique within a section, values well-formed. Key and
/// value *meaning* is checked by the typed workload/system layers.
pub fn parse(file: &str, text: &str) -> Result<RawSpec, SpecError> {
    let mut header: Option<(SpecKind, String)> = None;
    let mut sections: Vec<RawSection> = Vec::new();
    for (idx, raw_line) in text.lines().enumerate() {
        let line = idx + 1;
        let content = strip_comment(raw_line);
        if content.is_empty() {
            continue;
        }
        if header.is_none() {
            let (keyword, rest) = content
                .split_once(char::is_whitespace)
                .unwrap_or((content, ""));
            let kind = match keyword {
                "workload" => SpecKind::Workload,
                "system" => SpecKind::System,
                _ => {
                    return Err(SpecError::at(
                        file,
                        line,
                        "expected a `workload \"name\"` or `system \"name\"` header line",
                    ))
                }
            };
            let name = match parse_scalar(file, line, rest.trim())? {
                Value::Str(s) if !s.is_empty() => s,
                _ => {
                    return Err(SpecError::at(
                        file,
                        line,
                        format!("{} header needs a non-empty quoted name", kind.keyword()),
                    ))
                }
            };
            header = Some((kind, name));
            continue;
        }
        if let Some(body) = content.strip_prefix('[') {
            let Some(name) = body.strip_suffix(']') else {
                return Err(SpecError::at(
                    file,
                    line,
                    "unterminated section header (missing ']')",
                ));
            };
            let name = name.trim();
            if !is_ident(name) {
                return Err(SpecError::at(
                    file,
                    line,
                    "section name must be an identifier",
                ));
            }
            if let Some(first) = sections.iter().find(|s| s.name == name) {
                return Err(SpecError::at(
                    file,
                    line,
                    format!(
                        "duplicate section [{name}] (first defined at line {})",
                        first.line
                    ),
                ));
            }
            sections.push(RawSection {
                name: name.to_string(),
                line,
                entries: Vec::new(),
            });
            continue;
        }
        let Some((key, value)) = content.split_once('=') else {
            return Err(SpecError::at(
                file,
                line,
                "expected `key = value` (or a `[section]` header)",
            ));
        };
        let key = key.trim();
        if !is_ident(key) {
            return Err(SpecError::at(file, line, "key must be an identifier"));
        }
        let Some(section) = sections.last_mut() else {
            return Err(SpecError::at(
                file,
                line,
                format!("`{key} = ...` appears before any [section] header"),
            ));
        };
        if let Some(first) = section.get(key) {
            let (name, first_line) = (section.name.clone(), first.line);
            return Err(SpecError::at(
                file,
                line,
                format!("duplicate key '{key}' in [{name}] (first set at line {first_line})"),
            ));
        }
        let value = parse_value(file, line, value.trim())?;
        section.entries.push(RawEntry {
            key: key.to_string(),
            value,
            line,
        });
    }
    let Some((kind, name)) = header else {
        return Err(SpecError::at(
            file,
            1,
            "empty spec: expected a `workload \"name\"` or `system \"name\"` header line",
        ));
    };
    Ok(RawSpec {
        kind,
        name,
        sections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_header_sections_and_values() {
        let s = parse(
            "a.t3w",
            "# leading comment\nworkload \"demo\"\n[model]\nzoo = gpt3 # trailing\nseq_len = 512\nscale = 1.5\nnote = \"hi\"\n[sweep]\ntp = [4, 8]\n",
        )
        .expect("parses");
        assert_eq!(s.kind, SpecKind::Workload);
        assert_eq!(s.name, "demo");
        assert_eq!(s.sections.len(), 2);
        let model = s.section("model").expect("model section");
        assert_eq!(model.get("zoo").unwrap().value, Value::Ident("gpt3".into()));
        assert_eq!(model.get("seq_len").unwrap().value, Value::Int(512));
        assert_eq!(model.get("scale").unwrap().value, Value::Float(1.5));
        assert_eq!(model.get("note").unwrap().value, Value::Str("hi".into()));
        let sweep = s.section("sweep").expect("sweep section");
        assert_eq!(
            sweep.get("tp").unwrap().value,
            Value::List(vec![Value::Int(4), Value::Int(8)])
        );
    }

    #[test]
    fn error_lines_are_exact() {
        let err = parse("x.t3w", "workload \"w\"\n[p]\na = 1\na = 2\n").unwrap_err();
        assert_eq!(
            err.to_string(),
            "x.t3w:4: duplicate key 'a' in [p] (first set at line 3)"
        );
        let err = parse("x.t3w", "workload \"w\"\n[p]\n[p]\n").unwrap_err();
        assert_eq!(
            err.to_string(),
            "x.t3w:3: duplicate section [p] (first defined at line 2)"
        );
        let err = parse("x.t3w", "nonsense\n").unwrap_err();
        assert_eq!(
            err.to_string(),
            "x.t3w:1: expected a `workload \"name\"` or `system \"name\"` header line"
        );
        let err = parse("x.t3w", "workload \"w\"\nk = 1\n").unwrap_err();
        assert_eq!(
            err.to_string(),
            "x.t3w:2: `k = ...` appears before any [section] header"
        );
    }

    #[test]
    fn empty_list_is_structurally_fine() {
        // Meaning (an empty sweep axis is an error) is checked by the
        // typed layer, which owns the message.
        let s = parse("x.t3w", "workload \"w\"\n[sweep]\ntp = []\n").expect("parses");
        assert_eq!(
            s.section("sweep").unwrap().get("tp").unwrap().value,
            Value::List(vec![])
        );
    }

    #[test]
    fn malformed_values_error() {
        assert!(parse("x", "workload \"w\"\n[s]\nk = [4, 8\n").is_err());
        assert!(parse("x", "workload \"w\"\n[s]\nk = \"open\n").is_err());
        assert!(parse("x", "workload \"w\"\n[s]\nk = a b\n").is_err());
        assert!(parse("x", "workload \"w\"\n[s]\nk = [4,,8]\n").is_err());
    }

    #[test]
    fn display_includes_file_and_line() {
        let e = SpecError::at("f.t3s", 7, "boom");
        assert_eq!(e.to_string(), "f.t3s:7: boom");
        let e = SpecError::at("f.t3s", 0, "unreadable");
        assert_eq!(e.to_string(), "f.t3s: unreadable");
    }
}
