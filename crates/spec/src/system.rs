//! The typed system spec (`.t3s`): topology × link × memory-controller
//! policy × engine mode.
//!
//! ```text
//! system "dgx-ring"
//!
//! [topology]
//! kind = ring             # ring | fully-connected | switch | torus | hierarchical
//! inter_bw_div = 4        # hierarchical only: inter-node bandwidth divisor
//! inter_lat_mult = 4      # hierarchical only: inter-node latency multiplier
//!
//! [link]
//! gb_s = 150.0            # per-direction bandwidth (Table 1 default)
//! latency_ns = 500.0      # one-way link latency
//!
//! [memory]
//! policy = mca            # mca | round-robin (T3-fused arbitration)
//!
//! [engine]
//! sim = fast-forward      # fast-forward | stepped
//! ```
//!
//! Every key is optional: an empty spec is the paper's Table 1 system
//! on a ring.

use crate::parse::{self, RawEntry, SpecError, SpecKind, Value};
use t3_sim::config::SystemConfig;
use t3_sim::SimMode;

/// Topology spellings a spec may name, in t3-topo reporting order.
pub const TOPOLOGY_NAMES: [&str; 5] =
    ["ring", "fully-connected", "switch", "torus", "hierarchical"];

/// Validates a topology spelling (shared with workload sweep axes).
pub fn check_topology(file: &str, line: usize, name: &str) -> Result<(), SpecError> {
    if TOPOLOGY_NAMES.contains(&name) {
        return Ok(());
    }
    Err(SpecError::at(
        file,
        line,
        format!(
            "invalid topology '{name}': expected one of {}",
            TOPOLOGY_NAMES.join(", ")
        ),
    ))
}

/// Memory-controller arbitration for the fused T3 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McPolicy {
    /// T3-MCA dynamic local/remote partitioning (the paper's design).
    Mca,
    /// Naive round-robin arbitration (the paper's "T3" ablation).
    RoundRobin,
}

impl McPolicy {
    /// The spec-file spelling.
    pub fn label(self) -> &'static str {
        match self {
            McPolicy::Mca => "mca",
            McPolicy::RoundRobin => "round-robin",
        }
    }
}

/// A parsed and validated system spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    /// The quoted name from the `system "..."` header.
    pub name: String,
    /// Topology kind (one of [`TOPOLOGY_NAMES`]).
    pub topology: String,
    /// Hierarchical fabrics: inter-node bandwidth = link / this.
    pub inter_bw_div: u64,
    /// Hierarchical fabrics: inter-node latency = link × this.
    pub inter_lat_mult: u64,
    /// Per-direction link bandwidth in GB/s.
    pub link_gb_s: f64,
    /// One-way link latency in nanoseconds.
    pub latency_ns: f64,
    /// Memory-controller policy for fused execution.
    pub policy: McPolicy,
    /// Engine time-advancement mode.
    pub sim: SimMode,
}

/// Reads a float-valued entry, accepting integer literals.
fn get_f64(file: &str, e: &RawEntry) -> Result<f64, SpecError> {
    match e.value {
        Value::Float(v) => Ok(v),
        Value::Int(v) => Ok(v as f64),
        ref other => Err(SpecError::at(
            file,
            e.line,
            format!("key '{}' needs a number, got {}", e.key, other.type_name()),
        )),
    }
}

/// Reads an identifier-valued entry.
fn get_ident<'a>(file: &str, e: &'a RawEntry) -> Result<&'a str, SpecError> {
    match &e.value {
        Value::Ident(name) => Ok(name),
        other => Err(SpecError::at(
            file,
            e.line,
            format!(
                "key '{}' needs an identifier, got {}",
                e.key,
                other.type_name()
            ),
        )),
    }
}

impl SystemSpec {
    /// Parses and validates a system spec from `text`, labelling
    /// diagnostics with `file`.
    pub fn parse(file: &str, text: &str) -> Result<Self, SpecError> {
        let raw = parse::parse(file, text)?;
        if raw.kind != SpecKind::System {
            return Err(SpecError::at(
                file,
                1,
                "expected a system spec (header `system \"name\"`), found a workload spec",
            ));
        }
        raw.check_sections(file, &["topology", "link", "memory", "engine"])?;

        let paper = SystemConfig::paper_default();
        let mut spec = SystemSpec {
            name: raw.name.clone(),
            topology: "ring".to_string(),
            inter_bw_div: 4,
            inter_lat_mult: 4,
            link_gb_s: paper.link.link_gb_s,
            latency_ns: paper.link.latency_ns,
            policy: McPolicy::Mca,
            sim: SimMode::default(),
        };

        if let Some(s) = raw.section("topology") {
            s.check_keys(file, &["kind", "inter_bw_div", "inter_lat_mult"])?;
            for e in &s.entries {
                match e.key.as_str() {
                    "kind" => {
                        let name = get_ident(file, e)?;
                        check_topology(file, e.line, name)?;
                        spec.topology = name.to_string();
                    }
                    key => {
                        let Value::Int(v) = e.value else {
                            return Err(SpecError::at(
                                file,
                                e.line,
                                format!(
                                    "key '{key}' needs an integer, got {}",
                                    e.value.type_name()
                                ),
                            ));
                        };
                        if !(1..=1024).contains(&v) {
                            return Err(SpecError::at(
                                file,
                                e.line,
                                format!("{key} must be between 1 and 1024, got {v}"),
                            ));
                        }
                        if key == "inter_bw_div" {
                            spec.inter_bw_div = v;
                        } else {
                            spec.inter_lat_mult = v;
                        }
                    }
                }
            }
        }
        if let Some(s) = raw.section("link") {
            s.check_keys(file, &["gb_s", "latency_ns"])?;
            for e in &s.entries {
                let v = get_f64(file, e)?;
                if !v.is_finite() || v <= 0.0 || v > 1e6 {
                    return Err(SpecError::at(
                        file,
                        e.line,
                        format!("{} must be a positive number up to 1e6, got {v}", e.key),
                    ));
                }
                if e.key == "gb_s" {
                    spec.link_gb_s = v;
                } else {
                    spec.latency_ns = v;
                }
            }
        }
        if let Some(s) = raw.section("memory") {
            s.check_keys(file, &["policy"])?;
            if let Some(e) = s.get("policy") {
                spec.policy = match get_ident(file, e)? {
                    "mca" => McPolicy::Mca,
                    "round-robin" => McPolicy::RoundRobin,
                    other => {
                        return Err(SpecError::at(
                            file,
                            e.line,
                            format!("invalid policy '{other}': expected one of mca, round-robin"),
                        ))
                    }
                };
            }
        }
        if let Some(s) = raw.section("engine") {
            s.check_keys(file, &["sim"])?;
            if let Some(e) = s.get("sim") {
                spec.sim = match get_ident(file, e)? {
                    "fast-forward" => SimMode::FastForward,
                    "stepped" => SimMode::Stepped,
                    other => {
                        return Err(SpecError::at(
                            file,
                            e.line,
                            format!("invalid sim '{other}': expected one of fast-forward, stepped"),
                        ))
                    }
                };
            }
        }
        Ok(spec)
    }

    /// The paper's Table 1 system with this spec's link parameters and
    /// the given GPU count.
    pub fn system_config(&self, num_gpus: usize) -> SystemConfig {
        let mut sys = SystemConfig::paper_default().with_num_gpus(num_gpus);
        sys.link.link_gb_s = self.link_gb_s;
        sys.link.latency_ns = self.latency_ns;
        sys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_the_paper_system() {
        let s = SystemSpec::parse("s.t3s", "system \"s\"\n").expect("parses");
        assert_eq!(s.topology, "ring");
        assert_eq!(s.policy, McPolicy::Mca);
        assert_eq!(s.sim, SimMode::FastForward);
        assert_eq!(s.link_gb_s, 150.0);
        let sys = s.system_config(8);
        assert_eq!(sys.num_gpus, 8);
        assert_eq!(sys.link.latency_ns, 500.0);
    }

    #[test]
    fn overrides_land_in_the_config() {
        let text = "system \"s\"\n[topology]\nkind = hierarchical\ninter_bw_div = 2\n[link]\ngb_s = 500\nlatency_ns = 100.0\n[memory]\npolicy = round-robin\n[engine]\nsim = stepped\n";
        let s = SystemSpec::parse("s.t3s", text).expect("parses");
        assert_eq!(s.topology, "hierarchical");
        assert_eq!(s.inter_bw_div, 2);
        assert_eq!(s.inter_lat_mult, 4);
        assert_eq!(s.policy, McPolicy::RoundRobin);
        assert_eq!(s.sim, SimMode::Stepped);
        let sys = s.system_config(16);
        assert_eq!(sys.link.link_gb_s, 500.0);
        assert_eq!(sys.link.latency_ns, 100.0);
    }

    #[test]
    fn typed_errors_are_byte_exact() {
        let err =
            SystemSpec::parse("s.t3s", "system \"s\"\n[topology]\nkind = mesh\n").unwrap_err();
        assert_eq!(
            err.to_string(),
            "s.t3s:3: invalid topology 'mesh': expected one of ring, fully-connected, switch, torus, hierarchical"
        );
        let err = SystemSpec::parse("s.t3s", "system \"s\"\n[link]\ngb_s = -1.0\n").unwrap_err();
        assert_eq!(
            err.to_string(),
            "s.t3s:3: gb_s must be a positive number up to 1e6, got -1"
        );
        // An overflowing literal saturates to `inf`, which the lexer
        // already refuses to classify as a number.
        let err = SystemSpec::parse("s.t3s", "system \"s\"\n[link]\ngb_s = 1e999\n").unwrap_err();
        assert_eq!(
            err.to_string(),
            "s.t3s:3: key 'gb_s' needs a number, got an identifier"
        );
        let err =
            SystemSpec::parse("s.t3s", "system \"s\"\n[memory]\npolicy = fifo\n").unwrap_err();
        assert_eq!(
            err.to_string(),
            "s.t3s:3: invalid policy 'fifo': expected one of mca, round-robin"
        );
    }

    #[test]
    fn workload_header_is_rejected() {
        let err = SystemSpec::parse("s.t3s", "workload \"w\"\n").unwrap_err();
        assert!(err.to_string().contains("expected a system spec"));
    }
}
