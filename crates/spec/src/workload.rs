//! The typed workload spec (`.t3w`): model × parallelism degrees ×
//! execution mode, plus the optional `[sweep]` block.
//!
//! ```text
//! workload "gpt3-3d"
//!
//! [model]
//! zoo = gpt3          # or: hidden = 12288, layers = 96
//! seq_len = 512       # optional overrides of the zoo dims
//! batch = 2
//!
//! [parallelism]
//! tp = 8              # tensor-parallel degree (2..=64)
//! pp = 1              # pipeline stages (1..=64)
//! dp = 1              # data-parallel replicas (1..=64)
//! ep = 1              # expert-parallel degree (1..=64)
//! microbatches = 4
//!
//! [execution]
//! mode = t3mca        # sequential | t3mca
//!
//! [sweep]             # list-valued axes, cross-producted in
//! tp = [4, 8]         # declaration order (first axis outermost)
//! mode = [sequential, t3mca]
//! topology = [ring, hierarchical]
//! ```

use crate::parse::{self, RawEntry, RawSection, SpecError, SpecKind, Value};
use t3_models::zoo::{self, ModelConfig};

/// The execution mode of one sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// GEMM, then reduce-scatter, then all-gather, serialized.
    Sequential,
    /// T3: reduce-scatter fused into the GEMM (the memory-controller
    /// policy comes from the system spec's `[memory] policy`).
    T3Mca,
}

impl ExecMode {
    /// The spec-file spelling.
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::Sequential => "sequential",
            ExecMode::T3Mca => "t3mca",
        }
    }

    fn from_name(file: &str, line: usize, name: &str) -> Result<Self, SpecError> {
        match name {
            "sequential" => Ok(ExecMode::Sequential),
            "t3mca" => Ok(ExecMode::T3Mca),
            other => Err(SpecError::at(
                file,
                line,
                format!("invalid mode '{other}': expected one of sequential, t3mca"),
            )),
        }
    }
}

/// One sweep axis: the key it overrides and its candidate values.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxis {
    /// Which scalar this axis overrides (`tp`, `pp`, `dp`, `ep`,
    /// `microbatches`, `batch`, `seq_len`, `mode`, or `topology`).
    pub key: String,
    /// The values, in declaration order.
    pub values: Vec<Value>,
    /// Source line of the axis (errors during expansion point here).
    pub line: usize,
}

/// The `[model]` block, resolved lazily so `batch`/`seq_len` sweep
/// axes can override per point.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSection {
    /// Zoo model name, when given.
    pub zoo: Option<String>,
    /// Explicit hidden dimension, when given.
    pub hidden: Option<u64>,
    /// Explicit layer count, when given.
    pub layers: Option<u64>,
    /// Sequence-length override.
    pub seq_len: Option<u64>,
    /// Batch-size override.
    pub batch: Option<u64>,
}

/// Scalar base values every sweep point starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasePoint {
    /// Tensor-parallel degree.
    pub tp: u64,
    /// Pipeline stages.
    pub pp: u64,
    /// Data-parallel replicas.
    pub dp: u64,
    /// Expert-parallel degree.
    pub ep: u64,
    /// Micro-batches per training iteration.
    pub microbatches: u64,
    /// Execution mode.
    pub mode: ExecMode,
}

/// A parsed and validated workload spec.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// The quoted name from the `workload "..."` header.
    pub name: String,
    /// The `[model]` block.
    pub model: ModelSection,
    /// Scalar defaults from `[parallelism]` / `[execution]`.
    pub base: BasePoint,
    /// Sweep axes in declaration order (empty without `[sweep]`).
    pub sweep: Vec<SweepAxis>,
}

/// Inclusive degree bounds shared by every parallelism axis.
const MAX_DEGREE: u64 = 64;

/// Reads one positive integer entry.
fn get_u64(file: &str, e: &RawEntry) -> Result<u64, SpecError> {
    match e.value {
        Value::Int(v) => Ok(v),
        ref other => Err(SpecError::at(
            file,
            e.line,
            format!(
                "key '{}' needs an integer, got {}",
                e.key,
                other.type_name()
            ),
        )),
    }
}

/// Validates one parallelism degree: `tp` needs at least 2 devices
/// (a 1-GPU "slice" has no collective), the rest at least 1.
fn check_degree(file: &str, line: usize, key: &str, v: u64) -> Result<u64, SpecError> {
    let min = if key == "tp" { 2 } else { 1 };
    if v < min || v > MAX_DEGREE {
        return Err(SpecError::at(
            file,
            line,
            format!("{key} degree must be between {min} and {MAX_DEGREE}, got {v}"),
        ));
    }
    Ok(v)
}

/// Validates a micro-batch count.
fn check_microbatches(file: &str, line: usize, v: u64) -> Result<u64, SpecError> {
    if !(1..=1024).contains(&v) {
        return Err(SpecError::at(
            file,
            line,
            format!("microbatches must be between 1 and 1024, got {v}"),
        ));
    }
    Ok(v)
}

/// Validates a token dimension (`seq_len`, `batch`).
fn check_tokens(file: &str, line: usize, key: &str, v: u64) -> Result<u64, SpecError> {
    if !(1..=1 << 24).contains(&v) {
        return Err(SpecError::at(
            file,
            line,
            format!("{key} must be between 1 and {}, got {v}", 1u64 << 24),
        ));
    }
    Ok(v)
}

impl WorkloadSpec {
    /// Parses and validates a workload spec from `text`, labelling
    /// diagnostics with `file`.
    pub fn parse(file: &str, text: &str) -> Result<Self, SpecError> {
        let raw = parse::parse(file, text)?;
        if raw.kind != SpecKind::Workload {
            return Err(SpecError::at(
                file,
                1,
                "expected a workload spec (header `workload \"name\"`), found a system spec",
            ));
        }
        raw.check_sections(file, &["model", "parallelism", "execution", "sweep"])?;

        let model = match raw.section("model") {
            None => {
                return Err(SpecError::at(
                    file,
                    1,
                    "workload spec needs a [model] section",
                ))
            }
            Some(s) => parse_model(file, s)?,
        };

        let mut base = BasePoint {
            tp: 8,
            pp: 1,
            dp: 1,
            ep: 1,
            microbatches: 1,
            mode: ExecMode::T3Mca,
        };
        if let Some(s) = raw.section("parallelism") {
            s.check_keys(file, &["tp", "pp", "dp", "ep", "microbatches"])?;
            for e in &s.entries {
                let v = get_u64(file, e)?;
                match e.key.as_str() {
                    "tp" => base.tp = check_degree(file, e.line, "tp", v)?,
                    "pp" => base.pp = check_degree(file, e.line, "pp", v)?,
                    "dp" => base.dp = check_degree(file, e.line, "dp", v)?,
                    "ep" => base.ep = check_degree(file, e.line, "ep", v)?,
                    _ => base.microbatches = check_microbatches(file, e.line, v)?,
                }
            }
        }
        if let Some(s) = raw.section("execution") {
            s.check_keys(file, &["mode"])?;
            if let Some(e) = s.get("mode") {
                let Value::Ident(name) = &e.value else {
                    return Err(SpecError::at(
                        file,
                        e.line,
                        format!(
                            "key 'mode' needs an identifier, got {}",
                            e.value.type_name()
                        ),
                    ));
                };
                base.mode = ExecMode::from_name(file, e.line, name)?;
            }
        }

        let mut sweep = Vec::new();
        if let Some(s) = raw.section("sweep") {
            s.check_keys(
                file,
                &[
                    "tp",
                    "pp",
                    "dp",
                    "ep",
                    "microbatches",
                    "batch",
                    "seq_len",
                    "mode",
                    "topology",
                ],
            )?;
            for e in &s.entries {
                let Value::List(values) = &e.value else {
                    return Err(SpecError::at(
                        file,
                        e.line,
                        format!(
                            "sweep axis '{}' needs a [list] of values, got {}",
                            e.key,
                            e.value.type_name()
                        ),
                    ));
                };
                if values.is_empty() {
                    return Err(SpecError::at(
                        file,
                        e.line,
                        format!("sweep axis '{}' must list at least one value", e.key),
                    ));
                }
                // Validate axis values eagerly so the error points at
                // the axis line, not at some expanded point.
                for v in values {
                    match (e.key.as_str(), v) {
                        ("mode", Value::Ident(name)) => {
                            ExecMode::from_name(file, e.line, name)?;
                        }
                        ("topology", Value::Ident(name)) => {
                            crate::system::check_topology(file, e.line, name)?;
                        }
                        ("mode" | "topology", other) => {
                            return Err(SpecError::at(
                                file,
                                e.line,
                                format!(
                                    "sweep axis '{}' needs identifiers, got {}",
                                    e.key,
                                    other.type_name()
                                ),
                            ));
                        }
                        (key, Value::Int(n)) => {
                            match key {
                                "microbatches" => check_microbatches(file, e.line, *n)?,
                                "batch" | "seq_len" => check_tokens(file, e.line, key, *n)?,
                                _ => check_degree(file, e.line, key, *n)?,
                            };
                        }
                        (key, other) => {
                            return Err(SpecError::at(
                                file,
                                e.line,
                                format!(
                                    "sweep axis '{key}' needs integers, got {}",
                                    other.type_name()
                                ),
                            ));
                        }
                    }
                }
                sweep.push(SweepAxis {
                    key: e.key.clone(),
                    values: values.clone(),
                    line: e.line,
                });
            }
        }

        Ok(WorkloadSpec {
            name: raw.name,
            model,
            base,
            sweep,
        })
    }

    /// The base [`ModelConfig`] before any sweep override: the zoo
    /// model (or custom dims) with `seq_len`/`batch` applied.
    pub fn base_model(&self) -> ModelConfig {
        let mut m = match &self.model.zoo {
            Some(name) => zoo::by_name(name).expect("zoo name validated at parse time"),
            None => {
                let hidden = self
                    .model
                    .hidden
                    .expect("validated: custom model has hidden");
                let layers = self
                    .model
                    .layers
                    .expect("validated: custom model has layers");
                zoo::custom(hidden, layers)
            }
        };
        if let Some(s) = self.model.seq_len {
            m.seq_len = s;
        }
        if let Some(b) = self.model.batch {
            m.batch = b;
        }
        m
    }
}

/// Parses and validates the `[model]` block.
fn parse_model(file: &str, s: &RawSection) -> Result<ModelSection, SpecError> {
    s.check_keys(file, &["zoo", "hidden", "layers", "seq_len", "batch"])?;
    let mut out = ModelSection {
        zoo: None,
        hidden: None,
        layers: None,
        seq_len: None,
        batch: None,
    };
    for e in &s.entries {
        match e.key.as_str() {
            "zoo" => {
                let Value::Ident(name) = &e.value else {
                    return Err(SpecError::at(
                        file,
                        e.line,
                        format!("key 'zoo' needs an identifier, got {}", e.value.type_name()),
                    ));
                };
                if zoo::by_name(name).is_none() {
                    return Err(SpecError::at(
                        file,
                        e.line,
                        format!(
                            "unknown zoo model '{name}': expected one of {}",
                            zoo::NAMES.join(", ")
                        ),
                    ));
                }
                out.zoo = Some(name.clone());
            }
            "hidden" => {
                let v = get_u64(file, e)?;
                if !(64..=1 << 20).contains(&v) {
                    return Err(SpecError::at(
                        file,
                        e.line,
                        format!("hidden must be between 64 and {}, got {v}", 1u64 << 20),
                    ));
                }
                out.hidden = Some(v);
            }
            "layers" => {
                let v = get_u64(file, e)?;
                if !(1..=4096).contains(&v) {
                    return Err(SpecError::at(
                        file,
                        e.line,
                        format!("layers must be between 1 and 4096, got {v}"),
                    ));
                }
                out.layers = Some(v);
            }
            key @ ("seq_len" | "batch") => {
                let v = check_tokens(file, e.line, key, get_u64(file, e)?)?;
                if key == "seq_len" {
                    out.seq_len = Some(v);
                } else {
                    out.batch = Some(v);
                }
            }
            _ => unreachable!("keys checked above"),
        }
    }
    if out.zoo.is_none() && (out.hidden.is_none() || out.layers.is_none()) {
        return Err(SpecError::at(
            file,
            s.line,
            "[model] needs either `zoo = <name>` or both `hidden = <H>` and `layers = <L>`",
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "workload \"w\"\n[model]\nzoo = t-nlg\n";

    #[test]
    fn minimal_spec_gets_defaults() {
        let w = WorkloadSpec::parse("m.t3w", MINIMAL).expect("parses");
        assert_eq!(w.name, "w");
        assert_eq!(w.base.tp, 8);
        assert_eq!(w.base.mode, ExecMode::T3Mca);
        assert!(w.sweep.is_empty());
        assert_eq!(w.base_model().hidden, 4256);
    }

    #[test]
    fn overrides_and_sweep_axes_parse() {
        let text = "workload \"w\"\n[model]\nzoo = gpt3\nseq_len = 512\n[parallelism]\ntp = 4\npp = 2\nmicrobatches = 8\n[execution]\nmode = sequential\n[sweep]\ntp = [4, 8]\nmode = [sequential, t3mca]\n";
        let w = WorkloadSpec::parse("m.t3w", text).expect("parses");
        assert_eq!(w.base.tp, 4);
        assert_eq!(w.base.pp, 2);
        assert_eq!(w.base.microbatches, 8);
        assert_eq!(w.base.mode, ExecMode::Sequential);
        assert_eq!(w.sweep.len(), 2);
        assert_eq!(w.sweep[0].key, "tp");
        assert_eq!(w.base_model().seq_len, 512);
        assert_eq!(w.base_model().tokens(), 512 * 2);
    }

    #[test]
    fn custom_dims_build_a_model() {
        let text =
            "workload \"w\"\n[model]\nhidden = 1024\nlayers = 12\nseq_len = 256\nbatch = 4\n";
        let w = WorkloadSpec::parse("m.t3w", text).expect("parses");
        let m = w.base_model();
        assert_eq!((m.hidden, m.layers, m.tokens()), (1024, 12, 1024));
        assert!(m.approx_params > 0.0);
    }

    #[test]
    fn typed_errors_are_byte_exact() {
        let err =
            WorkloadSpec::parse("m.t3w", "workload \"w\"\n[model]\nzoo = gpt9\n").unwrap_err();
        assert_eq!(
            err.to_string(),
            "m.t3w:3: unknown zoo model 'gpt9': expected one of mega-gpt2, t-nlg, gpt3, palm, mt-nlg, 1t, 10t"
        );
        let err = WorkloadSpec::parse(
            "m.t3w",
            "workload \"w\"\n[model]\nzoo = gpt3\n[parallelism]\ntp = 1\n",
        )
        .unwrap_err();
        assert_eq!(
            err.to_string(),
            "m.t3w:5: tp degree must be between 2 and 64, got 1"
        );
        let err = WorkloadSpec::parse(
            "m.t3w",
            "workload \"w\"\n[model]\nzoo = gpt3\n[sweep]\ntp = []\n",
        )
        .unwrap_err();
        assert_eq!(
            err.to_string(),
            "m.t3w:5: sweep axis 'tp' must list at least one value"
        );
        let err =
            WorkloadSpec::parse("m.t3w", "workload \"w\"\n[model]\nhidden = 1024\n").unwrap_err();
        assert_eq!(
            err.to_string(),
            "m.t3w:2: [model] needs either `zoo = <name>` or both `hidden = <H>` and `layers = <L>`"
        );
    }

    #[test]
    fn system_header_is_rejected() {
        let err = WorkloadSpec::parse("m.t3w", "system \"s\"\n").unwrap_err();
        assert!(err.to_string().contains("expected a workload spec"));
    }
}
