//! Point execution: lowering one [`ResolvedPoint`] onto the existing
//! engines and pricing a full 3D-parallel training iteration.
//!
//! The cost model composes what the repo already simulates:
//!
//! * **TP** — each of the four tensor-sliced sublayer GEMMs runs
//!   through [`Configuration::run_in_mode`] (the cycle-accurate fused
//!   or sequential engine) on a `tp`-GPU system, with the
//!   reduce-scatter and all-gather re-priced on the spec's fabric via
//!   the scheduled collectives; T3-fused points hide the RS inside the
//!   fused span and pay only the slow-fabric remainder.
//! * **EP** — `ep > 1` adds two all-to-alls per layer
//!   ([`moe::scheduled_all_to_all_cycles`]); T3 fuses the combine into
//!   the expert GEMM, so fused points pay only what the forward
//!   compute cannot cover.
//! * **PP** — stages run the event-driven GPipe fill/drain of
//!   [`PipelineConfig::fabric_makespan`], with micro-batch activation
//!   hand-offs priced by [`Fabric::send`] on a `pp`-GPU fabric.
//! * **DP** — the gradient reduce-scatter + all-gather on a `dp`-GPU
//!   fabric either serialises after backward (sequential) or overlaps
//!   with the backward window (T3).

use crate::sweep::ResolvedPoint;
use crate::system::McPolicy;
use crate::workload::ExecMode;
use t3_core::configs::Configuration;
use t3_models::moe;
use t3_models::parallelism::{
    scheduled_all_gather_cycles, scheduled_reduce_scatter_cycles, PipelineConfig,
};
use t3_models::zoo::Sublayer;
use t3_sim::config::SystemConfig;
use t3_sim::Cycle;
use t3_topo::{Fabric, Topology};

/// The smallest token dimension any scaled-down GEMM keeps, matching
/// the bench crate's `--fast` clamp.
const MIN_TOKENS: u64 = 256;

/// Everything one simulated sweep point reports.
#[derive(Debug, Clone, PartialEq)]
pub struct PointOutcome {
    /// The point this outcome prices.
    pub point: ResolvedPoint,
    /// End-to-end training-iteration cycles: pipeline makespan plus
    /// exposed data-parallel communication.
    pub iter_cycles: Cycle,
    /// GPipe makespan with fabric-priced stage hand-offs.
    pub pipeline_cycles: Cycle,
    /// Pipeline communication on the critical path (makespan minus
    /// the instant-hand-off ideal).
    pub pp_exposed_cycles: Cycle,
    /// Exposed data-parallel gradient-exchange cycles.
    pub dp_exposed_cycles: Cycle,
    /// Exposed expert-parallel all-to-all cycles per stage.
    pub ep_exposed_cycles: Cycle,
    /// One stage's per-micro-batch forward cycles.
    pub stage_fwd_cycles: Cycle,
    /// One stage's per-micro-batch backward cycles.
    pub stage_bwd_cycles: Cycle,
    /// Core clock, for cycle→µs rendering.
    pub clock_ghz: f64,
}

/// The paper system with the point's link parameters over `n` GPUs.
fn point_system(point: &ResolvedPoint, n: usize) -> SystemConfig {
    let mut sys = SystemConfig::paper_default().with_num_gpus(n);
    sys.link.link_gb_s = point.link_gb_s;
    sys.link.latency_ns = point.latency_ns;
    sys
}

/// The point's fabric over an `n`-GPU group (TP slice, PP stage chain,
/// or DP/EP replica set). Kinds needing two even halves (`torus`,
/// `hierarchical`) degrade to `ring` when the group is odd or smaller
/// than 4 — a group always gets *a* fabric of the spec's link speed.
fn group_topology(point: &ResolvedPoint, sys: &SystemConfig) -> Topology {
    let mut inter = sys.link.clone();
    inter.link_gb_s /= point.inter_bw_div as f64;
    inter.latency_ns *= point.inter_lat_mult as f64;
    Topology::by_label(&point.topology, sys.num_gpus, &sys.link, &inter)
        .unwrap_or_else(|| Topology::ring(sys.num_gpus, &sys.link))
}

/// Which engine configuration the point's mode + MC policy select.
fn configuration(point: &ResolvedPoint) -> Configuration {
    match (point.mode, point.policy) {
        (ExecMode::Sequential, _) => Configuration::Sequential,
        (ExecMode::T3Mca, McPolicy::Mca) => Configuration::T3Mca,
        (ExecMode::T3Mca, McPolicy::RoundRobin) => Configuration::T3,
    }
}

/// Prices one resolved point: a full training iteration under the
/// point's mode, scaled by `token_divisor` (the bench crate's
/// fast/full switch).
///
/// # Panics
///
/// Panics if `token_divisor` is zero.
pub fn simulate_point(point: &ResolvedPoint, token_divisor: u64) -> PointOutcome {
    assert!(token_divisor > 0, "token divisor must be positive");
    let model = &point.model;
    // Tokens one micro-batch carries through a stage, after scaling.
    let tokens_mb = (model.tokens().div_ceil(point.microbatches) / token_divisor).max(MIN_TOKENS);

    let sys_tp = point_system(point, point.tp as usize);
    let tp_topo = group_topology(point, &sys_tp);
    let cfg = configuration(point);

    // Per-layer forward/backward cycles under TP: the two forward and
    // two backward sliced sublayers, each GEMM from the engine and
    // each collective from the spec fabric.
    let mut layer_fwd: Cycle = 0;
    let mut layer_bwd: Cycle = 0;
    for sub in Sublayer::ALL {
        let mut shape = model.sublayer_gemm(sub, point.tp);
        shape.m = tokens_mb;
        let outcome = cfg.run_in_mode(&sys_tp, &shape, point.sim);
        let payload = shape.output_bytes();
        let rs = scheduled_reduce_scatter_cycles(&sys_tp, &tp_topo, payload);
        let ag = scheduled_all_gather_cycles(&sys_tp, &tp_topo, payload);
        let cost = match point.mode {
            // GEMM, then the full fabric-priced RS, then the AG.
            ExecMode::Sequential => outcome.gemm_cycles + rs + ag,
            // The fused span already hides the RS under the GEMM; a
            // slower fabric exposes only the remainder.
            ExecMode::T3Mca => outcome.gemm_cycles + rs.saturating_sub(outcome.gemm_cycles) + ag,
        };
        if matches!(sub, Sublayer::Op | Sublayer::Fc2) {
            layer_fwd += cost;
        } else {
            layer_bwd += cost;
        }
    }

    // Expert parallelism: dispatch + combine all-to-alls per layer; T3
    // fuses the combine into the expert GEMM, leaving only what the
    // forward compute cannot cover.
    let mut ep_layer: Cycle = 0;
    if point.ep > 1 {
        let sys_ep = point_system(point, point.ep as usize);
        let ep_topo = group_topology(point, &sys_ep);
        let a2a =
            2 * moe::scheduled_all_to_all_cycles(&sys_ep, &ep_topo, tokens_mb * model.hidden * 2);
        ep_layer = match point.mode {
            ExecMode::Sequential => a2a,
            ExecMode::T3Mca => a2a.saturating_sub(layer_fwd),
        };
        layer_fwd += ep_layer;
    }

    // Pipeline parallelism: GPipe fill/drain over the stage chain,
    // activations handed off on the point's fabric.
    let stage_layers = model.layers.div_ceil(point.pp);
    let stage_fwd = stage_layers * layer_fwd;
    let stage_bwd = stage_layers * layer_bwd;
    let pp_cfg = PipelineConfig::new(point.pp, point.microbatches);
    let p2p_bytes = tokens_mb * model.hidden * 2;
    let ideal = pp_cfg.fabric_makespan(None, stage_fwd, stage_bwd, p2p_bytes);
    let pipeline = if point.pp > 1 {
        let sys_pp = point_system(point, point.pp as usize);
        let pp_topo = group_topology(point, &sys_pp);
        pp_cfg.fabric_makespan(
            Some(&mut Fabric::new(&pp_topo)),
            stage_fwd,
            stage_bwd,
            p2p_bytes,
        )
    } else {
        ideal
    };

    // Data parallelism: one stage's gradients exchanged per iteration
    // (reduce-scatter + all-gather); T3 overlaps the exchange with the
    // whole backward window.
    let mut dp_exposed: Cycle = 0;
    if point.dp > 1 {
        let sys_dp = point_system(point, point.dp as usize);
        let dp_topo = group_topology(point, &sys_dp);
        let grad_bytes = stage_layers * 12 * model.hidden * model.hidden * 2 / point.tp;
        let comm = scheduled_reduce_scatter_cycles(&sys_dp, &dp_topo, grad_bytes)
            + scheduled_all_gather_cycles(&sys_dp, &dp_topo, grad_bytes);
        let backward_window = point.microbatches * stage_bwd;
        dp_exposed = match point.mode {
            ExecMode::Sequential => comm,
            ExecMode::T3Mca => comm.saturating_sub(backward_window),
        };
    }

    PointOutcome {
        point: point.clone(),
        iter_cycles: pipeline + dp_exposed,
        pipeline_cycles: pipeline,
        pp_exposed_cycles: pipeline - ideal,
        dp_exposed_cycles: dp_exposed,
        ep_exposed_cycles: stage_layers * ep_layer,
        stage_fwd_cycles: stage_fwd,
        stage_bwd_cycles: stage_bwd,
        clock_ghz: sys_tp.gpu.clock_ghz,
    }
}

/// Width of the point-label column in sweep rows.
const LABEL_WIDTH: usize = 46;

/// Width of each numeric column in sweep rows.
const NUM_WIDTH: usize = 13;

/// Cycles as microseconds with one decimal, for sweep rows.
fn us(cycles: Cycle, clock_ghz: f64) -> String {
    format!("{:.1}", cycles as f64 / (clock_ghz * 1e3))
}

/// The sweep banner plus the fixed-width column header. Fixed widths
/// (not auto-fit) keep every row renderable in isolation, so each
/// point can be its own cacheable job.
pub fn header_lines(workload: &str, system: &str) -> String {
    format!(
        "== 3D-parallelism sweep: {workload} on {system} ==\n{:<LABEL_WIDTH$}{:>NUM_WIDTH$}{:>NUM_WIDTH$}{:>NUM_WIDTH$}{:>NUM_WIDTH$}\n",
        "point", "iter (us)", "pp exp (us)", "dp exp (us)", "gpus"
    )
}

/// One point's fixed-width row.
pub fn row_line(out: &PointOutcome) -> String {
    format!(
        "{:<LABEL_WIDTH$}{:>NUM_WIDTH$}{:>NUM_WIDTH$}{:>NUM_WIDTH$}{:>NUM_WIDTH$}\n",
        out.point.label(),
        us(out.iter_cycles, out.clock_ghz),
        us(out.pp_exposed_cycles, out.clock_ghz),
        us(out.dp_exposed_cycles, out.clock_ghz),
        out.point.num_gpus()
    )
}

/// Pairs every sequential point with its T3-fused twin (same label up
/// to the trailing mode word) and renders one speedup line per pair,
/// in first-appearance order. `rows` are `(label, iter_cycles)` in
/// submission order — exactly what the job metrics replay from cache,
/// so the summary is byte-stable across pool widths and cache state.
pub fn speedup_summary(rows: &[(String, u64)]) -> Vec<String> {
    let strip = |label: &str, mode: ExecMode| -> Option<String> {
        let suffix = format!(" {}", mode.label());
        label.strip_suffix(suffix.as_str()).map(str::to_string)
    };
    // (base label, sequential iter, fused iter) in appearance order;
    // linear scans keep the pairing free of hash-map iteration.
    let mut pairs: Vec<(String, Option<u64>, Option<u64>)> = Vec::new();
    for (label, iter) in rows {
        let (base, fused) = match strip(label, ExecMode::Sequential) {
            Some(base) => (base, false),
            None => match strip(label, ExecMode::T3Mca) {
                Some(base) => (base, true),
                None => continue,
            },
        };
        let slot = match pairs.iter_mut().find(|(b, _, _)| *b == base) {
            Some(slot) => slot,
            None => {
                pairs.push((base, None, None));
                pairs.last_mut().expect("just pushed")
            }
        };
        if fused {
            slot.2 = Some(*iter);
        } else {
            slot.1 = Some(*iter);
        }
    }
    pairs
        .into_iter()
        .filter_map(|(base, seq, fused)| match (seq, fused) {
            (Some(s), Some(f)) if f > 0 => Some(format!(
                "t3-fused vs sequential  {base}: {:.2}x",
                s as f64 / f as f64
            )),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepPlan;
    use crate::system::SystemSpec;
    use crate::workload::WorkloadSpec;

    fn point(workload_text: &str, system_text: &str) -> ResolvedPoint {
        let w = WorkloadSpec::parse("w.t3w", workload_text).expect("workload parses");
        let s = SystemSpec::parse("s.t3s", system_text).expect("system parses");
        SweepPlan::expand("w.t3w", &w, &s).expect("expands").points[0].clone()
    }

    const TP_ONLY: &str = "workload \"w\"\n[model]\nzoo = t-nlg\n[parallelism]\ntp = 8\n";

    #[test]
    fn fused_beats_sequential_on_a_tp_point() {
        let mut seq = point(TP_ONLY, "system \"s\"\n");
        seq.mode = ExecMode::Sequential;
        let fused = point(TP_ONLY, "system \"s\"\n");
        let a = simulate_point(&seq, 8);
        let b = simulate_point(&fused, 8);
        assert!(
            b.iter_cycles < a.iter_cycles,
            "t3mca {} must beat sequential {}",
            b.iter_cycles,
            a.iter_cycles
        );
        assert_eq!(a.pp_exposed_cycles, 0, "no pipeline, no exposure");
    }

    #[test]
    fn pipeline_points_expose_hand_off_cycles() {
        let text = "workload \"w\"\n[model]\nzoo = t-nlg\n[parallelism]\ntp = 4\npp = 4\nmicrobatches = 8\n";
        let out = simulate_point(&point(text, "system \"s\"\n"), 8);
        assert!(out.pp_exposed_cycles > 0, "fabric hand-offs cost cycles");
        assert!(out.pipeline_cycles > out.stage_fwd_cycles + out.stage_bwd_cycles);
        assert_eq!(out.iter_cycles, out.pipeline_cycles);
    }

    #[test]
    fn dp_overlap_hides_gradient_exchange() {
        let text =
            "workload \"w\"\n[model]\nzoo = t-nlg\n[parallelism]\ntp = 4\ndp = 4\nmicrobatches = 4\n";
        let mut seq = point(text, "system \"s\"\n");
        seq.mode = ExecMode::Sequential;
        let fused = point(text, "system \"s\"\n");
        let a = simulate_point(&seq, 8);
        let b = simulate_point(&fused, 8);
        assert!(a.dp_exposed_cycles > 0, "sequential pays the full exchange");
        assert!(
            b.dp_exposed_cycles < a.dp_exposed_cycles,
            "overlap must hide gradient traffic under backward"
        );
    }

    #[test]
    fn simulate_point_is_deterministic() {
        let p = point(TP_ONLY, "system \"s\"\n[topology]\nkind = hierarchical\n");
        assert_eq!(simulate_point(&p, 8), simulate_point(&p, 8));
    }

    #[test]
    fn rows_are_fixed_width() {
        let out = simulate_point(&point(TP_ONLY, "system \"s\"\n"), 8);
        let row = row_line(&out);
        let header = header_lines("w", "s");
        let header_cols = header.lines().nth(1).expect("column line").len();
        assert_eq!(row.trim_end_matches('\n').len(), header_cols);
        assert!(header.starts_with("== 3D-parallelism sweep: w on s ==\n"));
    }

    #[test]
    fn speedup_summary_pairs_modes_in_order() {
        let rows = vec![
            ("tp=4 pp=1 dp=1 mb=1 ring sequential".to_string(), 1200),
            ("tp=4 pp=1 dp=1 mb=1 ring t3mca".to_string(), 1000),
            ("tp=8 pp=1 dp=1 mb=1 ring sequential".to_string(), 900),
            ("tp=8 pp=1 dp=1 mb=1 ring t3mca".to_string(), 750),
        ];
        let lines = speedup_summary(&rows);
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "t3-fused vs sequential  tp=4 pp=1 dp=1 mb=1 ring: 1.20x"
        );
        assert!(lines[1].starts_with("t3-fused vs sequential  tp=8"));
        // Unpaired points yield no line.
        assert!(speedup_summary(&rows[..1]).is_empty());
    }
}
