//! t3-spec: the declarative workload/system frontend.
//!
//! T3 (ASPLOS 2024) was evaluated only on hand-picked tensor-parallel
//! slices; every experiment in this repo was likewise a hard-coded
//! Rust function. This crate splits *what to run* from *what to run it
//! on* — the ASTRA-sim-style separation — with two tiny, hand-rolled,
//! zero-dependency text formats:
//!
//! * `.t3w` **workload specs**: a model (zoo name or explicit dims) ×
//!   TP/PP/DP/EP degrees × micro-batching × execution mode, plus an
//!   optional `[sweep]` block whose list-valued axes cross-product
//!   into many points.
//! * `.t3s` **system specs**: topology kind × link bandwidth/latency ×
//!   memory-controller policy × engine mode.
//!
//! Parsing yields `file:line` diagnostics ([`parse::SpecError`]);
//! expansion ([`sweep::SweepPlan`]) is deterministic (declaration
//! order, first axis outermost, no hash-ordered containers); and every
//! point carries a content-derived fingerprint so the `t3-runtime`
//! cache hits across reruns and textually identical specs. Execution
//! ([`exec::simulate_point`]) lowers each point onto the existing
//! engines — the fused/sequential sublayer configurations, the Fabric
//! GPipe fill/drain, and the scheduled DP/EP collectives — opening the
//! pipeline- and data-parallel scenarios the paper never measured.
//!
//! ```
//! use t3_spec::{exec, sweep::SweepPlan, system::SystemSpec, workload::WorkloadSpec};
//!
//! let w = WorkloadSpec::parse(
//!     "demo.t3w",
//!     "workload \"demo\"\n[model]\nzoo = t-nlg\n[sweep]\nmode = [sequential, t3mca]\n",
//! )
//! .unwrap();
//! let s = SystemSpec::parse("demo.t3s", "system \"paper\"\n").unwrap();
//! let plan = SweepPlan::expand("demo.t3w", &w, &s).unwrap();
//! assert_eq!(plan.points.len(), 2);
//! let fused = exec::simulate_point(&plan.points[1], 8);
//! assert!(fused.iter_cycles > 0);
//! ```

pub mod exec;
pub mod parse;
pub mod sweep;
pub mod system;
pub mod workload;

pub use exec::{simulate_point, PointOutcome};
pub use parse::SpecError;
pub use sweep::{ResolvedPoint, SweepPlan};
pub use system::SystemSpec;
pub use workload::WorkloadSpec;
