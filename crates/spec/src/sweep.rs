//! Deterministic sweep expansion: workload × system → an ordered list
//! of resolved points.
//!
//! Axes cross-product in declaration order with the first axis
//! outermost (an odometer whose last axis spins fastest), so the job
//! list — and therefore every row of `figures sweep` output — is a
//! pure function of the spec bytes. Axis values live in `Vec`s and the
//! expansion never touches a hash-ordered container.

use crate::parse::{SpecError, Value};
use crate::system::{McPolicy, SystemSpec};
use crate::workload::{ExecMode, WorkloadSpec};
use t3_models::zoo::ModelConfig;
use t3_runtime::{Fingerprint, FingerprintBuilder};
use t3_sim::SimMode;

/// Bumped whenever the point cost model changes meaning, so stale
/// cache entries from older revisions can never be replayed.
pub const SPEC_REV: u64 = 1;

/// Expansion cap: a sweep may enumerate at most this many points.
pub const MAX_POINTS: usize = 4096;

/// Per-point cap on `tp × pp × dp × ep`.
pub const MAX_GPUS: u64 = 1024;

/// One fully resolved sweep point: everything `simulate_point` needs,
/// with every sweep override already applied.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedPoint {
    /// Workload-spec name (header).
    pub workload: String,
    /// System-spec name (header).
    pub system: String,
    /// The model with per-point `seq_len`/`batch` applied.
    pub model: ModelConfig,
    /// Tensor-parallel degree.
    pub tp: u64,
    /// Pipeline stages.
    pub pp: u64,
    /// Data-parallel replicas.
    pub dp: u64,
    /// Expert-parallel degree.
    pub ep: u64,
    /// Micro-batches per training iteration.
    pub microbatches: u64,
    /// Execution mode.
    pub mode: ExecMode,
    /// Topology kind for every fabric in this point.
    pub topology: String,
    /// Hierarchical inter-node bandwidth divisor.
    pub inter_bw_div: u64,
    /// Hierarchical inter-node latency multiplier.
    pub inter_lat_mult: u64,
    /// Per-direction link bandwidth in GB/s.
    pub link_gb_s: f64,
    /// One-way link latency in nanoseconds.
    pub latency_ns: f64,
    /// Memory-controller policy for fused execution.
    pub policy: McPolicy,
    /// Engine time-advancement mode.
    pub sim: SimMode,
}

impl ResolvedPoint {
    /// Human-readable point label, also the job-name suffix:
    /// `tp=4 pp=2 dp=2 mb=4 hierarchical t3mca` (ep shown only when
    /// expert parallelism is on).
    pub fn label(&self) -> String {
        let ep = if self.ep > 1 {
            format!(" ep={}", self.ep)
        } else {
            String::new()
        };
        format!(
            "tp={} pp={} dp={}{ep} mb={} {} {}",
            self.tp,
            self.pp,
            self.dp,
            self.microbatches,
            self.topology,
            self.mode.label()
        )
    }

    /// GPUs this point occupies (`tp × pp × dp × ep`).
    pub fn num_gpus(&self) -> u64 {
        self.tp * self.pp * self.dp * self.ep
    }

    /// The content-derived cache identity of this point. Two points
    /// hash equal iff every semantic field matches — so textually
    /// identical specs (and reruns of the same spec pair) hit the
    /// `t3-runtime` cache, while touching any dim, degree, link
    /// number, or mode misses.
    pub fn fingerprint(&self, token_divisor: u64) -> Fingerprint {
        FingerprintBuilder::new()
            .u64("spec_rev", SPEC_REV)
            .str("workload", &self.workload)
            .str("system", &self.system)
            .str("model", self.model.name)
            .u64("hidden", self.model.hidden)
            .u64("layers", self.model.layers)
            .u64("seq_len", self.model.seq_len)
            .u64("batch", self.model.batch)
            .u64("tp", self.tp)
            .u64("pp", self.pp)
            .u64("dp", self.dp)
            .u64("ep", self.ep)
            .u64("microbatches", self.microbatches)
            .str("mode", self.mode.label())
            .str("topology", &self.topology)
            .u64("inter_bw_div", self.inter_bw_div)
            .u64("inter_lat_mult", self.inter_lat_mult)
            .f64("link_gb_s", self.link_gb_s)
            .f64("latency_ns", self.latency_ns)
            .str("policy", self.policy.label())
            .str("sim", self.sim.label())
            .u64("token_divisor", token_divisor)
            .finish()
    }
}

/// The expanded sweep: spec names plus points in submission order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlan {
    /// Workload-spec name.
    pub workload: String,
    /// System-spec name.
    pub system: String,
    /// Points in enumeration order (first declared axis outermost).
    pub points: Vec<ResolvedPoint>,
}

/// One point's mutable scalar state while the odometer spins.
#[derive(Clone)]
struct PointState {
    tp: u64,
    pp: u64,
    dp: u64,
    ep: u64,
    microbatches: u64,
    seq_len: u64,
    batch: u64,
    mode: ExecMode,
    topology: String,
}

impl SweepPlan {
    /// Expands the cross-product of `workload`'s sweep axes against
    /// `system`'s fabric. Without a `[sweep]` block the plan holds the
    /// single base point. `file` labels expansion-time diagnostics
    /// (the caps on point count and per-point GPU count).
    pub fn expand(
        file: &str,
        workload: &WorkloadSpec,
        system: &SystemSpec,
    ) -> Result<Self, SpecError> {
        let base_model = workload.base_model();
        let base = PointState {
            tp: workload.base.tp,
            pp: workload.base.pp,
            dp: workload.base.dp,
            ep: workload.base.ep,
            microbatches: workload.base.microbatches,
            seq_len: base_model.seq_len,
            batch: base_model.batch,
            mode: workload.base.mode,
            topology: system.topology.clone(),
        };

        let total: usize = workload.sweep.iter().map(|a| a.values.len()).product();
        if total > MAX_POINTS {
            let line = workload.sweep.first().map_or(1, |a| a.line);
            return Err(SpecError::at(
                file,
                line,
                format!("sweep expands to {total} points, which exceeds the cap of {MAX_POINTS}"),
            ));
        }

        let mut points = Vec::with_capacity(total.max(1));
        // Odometer over axis indices: the last declared axis spins
        // fastest, so the first axis is the outermost grouping.
        let mut idx = vec![0usize; workload.sweep.len()];
        loop {
            let mut state = base.clone();
            for (axis, &i) in workload.sweep.iter().zip(&idx) {
                apply_axis(&mut state, &axis.key, &axis.values[i]);
            }
            let mut model = base_model.clone();
            model.seq_len = state.seq_len;
            model.batch = state.batch;
            let point = ResolvedPoint {
                workload: workload.name.clone(),
                system: system.name.clone(),
                model,
                tp: state.tp,
                pp: state.pp,
                dp: state.dp,
                ep: state.ep,
                microbatches: state.microbatches,
                mode: state.mode,
                topology: state.topology,
                inter_bw_div: system.inter_bw_div,
                inter_lat_mult: system.inter_lat_mult,
                link_gb_s: system.link_gb_s,
                latency_ns: system.latency_ns,
                policy: system.policy,
                sim: system.sim,
            };
            if point.num_gpus() > MAX_GPUS {
                let line = workload.sweep.first().map_or(1, |a| a.line);
                return Err(SpecError::at(
                    file,
                    line,
                    format!(
                        "point `{}` needs {} GPUs, which exceeds the cap of {MAX_GPUS}",
                        point.label(),
                        point.num_gpus()
                    ),
                ));
            }
            points.push(point);

            // Advance the odometer; done once the first axis wraps.
            let mut pos = idx.len();
            loop {
                if pos == 0 {
                    return Ok(SweepPlan {
                        workload: workload.name.clone(),
                        system: system.name.clone(),
                        points,
                    });
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < workload.sweep[pos].values.len() {
                    break;
                }
                idx[pos] = 0;
            }
        }
    }
}

/// Applies one axis value to the point state. Values were validated at
/// parse time, so shape mismatches are unreachable here.
fn apply_axis(state: &mut PointState, key: &str, value: &Value) {
    match (key, value) {
        ("mode", Value::Ident(name)) => {
            state.mode = if name == "sequential" {
                ExecMode::Sequential
            } else {
                ExecMode::T3Mca
            };
        }
        ("topology", Value::Ident(name)) => state.topology = name.clone(),
        (key, Value::Int(v)) => match key {
            "tp" => state.tp = *v,
            "pp" => state.pp = *v,
            "dp" => state.dp = *v,
            "ep" => state.ep = *v,
            "microbatches" => state.microbatches = *v,
            "batch" => state.batch = *v,
            _ => state.seq_len = *v,
        },
        _ => unreachable!("axis values validated at parse time"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(workload_text: &str, system_text: &str) -> Result<SweepPlan, SpecError> {
        let w = WorkloadSpec::parse("w.t3w", workload_text).expect("workload parses");
        let s = SystemSpec::parse("s.t3s", system_text).expect("system parses");
        SweepPlan::expand("w.t3w", &w, &s)
    }

    const BASE_W: &str = "workload \"w\"\n[model]\nzoo = t-nlg\n[parallelism]\ntp = 8\n";

    #[test]
    fn no_sweep_block_yields_the_base_point() {
        let p = plan(BASE_W, "system \"s\"\n").expect("expands");
        assert_eq!(p.points.len(), 1);
        assert_eq!(p.points[0].tp, 8);
        assert_eq!(p.points[0].topology, "ring");
        assert_eq!(p.points[0].label(), "tp=8 pp=1 dp=1 mb=1 ring t3mca");
    }

    #[test]
    fn odometer_order_has_first_axis_outermost() {
        let text = "workload \"w\"\n[model]\nzoo = t-nlg\n[sweep]\ntp = [4, 8]\nmode = [sequential, t3mca]\n";
        let p = plan(text, "system \"s\"\n").expect("expands");
        let labels: Vec<String> = p.points.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            [
                "tp=4 pp=1 dp=1 mb=1 ring sequential",
                "tp=4 pp=1 dp=1 mb=1 ring t3mca",
                "tp=8 pp=1 dp=1 mb=1 ring sequential",
                "tp=8 pp=1 dp=1 mb=1 ring t3mca",
            ]
        );
    }

    #[test]
    fn topology_axis_overrides_the_system_kind() {
        let text =
            "workload \"w\"\n[model]\nzoo = t-nlg\n[sweep]\ntopology = [ring, hierarchical]\n";
        let p = plan(text, "system \"s\"\n[topology]\nkind = switch\n").expect("expands");
        assert_eq!(p.points[0].topology, "ring");
        assert_eq!(p.points[1].topology, "hierarchical");
    }

    #[test]
    fn fingerprints_are_content_derived() {
        let p1 = plan(BASE_W, "system \"s\"\n").expect("expands");
        let p2 = plan(BASE_W, "system \"s\"\n").expect("expands");
        assert_eq!(
            p1.points[0].fingerprint(8),
            p2.points[0].fingerprint(8),
            "textually identical specs must hash equal"
        );
        assert_ne!(
            p1.points[0].fingerprint(8),
            p1.points[0].fingerprint(1),
            "scale is part of the identity"
        );
        let faster = plan(BASE_W, "system \"s\"\n[link]\ngb_s = 300.0\n").expect("expands");
        assert_ne!(p1.points[0].fingerprint(8), faster.points[0].fingerprint(8));
    }

    #[test]
    fn gpu_cap_is_enforced() {
        let text = "workload \"w\"\n[model]\nzoo = t-nlg\n[parallelism]\ntp = 64\npp = 8\ndp = 8\n";
        let err = plan(text, "system \"s\"\n").unwrap_err();
        assert!(
            err.to_string().contains("exceeds the cap of 1024"),
            "got: {err}"
        );
    }

    #[test]
    fn ep_appears_in_labels_only_when_on() {
        let text = "workload \"w\"\n[model]\nzoo = t-nlg\n[parallelism]\ntp = 4\nep = 2\n";
        let p = plan(text, "system \"s\"\n").expect("expands");
        assert_eq!(p.points[0].label(), "tp=4 pp=1 dp=1 ep=2 mb=1 ring t3mca");
    }
}
