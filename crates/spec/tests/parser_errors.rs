//! Parser robustness: every malformed fixture must produce exactly one
//! stable `file:line` diagnostic, asserted byte-for-byte so error text
//! cannot drift silently.

use t3_spec::WorkloadSpec;

/// Parse a fixture under `crates/spec/fixtures/` and return the rendered
/// error string, panicking if the spec unexpectedly parses.
fn fixture_error(name: &str, text: &str) -> String {
    let file = format!("crates/spec/fixtures/{name}");
    match WorkloadSpec::parse(&file, text) {
        Ok(_) => panic!("fixture {name} parsed but should have failed"),
        Err(e) => e.to_string(),
    }
}

#[test]
fn unknown_key_is_rejected_with_the_allowed_set() {
    let err = fixture_error(
        "unknown_key.t3w",
        include_str!("../fixtures/unknown_key.t3w"),
    );
    assert_eq!(
        err,
        "crates/spec/fixtures/unknown_key.t3w:8: unknown key 'tensor' in [parallelism] \
         (expected one of: tp, pp, dp, ep, microbatches)"
    );
}

#[test]
fn bad_enum_value_names_every_valid_mode() {
    let err = fixture_error("bad_mode.t3w", include_str!("../fixtures/bad_mode.t3w"));
    assert_eq!(
        err,
        "crates/spec/fixtures/bad_mode.t3w:8: invalid mode 'warp': \
         expected one of sequential, t3mca"
    );
}

#[test]
fn empty_sweep_axis_is_rejected() {
    let err = fixture_error("empty_axis.t3w", include_str!("../fixtures/empty_axis.t3w"));
    assert_eq!(
        err,
        "crates/spec/fixtures/empty_axis.t3w:8: sweep axis 'tp' must list at least one value"
    );
}

#[test]
fn duplicate_section_points_at_the_first_definition() {
    let err = fixture_error(
        "dup_section.t3w",
        include_str!("../fixtures/dup_section.t3w"),
    );
    assert_eq!(
        err,
        "crates/spec/fixtures/dup_section.t3w:7: duplicate section [model] \
         (first defined at line 4)"
    );
}

#[test]
fn out_of_range_degree_reports_the_legal_range() {
    let err = fixture_error("bad_degree.t3w", include_str!("../fixtures/bad_degree.t3w"));
    assert_eq!(
        err,
        "crates/spec/fixtures/bad_degree.t3w:8: tp degree must be between 2 and 64, got 1"
    );
}
