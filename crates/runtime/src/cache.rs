//! The content-addressed result cache.
//!
//! A completed job's [`JobOutput`] is persisted as
//! `<dir>/<fingerprint>.json` (hand-rolled JSON, like the `t3-trace`
//! exporters — the workspace builds offline with no serde). A later
//! run with the same canonical config fingerprint replays the stored
//! output byte-for-byte instead of re-simulating, which makes
//! `figures all` incremental. Unreadable, corrupt, or
//! schema-mismatched entries are treated as misses and overwritten —
//! the cache can only ever cost a rerun, never wrong bytes.
//!
//! The fingerprint covers the experiment *config*, not the simulator
//! *code*; callers version their job fingerprints (see
//! `t3-bench::jobs::WORKLOAD_REV`) and bump that revision whenever a
//! change is meant to invalidate previously cached results. The
//! default directory lives under `target/`, so `cargo clean` clears
//! it too.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use crate::fingerprint::Fingerprint;
use crate::job::JobOutput;

/// On-disk schema revision; bump on any layout change.
pub const CACHE_SCHEMA: u64 = 1;

/// The default cache location, relative to the workspace root.
pub const DEFAULT_CACHE_DIR: &str = "target/t3-cache";

/// Where (and whether) to cache results.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Directory holding one `<fingerprint>.json` per entry.
    pub dir: PathBuf,
}

impl CacheConfig {
    /// A cache under `dir`.
    pub fn at<P: Into<PathBuf>>(dir: P) -> Self {
        CacheConfig { dir: dir.into() }
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::at(DEFAULT_CACHE_DIR)
    }
}

/// An open cache with hit/miss accounting.
#[derive(Debug)]
pub struct Cache {
    dir: PathBuf,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Opens (lazily — the directory is created on first store) the
    /// cache described by `config`.
    pub fn open(config: &CacheConfig) -> Self {
        Cache {
            dir: config.dir.clone(),
            hits: 0,
            misses: 0,
        }
    }

    /// The entry path for a fingerprint.
    pub fn entry_path(&self, fp: Fingerprint) -> PathBuf {
        self.dir.join(format!("{}.json", fp.hex()))
    }

    /// Recorded lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Recorded lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up a fingerprint, counting the outcome. Any read or
    /// parse failure is a miss.
    pub fn load(&mut self, fp: Fingerprint) -> Option<JobOutput> {
        let loaded = fs::read_to_string(self.entry_path(fp))
            .ok()
            .and_then(|text| parse_entry(&text));
        match loaded {
            Some(out) => {
                self.hits += 1;
                Some(out)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Persists one result. Errors are reported, not fatal: a
    /// read-only disk degrades the cache to a no-op.
    pub fn store(&self, fp: Fingerprint, name: &str, out: &JobOutput) -> std::io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let body = render_entry(fp, name, out);
        // Write-then-rename so a concurrent reader never sees a
        // half-written entry.
        let tmp = self.dir.join(format!("{}.tmp", fp.hex()));
        fs::write(&tmp, body)?;
        fs::rename(&tmp, self.entry_path(fp))
    }
}

/// Renders one cache entry as JSON.
pub fn render_entry(fp: Fingerprint, name: &str, out: &JobOutput) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema\": {CACHE_SCHEMA},");
    let _ = writeln!(s, "  \"fingerprint\": \"{}\",", fp.hex());
    let _ = writeln!(s, "  \"name\": \"{}\",", escape(name));
    let _ = writeln!(s, "  \"sim_cycles\": {},", out.sim_cycles);
    let _ = writeln!(s, "  \"stdout\": \"{}\",", escape(&out.stdout));
    s.push_str("  \"metrics\": {");
    for (i, (k, v)) in out.metrics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\n    \"{}\": {v}", escape(k));
    }
    if !out.metrics.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("}\n}\n");
    s
}

/// Parses a cache entry; `None` on any malformation or schema
/// mismatch.
pub fn parse_entry(text: &str) -> Option<JobOutput> {
    let mut p = Parser::new(text);
    p.skip_ws();
    p.expect('{')?;
    let mut schema = None;
    let mut sim_cycles = 0u64;
    let mut stdout = None;
    let mut metrics = BTreeMap::new();
    loop {
        p.skip_ws();
        if p.eat('}') {
            break;
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        match key.as_str() {
            "schema" => schema = Some(p.number()?),
            "sim_cycles" => sim_cycles = p.number()?,
            "stdout" => stdout = Some(p.string()?),
            "fingerprint" | "name" => {
                p.string()?;
            }
            "metrics" => {
                p.expect('{')?;
                loop {
                    p.skip_ws();
                    if p.eat('}') {
                        break;
                    }
                    let k = p.string()?;
                    p.skip_ws();
                    p.expect(':')?;
                    p.skip_ws();
                    let v = p.number()?;
                    metrics.insert(k, v);
                    p.skip_ws();
                    p.eat(',');
                }
            }
            _ => return None,
        }
        p.skip_ws();
        p.eat(',');
    }
    if schema != Some(CACHE_SCHEMA) {
        return None;
    }
    Some(JobOutput {
        stdout: stdout?,
        sim_cycles,
        metrics,
    })
}

/// Escapes a string for a JSON string literal (mirrors
/// `t3_trace::metrics::escape_json`; duplicated to keep this crate
/// dependency-free).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A minimal pull parser for exactly the JSON subset the cache
/// writes: one object of string keys mapped to strings, unsigned
/// integers, or one nested flat object of unsigned integers.
struct Parser<'a> {
    rest: &'a str,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { rest: text }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn peek(&self) -> Option<char> {
        self.rest.chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.rest = &self.rest[c.len_utf8()..];
        Some(c)
    }

    fn expect(&mut self, want: char) -> Option<()> {
        (self.bump()? == want).then_some(())
    }

    fn eat(&mut self, want: char) -> bool {
        if self.peek() == Some(want) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn number(&mut self) -> Option<u64> {
        let digits: String = self.rest.chars().take_while(char::is_ascii_digit).collect();
        if digits.is_empty() {
            return None;
        }
        self.rest = &self.rest[digits.len()..];
        digits.parse().ok()
    }

    fn string(&mut self) -> Option<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Some(out),
                '\\' => match self.bump()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let code: String = (0..4).map_while(|_| self.bump()).collect();
                        let v = u32::from_str_radix(&code, 16).ok()?;
                        out.push(char::from_u32(v)?);
                    }
                    _ => return None,
                },
                c => out.push(c),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::FingerprintBuilder;

    fn sample_output() -> JobOutput {
        let mut metrics = BTreeMap::new();
        metrics.insert("wire.bytes".to_string(), 42);
        metrics.insert("dma.transfers".to_string(), 7);
        JobOutput {
            stdout: "== Table ==\n  a \"quoted\"\tcell\n".to_string(),
            sim_cycles: 123_456,
            metrics,
        }
    }

    fn fp() -> Fingerprint {
        FingerprintBuilder::new().str("t", "x").finish()
    }

    #[test]
    fn round_trips_through_json() {
        let out = sample_output();
        let text = render_entry(fp(), "fig16", &out);
        let back = parse_entry(&text).expect("parses");
        assert_eq!(back, out);
    }

    #[test]
    fn rejects_schema_mismatch_and_garbage() {
        let out = sample_output();
        let text = render_entry(fp(), "fig16", &out);
        let bumped = text.replace("\"schema\": 1", "\"schema\": 999");
        assert!(parse_entry(&bumped).is_none());
        assert!(parse_entry("not json").is_none());
        assert!(parse_entry("{\"schema\": 1}").is_none(), "stdout required");
        assert!(parse_entry("").is_none());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let out = JobOutput::text("ctrl \u{1} and unicode µ\n");
        let text = render_entry(fp(), "t", &out);
        assert!(text.contains("\\u0001"));
        assert_eq!(parse_entry(&text).expect("parses"), out);
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let dir = std::env::temp_dir().join(format!("t3-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut cache = Cache::open(&CacheConfig::at(&dir));
        let out = sample_output();
        assert!(cache.load(fp()).is_none());
        cache.store(fp(), "fig16", &out).expect("store");
        assert_eq!(cache.load(fp()).expect("hit"), out);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        fs::remove_dir_all(&dir).expect("cleanup");
    }
}
