//! Jobs and job graphs.
//!
//! A [`Job`] is one named, independently runnable unit of simulation
//! work with a canonical config [`Fingerprint`]; a [`JobGraph`] is an
//! ordered collection of jobs plus explicit dependency edges. The
//! *submission order* of jobs is part of the graph's contract: the
//! scheduler reports results — and the caller emits artifacts — in
//! exactly that order, whatever the execution interleaving was.

use std::collections::BTreeMap;

use crate::fingerprint::Fingerprint;

/// The structured result a job hands back to the runtime.
///
/// Jobs never print: captured stdout text comes back as a string so
/// the runtime can merge outputs deterministically, and the
/// simulated-cycle tally plus free-form counters feed the run report
/// and the result cache.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JobOutput {
    /// Exactly the bytes a sequential run would have printed.
    pub stdout: String,
    /// Total simulated cycles attributable to this job (0 when the
    /// job is analytic and simulates nothing).
    pub sim_cycles: u64,
    /// Additional named counters (deterministically ordered).
    pub metrics: BTreeMap<String, u64>,
}

impl JobOutput {
    /// An output carrying only text.
    pub fn text<S: Into<String>>(stdout: S) -> Self {
        JobOutput {
            stdout: stdout.into(),
            ..JobOutput::default()
        }
    }
}

/// The work closure of a job.
pub type JobFn = Box<dyn FnOnce() -> JobOutput + Send + 'static>;

/// One named, fingerprinted unit of work.
pub struct Job {
    pub(crate) name: String,
    pub(crate) fingerprint: Fingerprint,
    pub(crate) run: JobFn,
}

impl Job {
    /// Creates a job from a name, its config fingerprint, and the
    /// closure that performs the work on a worker thread.
    pub fn new<S, F>(name: S, fingerprint: Fingerprint, run: F) -> Self
    where
        S: Into<String>,
        F: FnOnce() -> JobOutput + Send + 'static,
    {
        Job {
            name: name.into(),
            fingerprint,
            run: Box::new(run),
        }
    }

    /// The job's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The job's canonical config fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("name", &self.name)
            .field("fingerprint", &self.fingerprint)
            .finish_non_exhaustive()
    }
}

/// Identifies a job within one [`JobGraph`] (its submission index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct JobId(pub usize);

/// An ordered set of jobs with dependency edges.
#[derive(Debug, Default)]
pub struct JobGraph {
    pub(crate) jobs: Vec<Job>,
    /// `deps[i]` lists the jobs that must complete before job `i`.
    pub(crate) deps: Vec<Vec<usize>>,
}

impl JobGraph {
    /// An empty graph.
    pub fn new() -> Self {
        JobGraph::default()
    }

    /// Appends a job; its [`JobId`] is its submission index.
    pub fn add(&mut self, job: Job) -> JobId {
        self.jobs.push(job);
        self.deps.push(Vec::new());
        JobId(self.jobs.len() - 1)
    }

    /// Declares that `job` must not start before `dep` has finished.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range, on a self-dependency, or
    /// on a forward edge (`dep` submitted after `job`) — submission
    /// order is the output order, so a graph whose edges respect it is
    /// acyclic by construction.
    pub fn add_dep(&mut self, job: JobId, dep: JobId) {
        assert!(job.0 < self.jobs.len(), "job id out of range");
        assert!(dep.0 < self.jobs.len(), "dep id out of range");
        assert!(
            dep.0 < job.0,
            "dependency must be submitted before the job that needs it"
        );
        if !self.deps[job.0].contains(&dep.0) {
            self.deps[job.0].push(dep.0);
        }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no jobs have been added.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Job names in submission order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.jobs.iter().map(|j| j.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::FingerprintBuilder;

    fn fp(name: &str) -> Fingerprint {
        FingerprintBuilder::new().str("t", name).finish()
    }

    #[test]
    fn graph_preserves_submission_order() {
        let mut g = JobGraph::new();
        let a = g.add(Job::new("a", fp("a"), || JobOutput::text("A\n")));
        let b = g.add(Job::new("b", fp("b"), || JobOutput::text("B\n")));
        assert_eq!((a, b), (JobId(0), JobId(1)));
        assert_eq!(g.names().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
    }

    #[test]
    fn deps_deduplicate() {
        let mut g = JobGraph::new();
        let a = g.add(Job::new("a", fp("a"), JobOutput::default));
        let b = g.add(Job::new("b", fp("b"), JobOutput::default));
        g.add_dep(b, a);
        g.add_dep(b, a);
        assert_eq!(g.deps[1], vec![0]);
    }

    #[test]
    #[should_panic(expected = "submitted before")]
    fn forward_edges_rejected() {
        let mut g = JobGraph::new();
        let a = g.add(Job::new("a", fp("a"), JobOutput::default));
        let b = g.add(Job::new("b", fp("b"), JobOutput::default));
        g.add_dep(a, b);
    }

    #[test]
    #[should_panic(expected = "submitted before")]
    fn self_dependency_rejected() {
        let mut g = JobGraph::new();
        let a = g.add(Job::new("a", fp("a"), JobOutput::default));
        g.add_dep(a, a);
    }
}
