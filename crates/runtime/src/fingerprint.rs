//! Canonical config fingerprints.
//!
//! A job's cache identity is a 64-bit FNV-1a hash over a *canonical*
//! encoding of its configuration: every field is written as
//! `tag · len(name) · name · len(value) · value`, so neither field
//! reordering ambiguity nor value concatenation ambiguity can make
//! two distinct configs collide by construction sloppiness. No
//! `Hash`-derive is involved (its layout is unspecified across
//! compiler versions) and no hash-ordered container feeds the
//! encoder — callers write fields in a fixed, explicit order.

use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a streaming hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a::default()
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in fixed little-endian form.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// A finished fingerprint, rendered as 16 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// The fixed-width hex form used for cache file names.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Field type tags of the canonical encoding.
const TAG_STR: u8 = 1;
const TAG_U64: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_NONE: u8 = 4;
const TAG_F64: u8 = 5;

/// Builds a [`Fingerprint`] from explicitly ordered, named, typed
/// fields.
#[derive(Debug, Clone, Default)]
pub struct FingerprintBuilder {
    h: Fnv1a,
}

impl FingerprintBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        FingerprintBuilder::default()
    }

    fn field_header(&mut self, tag: u8, name: &str) {
        self.h.write(&[tag]);
        self.h.write_u64(name.len() as u64);
        self.h.write(name.as_bytes());
    }

    /// Adds a string field.
    pub fn str(mut self, name: &str, value: &str) -> Self {
        self.field_header(TAG_STR, name);
        self.h.write_u64(value.len() as u64);
        self.h.write(value.as_bytes());
        self
    }

    /// Adds a `u64` field.
    pub fn u64(mut self, name: &str, value: u64) -> Self {
        self.field_header(TAG_U64, name);
        self.h.write_u64(value);
        self
    }

    /// Adds an `f64` field via its IEEE-754 bit pattern, so two
    /// configs differ iff their float bits differ (spec-file link
    /// bandwidths and latencies feed the sweep cache identity).
    pub fn f64(mut self, name: &str, value: f64) -> Self {
        self.field_header(TAG_F64, name);
        self.h.write(&value.to_bits().to_le_bytes());
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, name: &str, value: bool) -> Self {
        self.field_header(TAG_BOOL, name);
        self.h.write(&[u8::from(value)]);
        self
    }

    /// Adds an optional string field; `None` is encoded distinctly
    /// from every `Some` value, including `Some("")`.
    pub fn opt_str(self, name: &str, value: Option<&str>) -> Self {
        match value {
            Some(v) => self.str(name, v),
            None => {
                let mut b = self;
                b.field_header(TAG_NONE, name);
                b
            }
        }
    }

    /// Finishes the encoding.
    pub fn finish(self) -> Fingerprint {
        Fingerprint(self.h.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Classic FNV-1a test vectors.
        let mut h = Fnv1a::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(Fingerprint(0xab).hex(), "00000000000000ab");
        assert_eq!(Fingerprint(0xab).hex().len(), 16);
    }

    #[test]
    fn builder_is_stable_and_order_sensitive() {
        let a = FingerprintBuilder::new()
            .str("target", "fig16")
            .u64("token_divisor", 8)
            .finish();
        let same = FingerprintBuilder::new()
            .str("target", "fig16")
            .u64("token_divisor", 8)
            .finish();
        let reordered = FingerprintBuilder::new()
            .u64("token_divisor", 8)
            .str("target", "fig16")
            .finish();
        assert_eq!(a, same);
        assert_ne!(a, reordered);
    }

    #[test]
    fn no_concatenation_ambiguity() {
        let ab_c = FingerprintBuilder::new()
            .str("k", "ab")
            .str("k2", "c")
            .finish();
        let a_bc = FingerprintBuilder::new()
            .str("k", "a")
            .str("k2", "bc")
            .finish();
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn none_differs_from_empty_some() {
        let none = FingerprintBuilder::new().opt_str("topo", None).finish();
        let empty = FingerprintBuilder::new().opt_str("topo", Some("")).finish();
        assert_ne!(none, empty);
    }

    #[test]
    fn value_type_is_part_of_identity() {
        let s = FingerprintBuilder::new().str("v", "1").finish();
        let b = FingerprintBuilder::new().bool("v", true).finish();
        assert_ne!(s, b);
    }

    #[test]
    fn f64_fields_hash_their_bit_patterns() {
        let a = FingerprintBuilder::new().f64("gb_s", 150.0).finish();
        let same = FingerprintBuilder::new().f64("gb_s", 150.0).finish();
        let b = FingerprintBuilder::new().f64("gb_s", 150.5).finish();
        assert_eq!(a, same);
        assert_ne!(a, b);
        // A float is not the same identity as the u64 with equal bits.
        let as_u64 = FingerprintBuilder::new()
            .u64("gb_s", 150.0_f64.to_bits())
            .finish();
        assert_ne!(a, as_u64);
    }
}
