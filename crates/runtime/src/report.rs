//! Machine-readable run reports.
//!
//! [`BenchSample`] is the workspace's one wall-clock summary type:
//! the bench harness (`t3-bench::harness::bench`) returns it for
//! multi-iteration micro-benches, and [`report_json`] embeds one per
//! job (a single-sample degenerate case) in the `--report` artifact
//! that starts the repo's bench trajectory. Wall-clock here measures
//! the *simulator*, never the simulated machine — and only the
//! scheduler samples it; this module just summarises the numbers.

use std::fmt::Write as _;

use crate::scheduler::{JobStatus, RunSummary};

/// Report schema revision; bump on any layout change.
pub const REPORT_SCHEMA: u64 = 1;

/// Summary statistics over one or more wall-clock samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchSample {
    /// Number of timed iterations summarised.
    pub iters: u32,
    /// Fastest iteration, nanoseconds.
    pub min_ns: u128,
    /// Median iteration, nanoseconds.
    pub median_ns: u128,
    /// Mean iteration, nanoseconds.
    pub mean_ns: u128,
}

impl BenchSample {
    /// Summarises a non-empty sample set.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice — a bench with zero iterations has no
    /// statistics.
    pub fn from_samples(samples_ns: &[u128]) -> Self {
        assert!(!samples_ns.is_empty(), "need at least one sample");
        let mut sorted = samples_ns.to_vec();
        sorted.sort_unstable();
        BenchSample {
            iters: sorted.len() as u32,
            min_ns: sorted[0],
            median_ns: sorted[sorted.len() / 2],
            mean_ns: sorted.iter().sum::<u128>() / sorted.len() as u128,
        }
    }

    /// The degenerate single-measurement summary (per-job report
    /// rows: each job runs exactly once).
    pub fn single(wall_ns: u128) -> Self {
        BenchSample {
            iters: 1,
            min_ns: wall_ns,
            median_ns: wall_ns,
            mean_ns: wall_ns,
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"iters\": {}, \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}}}",
            self.iters, self.min_ns, self.median_ns, self.mean_ns
        )
    }
}

/// Renders a [`RunSummary`] as the `bench_report.json` artifact:
/// per-job rows (submission order) with status, fingerprint, wall
/// time, simulated cycles and any free-form job metrics (e.g. the
/// `ff-speedup` target's `speedup_wall_permille`), plus run-level
/// totals and cache statistics.
pub fn report_json(summary: &RunSummary) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema\": {REPORT_SCHEMA},");
    let _ = writeln!(s, "  \"workers\": {},", summary.workers);
    let _ = writeln!(
        s,
        "  \"cache\": {{\"enabled\": {}, \"hits\": {}, \"misses\": {}}},",
        summary.cache_enabled, summary.cache_hits, summary.cache_misses
    );
    let _ = writeln!(s, "  \"total_wall_ns\": {},", summary.total_wall_ns);
    let _ = writeln!(s, "  \"total_sim_cycles\": {},", summary.total_sim_cycles());
    let _ = writeln!(s, "  \"jobs_failed\": {},", summary.failed());
    s.push_str("  \"jobs\": [");
    for (i, r) in summary.results.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let sim_cycles = r.output.as_ref().map_or(0, |o| o.sim_cycles);
        let _ = write!(
            s,
            "\n    {{\"name\": \"{}\", \"fingerprint\": \"{}\", \"status\": \"{}\", \
             \"sim_cycles\": {sim_cycles}, \"wall\": {}",
            escape(&r.name),
            r.fingerprint.hex(),
            r.status.label(),
            BenchSample::single(r.wall_ns).json(),
        );
        if let Some(metrics) = r.output.as_ref().map(|o| &o.metrics) {
            if !metrics.is_empty() {
                s.push_str(", \"metrics\": {");
                for (j, (k, v)) in metrics.iter().enumerate() {
                    if j > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "\"{}\": {v}", escape(k));
                }
                s.push('}');
            }
        }
        match &r.status {
            JobStatus::Failed(msg) | JobStatus::Skipped(msg) => {
                let _ = write!(s, ", \"error\": \"{}\"", escape(msg));
            }
            _ => {}
        }
        s.push('}');
    }
    if !summary.results.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Escapes a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::FingerprintBuilder;
    use crate::job::{Job, JobGraph, JobOutput};
    use crate::scheduler::{run, RunOptions};

    #[test]
    fn from_samples_summarises() {
        let s = BenchSample::from_samples(&[30, 10, 20]);
        assert_eq!(s.iters, 3);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.median_ns, 20);
        assert_eq!(s.mean_ns, 20);
    }

    #[test]
    fn single_is_degenerate() {
        let s = BenchSample::single(42);
        assert_eq!(s, BenchSample::from_samples(&[42]));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_rejected() {
        BenchSample::from_samples(&[]);
    }

    #[test]
    fn report_lists_every_job_with_status() {
        let mut g = JobGraph::new();
        let fp = |n: &str| FingerprintBuilder::new().str("t", n).finish();
        g.add(Job::new("ok_job", fp("ok"), || {
            let mut o = JobOutput::text("fine\n");
            o.sim_cycles = 1000;
            o.metrics.insert("speedup_wall_permille".into(), 2500);
            o
        }));
        g.add(Job::new("bad_job", fp("bad"), || panic!("report me")));
        let summary = run(g, &RunOptions::with_workers(2));
        let json = report_json(&summary);
        assert!(json.contains("\"schema\": 1"));
        assert!(json.contains("\"name\": \"ok_job\""));
        assert!(json.contains("\"status\": \"ok\""));
        assert!(json.contains("\"status\": \"failed\""));
        assert!(json.contains("\"error\": \"report me\""));
        assert!(json.contains("\"sim_cycles\": 1000"));
        assert!(json.contains("\"metrics\": {\"speedup_wall_permille\": 2500}"));
        assert!(json.contains("\"jobs_failed\": 1"));
        let opens = json.matches(['{', '[']).count();
        let closes = json.matches(['}', ']']).count();
        assert_eq!(opens, closes);
    }
}
