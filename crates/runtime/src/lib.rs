//! `t3-runtime` — the deterministic parallel experiment runtime.
//!
//! The bench front-end used to run every figure regeneration strictly
//! sequentially; this crate is the job-runtime layer between the
//! simulator crates and `figures`:
//!
//! * [`job`] — [`Job`]/[`JobGraph`]: named, dependency-ordered units
//!   of simulation work, each with a canonical config fingerprint.
//! * [`fingerprint`] — stable FNV-1a over a hand-rolled canonical
//!   field encoding (no `Hash`-derive, no hash-ordered iteration).
//! * [`scheduler`] — a `std::thread` + `mpsc` worker pool with panic
//!   isolation and **deterministic output merging**: results are
//!   reported in submission order, so artifacts are byte-identical at
//!   any `--jobs` width.
//! * [`cache`] — a content-addressed on-disk result cache
//!   (`target/t3-cache/<fingerprint>.json`) making reruns
//!   incremental.
//! * [`report`] — [`BenchSample`] wall-time summaries and the
//!   `bench_report.json` writer.
//!
//! Like the rest of the workspace the crate is std-only. Host wall
//! time is measured here (and only here, plus the bench harness) to
//! report the *simulator's* speed; it never feeds simulated cycles,
//! and the `t3-lint` wall-clock rule polices that boundary per file.

pub mod cache;
pub mod fingerprint;
pub mod job;
pub mod report;
pub mod scheduler;

pub use cache::{Cache, CacheConfig, DEFAULT_CACHE_DIR};
pub use fingerprint::{Fingerprint, FingerprintBuilder, Fnv1a};
pub use job::{Job, JobGraph, JobId, JobOutput};
pub use report::{report_json, BenchSample};
pub use scheduler::{run, JobResult, JobStatus, RunOptions, RunSummary};
