//! The worker-pool scheduler.
//!
//! Ready jobs are dispatched to `std::thread` workers over `mpsc`
//! channels; a panicking job is caught on its worker
//! (`catch_unwind`), reported as [`JobStatus::Failed`], and neither
//! poisons the pool nor stops independent jobs. Results are collected
//! into submission order, so every artifact derived from a
//! [`RunSummary`] is byte-identical whatever the worker count or the
//! scheduling interleaving — determinism by merge, not by accident.
//!
// t3-lint: allow-file(wall-clock) -- scheduler wall-time measures the host-side cost of running the simulators (per-job and total report metrics); it never reaches simulated cycles, which arrive fully formed in each JobOutput.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

use crate::cache::{Cache, CacheConfig};
use crate::fingerprint::Fingerprint;
use crate::job::{JobFn, JobGraph, JobOutput};

/// How a run should execute.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads (clamped to at least 1; `1` reproduces a fully
    /// sequential run).
    pub workers: usize,
    /// Result cache; `None` disables caching entirely.
    pub cache: Option<CacheConfig>,
}

impl RunOptions {
    /// `workers` threads, no cache.
    pub fn with_workers(workers: usize) -> Self {
        RunOptions {
            workers,
            cache: None,
        }
    }

    /// The host's available parallelism (1 when unknown).
    pub fn default_workers() -> usize {
        thread::available_parallelism().map_or(1, |n| n.get())
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            workers: Self::default_workers(),
            cache: None,
        }
    }
}

/// Terminal state of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran to completion on a worker.
    Ok,
    /// Replayed from the content-addressed cache.
    Cached,
    /// Panicked on its worker; the message is the panic payload.
    Failed(String),
    /// Not run because a (transitive) dependency failed.
    Skipped(String),
}

impl JobStatus {
    /// Short machine-readable label (report rows).
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Ok => "ok",
            JobStatus::Cached => "cached",
            JobStatus::Failed(_) => "failed",
            JobStatus::Skipped(_) => "skipped",
        }
    }

    /// True for `Ok`/`Cached`.
    pub fn succeeded(&self) -> bool {
        matches!(self, JobStatus::Ok | JobStatus::Cached)
    }
}

/// One job's outcome, in the summary at its submission index.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's name.
    pub name: String,
    /// The job's canonical config fingerprint.
    pub fingerprint: Fingerprint,
    /// Terminal status.
    pub status: JobStatus,
    /// The structured output (`None` for failed/skipped jobs).
    pub output: Option<JobOutput>,
    /// Host wall time spent on this job (execution or cache replay).
    pub wall_ns: u128,
}

/// The whole run's outcome, results in submission order.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Per-job results, indexed by submission order.
    pub results: Vec<JobResult>,
    /// Worker threads actually used.
    pub workers: usize,
    /// Cache lookup hits (0 when caching was disabled).
    pub cache_hits: u64,
    /// Cache lookup misses (0 when caching was disabled).
    pub cache_misses: u64,
    /// True when a cache was configured.
    pub cache_enabled: bool,
    /// Host wall time of the whole run.
    pub total_wall_ns: u128,
}

impl RunSummary {
    /// Number of jobs that did not succeed.
    pub fn failed(&self) -> usize {
        self.results
            .iter()
            .filter(|r| !r.status.succeeded())
            .count()
    }

    /// True when every job succeeded.
    pub fn ok(&self) -> bool {
        self.failed() == 0
    }

    /// Concatenates every successful job's stdout in submission
    /// order — the deterministic merge. Failed/skipped jobs
    /// contribute nothing (their absence is reported out-of-band).
    pub fn merged_stdout(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            if let Some(o) = &r.output {
                out.push_str(&o.stdout);
            }
        }
        out
    }

    /// Total simulated cycles across successful jobs.
    pub fn total_sim_cycles(&self) -> u64 {
        self.results
            .iter()
            .filter_map(|r| r.output.as_ref())
            .map(|o| o.sim_cycles)
            .sum()
    }
}

/// Renders a panic payload as a message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panicked with a non-string payload".to_string()
    }
}

/// Executes the graph and returns every job's result in submission
/// order.
pub fn run(graph: JobGraph, opts: &RunOptions) -> RunSummary {
    let started = Instant::now();
    let n = graph.jobs.len();
    let workers = opts.workers.max(1).min(n.max(1));
    let mut cache = opts.cache.as_ref().map(Cache::open);

    let dependents = dependents_of(&graph);
    let mut pending_deps: Vec<usize> = graph.deps.iter().map(Vec::len).collect();
    let meta: Vec<(String, Fingerprint)> = graph
        .jobs
        .iter()
        .map(|j| (j.name.clone(), j.fingerprint))
        .collect();
    let mut closures: Vec<Option<JobFn>> = graph.jobs.into_iter().map(|j| Some(j.run)).collect();
    let mut results: Vec<Option<JobResult>> = (0..n).map(|_| None).collect();

    // Workers pull `(index, closure)` tasks from a shared receiver and
    // push `(index, outcome, wall_ns)` back; the pool drains and exits
    // when the task sender drops.
    type TaskMsg = (usize, JobFn);
    type ResultMsg = (usize, Result<JobOutput, String>, u128);
    let (task_tx, task_rx) = mpsc::channel::<TaskMsg>();
    let task_rx = Arc::new(Mutex::new(task_rx));
    let (result_tx, result_rx) = mpsc::channel::<ResultMsg>();
    let pool: Vec<thread::JoinHandle<()>> = (0..workers)
        .map(|_| {
            let task_rx = Arc::clone(&task_rx);
            let result_tx = result_tx.clone();
            thread::spawn(move || loop {
                let task = { task_rx.lock().expect("task queue lock").recv() };
                let Ok((idx, job)) = task else { break };
                let t0 = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(job)).map_err(panic_message);
                let wall = t0.elapsed().as_nanos();
                if result_tx.send((idx, outcome, wall)).is_err() {
                    break;
                }
            })
        })
        .collect();
    drop(result_tx);

    let mut outstanding = 0usize;
    // Dispatch/complete worklist: completing a job (especially from
    // cache) can make further jobs ready immediately.
    let mut ready: Vec<usize> = (0..n).filter(|&i| pending_deps[i] == 0).collect();
    loop {
        while let Some(i) = ready.first().copied() {
            ready.remove(0);
            // A failed or skipped dependency skips this job.
            let bad_dep = graph.deps[i]
                .iter()
                .find(|&&d| !results[d].as_ref().is_some_and(|r| r.status.succeeded()));
            let (name, fp) = meta[i].clone();
            if let Some(&d) = bad_dep {
                let reason = format!("dependency `{}` did not succeed", meta[d].0);
                closures[i] = None;
                results[i] = Some(JobResult {
                    name,
                    fingerprint: fp,
                    status: JobStatus::Skipped(reason),
                    output: None,
                    wall_ns: 0,
                });
                release_dependents(i, &dependents, &mut pending_deps, &mut ready);
                continue;
            }
            if let Some(cache) = cache.as_mut() {
                let t0 = Instant::now();
                if let Some(out) = cache.load(fp) {
                    closures[i] = None;
                    results[i] = Some(JobResult {
                        name,
                        fingerprint: fp,
                        status: JobStatus::Cached,
                        output: Some(out),
                        wall_ns: t0.elapsed().as_nanos(),
                    });
                    release_dependents(i, &dependents, &mut pending_deps, &mut ready);
                    continue;
                }
            }
            let job = closures[i].take().expect("job dispatched once");
            task_tx.send((i, job)).expect("pool alive");
            outstanding += 1;
        }
        if outstanding == 0 {
            break;
        }
        let (i, outcome, wall_ns) = result_rx.recv().expect("workers alive");
        outstanding -= 1;
        let (name, fp) = meta[i].clone();
        let result = match outcome {
            Ok(out) => {
                if let Some(cache) = cache.as_ref() {
                    if let Err(e) = cache.store(fp, &name, &out) {
                        eprintln!("t3-runtime: cannot cache {name} ({fp}): {e}");
                    }
                }
                JobResult {
                    name,
                    fingerprint: fp,
                    status: JobStatus::Ok,
                    output: Some(out),
                    wall_ns,
                }
            }
            Err(msg) => JobResult {
                name,
                fingerprint: fp,
                status: JobStatus::Failed(msg),
                output: None,
                wall_ns,
            },
        };
        results[i] = Some(result);
        release_dependents(i, &dependents, &mut pending_deps, &mut ready);
    }
    drop(task_tx);
    for handle in pool {
        handle
            .join()
            .expect("worker threads never panic themselves");
    }

    RunSummary {
        results: results
            .into_iter()
            .map(|r| r.expect("every job reaches a terminal state"))
            .collect(),
        workers,
        cache_hits: cache.as_ref().map_or(0, Cache::hits),
        cache_misses: cache.as_ref().map_or(0, Cache::misses),
        cache_enabled: cache.is_some(),
        total_wall_ns: started.elapsed().as_nanos(),
    }
}

/// Inverts the dependency edges: `dependents[d]` lists the jobs
/// waiting on `d`.
fn dependents_of(graph: &JobGraph) -> Vec<Vec<usize>> {
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); graph.jobs.len()];
    for (i, deps) in graph.deps.iter().enumerate() {
        for &d in deps {
            dependents[d].push(i);
        }
    }
    dependents
}

/// Marks `i` complete: every dependent with no remaining pending deps
/// joins the ready list (kept in submission order for deterministic
/// dispatch order at `workers = 1`).
fn release_dependents(
    i: usize,
    dependents: &[Vec<usize>],
    pending_deps: &mut [usize],
    ready: &mut Vec<usize>,
) {
    for &dep in &dependents[i] {
        pending_deps[dep] -= 1;
        if pending_deps[dep] == 0 {
            ready.push(dep);
        }
    }
    ready.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::FingerprintBuilder;
    use crate::job::Job;

    fn fp(name: &str) -> Fingerprint {
        FingerprintBuilder::new().str("t", name).finish()
    }

    fn text_job(name: &'static str) -> Job {
        Job::new(name, fp(name), move || JobOutput::text(format!("{name}\n")))
    }

    #[test]
    fn merged_output_is_submission_ordered_at_any_width() {
        let build = || {
            let mut g = JobGraph::new();
            for name in ["a", "b", "c", "d", "e"] {
                g.add(text_job(name));
            }
            g
        };
        let seq = run(build(), &RunOptions::with_workers(1));
        let par = run(build(), &RunOptions::with_workers(4));
        assert_eq!(seq.merged_stdout(), "a\nb\nc\nd\ne\n");
        assert_eq!(seq.merged_stdout(), par.merged_stdout());
        assert!(seq.ok() && par.ok());
        assert_eq!(par.workers, 4);
    }

    #[test]
    fn panic_is_isolated_and_fails_only_that_job() {
        let mut g = JobGraph::new();
        g.add(text_job("first"));
        g.add(Job::new("boom", fp("boom"), || {
            panic!("deliberate test panic")
        }));
        g.add(text_job("last"));
        let summary = run(g, &RunOptions::with_workers(2));
        assert_eq!(summary.failed(), 1);
        assert!(!summary.ok());
        assert_eq!(summary.merged_stdout(), "first\nlast\n");
        let boom = &summary.results[1];
        assert_eq!(boom.status.label(), "failed");
        match &boom.status {
            JobStatus::Failed(msg) => assert!(msg.contains("deliberate test panic")),
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn dependencies_order_execution_and_failures_skip_dependents() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static STAMP: AtomicU64 = AtomicU64::new(0);
        let stamp = || STAMP.fetch_add(1, Ordering::SeqCst);

        let mut g = JobGraph::new();
        let a = g.add(Job::new("a", fp("a"), move || {
            let mut o = JobOutput::text("a\n");
            o.metrics.insert("stamp".into(), stamp());
            o
        }));
        let b = g.add(Job::new("b", fp("b"), move || {
            let mut o = JobOutput::text("b\n");
            o.metrics.insert("stamp".into(), stamp());
            o
        }));
        g.add_dep(b, a);
        let bad = g.add(Job::new("bad", fp("bad"), || panic!("nope")));
        let after_bad = g.add(text_job("after_bad"));
        g.add_dep(after_bad, bad);
        let summary = run(g, &RunOptions::with_workers(4));
        let stamp_of = |i: usize| summary.results[i].output.as_ref().expect("ran").metrics["stamp"];
        assert!(stamp_of(a.0) < stamp_of(b.0), "dependency ran first");
        assert!(matches!(
            summary.results[after_bad.0].status,
            JobStatus::Skipped(_)
        ));
        assert_eq!(summary.failed(), 2, "the panicking job and its dependent");
        assert_eq!(summary.merged_stdout(), "a\nb\n");
    }

    #[test]
    fn cache_replays_byte_identical_results() {
        let dir =
            std::env::temp_dir().join(format!("t3-runtime-sched-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = RunOptions {
            workers: 2,
            cache: Some(CacheConfig::at(&dir)),
        };
        let build = || {
            let mut g = JobGraph::new();
            for name in ["x", "y", "z"] {
                g.add(text_job(name));
            }
            g
        };
        let cold = run(build(), &opts);
        assert_eq!((cold.cache_hits, cold.cache_misses), (0, 3));
        let warm = run(build(), &opts);
        assert_eq!((warm.cache_hits, warm.cache_misses), (3, 0));
        assert_eq!(cold.merged_stdout(), warm.merged_stdout());
        assert!(warm.results.iter().all(|r| r.status == JobStatus::Cached));
        assert_eq!(cold.total_sim_cycles(), warm.total_sim_cycles());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn empty_graph_runs() {
        let summary = run(JobGraph::new(), &RunOptions::default());
        assert!(summary.ok());
        assert_eq!(summary.merged_stdout(), "");
    }
}
