//! Per-collective structured records with a stable canonical form.
//!
//! Every [`Event::ChunkSend`] in a trace becomes one
//! [`CollectiveRecord`]: which chunk moved, how many bytes over how
//! many fabric hops, the Tracker trigger that launched it (matched by
//! chunk id, oldest fire first), the wire occupancy window, and how
//! many of those wire cycles were *exposed* (no producer compute over
//! them). [`CollectiveRecord::describe`] renders one record as a
//! single stable line — the canonical form golden tests pin — so any
//! change to collective timing or attribution shows up as a readable
//! one-line diff.

use std::fmt::Write as _;

use crate::analyze::IntervalSet;
use t3_trace::{Event, Record};

/// One collective chunk transfer, fully attributed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectiveRecord {
    /// Index of the record in wire order (send completion, then
    /// trace sequence).
    pub seq: u64,
    /// The collective operation. The fused engines model T3's
    /// reduce-scatter epilogue, so today this is always
    /// `"reduce-scatter"`.
    pub op: &'static str,
    /// How the transfer was driven: `"ring-dma"` when Tracker-
    /// triggered DMA fires appear in the trace, `"direct"` otherwise
    /// (topology-derived direct schedules, CU-driven sends).
    pub schedule: &'static str,
    /// Chunk (ring position / schedule slot) that moved.
    pub chunk: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Fabric hops the payload traversed.
    pub hops: u64,
    /// Cycle the Tracker trigger fired, when one launched this send.
    pub trigger: Option<u64>,
    /// Cycle serialization onto the wire began.
    pub send_start: u64,
    /// Cycle the last byte left.
    pub send_end: u64,
    /// Wire cycles of this send not hidden under producer compute.
    pub exposed_cycles: u64,
}

impl CollectiveRecord {
    /// The canonical single-line form (stable across releases except
    /// for deliberate, baseline-refreshing changes).
    pub fn describe(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "collective#{:02} op={} sched={} chunk={} bytes={} hops={}",
            self.seq, self.op, self.schedule, self.chunk, self.bytes, self.hops
        );
        match self.trigger {
            Some(cycle) => {
                let _ = write!(s, " trigger={cycle}");
            }
            None => s.push_str(" trigger=-"),
        }
        let _ = write!(
            s,
            " send=[{}..{}) exposed={}",
            self.send_start, self.send_end, self.exposed_cycles
        );
        s
    }
}

/// Extracts the collective records from a run's typed events.
pub fn collective_records(records: &[Record]) -> Vec<CollectiveRecord> {
    let mut ordered: Vec<&Record> = records.iter().collect();
    ordered.sort_by_key(|r| (r.cycle, r.seq));

    let schedule = if ordered
        .iter()
        .any(|r| matches!(r.event, Event::DmaTriggerFire { .. }))
    {
        "ring-dma"
    } else {
        "direct"
    };

    let compute = IntervalSet::new(
        ordered
            .iter()
            .filter_map(|r| match r.event {
                Event::GemmStage { start, end, .. } => Some((start, end)),
                _ => None,
            })
            .collect(),
    );

    let mut fires: Vec<(u64, Vec<u64>)> = Vec::new();
    let mut out = Vec::new();
    for r in &ordered {
        match r.event {
            Event::DmaTriggerFire { chunk, .. } => {
                match fires.iter_mut().find(|(c, _)| *c == chunk) {
                    Some((_, queue)) => queue.push(r.cycle),
                    None => fires.push((chunk, vec![r.cycle])),
                }
            }
            Event::ChunkSend {
                chunk,
                bytes,
                hops,
                start,
                end,
            } => {
                let trigger = fires
                    .iter_mut()
                    .find(|(c, _)| *c == chunk)
                    .and_then(|(_, queue)| (!queue.is_empty()).then(|| queue.remove(0)));
                let exposed_cycles = IntervalSet::new(vec![(start, end)])
                    .subtract(&compute)
                    .len_cycles();
                out.push(CollectiveRecord {
                    seq: out.len() as u64,
                    op: "reduce-scatter",
                    schedule,
                    chunk,
                    bytes,
                    hops,
                    trigger,
                    send_start: start,
                    send_end: end,
                    exposed_cycles,
                });
            }
            _ => {}
        }
    }
    out
}

/// Renders the records as the stable text `t3-prof collectives`
/// prints: one `describe()` line per record plus a totals line.
pub fn render(records: &[CollectiveRecord]) -> String {
    let mut s = String::new();
    for r in records {
        let _ = writeln!(s, "{}", r.describe());
    }
    let bytes: u64 = records.iter().map(|r| r.bytes).sum();
    let exposed: u64 = records.iter().map(|r| r.exposed_cycles).sum();
    let _ = writeln!(
        s,
        "total: {} collectives, {} bytes, {} exposed cycles",
        records.len(),
        bytes,
        exposed
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, cycle: u64, event: Event) -> Record {
        Record { seq, cycle, event }
    }

    fn sample() -> Vec<Record> {
        vec![
            rec(
                0,
                100,
                Event::GemmStage {
                    stage: 0,
                    wg_start: 0,
                    wg_end: 8,
                    start: 0,
                    end: 100,
                    bytes: 4096,
                    compute_cycles: 90,
                },
            ),
            rec(
                1,
                40,
                Event::DmaTriggerFire {
                    chunk: 2,
                    bytes: 1024,
                },
            ),
            rec(
                2,
                130,
                Event::ChunkSend {
                    chunk: 2,
                    bytes: 1024,
                    hops: 3,
                    start: 50,
                    end: 130,
                },
            ),
            rec(
                3,
                160,
                Event::ChunkSend {
                    chunk: 5,
                    bytes: 512,
                    hops: 1,
                    start: 140,
                    end: 160,
                },
            ),
        ]
    }

    #[test]
    fn records_attribute_triggers_and_exposure() {
        let recs = collective_records(&sample());
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].trigger, Some(40));
        assert_eq!(recs[0].schedule, "ring-dma");
        // Send [50,130) under compute [0,100): 30 exposed cycles.
        assert_eq!(recs[0].exposed_cycles, 30);
        // The untriggered send is fully exposed.
        assert_eq!(recs[1].trigger, None);
        assert_eq!(recs[1].exposed_cycles, 20);
    }

    #[test]
    fn describe_is_the_canonical_line() {
        let recs = collective_records(&sample());
        assert_eq!(
            recs[0].describe(),
            "collective#00 op=reduce-scatter sched=ring-dma chunk=2 bytes=1024 hops=3 \
             trigger=40 send=[50..130) exposed=30"
        );
        assert_eq!(
            recs[1].describe(),
            "collective#01 op=reduce-scatter sched=ring-dma chunk=5 bytes=512 hops=1 \
             trigger=- send=[140..160) exposed=20"
        );
    }

    #[test]
    fn schedule_is_direct_without_fires() {
        let no_fires: Vec<Record> = sample()
            .into_iter()
            .filter(|r| !matches!(r.event, Event::DmaTriggerFire { .. }))
            .collect();
        let recs = collective_records(&no_fires);
        assert!(recs.iter().all(|r| r.schedule == "direct"));
        assert!(recs.iter().all(|r| r.trigger.is_none()));
    }

    #[test]
    fn render_appends_totals() {
        let text = render(&collective_records(&sample()));
        assert!(text.ends_with("total: 2 collectives, 1536 bytes, 50 exposed cycles\n"));
    }
}
