//! The perf-trajectory regression gate.
//!
//! Compares a fresh `figures --report` run against a checked-in
//! `BENCH_*.json` baseline, job by job, on **simulated cycles only**
//! — wall-clock fields are host-dependent noise and are never read.
//! Each job gets a symmetric tolerance band of ± `tolerance_permille`
//! around its baseline cycles; outside the band means `regressed`
//! (above) or `improved` (below, which passes but signals the
//! baseline wants a refresh). Jobs present only in the baseline are
//! `missing` (fail: coverage must not silently shrink); jobs present
//! only in the current run are `new` (pass: they join the baseline at
//! the next refresh). The verdict renders as aligned text or as
//! machine-readable JSON.

use std::fmt::Write as _;

use crate::json::Parser;

/// Default tolerance band: ±5‰ (0.5%) of the baseline cycles.
pub const DEFAULT_TOLERANCE_PERMILLE: u64 = 5;

/// One job's simulated-cycle tally from a bench report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobCycles {
    /// Job name (`figures` target).
    pub name: String,
    /// Scheduler status label (`ok`, `failed`, `skipped`).
    pub status: String,
    /// Simulated cycles the job tallied.
    pub sim_cycles: u64,
}

/// Parses a `t3-runtime` bench report, keeping only what the gate
/// compares: per-job name, status, and simulated cycles.
pub fn parse_report(text: &str) -> Result<Vec<JobCycles>, String> {
    let mut p = Parser::new(text);
    p.skip_ws();
    p.expect('{').ok_or("expected report object")?;
    let mut schema = None;
    let mut jobs = Vec::new();
    loop {
        p.skip_ws();
        if p.eat('}') {
            break;
        }
        let key = p.string().ok_or("expected report key")?;
        p.skip_ws();
        p.expect(':').ok_or("expected ':'")?;
        p.skip_ws();
        match key.as_str() {
            "schema" => schema = Some(p.number().ok_or("schema must be a number")?),
            "jobs" => {
                p.expect('[').ok_or("jobs must be an array")?;
                loop {
                    p.skip_ws();
                    if p.eat(']') {
                        break;
                    }
                    jobs.push(parse_job(&mut p)?);
                    p.skip_ws();
                    p.eat(',');
                }
            }
            _ => {
                p.skip_value().ok_or("malformed report value")?;
            }
        }
        p.skip_ws();
        p.eat(',');
    }
    if schema != Some(1) {
        return Err(format!("unsupported report schema {schema:?}"));
    }
    Ok(jobs)
}

fn parse_job(p: &mut Parser) -> Result<JobCycles, String> {
    p.expect('{').ok_or("expected job object")?;
    let mut name = None;
    let mut status = None;
    let mut sim_cycles = None;
    loop {
        p.skip_ws();
        if p.eat('}') {
            break;
        }
        let key = p.string().ok_or("expected job key")?;
        p.skip_ws();
        p.expect(':').ok_or("expected ':' in job")?;
        p.skip_ws();
        match key.as_str() {
            "name" => name = Some(p.string().ok_or("job name must be a string")?),
            "status" => status = Some(p.string().ok_or("job status must be a string")?),
            "sim_cycles" => sim_cycles = Some(p.number().ok_or("sim_cycles must be a number")?),
            _ => {
                p.skip_value().ok_or("malformed job value")?;
            }
        }
        p.skip_ws();
        p.eat(',');
    }
    Ok(JobCycles {
        name: name.ok_or("job missing name")?,
        status: status.ok_or("job missing status")?,
        sim_cycles: sim_cycles.ok_or("job missing sim_cycles")?,
    })
}

/// One job's gate outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateStatus {
    /// Within the tolerance band.
    Ok,
    /// Below the band: faster than the baseline promises. Passes,
    /// but the baseline should be refreshed to lock in the win.
    Improved,
    /// Above the band, a zero-baseline growing cycles, or the job
    /// failed outright.
    Regressed,
    /// In the current run but not the baseline.
    New,
    /// In the baseline but not the current run.
    Missing,
}

impl GateStatus {
    /// Stable lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            GateStatus::Ok => "ok",
            GateStatus::Improved => "improved",
            GateStatus::Regressed => "regressed",
            GateStatus::New => "new",
            GateStatus::Missing => "missing",
        }
    }
}

/// One row of the verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateRow {
    /// Job name.
    pub name: String,
    /// Baseline cycles (0 when the job is `new`).
    pub baseline_cycles: u64,
    /// Current cycles (0 when the job is `missing`).
    pub current_cycles: u64,
    /// The outcome.
    pub status: GateStatus,
}

/// The gate's full verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateVerdict {
    /// The band applied, in permille of the baseline.
    pub tolerance_permille: u64,
    /// Per-job rows: baseline order, then new jobs in current order.
    pub rows: Vec<GateRow>,
}

impl GateVerdict {
    /// Whether the gate passes (nothing regressed or missing).
    pub fn passed(&self) -> bool {
        !self
            .rows
            .iter()
            .any(|r| matches!(r.status, GateStatus::Regressed | GateStatus::Missing))
    }

    fn count(&self, status: GateStatus) -> usize {
        self.rows.iter().filter(|r| r.status == status).count()
    }

    /// Renders the verdict as aligned text.
    pub fn render_text(&self) -> String {
        let width = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(0)
            .max(4);
        let mut s = String::new();
        for r in &self.rows {
            let _ = write!(
                s,
                "{:9} {:width$} base={} cur={}",
                r.status.label(),
                r.name,
                r.baseline_cycles,
                r.current_cycles,
            );
            if r.baseline_cycles > 0
                && matches!(r.status, GateStatus::Improved | GateStatus::Regressed)
            {
                let (sign, delta) = if r.current_cycles >= r.baseline_cycles {
                    ('+', r.current_cycles - r.baseline_cycles)
                } else {
                    ('-', r.baseline_cycles - r.current_cycles)
                };
                let permille = delta * 1000 / r.baseline_cycles;
                let _ = write!(s, " ({sign}{}.{}%)", permille / 10, permille % 10);
            }
            s.push('\n');
        }
        let _ = writeln!(
            s,
            "verdict: {} ({} regressed, {} missing, {} improved, {} new; tolerance \u{b1}{}.{}%)",
            if self.passed() { "PASS" } else { "FAIL" },
            self.count(GateStatus::Regressed),
            self.count(GateStatus::Missing),
            self.count(GateStatus::Improved),
            self.count(GateStatus::New),
            self.tolerance_permille / 10,
            self.tolerance_permille % 10,
        );
        s
    }

    /// Renders the verdict as machine-readable JSON.
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"schema\": 1,");
        let _ = writeln!(s, "  \"tolerance_permille\": {},", self.tolerance_permille);
        let _ = writeln!(s, "  \"passed\": {},", self.passed());
        let _ = writeln!(
            s,
            "  \"regressed\": {}, \"missing\": {}, \"improved\": {}, \"new\": {},",
            self.count(GateStatus::Regressed),
            self.count(GateStatus::Missing),
            self.count(GateStatus::Improved),
            self.count(GateStatus::New),
        );
        s.push_str("  \"jobs\": [");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"name\": \"{}\", \"status\": \"{}\", \"baseline_cycles\": {}, \
                 \"current_cycles\": {}}}",
                r.name,
                r.status.label(),
                r.baseline_cycles,
                r.current_cycles,
            );
        }
        if !self.rows.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Diffs the current run against the baseline.
pub fn check(
    current: &[JobCycles],
    baseline: &[JobCycles],
    tolerance_permille: u64,
) -> GateVerdict {
    let mut rows = Vec::new();
    for base in baseline {
        let row = match current.iter().find(|c| c.name == base.name) {
            None => GateRow {
                name: base.name.clone(),
                baseline_cycles: base.sim_cycles,
                current_cycles: 0,
                status: GateStatus::Missing,
            },
            Some(cur) => {
                let status = if cur.status != "ok" {
                    GateStatus::Regressed
                } else {
                    band(base.sim_cycles, cur.sim_cycles, tolerance_permille)
                };
                GateRow {
                    name: base.name.clone(),
                    baseline_cycles: base.sim_cycles,
                    current_cycles: cur.sim_cycles,
                    status,
                }
            }
        };
        rows.push(row);
    }
    for cur in current {
        if !baseline.iter().any(|b| b.name == cur.name) {
            rows.push(GateRow {
                name: cur.name.clone(),
                baseline_cycles: 0,
                current_cycles: cur.sim_cycles,
                status: GateStatus::New,
            });
        }
    }
    GateVerdict {
        tolerance_permille,
        rows,
    }
}

/// Places `cur` relative to the ±tolerance band around `base`.
fn band(base: u64, cur: u64, tolerance_permille: u64) -> GateStatus {
    if base == 0 {
        // A zero baseline has no band; any growth is a regression.
        return if cur == 0 {
            GateStatus::Ok
        } else {
            GateStatus::Regressed
        };
    }
    let base = base as u128;
    let cur = cur as u128;
    let tol = tolerance_permille as u128;
    if cur * 1000 > base * (1000 + tol) {
        GateStatus::Regressed
    } else if cur * 1000 < base * (1000 - tol.min(1000)) {
        GateStatus::Improved
    } else {
        GateStatus::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(name: &str, status: &str, sim_cycles: u64) -> JobCycles {
        JobCycles {
            name: name.to_string(),
            status: status.to_string(),
            sim_cycles,
        }
    }

    #[test]
    fn band_classifies_within_above_below() {
        assert_eq!(band(1000, 1000, 5), GateStatus::Ok);
        assert_eq!(band(1000, 1005, 5), GateStatus::Ok);
        assert_eq!(band(1000, 1006, 5), GateStatus::Regressed);
        assert_eq!(band(1000, 995, 5), GateStatus::Ok);
        assert_eq!(band(1000, 994, 5), GateStatus::Improved);
        assert_eq!(band(0, 0, 5), GateStatus::Ok);
        assert_eq!(band(0, 1, 5), GateStatus::Regressed);
    }

    #[test]
    fn check_flags_missing_new_and_failed() {
        let baseline = [job("a", "ok", 100), job("b", "ok", 200)];
        let current = [job("a", "failed", 100), job("c", "ok", 50)];
        let v = check(&current, &baseline, 5);
        assert!(!v.passed());
        let by_name = |n: &str| v.rows.iter().find(|r| r.name == n).unwrap().status;
        assert_eq!(by_name("a"), GateStatus::Regressed, "failed job regresses");
        assert_eq!(by_name("b"), GateStatus::Missing);
        assert_eq!(by_name("c"), GateStatus::New);
    }

    #[test]
    fn identical_reports_pass() {
        let jobs = [job("a", "ok", 100), job("b", "ok", 0)];
        let v = check(&jobs, &jobs, 0);
        assert!(v.passed());
        assert!(v.rows.iter().all(|r| r.status == GateStatus::Ok));
        assert!(v.render_text().contains("verdict: PASS"));
    }

    #[test]
    fn parse_report_reads_the_runtime_format() {
        let text = r#"{
  "schema": 1,
  "workers": 2,
  "cache": {"enabled": false, "hits": 0, "misses": 0},
  "total_wall_ns": 12345,
  "total_sim_cycles": 300,
  "jobs_failed": 1,
  "jobs": [
    {"name": "x", "fingerprint": "ab12", "status": "ok", "sim_cycles": 300, "wall": {"iters": 1, "min_ns": 9, "median_ns": 9, "mean_ns": 9}},
    {"name": "y", "fingerprint": "cd34", "status": "failed", "sim_cycles": 0, "wall": {"iters": 1, "min_ns": 1, "median_ns": 1, "mean_ns": 1}, "error": "boom"}
  ]
}
"#;
        let jobs = parse_report(text).expect("parses");
        assert_eq!(jobs, vec![job("x", "ok", 300), job("y", "failed", 0)]);
        assert!(parse_report("{\"schema\": 2, \"jobs\": []}").is_err());
        assert!(parse_report("nope").is_err());
    }

    #[test]
    fn json_verdict_is_balanced_and_labeled() {
        let baseline = [job("a", "ok", 100)];
        let current = [job("a", "ok", 200)];
        let v = check(&current, &baseline, 5);
        let json = v.render_json();
        assert!(json.contains("\"passed\": false"));
        assert!(json.contains("\"status\": \"regressed\""));
        assert_eq!(
            json.matches(['{', '[']).count(),
            json.matches(['}', ']']).count()
        );
        let text = v.render_text();
        assert!(text.contains("(+100.0%)"));
    }
}
