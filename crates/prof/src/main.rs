//! The `t3-prof` CLI: trace analytics and the perf-trajectory gate.

use std::process::ExitCode;

use t3_prof::{analyze, check, collective, load, serve};

fn usage() -> ExitCode {
    eprintln!(
        "t3-prof — trace analytics and perf gates for the T3 simulator

USAGE:
  t3-prof analyze <trace.json>
      Critical-path breakdown of an exported Chrome trace: total /
      compute / exposed-collective / dma-fabric / idle cycles and the
      overlap fraction.

  t3-prof collectives <trace.json>
      Per-collective records: one canonical line per chunk transfer.

  t3-prof requests <trace.json>
      Per-request serving analytics from a traced t3-serve run: the
      canonical request log, iteration totals, and exact-integer
      queue/ttft/e2e percentiles.

  t3-prof check <report.json> <baseline.json> [--tolerance <permille>] [--json]
      Diff a fresh `figures --report` run against a checked-in
      BENCH_*.json baseline (simulated cycles only). Exits non-zero
      on a regression or a missing job. Set T3_PROF_NO_GATE=1 to
      downgrade a failing gate to a warning (refresh the baseline in
      the same change)."
    );
    ExitCode::from(2)
}

fn load_records(path: &str) -> Result<Vec<t3_trace::Record>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    load::parse_chrome_trace(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut free: Vec<&str> = Vec::new();
    let mut tolerance = check::DEFAULT_TOLERANCE_PERMILLE;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--tolerance" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("--tolerance needs an integer permille value");
                    return ExitCode::from(2);
                };
                tolerance = v;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                return usage();
            }
            free_arg => free.push(free_arg),
        }
        i += 1;
    }

    match free.as_slice() {
        ["analyze", path] => match load_records(path) {
            Ok(records) => {
                print!(
                    "{}",
                    analyze::render(&analyze::Analysis::from_records(&records))
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("t3-prof: {e}");
                ExitCode::FAILURE
            }
        },
        ["collectives", path] => match load_records(path) {
            Ok(records) => {
                print!(
                    "{}",
                    collective::render(&collective::collective_records(&records))
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("t3-prof: {e}");
                ExitCode::FAILURE
            }
        },
        ["requests", path] => match load_records(path) {
            Ok(records) => {
                print!("{}", serve::render(&records));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("t3-prof: {e}");
                ExitCode::FAILURE
            }
        },
        ["check", report, baseline] => {
            let parse = |path: &str| -> Result<Vec<check::JobCycles>, String> {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                check::parse_report(&text).map_err(|e| format!("{path}: {e}"))
            };
            let (current, base) = match (parse(report), parse(baseline)) {
                (Ok(c), Ok(b)) => (c, b),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("t3-prof: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let verdict = check::check(&current, &base, tolerance);
            if json {
                print!("{}", verdict.render_json());
            } else {
                print!("{}", verdict.render_text());
            }
            if verdict.passed() {
                ExitCode::SUCCESS
            } else if std::env::var_os("T3_PROF_NO_GATE").is_some_and(|v| v == "1") {
                eprintln!(
                    "t3-prof: WARNING: perf gate failed but T3_PROF_NO_GATE=1 is set; \
                     refresh the baseline in this change"
                );
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
