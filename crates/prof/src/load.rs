//! Loads an exported Chrome trace back into typed [`Record`]s.
//!
//! The exporter (`t3-trace::chrome`) embeds every record's exact
//! integer cycles in its `args` object (`cycle`, `cycle_start`,
//! `cycle_end`) precisely so this loader never has to convert rounded
//! microsecond floats back into cycle counts — the round trip
//! `records → JSON → records` is lossless for every field analytics
//! read. Metadata events (`ph: "M"`) are skipped; sequence numbers
//! are reassigned in file order, which the exporter guarantees is
//! sorted by span start then original sequence.

use std::collections::BTreeMap;

use crate::json::Parser;
use t3_trace::{Event, Record};

/// Parses a Chrome trace-event JSON string into typed records.
///
/// Returns an error naming the first malformed construct; an event
/// whose `name` is not part of the t3-trace taxonomy is an error too,
/// so analytics never silently ignore a track they were not written
/// for.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<Record>, String> {
    let mut p = Parser::new(text);
    p.skip_ws();
    p.expect('{').ok_or("expected top-level object")?;
    let mut records = Vec::new();
    loop {
        p.skip_ws();
        if p.eat('}') {
            break;
        }
        let key = p.string().ok_or("expected object key")?;
        p.skip_ws();
        p.expect(':').ok_or("expected ':'")?;
        p.skip_ws();
        if key == "traceEvents" {
            p.expect('[').ok_or("traceEvents must be an array")?;
            loop {
                p.skip_ws();
                if p.eat(']') {
                    break;
                }
                if let Some(event) = parse_trace_event(&mut p)? {
                    let seq = records.len() as u64;
                    records.push(make_record(seq, event)?);
                }
                p.skip_ws();
                p.eat(',');
            }
        } else {
            p.skip_value().ok_or("malformed value")?;
        }
        p.skip_ws();
        p.eat(',');
    }
    Ok(records)
}

/// One parsed trace-event object: its `name` and integer `args`.
/// `None` for metadata events, which carry no simulation payload.
type ParsedEvent = (String, BTreeMap<String, u64>);

fn parse_trace_event(p: &mut Parser) -> Result<Option<ParsedEvent>, String> {
    p.expect('{').ok_or("expected event object")?;
    let mut name = None;
    let mut phase = None;
    let mut args = BTreeMap::new();
    loop {
        p.skip_ws();
        if p.eat('}') {
            break;
        }
        let key = p.string().ok_or("expected event key")?;
        p.skip_ws();
        p.expect(':').ok_or("expected ':' in event")?;
        p.skip_ws();
        match key.as_str() {
            "name" => name = Some(p.string().ok_or("event name must be a string")?),
            "ph" => phase = Some(p.string().ok_or("ph must be a string")?),
            "args" => {
                p.expect('{').ok_or("args must be an object")?;
                loop {
                    p.skip_ws();
                    if p.eat('}') {
                        break;
                    }
                    let k = p.string().ok_or("expected arg key")?;
                    p.skip_ws();
                    p.expect(':').ok_or("expected ':' in args")?;
                    p.skip_ws();
                    if p.peek().is_some_and(|c| c.is_ascii_digit()) {
                        let v = p.number().ok_or("bad arg number")?;
                        args.insert(k, v);
                    } else {
                        // Metadata args carry strings (process names).
                        p.skip_value().ok_or("bad arg value")?;
                    }
                    p.skip_ws();
                    p.eat(',');
                }
            }
            _ => {
                p.skip_value().ok_or("malformed event value")?;
            }
        }
        p.skip_ws();
        p.eat(',');
    }
    let name = name.ok_or("event missing name")?;
    if phase.as_deref() == Some("M") {
        return Ok(None);
    }
    Ok(Some((name, args)))
}

/// Rebuilds the typed record from an event's name and integer args.
fn make_record(seq: u64, (name, args): (String, BTreeMap<String, u64>)) -> Result<Record, String> {
    let get = |k: &str| -> Result<u64, String> {
        args.get(k)
            .copied()
            .ok_or_else(|| format!("event '{name}' missing arg '{k}'"))
    };
    let (cycle, event) = match name.as_str() {
        "gemm_stage" => {
            let end = get("cycle_end")?;
            (
                end,
                Event::GemmStage {
                    stage: get("stage")?,
                    wg_start: get("wg_start")?,
                    wg_end: get("wg_end")?,
                    start: get("cycle_start")?,
                    end,
                    bytes: get("bytes")?,
                    compute_cycles: get("compute_cycles")?,
                },
            )
        }
        "chunk_send" => {
            let end = get("cycle_end")?;
            (
                end,
                Event::ChunkSend {
                    chunk: get("chunk")?,
                    bytes: get("bytes")?,
                    hops: get("hops")?,
                    start: get("cycle_start")?,
                    end,
                },
            )
        }
        "chunk_recv" => (
            get("cycle")?,
            Event::ChunkRecv {
                chunk: get("chunk")?,
                bytes: get("bytes")?,
            },
        ),
        "dma_trigger" => (
            get("cycle")?,
            Event::DmaTriggerFire {
                chunk: get("chunk")?,
                bytes: get("bytes")?,
            },
        ),
        "tracker_update" => (
            get("cycle")?,
            Event::TrackerUpdate {
                wg: get("wg")?,
                wf: get("wf")?,
                addr: get("addr")?,
            },
        ),
        "mc_queue_depth" => (
            get("cycle")?,
            Event::McQueueDepth {
                depth: get("depth")?,
                comm_depth: get("comm_depth")?,
                capacity: get("capacity")?,
            },
        ),
        "llc" => (
            get("cycle")?,
            Event::LlcSample {
                hits: get("hits")?,
                misses: get("misses")?,
            },
        ),
        "link_busy" => {
            let end = get("cycle_end")?;
            (
                end,
                Event::LinkBusy {
                    start: get("cycle_start")?,
                    end,
                    bytes: get("bytes")?,
                },
            )
        }
        "serve_iteration" => {
            let end = get("cycle_end")?;
            (
                end,
                Event::ServeIteration {
                    kind: get("kind")?,
                    batch: get("batch")?,
                    tokens: get("tokens")?,
                    start: get("cycle_start")?,
                    end,
                },
            )
        }
        "request" => {
            let end = get("cycle_end")?;
            (
                end,
                Event::RequestLifecycle {
                    id: get("id")?,
                    tenant: get("tenant")?,
                    prompt_tokens: get("prompt_tokens")?,
                    output_tokens: get("output_tokens")?,
                    admitted: get("admitted")?,
                    first_token: get("first_token")?,
                    start: get("cycle_start")?,
                    end,
                },
            )
        }
        other => return Err(format!("unknown event name '{other}'")),
    };
    Ok(Record { seq, cycle, event })
}

#[cfg(test)]
mod tests {
    use super::*;
    use t3_trace::chrome::chrome_trace_json;
    use t3_trace::Tracer;

    fn sample_records() -> Vec<Record> {
        let mut t = Tracer::new();
        t.record(
            100,
            Event::GemmStage {
                stage: 0,
                wg_start: 0,
                wg_end: 8,
                start: 10,
                end: 100,
                bytes: 4096,
                compute_cycles: 60,
            },
        );
        t.record(
            40,
            Event::DmaTriggerFire {
                chunk: 1,
                bytes: 2048,
            },
        );
        t.record(
            90,
            Event::ChunkSend {
                chunk: 1,
                bytes: 2048,
                hops: 2,
                start: 50,
                end: 90,
            },
        );
        t.record(
            120,
            Event::LlcSample {
                hits: 10,
                misses: 2,
            },
        );
        t.records().to_vec()
    }

    #[test]
    fn round_trips_through_chrome_json() {
        let records = sample_records();
        let json = chrome_trace_json(&records, 1.8);
        let back = parse_chrome_trace(&json).expect("parses");
        assert_eq!(back.len(), records.len());
        // The exporter sorts by span start: the trigger (cycle 40)
        // comes after the GEMM span (start 10) but before the send
        // (start 50). Events and cycles survive exactly.
        let mut expected: Vec<&Record> = records.iter().collect();
        expected.sort_by_key(|r| {
            let start = match r.event.phase() {
                t3_trace::Phase::Span { start, .. } => start,
                _ => r.cycle,
            };
            (start, r.seq)
        });
        for (got, want) in back.iter().zip(expected) {
            assert_eq!(got.event, want.event);
            assert_eq!(got.cycle, want.cycle);
        }
    }

    #[test]
    fn rejects_unknown_events_and_garbage() {
        assert!(parse_chrome_trace("not json").is_err());
        let alien = "{\"traceEvents\":[{\"name\":\"mystery\",\"ph\":\"X\",\"args\":{}}]}";
        assert!(parse_chrome_trace(alien).is_err());
        let missing =
            "{\"traceEvents\":[{\"name\":\"chunk_recv\",\"ph\":\"i\",\"args\":{\"cycle\":1,\"chunk\":0}}]}";
        assert!(parse_chrome_trace(missing)
            .expect_err("missing arg")
            .contains("bytes"));
    }

    #[test]
    fn serving_events_round_trip() {
        let mut t = Tracer::new();
        t.record(
            500,
            Event::ServeIteration {
                kind: 0,
                batch: 4,
                tokens: 240,
                start: 100,
                end: 500,
            },
        );
        t.record(
            900,
            Event::RequestLifecycle {
                id: 3,
                tenant: 1,
                prompt_tokens: 64,
                output_tokens: 16,
                admitted: 120,
                first_token: 500,
                start: 90,
                end: 900,
            },
        );
        let json = chrome_trace_json(t.records(), 1.8);
        let back = parse_chrome_trace(&json).expect("parses");
        assert_eq!(back.len(), 2);
        let events: Vec<Event> = back.iter().map(|r| r.event).collect();
        assert!(events.iter().any(|e| matches!(
            e,
            Event::ServeIteration {
                kind: 0,
                batch: 4,
                tokens: 240,
                start: 100,
                end: 500,
            }
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            Event::RequestLifecycle {
                id: 3,
                tenant: 1,
                admitted: 120,
                end: 900,
                ..
            }
        )));
    }

    #[test]
    fn metadata_events_are_skipped() {
        let records = sample_records();
        let json = chrome_trace_json(&records, 1.0);
        assert!(json.contains("process_name"));
        let back = parse_chrome_trace(&json).expect("parses");
        assert_eq!(back.len(), records.len());
    }
}
