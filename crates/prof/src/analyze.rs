//! Critical-path extraction over the happens-before event graph.
//!
//! The trace's span events partition simulated time into three busy
//! interval sets:
//!
//! * **C** — producer compute: merged [`Event::GemmStage`] spans;
//! * **L** — collective wire activity: merged [`Event::ChunkSend`]
//!   and [`Event::LinkBusy`] spans;
//! * **D** — trigger-to-wire latency: from each
//!   [`Event::DmaTriggerFire`] to the end of the chunk send it
//!   triggered (matched by chunk id), i.e. the Tracker→DMA→link edge
//!   of the happens-before graph.
//!
//! The quantities T3 argues about fall out of interval algebra over
//! those sets: compute cycles are `|C|`, *overlapped* collective
//! cycles `|C ∩ L|`, *exposed* collective cycles `|L \ C|` (wire
//! busy with no compute to hide it — the cost T3 exists to remove),
//! DMA/fabric-only cycles `|D \ (C ∪ L)|`, and idle the remainder.
//! The overlap fraction is `|C ∩ L| / |L|`, held as an exact permille
//! (integer math throughout: analytics obey the same no-float-cycles
//! rule, T3L003, as the simulators).

use std::fmt::Write as _;

use t3_trace::{Event, Record};

/// Cycle intervals as a sorted, disjoint set of half-open `[s, e)`
/// spans. The unit of the critical-path algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalSet {
    spans: Vec<(u64, u64)>,
}

impl IntervalSet {
    /// Builds a set from raw (possibly overlapping, unsorted, or
    /// empty) spans, merging as needed.
    pub fn new(mut raw: Vec<(u64, u64)>) -> Self {
        raw.retain(|&(s, e)| e > s);
        raw.sort_unstable();
        let mut spans: Vec<(u64, u64)> = Vec::with_capacity(raw.len());
        for (s, e) in raw {
            match spans.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => spans.push((s, e)),
            }
        }
        IntervalSet { spans }
    }

    /// Total covered cycles.
    pub fn len_cycles(&self) -> u64 {
        self.spans.iter().map(|&(s, e)| e - s).sum()
    }

    /// The merged spans, sorted and disjoint.
    pub fn spans(&self) -> &[(u64, u64)] {
        &self.spans
    }

    /// Whether `point` lies inside the set.
    pub fn contains(&self, point: u64) -> bool {
        self.spans
            .partition_point(|&(s, _)| s <= point)
            .checked_sub(1)
            .is_some_and(|i| point < self.spans[i].1)
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.spans.len() && j < other.spans.len() {
            let (a, b) = self.spans[i];
            let (c, d) = other.spans[j];
            let (lo, hi) = (a.max(c), b.min(d));
            if lo < hi {
                out.push((lo, hi));
            }
            if b <= d {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { spans: out }
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut raw = self.spans.clone();
        raw.extend_from_slice(&other.spans);
        IntervalSet::new(raw)
    }

    /// Set difference `self \ other`.
    pub fn subtract(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let mut j = 0;
        for &(s, e) in &self.spans {
            let mut cursor = s;
            while j < other.spans.len() && other.spans[j].1 <= cursor {
                j += 1;
            }
            let mut k = j;
            while k < other.spans.len() && other.spans[k].0 < e {
                let (c, d) = other.spans[k];
                if cursor < c {
                    out.push((cursor, c));
                }
                cursor = cursor.max(d);
                if d >= e {
                    break;
                }
                k += 1;
            }
            if cursor < e {
                out.push((cursor, e));
            }
        }
        IntervalSet { spans: out }
    }
}

/// What bounds a segment of the run's critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Producer GEMM compute is running (collective may be hidden
    /// under it).
    Compute,
    /// Collective wire activity with no compute over it — exposed
    /// communication.
    Collective,
    /// Only the Tracker→DMA→fabric edge is in flight.
    DmaFabric,
    /// Nothing modeled is busy.
    Idle,
}

impl SegmentKind {
    /// Stable label used in rendered output.
    pub fn label(self) -> &'static str {
        match self {
            SegmentKind::Compute => "compute",
            SegmentKind::Collective => "collective",
            SegmentKind::DmaFabric => "dma/fabric",
            SegmentKind::Idle => "idle",
        }
    }
}

/// One maximal segment `[start, end)` of the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Segment start cycle.
    pub start: u64,
    /// Segment end cycle (exclusive).
    pub end: u64,
    /// What bounds this segment.
    pub kind: SegmentKind,
}

/// The full analysis of one traced run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// Run length: the largest cycle any event touches.
    pub total_cycles: u64,
    /// Number of GEMM stage spans.
    pub gemm_stages: u64,
    /// Cycles with producer compute running, `|C|`.
    pub compute_cycles: u64,
    /// Of the compute cycles, those beyond the stages' roofline
    /// compute latency — time the producer stalled on memory.
    pub memory_stall_cycles: u64,
    /// Cycles with collective wire activity, `|L|`.
    pub collective_busy_cycles: u64,
    /// Collective cycles hidden under compute, `|C ∩ L|`.
    pub overlapped_cycles: u64,
    /// Collective cycles with nothing to hide them, `|L \ C|`.
    pub exposed_collective_cycles: u64,
    /// Cycles where only the trigger→DMA→fabric edge was in flight,
    /// `|D \ (C ∪ L)|`.
    pub dma_fabric_cycles: u64,
    /// Cycles where nothing modeled was busy.
    pub idle_cycles: u64,
    /// Critical-path segments where neither compute nor the wire is
    /// busy — pure timer/idle waits a fast-forward engine crosses in
    /// a single leap each.
    pub fast_forward_leaps: u64,
    /// Cycles those leapable segments cover (`dma_fabric_cycles +
    /// idle_cycles`): the stepped engine burns one iteration per
    /// cycle here; the event-driven engine skips straight over them.
    pub fast_forwardable_cycles: u64,
    /// `overlapped / collective_busy`, in permille (0 when no
    /// collective ran).
    pub overlap_permille: u64,
    /// Number of collective chunk sends.
    pub chunk_sends: u64,
    /// Total bytes the collective moved over the wire.
    pub collective_bytes: u64,
    /// The critical path: maximal same-kind segments covering
    /// `[0, total_cycles)`.
    pub critical_path: Vec<Segment>,
}

impl Analysis {
    /// Analyzes a run's typed records (in any order).
    pub fn from_records(records: &[Record]) -> Analysis {
        let mut compute_raw = Vec::new();
        let mut wire_raw = Vec::new();
        let mut gemm_stages = 0u64;
        let mut memory_stall_cycles = 0u64;
        let mut chunk_sends = 0u64;
        let mut collective_bytes = 0u64;
        let mut total_cycles = 0u64;

        // Trigger→send matching for the D set: fires queue up per
        // chunk id; each send of that chunk consumes the oldest fire.
        let mut fires: Vec<(u64, Vec<u64>)> = Vec::new();
        let mut dma_raw = Vec::new();

        let mut ordered: Vec<&Record> = records.iter().collect();
        ordered.sort_by_key(|r| (r.cycle, r.seq));

        for r in &ordered {
            total_cycles = total_cycles.max(r.cycle);
            match r.event {
                Event::GemmStage {
                    start,
                    end,
                    compute_cycles,
                    ..
                } => {
                    gemm_stages += 1;
                    compute_raw.push((start, end));
                    memory_stall_cycles += (end - start).saturating_sub(compute_cycles);
                    total_cycles = total_cycles.max(end);
                }
                Event::ChunkSend {
                    chunk,
                    bytes,
                    start,
                    end,
                    ..
                } => {
                    chunk_sends += 1;
                    collective_bytes += bytes;
                    wire_raw.push((start, end));
                    total_cycles = total_cycles.max(end);
                    if let Some((_, queue)) = fires.iter_mut().find(|(c, _)| *c == chunk) {
                        if let Some(fire) = (!queue.is_empty()).then(|| queue.remove(0)) {
                            dma_raw.push((fire.min(start), end));
                        }
                    }
                }
                Event::LinkBusy { start, end, .. } => {
                    wire_raw.push((start, end));
                    total_cycles = total_cycles.max(end);
                }
                Event::DmaTriggerFire { chunk, .. } => {
                    match fires.iter_mut().find(|(c, _)| *c == chunk) {
                        Some((_, queue)) => queue.push(r.cycle),
                        None => fires.push((chunk, vec![r.cycle])),
                    }
                }
                // Serving spans are scheduler-level bookkeeping over
                // the same underlying compute/wire activity; the
                // dedicated `requests` analytics pass consumes them.
                Event::ServeIteration { end, .. } | Event::RequestLifecycle { end, .. } => {
                    total_cycles = total_cycles.max(end);
                }
                Event::ChunkRecv { .. }
                | Event::TrackerUpdate { .. }
                | Event::McQueueDepth { .. }
                | Event::LlcSample { .. } => {}
            }
        }

        let compute = IntervalSet::new(compute_raw);
        let wire = IntervalSet::new(wire_raw);
        let dma = IntervalSet::new(dma_raw);

        let overlapped = compute.intersect(&wire);
        let exposed = wire.subtract(&compute);
        let busy = compute.union(&wire);
        let dma_only = dma.subtract(&busy);
        let any = busy.union(&dma);

        let collective_busy_cycles = wire.len_cycles();
        let overlapped_cycles = overlapped.len_cycles();
        let overlap_permille = (overlapped_cycles * 1000)
            .checked_div(collective_busy_cycles)
            .unwrap_or(0);

        let critical_path = critical_path(total_cycles, &compute, &wire, &dma);
        let leapable = |k: SegmentKind| matches!(k, SegmentKind::DmaFabric | SegmentKind::Idle);
        let fast_forward_leaps = critical_path.iter().filter(|s| leapable(s.kind)).count() as u64;
        let fast_forwardable_cycles = critical_path
            .iter()
            .filter(|s| leapable(s.kind))
            .map(|s| s.end - s.start)
            .sum();

        Analysis {
            total_cycles,
            gemm_stages,
            compute_cycles: compute.len_cycles(),
            memory_stall_cycles,
            collective_busy_cycles,
            overlapped_cycles,
            exposed_collective_cycles: exposed.len_cycles(),
            dma_fabric_cycles: dma_only.len_cycles(),
            idle_cycles: total_cycles - any.len_cycles(),
            fast_forward_leaps,
            fast_forwardable_cycles,
            overlap_permille,
            chunk_sends,
            collective_bytes,
            critical_path,
        }
    }
}

/// Partitions `[0, total)` into maximal segments, labeling each
/// elementary interval by priority: compute > exposed collective >
/// DMA/fabric > idle.
fn critical_path(
    total: u64,
    compute: &IntervalSet,
    wire: &IntervalSet,
    dma: &IntervalSet,
) -> Vec<Segment> {
    if total == 0 {
        return Vec::new();
    }
    let mut cuts = vec![0, total];
    for set in [compute, wire, dma] {
        for &(s, e) in set.spans() {
            cuts.push(s.min(total));
            cuts.push(e.min(total));
        }
    }
    cuts.sort_unstable();
    cuts.dedup();

    let mut out: Vec<Segment> = Vec::new();
    for w in cuts.windows(2) {
        let (start, end) = (w[0], w[1]);
        // Membership is constant over an elementary interval, so
        // testing the left endpoint classifies the whole of it.
        let kind = if compute.contains(start) {
            SegmentKind::Compute
        } else if wire.contains(start) {
            SegmentKind::Collective
        } else if dma.contains(start) {
            SegmentKind::DmaFabric
        } else {
            SegmentKind::Idle
        };
        match out.last_mut() {
            Some(last) if last.kind == kind && last.end == start => last.end = end,
            _ => out.push(Segment { start, end, kind }),
        }
    }
    out
}

/// Renders `numer / denom` as a percentage with one decimal place,
/// using only integer arithmetic.
pub fn percent(numer: u64, denom: u64) -> String {
    if denom == 0 {
        return "-".to_string();
    }
    let permille = numer * 1000 / denom;
    format!("{}.{}%", permille / 10, permille % 10)
}

/// At most this many critical-path segments are rendered; the rest
/// are summarised in an explicit trailing count.
pub const MAX_RENDERED_SEGMENTS: usize = 32;

/// Renders the analysis as the stable text form `t3-prof analyze`
/// prints (pinned byte-for-byte by golden tests).
pub fn render(a: &Analysis) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "total cycles              : {}", a.total_cycles);
    let _ = writeln!(s, "gemm stages               : {}", a.gemm_stages);
    let _ = writeln!(
        s,
        "compute cycles            : {} ({} of total)",
        a.compute_cycles,
        percent(a.compute_cycles, a.total_cycles)
    );
    let _ = writeln!(s, "  memory-stall cycles     : {}", a.memory_stall_cycles);
    let _ = writeln!(
        s,
        "collective busy cycles    : {} ({} sends, {} bytes)",
        a.collective_busy_cycles, a.chunk_sends, a.collective_bytes
    );
    let _ = writeln!(s, "  overlapped with compute : {}", a.overlapped_cycles);
    let _ = writeln!(
        s,
        "  exposed                 : {} ({} of total)",
        a.exposed_collective_cycles,
        percent(a.exposed_collective_cycles, a.total_cycles)
    );
    let _ = writeln!(s, "dma/fabric-only cycles    : {}", a.dma_fabric_cycles);
    let _ = writeln!(s, "idle cycles               : {}", a.idle_cycles);
    let _ = writeln!(
        s,
        "fast-forward leaps        : {} ({} skippable cycles, {} of total)",
        a.fast_forward_leaps,
        a.fast_forwardable_cycles,
        percent(a.fast_forwardable_cycles, a.total_cycles)
    );
    let _ = writeln!(
        s,
        "overlap fraction          : {}.{}%",
        a.overlap_permille / 10,
        a.overlap_permille % 10
    );
    let _ = writeln!(
        s,
        "critical path             : {} segments",
        a.critical_path.len()
    );
    for seg in a.critical_path.iter().take(MAX_RENDERED_SEGMENTS) {
        let _ = writeln!(
            s,
            "  [{}..{}) {} ({} cycles)",
            seg.start,
            seg.end,
            seg.kind.label(),
            seg.end - seg.start
        );
    }
    if a.critical_path.len() > MAX_RENDERED_SEGMENTS {
        let _ = writeln!(
            s,
            "  ... {} more segments",
            a.critical_path.len() - MAX_RENDERED_SEGMENTS
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(spans: &[(u64, u64)]) -> IntervalSet {
        IntervalSet::new(spans.to_vec())
    }

    #[test]
    fn interval_set_merges_and_measures() {
        let s = set(&[(5, 10), (0, 3), (8, 12), (12, 12)]);
        assert_eq!(s.spans(), &[(0, 3), (5, 12)]);
        assert_eq!(s.len_cycles(), 10);
        assert!(s.contains(0) && s.contains(11) && !s.contains(3) && !s.contains(12));
    }

    #[test]
    fn interval_algebra_holds() {
        let a = set(&[(0, 10), (20, 30)]);
        let b = set(&[(5, 25)]);
        assert_eq!(a.intersect(&b).spans(), &[(5, 10), (20, 25)]);
        assert_eq!(a.subtract(&b).spans(), &[(0, 5), (25, 30)]);
        assert_eq!(b.subtract(&a).spans(), &[(10, 20)]);
        assert_eq!(a.union(&b).spans(), &[(0, 30)]);
        // |A| = |A∩B| + |A\B| for any A, B.
        assert_eq!(
            a.len_cycles(),
            a.intersect(&b).len_cycles() + a.subtract(&b).len_cycles()
        );
    }

    fn synthetic_records() -> Vec<Record> {
        // Compute [0,100); a hidden send [60,100); a trigger at 105
        // whose send runs [120,140); run ends at an LLC sample at
        // 150. So: overlapped = [60,100), exposed = [120,140),
        // dma-only = [105,120), idle = [100,105) and [140,150).
        let events = [
            (
                100,
                Event::GemmStage {
                    stage: 0,
                    wg_start: 0,
                    wg_end: 8,
                    start: 0,
                    end: 100,
                    bytes: 4096,
                    compute_cycles: 90,
                },
            ),
            (
                100,
                Event::ChunkSend {
                    chunk: 1,
                    bytes: 2048,
                    hops: 1,
                    start: 60,
                    end: 100,
                },
            ),
            (
                105,
                Event::DmaTriggerFire {
                    chunk: 0,
                    bytes: 1024,
                },
            ),
            (
                140,
                Event::ChunkSend {
                    chunk: 0,
                    bytes: 1024,
                    hops: 1,
                    start: 120,
                    end: 140,
                },
            ),
            (150, Event::LlcSample { hits: 1, misses: 0 }),
        ];
        events
            .iter()
            .enumerate()
            .map(|(i, &(cycle, event))| Record {
                seq: i as u64,
                cycle,
                event,
            })
            .collect()
    }

    #[test]
    fn analysis_partitions_the_run() {
        let a = Analysis::from_records(&synthetic_records());
        assert_eq!(a.total_cycles, 150);
        assert_eq!(a.compute_cycles, 100);
        assert_eq!(a.memory_stall_cycles, 10);
        assert_eq!(a.collective_busy_cycles, 60);
        assert_eq!(a.overlapped_cycles, 40);
        assert_eq!(a.exposed_collective_cycles, 20);
        assert_eq!(a.dma_fabric_cycles, 15);
        assert_eq!(a.idle_cycles, 15);
        // Leapable waits: idle [100,105), dma-only [105,120), idle
        // [140,150) — three leaps over 30 timer-bound cycles.
        assert_eq!(a.fast_forward_leaps, 3);
        assert_eq!(a.fast_forwardable_cycles, 30);
        assert_eq!(a.overlap_permille, 666);
        // The labeled partition covers the run exactly.
        assert_eq!(a.critical_path.first().map(|s| s.start), Some(0));
        assert_eq!(a.critical_path.last().map(|s| s.end), Some(150));
        for w in a.critical_path.windows(2) {
            assert_eq!(w[0].end, w[1].start);
            assert_ne!(w[0].kind, w[1].kind, "adjacent segments must merge");
        }
        let labeled: u64 = a.critical_path.iter().map(|s| s.end - s.start).sum();
        assert_eq!(labeled, a.total_cycles);
    }

    #[test]
    fn render_is_stable_and_integer_only() {
        let a = Analysis::from_records(&synthetic_records());
        let text = render(&a);
        assert!(text.contains("overlap fraction          : 66.6%"));
        assert!(
            text.contains("fast-forward leaps        : 3 (30 skippable cycles, 20.0% of total)")
        );
        assert!(text.contains("[105..120) dma/fabric (15 cycles)"));
        assert!(text.contains("[140..150) idle (10 cycles)"));
    }

    #[test]
    fn empty_trace_analyzes_to_zeroes() {
        let a = Analysis::from_records(&[]);
        assert_eq!(a.total_cycles, 0);
        assert_eq!(a.overlap_permille, 0);
        assert!(a.critical_path.is_empty());
    }
}
