//! A minimal JSON pull parser for the two artifact formats t3-prof
//! consumes: Chrome trace-event files (`t3-trace::chrome`) and bench
//! reports (`t3-runtime::report`).
//!
//! Like the rest of the workspace this is hand-rolled (offline build,
//! no serde). Unlike the writers, the parser must *skip* values it
//! does not care about — trace files carry float `ts`/`dur` fields
//! and string metadata — so alongside the typed readers there is a
//! [`Parser::skip_value`] that consumes any well-formed JSON value.

/// A pull parser over a JSON text.
#[derive(Debug)]
pub struct Parser<'a> {
    rest: &'a str,
}

impl<'a> Parser<'a> {
    /// Starts parsing at the beginning of `text`.
    pub fn new(text: &'a str) -> Self {
        Parser { rest: text }
    }

    /// Skips whitespace.
    pub fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    /// The next character, without consuming it.
    pub fn peek(&self) -> Option<char> {
        self.rest.chars().next()
    }

    /// Consumes and returns the next character.
    pub fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.rest = &self.rest[c.len_utf8()..];
        Some(c)
    }

    /// Consumes the next character iff it is `want`.
    pub fn expect(&mut self, want: char) -> Option<()> {
        (self.bump()? == want).then_some(())
    }

    /// Consumes `want` if it is next; returns whether it did.
    pub fn eat(&mut self, want: char) -> bool {
        if self.peek() == Some(want) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Reads an unsigned integer.
    pub fn number(&mut self) -> Option<u64> {
        let digits: String = self.rest.chars().take_while(char::is_ascii_digit).collect();
        if digits.is_empty() {
            return None;
        }
        self.rest = &self.rest[digits.len()..];
        digits.parse().ok()
    }

    /// Reads a string literal, resolving escapes.
    pub fn string(&mut self) -> Option<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Some(out),
                '\\' => match self.bump()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let code: String = (0..4).map_while(|_| self.bump()).collect();
                        let v = u32::from_str_radix(&code, 16).ok()?;
                        out.push(char::from_u32(v)?);
                    }
                    _ => return None,
                },
                c => out.push(c),
            }
        }
    }

    /// Consumes any well-formed JSON value (object, array, string,
    /// number — including floats and signs — or keyword) without
    /// interpreting it.
    pub fn skip_value(&mut self) -> Option<()> {
        self.skip_ws();
        match self.peek()? {
            '{' => {
                self.bump();
                loop {
                    self.skip_ws();
                    if self.eat('}') {
                        return Some(());
                    }
                    self.string()?;
                    self.skip_ws();
                    self.expect(':')?;
                    self.skip_value()?;
                    self.skip_ws();
                    self.eat(',');
                }
            }
            '[' => {
                self.bump();
                loop {
                    self.skip_ws();
                    if self.eat(']') {
                        return Some(());
                    }
                    self.skip_value()?;
                    self.skip_ws();
                    self.eat(',');
                }
            }
            '"' => self.string().map(|_| ()),
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                let len = self
                    .rest
                    .find(|c: char| {
                        !(c.is_ascii_digit()
                            || c == '-'
                            || c == '+'
                            || c == '.'
                            || c == 'e'
                            || c == 'E')
                    })
                    .unwrap_or(self.rest.len());
                if len == 0 {
                    return None;
                }
                self.rest = &self.rest[len..];
                Some(())
            }
            _ => {
                for kw in ["true", "false", "null"] {
                    if let Some(rest) = self.rest.strip_prefix(kw) {
                        self.rest = rest;
                        return Some(());
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_and_strings_parse() {
        let mut p = Parser::new("42 \"he\\nllo\"");
        assert_eq!(p.number(), Some(42));
        p.skip_ws();
        assert_eq!(p.string().as_deref(), Some("he\nllo"));
    }

    #[test]
    fn skip_value_consumes_nested_structures() {
        let mut p = Parser::new("{\"a\": [1, -2.5e3, \"x\"], \"b\": {\"c\": null}} 7");
        assert!(p.skip_value().is_some());
        p.skip_ws();
        assert_eq!(p.number(), Some(7));
    }

    #[test]
    fn skip_value_rejects_garbage() {
        assert!(Parser::new("nonsense").skip_value().is_none());
        assert!(Parser::new("").skip_value().is_none());
    }
}
