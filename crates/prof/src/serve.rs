//! Per-request serving analytics: reconstructs request lifecycles
//! from a trace and summarises tail latency.
//!
//! A traced serving run (`t3-serve`) emits one
//! [`Event::RequestLifecycle`] span per request and one
//! [`Event::ServeIteration`] span per engine iteration. This pass
//! rebuilds the exact [`RequestOutcome`]s the engine produced — the
//! round trip `engine → chrome JSON → outcomes` is lossless — and
//! renders the canonical request log plus nearest-rank p50/p95/p99
//! summaries, so a trace file alone is enough to re-derive every
//! serving headline number.

use std::fmt::Write as _;

use t3_serve::engine::ITER_KIND_PREFILL;
use t3_serve::request::{request_log, LatencySummary, Request, RequestOutcome};
use t3_trace::{Event, Record};

/// Aggregate iteration activity of one traced serving run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IterationStats {
    /// Prefill iterations observed.
    pub prefill_iterations: u64,
    /// Decode iterations observed.
    pub decode_iterations: u64,
    /// Total cycles the engine spent inside iterations.
    pub busy_cycles: u64,
    /// Tokens processed across all iterations.
    pub tokens: u64,
}

/// Rebuilds every request's lifecycle from a trace, in canonical
/// `(tenant, id)` order.
pub fn request_outcomes(records: &[Record]) -> Vec<RequestOutcome> {
    let mut out: Vec<RequestOutcome> = records
        .iter()
        .filter_map(|r| match r.event {
            Event::RequestLifecycle {
                id,
                tenant,
                prompt_tokens,
                output_tokens,
                admitted,
                first_token,
                start,
                end,
            } => Some(RequestOutcome {
                request: Request {
                    id,
                    tenant,
                    arrival: start,
                    prompt_tokens,
                    output_tokens,
                },
                admitted,
                first_token,
                completed: end,
            }),
            _ => None,
        })
        .collect();
    out.sort_by_key(|o| (o.request.tenant, o.request.id));
    out
}

/// Sums iteration spans from a trace.
pub fn iteration_stats(records: &[Record]) -> IterationStats {
    let mut stats = IterationStats::default();
    for r in records {
        if let Event::ServeIteration {
            kind,
            tokens,
            start,
            end,
            ..
        } = r.event
        {
            if kind == ITER_KIND_PREFILL {
                stats.prefill_iterations += 1;
            } else {
                stats.decode_iterations += 1;
            }
            stats.busy_cycles += end - start;
            stats.tokens += tokens;
        }
    }
    stats
}

/// Renders the stable text `t3-prof requests` prints: the canonical
/// request log, iteration totals, and exact-integer latency
/// percentiles.
pub fn render(records: &[Record]) -> String {
    let outcomes = request_outcomes(records);
    let stats = iteration_stats(records);
    let mut s = request_log(&outcomes);
    let _ = writeln!(
        s,
        "iterations: {} prefill, {} decode, {} busy cycles, {} tokens",
        stats.prefill_iterations, stats.decode_iterations, stats.busy_cycles, stats.tokens
    );
    if outcomes.is_empty() {
        s.push_str("no requests in trace\n");
        return s;
    }
    let summarise = |label: &str, samples: &[u64], s: &mut String| {
        let sum = LatencySummary::of(samples);
        let _ = writeln!(
            s,
            "{label}: p50={} p95={} p99={} max={}",
            sum.p50, sum.p95, sum.p99, sum.max
        );
    };
    let ttft: Vec<u64> = outcomes.iter().map(|o| o.ttft_cycles()).collect();
    let e2e: Vec<u64> = outcomes.iter().map(|o| o.e2e_cycles()).collect();
    let queue: Vec<u64> = outcomes.iter().map(|o| o.queue_cycles()).collect();
    summarise("queue (cycles)", &queue, &mut s);
    summarise("ttft  (cycles)", &ttft, &mut s);
    summarise("e2e   (cycles)", &e2e, &mut s);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use t3_serve::engine::ITER_KIND_DECODE;

    fn lifecycle(id: u64, start: u64) -> Record {
        Record {
            seq: id,
            cycle: start + 300,
            event: Event::RequestLifecycle {
                id,
                tenant: 0,
                prompt_tokens: 64,
                output_tokens: 8,
                admitted: start + 10,
                first_token: start + 100,
                start,
                end: start + 300,
            },
        }
    }

    fn iteration(kind: u64, start: u64) -> Record {
        Record {
            seq: 100 + start,
            cycle: start + 50,
            event: Event::ServeIteration {
                kind,
                batch: 4,
                tokens: 4,
                start,
                end: start + 50,
            },
        }
    }

    #[test]
    fn outcomes_round_trip_and_sort() {
        let records = vec![lifecycle(1, 500), lifecycle(0, 0)];
        let out = request_outcomes(&records);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].request.id, 0);
        assert_eq!(out[1].request.id, 1);
        assert_eq!(out[1].ttft_cycles(), 100);
        assert_eq!(out[1].e2e_cycles(), 300);
    }

    #[test]
    fn iteration_stats_split_by_kind() {
        let records = vec![
            iteration(ITER_KIND_PREFILL, 0),
            iteration(ITER_KIND_DECODE, 100),
            iteration(ITER_KIND_DECODE, 200),
        ];
        let stats = iteration_stats(&records);
        assert_eq!(stats.prefill_iterations, 1);
        assert_eq!(stats.decode_iterations, 2);
        assert_eq!(stats.busy_cycles, 150);
        assert_eq!(stats.tokens, 12);
    }

    #[test]
    fn render_is_canonical() {
        let records = vec![lifecycle(0, 0), iteration(ITER_KIND_PREFILL, 0)];
        let text = render(&records);
        assert!(text.starts_with(
            "req t0#0000 prompt=64 out=8 arrival=0 admitted=10 first_token=100 completed=300\n"
        ));
        assert!(text.contains("iterations: 1 prefill, 0 decode, 50 busy cycles, 4 tokens"));
        assert!(text.contains("ttft  (cycles): p50=100 p95=100 p99=100 max=100"));
        assert!(text.contains("e2e   (cycles): p50=300"));
    }

    #[test]
    fn empty_trace_renders_gracefully() {
        let text = render(&[]);
        assert!(text.contains("no requests in trace"));
    }
}
