//! # t3-prof — trace analytics and perf gates for the T3 simulator
//!
//! The consumption side of the workspace's observability: where
//! `t3-trace` *produces* event streams and `t3-runtime` *produces*
//! bench reports, this crate turns both into the numbers T3's
//! evaluation argues about.
//!
//! * [`load`] — parses an exported Chrome trace back into typed
//!   [`t3_trace::Record`]s, losslessly (the exporter embeds exact
//!   integer cycles in each event's args for exactly this purpose).
//! * [`analyze`] — builds busy-interval sets from the happens-before
//!   event graph and extracts the critical path: compute vs.
//!   exposed-collective vs. DMA/fabric vs. idle cycles, and the
//!   overlap fraction, all in integer arithmetic.
//! * [`collective`] — per-collective structured records (op,
//!   schedule, bytes, hops, trigger, wire window, exposed cycles)
//!   with a stable one-line [`collective::CollectiveRecord::describe`]
//!   canonical form for golden tests.
//! * [`mod@check`] — the perf-trajectory regression gate: diffs a fresh
//!   `figures --report` run against a checked-in `BENCH_*.json`
//!   baseline with per-job tolerance bands and a machine-readable
//!   verdict.
//! * [`serve`] — per-request serving analytics: rebuilds exact
//!   request lifecycles from `t3-serve` traces and summarises queue /
//!   time-to-first-token / end-to-end tail latency.
//!
//! The `t3-prof` binary exposes these as `analyze <trace>`,
//! `collectives <trace>`, `requests <trace>`, and
//! `check <report> <baseline>`.
//!
//! ```
//! use t3_prof::analyze::Analysis;
//! use t3_trace::{Event, Record};
//!
//! let records = [Record {
//!     seq: 0,
//!     cycle: 100,
//!     event: Event::GemmStage {
//!         stage: 0,
//!         wg_start: 0,
//!         wg_end: 8,
//!         start: 0,
//!         end: 100,
//!         bytes: 4096,
//!         compute_cycles: 80,
//!     },
//! }];
//! let a = Analysis::from_records(&records);
//! assert_eq!((a.total_cycles, a.compute_cycles), (100, 100));
//! assert_eq!(a.memory_stall_cycles, 20);
//! ```

pub mod analyze;
pub mod check;
pub mod collective;
pub mod json;
pub mod load;
pub mod serve;

pub use analyze::{Analysis, IntervalSet, Segment, SegmentKind};
pub use check::{check, parse_report, GateStatus, GateVerdict, JobCycles};
pub use collective::{collective_records, CollectiveRecord};
pub use load::parse_chrome_trace;
pub use serve::{iteration_stats, request_outcomes, IterationStats};
