//! Property tests for the tiled-GEMM grid: partitions, bounds, and
//! the K-slicing invariant of Figure 5, for arbitrary shapes drawn
//! from a seeded deterministic PRNG.

use t3_gpu::gemm::{GemmGrid, GemmShape};
use t3_sim::config::SystemConfig;
use t3_sim::rng::SplitMix64;

fn gpu(tile: u32, cus: u32) -> t3_sim::config::GpuConfig {
    let mut g = SystemConfig::paper_default().gpu;
    g.tile_dim = tile;
    g.num_cus = cus;
    g
}

/// Stages partition the WGs; WG tiles partition the output bytes.
#[test]
fn partitions_are_exact() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed);
        let m = rng.gen_range(1, 2_000);
        let n = rng.gen_range(1, 2_000);
        let k = rng.gen_range(1, 64);
        let tile = rng.pick(&[16u32, 32, 64, 128]);
        let cus = rng.pick(&[4u32, 40, 80]);
        let grid = GemmGrid::new(&gpu(tile, cus), GemmShape::new(m, n, k));
        let mut covered = 0;
        for stage in 0..grid.num_stages() {
            let (s, e) = grid.stage_wgs(stage);
            assert_eq!(s, covered, "seed {seed}");
            assert!(e > s, "seed {seed}");
            assert!(e - s <= grid.concurrent_wgs(), "seed {seed}");
            covered = e;
        }
        assert_eq!(covered, grid.num_wgs(), "seed {seed}");
        let total: u64 = (0..grid.num_wgs()).map(|w| grid.wg_output_bytes(w)).sum();
        assert_eq!(total, grid.shape().output_bytes(), "seed {seed}");
    }
}

/// K-slicing (Figure 5): output structure is invariant; only per-WG
/// FLOPs shrink.
#[test]
fn k_slicing_invariant() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed);
        let m = rng.gen_range(64, 1_024);
        let n = rng.gen_range(64, 1_024);
        let tp = rng.pick(&[2u64, 4, 8, 16]);
        let k = rng.gen_range(tp.max(64), 4_096);
        let cfg = gpu(128, 80);
        let full = GemmGrid::new(&cfg, GemmShape::new(m, n, k));
        let sliced = GemmGrid::new(&cfg, GemmShape::new(m, n, k).tp_sliced(tp));
        assert_eq!(full.num_wgs(), sliced.num_wgs(), "seed {seed}");
        assert_eq!(full.num_stages(), sliced.num_stages(), "seed {seed}");
        assert_eq!(full.wf_tile_elems(), sliced.wf_tile_elems(), "seed {seed}");
        assert!(
            sliced.stage_wg_flops(0) <= full.stage_wg_flops(0),
            "seed {seed}"
        );
    }
}

/// Every stage read region stays within the A/B address ranges.
#[test]
fn read_regions_in_bounds() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::new(seed);
        let m = rng.gen_range(1, 1_500);
        let n = rng.gen_range(1, 1_500);
        let k = rng.gen_range(1, 128);
        let tile = rng.pick(&[32u32, 128]);
        let grid = GemmGrid::new(&gpu(tile, 80), GemmShape::new(m, n, k));
        for stage in 0..grid.num_stages() {
            for (addr, bytes) in grid.stage_read_regions(stage) {
                assert!(bytes > 0, "seed {seed}");
                let end = addr + bytes;
                let in_a = addr >= grid.a_base() && end <= grid.b_base();
                let in_b = addr >= grid.b_base() && end <= grid.c_base();
                assert!(
                    in_a || in_b,
                    "seed {seed}: region [{addr}, {end}) straddles operands"
                );
            }
        }
    }
}

/// Output regions are contiguous, disjoint, and cover C exactly.
#[test]
fn output_regions_tile_c() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::new(seed);
        let m = rng.gen_range(1, 800);
        let n = rng.gen_range(1, 800);
        let tile = rng.pick(&[16u32, 64]);
        let grid = GemmGrid::new(&gpu(tile, 80), GemmShape::new(m, n, 8));
        let mut next = grid.c_base();
        for wg in 0..grid.num_wgs() {
            let (addr, len) = grid.wg_output_region(wg);
            assert_eq!(addr, next, "seed {seed}");
            next = addr + len;
        }
        assert_eq!(
            next,
            grid.c_base() + grid.shape().output_bytes(),
            "seed {seed}"
        );
    }
}

/// Chunk bounds over WGs partition the grid for any chunk count.
#[test]
fn chunk_bounds_partition_wgs() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed);
        let m = rng.gen_range(128, 2_000);
        let n = rng.gen_range(128, 2_000);
        let chunks = rng.gen_range(2, 33);
        let grid = GemmGrid::new(&gpu(128, 80), GemmShape::new(m, n, 16));
        if grid.num_wgs() < chunks {
            continue;
        }
        let mut covered = 0;
        for i in 0..chunks {
            let (s, e) = grid.chunk_wg_bounds(chunks, i);
            assert_eq!(s, covered, "seed {seed}");
            covered = e;
        }
        assert_eq!(covered, grid.num_wgs(), "seed {seed}");
    }
}
