//! Property tests for the tiled-GEMM grid: partitions, bounds, and
//! the K-slicing invariant of Figure 5, for arbitrary shapes.

use proptest::prelude::*;
use t3_gpu::gemm::{GemmGrid, GemmShape};
use t3_sim::config::SystemConfig;

fn gpu(tile: u32, cus: u32) -> t3_sim::config::GpuConfig {
    let mut g = SystemConfig::paper_default().gpu;
    g.tile_dim = tile;
    g.num_cus = cus;
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Stages partition the WGs; WG tiles partition the output bytes.
    #[test]
    fn partitions_are_exact(
        m in 1u64..2_000,
        n in 1u64..2_000,
        k in 1u64..64,
        tile in prop::sample::select(vec![16u32, 32, 64, 128]),
        cus in prop::sample::select(vec![4u32, 40, 80]),
    ) {
        let grid = GemmGrid::new(&gpu(tile, cus), GemmShape::new(m, n, k));
        let mut covered = 0;
        for stage in 0..grid.num_stages() {
            let (s, e) = grid.stage_wgs(stage);
            prop_assert_eq!(s, covered);
            prop_assert!(e > s);
            prop_assert!(e - s <= grid.concurrent_wgs());
            covered = e;
        }
        prop_assert_eq!(covered, grid.num_wgs());
        let total: u64 = (0..grid.num_wgs()).map(|w| grid.wg_output_bytes(w)).sum();
        prop_assert_eq!(total, grid.shape().output_bytes());
    }

    /// K-slicing (Figure 5): output structure is invariant; only
    /// per-WG FLOPs shrink.
    #[test]
    fn k_slicing_invariant(
        m in 64u64..1_024,
        n in 64u64..1_024,
        k in 64u64..4_096,
        tp in prop::sample::select(vec![2u64, 4, 8, 16]),
    ) {
        prop_assume!(k >= tp);
        let cfg = gpu(128, 80);
        let full = GemmGrid::new(&cfg, GemmShape::new(m, n, k));
        let sliced = GemmGrid::new(&cfg, GemmShape::new(m, n, k).tp_sliced(tp));
        prop_assert_eq!(full.num_wgs(), sliced.num_wgs());
        prop_assert_eq!(full.num_stages(), sliced.num_stages());
        prop_assert_eq!(full.wf_tile_elems(), sliced.wf_tile_elems());
        prop_assert!(sliced.stage_wg_flops(0) <= full.stage_wg_flops(0));
    }

    /// Every stage read region stays within the A/B address ranges,
    /// and the regions of stage 0 exactly cover the rows/columns its
    /// WGs need.
    #[test]
    fn read_regions_in_bounds(
        m in 1u64..1_500,
        n in 1u64..1_500,
        k in 1u64..128,
        tile in prop::sample::select(vec![32u32, 128]),
    ) {
        let grid = GemmGrid::new(&gpu(tile, 80), GemmShape::new(m, n, k));
        for stage in 0..grid.num_stages() {
            for (addr, bytes) in grid.stage_read_regions(stage) {
                prop_assert!(bytes > 0);
                let end = addr + bytes;
                let in_a = addr >= grid.a_base() && end <= grid.b_base();
                let in_b = addr >= grid.b_base() && end <= grid.c_base();
                prop_assert!(in_a || in_b, "region [{addr}, {end}) straddles operands");
            }
        }
    }

    /// Output regions are contiguous, disjoint, and cover C exactly.
    #[test]
    fn output_regions_tile_c(
        m in 1u64..800,
        n in 1u64..800,
        tile in prop::sample::select(vec![16u32, 64]),
    ) {
        let grid = GemmGrid::new(&gpu(tile, 80), GemmShape::new(m, n, 8));
        let mut next = grid.c_base();
        for wg in 0..grid.num_wgs() {
            let (addr, len) = grid.wg_output_region(wg);
            prop_assert_eq!(addr, next);
            next = addr + len;
        }
        prop_assert_eq!(next, grid.c_base() + grid.shape().output_bytes());
    }

    /// Chunk bounds over WGs partition the grid for any chunk count.
    #[test]
    fn chunk_bounds_partition_wgs(
        m in 128u64..2_000,
        n in 128u64..2_000,
        chunks in 2u64..33,
    ) {
        let grid = GemmGrid::new(&gpu(128, 80), GemmShape::new(m, n, 16));
        prop_assume!(grid.num_wgs() >= chunks);
        let mut covered = 0;
        for i in 0..chunks {
            let (s, e) = grid.chunk_wg_bounds(chunks, i);
            prop_assert_eq!(s, covered);
            covered = e;
        }
        prop_assert_eq!(covered, grid.num_wgs());
    }
}
