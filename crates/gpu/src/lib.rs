//! GPU compute model for the T3 reproduction.
//!
//! Stands in for the paper's Accel-Sim GPU model (Table 1):
//!
//! * [`gemm`] — shapes and the tiled-GEMM grid decomposition the whole
//!   paper rests on (Section 2.5 / Figure 5): a workgroup per output
//!   tile, wavefronts per workgroup, and execution in *stages* of
//!   however many workgroups the CUs can hold. Tensor-parallel slicing
//!   cuts the K dimension and leaves the output/stage structure intact.
//! * [`engine`] — a cycle-stepped GEMM execution engine: per stage, a
//!   read phase filtered through the LLC, a compute latency, then a
//!   bursty write phase emitted to the caller (who routes the stores —
//!   locally, remotely, or as near-memory updates). Reproduces the
//!   phase pattern of Figure 17(a).
//! * [`collective`] — the timing model of baseline, CU-executed ring
//!   collectives (reduce-scatter / all-gather / all-reduce), bounded by
//!   link, CU-processing, or DRAM rate per step; this is the model the
//!   CU-sharing study (Figure 6) exercises.

pub mod collective;
pub mod engine;
pub mod gemm;
