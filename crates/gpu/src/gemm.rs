//! GEMM shapes and tiled-grid decomposition (Section 2.5, Figure 5).
//!
//! Everything T3 does hangs off one structural property of library
//! GEMMs: each workgroup (WG) produces one complete output tile, WGs
//! execute in *stages* of however many fit on the CUs, and slicing the
//! GEMM in the K (dot-product) dimension for tensor parallelism leaves
//! the output size, WG count, and stage count unchanged — only the
//! per-WG compute shrinks. [`GemmGrid`] encodes that decomposition and
//! the output address layout; both the timing engine and the fused T3
//! engine consume it.

use t3_sim::config::GpuConfig;
use t3_sim::Bytes;

/// Dimensions and element size of one GEMM: `C[M,N] = A[M,K] x B[K,N]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of the output (tokens for Transformer layers).
    pub m: u64,
    /// Columns of the output.
    pub n: u64,
    /// The dot-product dimension (sliced by tensor parallelism).
    pub k: u64,
    /// Bytes per element (2 for the paper's FP16 runs).
    pub elem_bytes: u64,
    /// Whether the inputs are transposed in memory (forward-pass GEMMs
    /// in MLPerf BERT); modelled as slightly less efficient reads.
    pub transposed: bool,
}

impl GemmShape {
    /// Creates a non-transposed FP16 GEMM shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(m: u64, n: u64, k: u64) -> Self {
        assert!(m > 0 && n > 0 && k > 0, "GEMM dimensions must be positive");
        GemmShape {
            m,
            n,
            k,
            elem_bytes: 2,
            transposed: false,
        }
    }

    /// Marks the inputs as transposed.
    pub fn with_transposed(mut self, transposed: bool) -> Self {
        self.transposed = transposed;
        self
    }

    /// Tensor-parallel slicing in the K dimension (Figure 5): K shrinks
    /// `tp`-fold (rounded up), output unchanged, so the result needs an
    /// all-reduce.
    ///
    /// # Panics
    ///
    /// Panics if `tp` is zero or exceeds K.
    pub fn tp_sliced(mut self, tp: u64) -> Self {
        assert!(tp > 0, "TP degree must be positive");
        assert!(tp <= self.k, "cannot slice K={} {tp} ways", self.k);
        self.k = self.k.div_ceil(tp);
        self
    }

    /// Multiply-accumulate FLOPs (2·M·N·K).
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64
    }

    /// Size of the A operand in bytes.
    pub fn a_bytes(&self) -> Bytes {
        self.m * self.k * self.elem_bytes
    }

    /// Size of the B operand in bytes.
    pub fn b_bytes(&self) -> Bytes {
        self.k * self.n * self.elem_bytes
    }

    /// Size of the output in bytes.
    pub fn output_bytes(&self) -> Bytes {
        self.m * self.n * self.elem_bytes
    }
}

/// One workgroup's output tile: grid position and actual extent
/// (edge tiles are clipped to the output bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WgTile {
    /// Tile-row index in the grid.
    pub row: u64,
    /// Tile-column index in the grid.
    pub col: u64,
    /// Rows of output this WG produces.
    pub height: u64,
    /// Columns of output this WG produces.
    pub width: u64,
}

/// The tiled execution grid of one GEMM on one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GemmGrid {
    shape: GemmShape,
    tile: u64,
    wfs_per_wg: u32,
    concurrent_wgs: u64,
    tiles_m: u64,
    tiles_n: u64,
}

impl GemmGrid {
    /// Builds the grid for `shape` on the GPU described by `cfg`.
    pub fn new(cfg: &GpuConfig, shape: GemmShape) -> Self {
        let tile = cfg.tile_dim as u64;
        GemmGrid {
            shape,
            tile,
            wfs_per_wg: cfg.wfs_per_wg,
            concurrent_wgs: cfg.concurrent_wgs() as u64,
            tiles_m: shape.m.div_ceil(tile),
            tiles_n: shape.n.div_ceil(tile),
        }
    }

    /// The GEMM's shape.
    pub fn shape(&self) -> &GemmShape {
        &self.shape
    }

    /// Output-tile edge length in elements.
    pub fn tile_dim(&self) -> u64 {
        self.tile
    }

    /// Total workgroups in the grid.
    pub fn num_wgs(&self) -> u64 {
        self.tiles_m * self.tiles_n
    }

    /// Wavefronts per workgroup.
    pub fn wfs_per_wg(&self) -> u32 {
        self.wfs_per_wg
    }

    /// Total wavefronts in the grid.
    pub fn num_wfs(&self) -> u64 {
        self.num_wgs() * self.wfs_per_wg as u64
    }

    /// Workgroups that execute concurrently (one stage's width).
    pub fn concurrent_wgs(&self) -> u64 {
        self.concurrent_wgs
    }

    /// Number of execution stages (Section 2.5).
    pub fn num_stages(&self) -> u64 {
        self.num_wgs().div_ceil(self.concurrent_wgs)
    }

    /// Workgroup-id range `[start, end)` executing in `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= num_stages()`.
    pub fn stage_wgs(&self, stage: u64) -> (u64, u64) {
        assert!(stage < self.num_stages(), "stage out of range");
        let start = stage * self.concurrent_wgs;
        let end = (start + self.concurrent_wgs).min(self.num_wgs());
        (start, end)
    }

    /// The output tile of workgroup `wg` (row-major tile order, as
    /// BLAS kernels schedule).
    ///
    /// # Panics
    ///
    /// Panics if `wg >= num_wgs()`.
    pub fn wg_tile(&self, wg: u64) -> WgTile {
        assert!(wg < self.num_wgs(), "wg out of range");
        let row = wg / self.tiles_n;
        let col = wg % self.tiles_n;
        WgTile {
            row,
            col,
            height: (self.shape.m - row * self.tile).min(self.tile),
            width: (self.shape.n - col * self.tile).min(self.tile),
        }
    }

    /// Output bytes produced by workgroup `wg`.
    pub fn wg_output_bytes(&self, wg: u64) -> Bytes {
        let t = self.wg_tile(wg);
        t.height * t.width * self.shape.elem_bytes
    }

    /// Output bytes produced by the WG range `[start, end)`.
    pub fn wg_range_output_bytes(&self, start: u64, end: u64) -> Bytes {
        (start..end).map(|wg| self.wg_output_bytes(wg)).sum()
    }

    /// Output bytes produced in `stage`.
    pub fn stage_output_bytes(&self, stage: u64) -> Bytes {
        let (s, e) = self.stage_wgs(stage);
        self.wg_range_output_bytes(s, e)
    }

    /// The paper's `wf_tile_size` (Section 4.2.1): output elements per
    /// wavefront, `(M*N) / #WF`, as the GPU driver would compute it.
    pub fn wf_tile_elems(&self) -> u64 {
        (self.shape.m * self.shape.n).div_ceil(self.num_wfs())
    }

    /// Peak FLOPs executed by the largest WG in `stage` (stage compute
    /// latency is set by its largest tile; CUs run WGs in parallel).
    pub fn stage_wg_flops(&self, stage: u64) -> f64 {
        let (s, e) = self.stage_wgs(stage);
        (s..e)
            .map(|wg| {
                let t = self.wg_tile(wg);
                2.0 * t.height as f64 * t.width as f64 * self.shape.k as f64
            })
            .fold(0.0, f64::max)
    }

    // ---- Address layout -------------------------------------------------
    //
    // The simulated address space places A, then B, then C contiguously.
    // A is row-major (a tile-row of A is contiguous); B is stored
    // column-blocked (a tile-column of B is contiguous), as BLAS
    // libraries arrange for streaming reads; C is laid out WG-tile by
    // WG-tile so one WG's stores are contiguous (Section 4.2.1 tracks
    // WF output regions by their start address).

    /// Base address of the A operand.
    pub fn a_base(&self) -> u64 {
        0
    }

    /// Base address of the B operand.
    pub fn b_base(&self) -> u64 {
        self.a_base() + self.shape.a_bytes()
    }

    /// Base address of the C output.
    pub fn c_base(&self) -> u64 {
        self.b_base() + self.shape.b_bytes()
    }

    /// Start address and size of workgroup `wg`'s output region.
    pub fn wg_output_region(&self, wg: u64) -> (u64, Bytes) {
        // Tiles are laid out in WG order; sizes vary at the edges, so
        // accumulate. This is O(wg), used only for functional checks;
        // the timing path uses ranges.
        let start: Bytes = (0..wg).map(|w| self.wg_output_bytes(w)).sum();
        (self.c_base() + start, self.wg_output_bytes(wg))
    }

    /// Read regions (address, bytes) touched by `stage`: the unique
    /// A tile-rows and B tile-columns its WGs consume.
    pub fn stage_read_regions(&self, stage: u64) -> Vec<(u64, Bytes)> {
        let (start, end) = self.stage_wgs(stage);
        let mut regions = Vec::new();
        // Unique tile-rows form a contiguous range in row-major order.
        let row0 = start / self.tiles_n;
        let row1 = (end - 1) / self.tiles_n;
        let row_bytes = self.tile * self.shape.k * self.shape.elem_bytes;
        for row in row0..=row1 {
            let height = (self.shape.m - row * self.tile).min(self.tile);
            regions.push((
                self.a_base() + row * row_bytes,
                height * self.shape.k * self.shape.elem_bytes,
            ));
        }
        // Unique tile-columns: all of them if the stage spans a full
        // tile-row, otherwise the touched (possibly wrapping) span.
        let col_bytes = self.tile * self.shape.k * self.shape.elem_bytes;
        let mut push_col = |col: u64| {
            let width = (self.shape.n - col * self.tile).min(self.tile);
            regions.push((
                self.b_base() + col * col_bytes,
                self.shape.k * width * self.shape.elem_bytes,
            ));
        };
        if end - start >= self.tiles_n {
            for col in 0..self.tiles_n {
                push_col(col);
            }
        } else {
            let c0 = start % self.tiles_n;
            let c1 = (end - 1) % self.tiles_n;
            if c0 <= c1 {
                for col in c0..=c1 {
                    push_col(col);
                }
            } else {
                for col in 0..=c1 {
                    push_col(col);
                }
                for col in c0..self.tiles_n {
                    push_col(col);
                }
            }
        }
        regions
    }

    /// Extra read-traffic factor for transposed inputs (strided loads
    /// coalesce slightly worse; see DESIGN.md).
    pub fn read_overhead_factor(&self) -> f64 {
        if self.shape.transposed {
            1.1
        } else {
            1.0
        }
    }

    /// Splits the output into `chunks` contiguous WG ranges of
    /// near-equal *WG count* (collective chunking for fusion). Returns
    /// the `[start, end)` WG bounds of chunk `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= chunks` or `chunks == 0`.
    pub fn chunk_wg_bounds(&self, chunks: u64, i: u64) -> (u64, u64) {
        assert!(chunks > 0 && i < chunks, "chunk index out of range");
        let wgs = self.num_wgs();
        let base = wgs / chunks;
        let rem = wgs % chunks;
        let start = i * base + i.min(rem);
        let size = base + u64::from(i < rem);
        (start, start + size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t3_sim::config::SystemConfig;

    fn cfg() -> GpuConfig {
        SystemConfig::paper_default().gpu
    }

    fn grid(m: u64, n: u64, k: u64) -> GemmGrid {
        GemmGrid::new(&cfg(), GemmShape::new(m, n, k))
    }

    #[test]
    fn shape_byte_math() {
        let s = GemmShape::new(8, 16, 4);
        assert_eq!(s.a_bytes(), 64);
        assert_eq!(s.b_bytes(), 128);
        assert_eq!(s.output_bytes(), 256);
        assert_eq!(s.flops(), 1024.0);
    }

    #[test]
    fn tp_slicing_shrinks_only_k() {
        let s = GemmShape::new(8192, 4256, 17024).tp_sliced(8);
        assert_eq!(s.k, 2128);
        assert_eq!(s.m, 8192);
        assert_eq!(s.n, 4256);
    }

    #[test]
    fn tp_slicing_preserves_grid_structure() {
        // Figure 5: K-slicing leaves output size, WG count and stage
        // count unchanged.
        let full = grid(8192, 4256, 17024);
        let sliced = GemmGrid::new(&cfg(), GemmShape::new(8192, 4256, 17024).tp_sliced(8));
        assert_eq!(full.num_wgs(), sliced.num_wgs());
        assert_eq!(full.num_stages(), sliced.num_stages());
        assert_eq!(full.shape().output_bytes(), sliced.shape().output_bytes());
    }

    #[test]
    fn wg_and_stage_counts() {
        let g = grid(8192, 4256, 2128);
        assert_eq!(g.num_wgs(), 64 * 34);
        assert_eq!(g.concurrent_wgs(), 80);
        assert_eq!(g.num_stages(), (64u64 * 34).div_ceil(80));
    }

    #[test]
    fn stage_partition_covers_all_wgs_once() {
        let g = grid(1000, 1000, 64);
        let mut covered = 0;
        for stage in 0..g.num_stages() {
            let (s, e) = g.stage_wgs(stage);
            assert_eq!(s, covered);
            assert!(e > s);
            covered = e;
        }
        assert_eq!(covered, g.num_wgs());
    }

    #[test]
    fn edge_tiles_are_clipped() {
        let g = grid(200, 300, 64); // 2x3 tiles with 72x44 edges
        let t = g.wg_tile(g.num_wgs() - 1);
        assert_eq!(t.height, 72);
        assert_eq!(t.width, 44);
        // Total output bytes across WGs equals M*N*2.
        let total: Bytes = (0..g.num_wgs()).map(|w| g.wg_output_bytes(w)).sum();
        assert_eq!(total, g.shape().output_bytes());
    }

    #[test]
    fn wf_tile_matches_paper_formula() {
        let g = grid(8192, 4256, 2128);
        assert_eq!(
            g.wf_tile_elems(),
            (8192 * 4256u64).div_ceil(g.num_wgs() * 8)
        );
    }

    #[test]
    fn stage_read_regions_cover_a_and_b() {
        let g = grid(512, 512, 256);
        // 4x4 tiles = 16 WGs; one stage (80 concurrent).
        assert_eq!(g.num_stages(), 1);
        let regions = g.stage_read_regions(0);
        let a_bytes: Bytes = regions
            .iter()
            .filter(|(addr, _)| *addr < g.b_base())
            .map(|(_, b)| *b)
            .sum();
        let b_bytes: Bytes = regions
            .iter()
            .filter(|(addr, _)| *addr >= g.b_base())
            .map(|(_, b)| *b)
            .sum();
        assert_eq!(a_bytes, g.shape().a_bytes());
        assert_eq!(b_bytes, g.shape().b_bytes());
    }

    #[test]
    fn partial_row_stage_touches_subset_of_columns() {
        // Make a grid with 34 tile columns and force a tiny stage by
        // using a small-CU config.
        let mut c = cfg();
        c.num_cus = 10; // 10 concurrent WGs < 34 columns
        let g = GemmGrid::new(&c, GemmShape::new(8192, 4256, 2128));
        let regions = g.stage_read_regions(0);
        let b_regions = regions
            .iter()
            .filter(|(addr, _)| *addr >= g.b_base())
            .count();
        assert_eq!(b_regions, 10);
    }

    #[test]
    fn wrapping_stage_columns() {
        let mut c = cfg();
        c.num_cus = 10;
        let g = GemmGrid::new(&c, GemmShape::new(8192, 4256, 2128));
        // Stage 3 covers WGs 30..40, i.e. columns 30..34 and 0..6.
        let regions = g.stage_read_regions(3);
        let b_cols: Vec<u64> = regions
            .iter()
            .filter(|(addr, _)| *addr >= g.b_base())
            .map(|(addr, _)| (addr - g.b_base()) / (128 * 2128 * 2))
            .collect();
        assert_eq!(b_cols.len(), 10);
        assert!(b_cols.contains(&33));
        assert!(b_cols.contains(&0));
    }

    #[test]
    fn chunks_partition_wgs() {
        let g = grid(8192, 4256, 2128);
        for chunks in [2u64, 4, 8, 16] {
            let mut covered = 0;
            for i in 0..chunks {
                let (s, e) = g.chunk_wg_bounds(chunks, i);
                assert_eq!(s, covered);
                covered = e;
            }
            assert_eq!(covered, g.num_wgs());
        }
    }

    #[test]
    fn transposed_overhead() {
        let g = GemmGrid::new(&cfg(), GemmShape::new(64, 64, 64).with_transposed(true));
        assert!(g.read_overhead_factor() > 1.0);
        assert_eq!(grid(64, 64, 64).read_overhead_factor(), 1.0);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dim_panics() {
        let _ = GemmShape::new(0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "stage out of range")]
    fn stage_bounds_checked() {
        let g = grid(128, 128, 64);
        let _ = g.stage_wgs(1);
    }

    #[test]
    fn stage_wg_flops_uses_largest_tile() {
        let g = grid(200, 300, 64);
        let f = g.stage_wg_flops(0);
        assert_eq!(f, 2.0 * 128.0 * 128.0 * 64.0);
    }

    #[test]
    fn output_regions_are_disjoint_and_ordered() {
        let g = grid(300, 300, 64);
        let mut expected_start = g.c_base();
        for wg in 0..g.num_wgs() {
            let (addr, len) = g.wg_output_region(wg);
            assert_eq!(addr, expected_start);
            expected_start = addr + len;
        }
        assert_eq!(expected_start, g.c_base() + g.shape().output_bytes());
    }
}
