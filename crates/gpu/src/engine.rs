//! Cycle-stepped GEMM execution engine.
//!
//! A GEMM runs as a sequence of stages (Section 2.5). Each stage:
//!
//! 1. **Read phase** — the stage's A tile-rows and B tile-columns are
//!    filtered through the LLC; misses become compute-stream DRAM reads
//!    and the stage waits until they are serviced.
//! 2. **Compute phase** — a latency set by the stage's largest WG tile
//!    and the GPU's sustained GEMM throughput.
//! 3. **Write phase** — the stage's output stores are *emitted to the
//!    caller* as a [`GemmEvent::StageStoresIssued`] event. The caller
//!    routes them: through the LLC to local DRAM (baseline), straight
//!    to DRAM as near-memory updates (T3's uncached outputs), or over
//!    the link (T3's first-step `remote_update`). This is exactly the
//!    seam T3 exploits without touching the GEMM kernel itself
//!    (Section 4.4).
//!
//! Because reads, writes and later stages all share one in-order
//! compute stream at the memory controller, the engine naturally
//! produces the read-phase / bursty-write-phase DRAM pattern of
//! Figure 17(a).

use crate::gemm::GemmGrid;
use t3_mem::controller::{MemoryController, StreamId};
use t3_mem::llc::{AccessKind, Llc};
use t3_sim::config::GpuConfig;
use t3_sim::stats::TrafficClass;
use t3_sim::{Bytes, Cycle, SimMode};

/// What happened during one engine step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmEvent {
    /// Nothing externally visible.
    Idle,
    /// A stage finished computing; its stores are ready to issue. The
    /// caller must route them (see module docs) before the next step
    /// so downstream reads queue behind them.
    StageStoresIssued {
        /// Stage index, `0..num_stages()`.
        stage: u64,
        /// First WG of the stage.
        wg_start: u64,
        /// One past the last WG of the stage.
        wg_end: u64,
        /// Output bytes the stage produced.
        bytes: Bytes,
        /// Cycle at which the stage began its read phase.
        started: Cycle,
        /// The stage's roofline compute latency (no memory stalls);
        /// `now - started - compute_cycles` is the stage's
        /// memory-stall time, which trace analytics attribute to
        /// contention.
        compute_cycles: Cycle,
    },
    /// All stages have completed (emitted exactly once).
    Finished,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Launch {
        until: Cycle,
    },
    StartStage,
    WaitReads {
        target: Bytes,
    },
    Compute {
        until: Cycle,
    },
    /// Prefetched mode: compute runs while reads drain; the stage ends
    /// when both the latency has elapsed and the reads are serviced.
    ComputeWithReads {
        until: Cycle,
        target: Bytes,
    },
    Done {
        reported: bool,
    },
}

/// The engine. Construct per kernel invocation; drive with
/// [`GemmEngine::step`] once per cycle.
#[derive(Debug, Clone)]
pub struct GemmEngine {
    grid: GemmGrid,
    stage_compute_cycles: Vec<Cycle>,
    stage: u64,
    phase: Phase,
    launched: bool,
    read_factor: f64,
    prefetch: bool,
    total_read_miss_bytes: Bytes,
    stage_started: Cycle,
}

impl GemmEngine {
    /// Creates an engine for `grid` on the GPU described by `cfg`.
    pub fn new(cfg: &GpuConfig, grid: GemmGrid) -> Self {
        let per_cu = cfg.flops_per_cu_cycle * cfg.gemm_efficiency;
        let stage_compute_cycles = (0..grid.num_stages())
            // t3-lint: allow(float-cycles) -- per-stage roofline computed once at construction; ceil per stage, never re-accumulated
            .map(|s| (grid.stage_wg_flops(s) / per_cu).ceil() as Cycle)
            .collect();
        GemmEngine {
            grid,
            stage_compute_cycles,
            stage: 0,
            phase: Phase::Launch {
                until: cfg.kernel_launch_cycles,
            },
            launched: false,
            read_factor: 1.0, // set from grid below
            prefetch: cfg.gemm_prefetch,
            total_read_miss_bytes: 0,
            stage_started: 0,
        }
        .init_read_factor()
    }

    fn init_read_factor(mut self) -> Self {
        self.read_factor = self.grid.read_overhead_factor();
        self
    }

    /// The grid being executed.
    pub fn grid(&self) -> &GemmGrid {
        &self.grid
    }

    /// Stage currently executing (or `num_stages()` when done).
    pub fn current_stage(&self) -> u64 {
        self.stage
    }

    /// True once [`GemmEvent::Finished`] has been (or will next be)
    /// produced.
    pub fn is_finished(&self) -> bool {
        matches!(self.phase, Phase::Done { .. })
    }

    /// DRAM read bytes this kernel has requested so far (post-LLC).
    pub fn read_miss_bytes(&self) -> Bytes {
        self.total_read_miss_bytes
    }

    /// Ideal compute-only time: launch overhead plus the sum of stage
    /// compute latencies (no memory stalls). Lower-bounds any run.
    pub fn compute_only_cycles(&self, cfg: &GpuConfig) -> Cycle {
        cfg.kernel_launch_cycles + self.stage_compute_cycles.iter().sum::<Cycle>()
    }

    fn finish_stage(&mut self, _now: Cycle) -> GemmEvent {
        let stage = self.stage;
        let (wg_start, wg_end) = self.grid.stage_wgs(stage);
        let bytes = self.grid.stage_output_bytes(stage);
        self.stage += 1;
        self.phase = if self.stage == self.grid.num_stages() {
            Phase::Done { reported: false }
        } else {
            Phase::StartStage
        };
        GemmEvent::StageStoresIssued {
            stage,
            wg_start,
            wg_end,
            bytes,
            started: self.stage_started,
            compute_cycles: self.stage_compute_cycles[stage as usize],
        }
    }

    /// The next cycle strictly after `now` (already stepped) at which
    /// stepping this engine can change phase or emit an event:
    ///
    /// * `Launch { until }` / `Compute { until }` — the transition
    ///   consumes the step at exactly `until` (clamped forward if that
    ///   step already ran);
    /// * `StartStage`, a satisfied `WaitReads`, and an unreported
    ///   `Done` — the very next step;
    /// * an unsatisfied read target — `None`: the memory controller
    ///   still holds the un-serviced transactions, so it is busy and
    ///   itself pins the next event at `now + 1`;
    /// * reported `Done` — `None`, the engine is inert.
    pub fn next_event(&self, now: Cycle, mc: &MemoryController) -> Option<Cycle> {
        if !self.launched {
            // The first step re-anchors the launch delay; it must run.
            return Some(now + 1);
        }
        let reads_done = |target: Bytes| mc.serviced_bytes(StreamId::Compute) >= target;
        match self.phase {
            Phase::Launch { until } => Some(until.max(now + 1)),
            Phase::StartStage => Some(now + 1),
            Phase::WaitReads { target } => reads_done(target).then(|| now + 1),
            Phase::Compute { until } => Some(until.max(now + 1)),
            Phase::ComputeWithReads { until, target } => {
                reads_done(target).then(|| until.max(now + 1))
            }
            Phase::Done { reported } => (!reported).then(|| now + 1),
        }
    }

    /// Advances one cycle at time `now`. Reads are issued through
    /// `llc` into `mc`'s compute stream. See [`GemmEvent`] for the
    /// caller's obligations.
    pub fn step(&mut self, now: Cycle, mc: &mut MemoryController, llc: &mut Llc) -> GemmEvent {
        // On the first observed cycle, re-anchor the launch delay to
        // `now` (engines may be constructed before their start time).
        if !self.launched {
            if let Phase::Launch { until } = self.phase {
                self.phase = Phase::Launch { until: now + until };
            }
            self.launched = true;
        }
        match self.phase {
            Phase::Launch { until } => {
                if now >= until {
                    self.phase = Phase::StartStage;
                }
                GemmEvent::Idle
            }
            Phase::StartStage => {
                self.stage_started = now;
                let mut miss: Bytes = 0;
                for (addr, bytes) in self.grid.stage_read_regions(self.stage) {
                    miss += llc.access_range(addr, bytes, AccessKind::Read).dram_bytes;
                }
                let miss = (miss as f64 * self.read_factor) as Bytes; // t3-lint: allow(float-cycles) -- ablation knob defaults to 1.0 (identity); truncation is the documented semantic
                self.total_read_miss_bytes += miss;
                let compute_until = now + self.stage_compute_cycles[self.stage as usize];
                if miss > 0 {
                    let target = mc.enqueued_bytes(StreamId::Compute) + miss;
                    mc.enqueue(StreamId::Compute, TrafficClass::GemmRead, miss, 1.0);
                    self.phase = if self.prefetch {
                        Phase::ComputeWithReads {
                            until: compute_until,
                            target,
                        }
                    } else {
                        Phase::WaitReads { target }
                    };
                } else {
                    self.phase = Phase::Compute {
                        until: compute_until,
                    };
                }
                GemmEvent::Idle
            }
            Phase::WaitReads { target } => {
                if mc.serviced_bytes(StreamId::Compute) >= target {
                    self.phase = Phase::Compute {
                        until: now + self.stage_compute_cycles[self.stage as usize],
                    };
                }
                GemmEvent::Idle
            }
            Phase::ComputeWithReads { until, target } => {
                if now < until || mc.serviced_bytes(StreamId::Compute) < target {
                    return GemmEvent::Idle;
                }
                self.finish_stage(now)
            }
            Phase::Compute { until } => {
                if now < until {
                    return GemmEvent::Idle;
                }
                self.finish_stage(now)
            }
            Phase::Done { reported } => {
                if reported {
                    GemmEvent::Idle
                } else {
                    self.phase = Phase::Done { reported: true };
                    GemmEvent::Finished
                }
            }
        }
    }
}

/// How an isolated run routes the GEMM's output stores.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum WritePolicy {
    /// Baseline: stores allocate in the LLC; dirty lines reach DRAM as
    /// write-backs, plus a kernel-boundary flush.
    #[default]
    CachedLocal,
    /// T3-style uncached stores: straight to DRAM (plain writes).
    BypassLocal,
    /// T3-style uncached near-memory updates (op-and-store), with the
    /// given service-cost multiplier.
    BypassNmcUpdate(f64),
}

/// Result of an isolated (no communication) GEMM run.
#[derive(Debug, Clone)]
pub struct IsolatedGemmRun {
    /// End-to-end kernel cycles.
    pub cycles: Cycle,
    /// DRAM traffic of the run.
    pub stats: t3_sim::stats::TrafficStats,
}

/// Runs one GEMM in isolation against a fresh memory controller and
/// LLC, applying `write_policy` to its stores. Used for the paper's
/// isolated-execution baselines (Figures 6, 15, 16's ideals).
pub fn run_gemm_isolated(
    sys: &t3_sim::config::SystemConfig,
    grid: GemmGrid,
    write_policy: WritePolicy,
) -> IsolatedGemmRun {
    run_gemm_isolated_traced(sys, grid, write_policy, None).0
}

/// As [`run_gemm_isolated`], with an explicit [`SimMode`].
pub fn run_gemm_isolated_in_mode(
    sys: &t3_sim::config::SystemConfig,
    grid: GemmGrid,
    write_policy: WritePolicy,
    mode: SimMode,
) -> IsolatedGemmRun {
    run_gemm_isolated_traced_in_mode(sys, grid, write_policy, None, mode).0
}

/// As [`run_gemm_isolated`], optionally recording a DRAM-traffic time
/// series with `bucket` cycle resolution (Figure 17a's baseline GEMM
/// timeline).
pub fn run_gemm_isolated_traced(
    sys: &t3_sim::config::SystemConfig,
    grid: GemmGrid,
    write_policy: WritePolicy,
    bucket: Option<t3_sim::Cycle>,
) -> (IsolatedGemmRun, Option<t3_sim::timeseries::TimeSeries>) {
    run_gemm_isolated_traced_in_mode(sys, grid, write_policy, bucket, SimMode::default())
}

/// The isolated runner with an explicit [`SimMode`]. In
/// [`SimMode::FastForward`] the loop leaps `now` to the engine's next
/// event whenever the memory controller is idle (compute phases with no
/// traffic in flight), replaying the skipped controller bookkeeping via
/// [`MemoryController::skip_idle`]; results are byte-identical to
/// [`SimMode::Stepped`].
pub fn run_gemm_isolated_traced_in_mode(
    sys: &t3_sim::config::SystemConfig,
    grid: GemmGrid,
    write_policy: WritePolicy,
    bucket: Option<t3_sim::Cycle>,
    mode: SimMode,
) -> (IsolatedGemmRun, Option<t3_sim::timeseries::TimeSeries>) {
    let mut mc = MemoryController::new(
        &sys.mem,
        Box::new(t3_mem::arbiter::ComputeFirstPolicy::new()),
    );
    let mut llc = Llc::new(&sys.mem);
    let mut engine = GemmEngine::new(&sys.gpu, grid);
    let mut ts = bucket.map(t3_sim::timeseries::TimeSeries::new);
    let mut now: Cycle = 0;
    let mut finished = false;
    while !finished || !mc.is_idle() {
        mc.step(now, ts.as_mut());
        match engine.step(now, &mut mc, &mut llc) {
            GemmEvent::Idle => {}
            GemmEvent::StageStoresIssued {
                wg_start, wg_end, ..
            } => {
                route_stage_stores(
                    engine.grid(),
                    wg_start,
                    wg_end,
                    write_policy,
                    &mut mc,
                    &mut llc,
                );
            }
            GemmEvent::Finished => {
                if let WritePolicy::CachedLocal = write_policy {
                    let flush = llc.flush_dirty();
                    mc.enqueue(StreamId::Compute, TrafficClass::GemmWrite, flush, 1.0);
                }
                finished = true;
            }
        }
        let mut next = now + 1;
        if mode == SimMode::FastForward && mc.is_idle() {
            if let Some(target) = engine.next_event(now, &mc) {
                if target > next {
                    mc.skip_idle(next, target, None);
                    next = target;
                }
            }
        }
        now = next;
        assert!(now < 2_000_000_000, "isolated GEMM failed to converge");
    }
    (
        IsolatedGemmRun {
            cycles: now,
            stats: mc.stats().clone(),
        },
        ts,
    )
}

/// Routes one stage's stores according to `policy`. Shared by the
/// isolated runner above and the sequential configuration in `t3-core`.
pub fn route_stage_stores(
    grid: &GemmGrid,
    wg_start: u64,
    wg_end: u64,
    policy: WritePolicy,
    mc: &mut MemoryController,
    llc: &mut Llc,
) {
    let bytes = grid.wg_range_output_bytes(wg_start, wg_end);
    match policy {
        WritePolicy::CachedLocal => {
            let (addr, _) = grid.wg_output_region(wg_start);
            llc.access_range(addr, bytes, AccessKind::Write);
            let wb = llc.take_writeback_bytes();
            mc.enqueue(StreamId::Compute, TrafficClass::GemmWrite, wb, 1.0);
        }
        WritePolicy::BypassLocal => {
            mc.enqueue(StreamId::Compute, TrafficClass::GemmWrite, bytes, 1.0);
        }
        WritePolicy::BypassNmcUpdate(cost) => {
            mc.enqueue(StreamId::Compute, TrafficClass::GemmWrite, bytes, cost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::GemmShape;
    use t3_sim::config::SystemConfig;

    fn sys() -> t3_sim::config::SystemConfig {
        SystemConfig::paper_default()
    }

    fn grid_of(m: u64, n: u64, k: u64) -> GemmGrid {
        GemmGrid::new(&sys().gpu, GemmShape::new(m, n, k))
    }

    #[test]
    fn isolated_run_reads_inputs_once_when_cached() {
        let s = sys();
        // Small GEMM: inputs fit in LLC easily.
        let grid = grid_of(1024, 1024, 512);
        let run = run_gemm_isolated(&s, grid.clone(), WritePolicy::CachedLocal);
        let input_bytes = grid.shape().a_bytes() + grid.shape().b_bytes();
        let reads = run.stats.bytes(TrafficClass::GemmRead);
        assert!(
            reads <= input_bytes + 64 * 1024,
            "cache-resident inputs must be read ~once: {reads} vs {input_bytes}"
        );
    }

    #[test]
    fn isolated_run_writes_full_output() {
        let s = sys();
        let grid = grid_of(1024, 1024, 512);
        let out = grid.shape().output_bytes();
        let run = run_gemm_isolated(&s, grid, WritePolicy::CachedLocal);
        let writes = run.stats.bytes(TrafficClass::GemmWrite);
        // Write-backs + flush must together cover the full output
        // (modulo line rounding).
        assert!(
            writes >= out && writes <= out + 256 * 1024,
            "writes {writes} should cover output {out}"
        );
    }

    #[test]
    fn bypass_policy_writes_exact_output_and_avoids_pollution() {
        let s = sys();
        // Large-K GEMM whose B operand is near the LLC size: write
        // pollution matters.
        let grid = grid_of(4096, 4096, 1024);
        let cached = run_gemm_isolated(&s, grid.clone(), WritePolicy::CachedLocal);
        let bypass = run_gemm_isolated(&s, grid.clone(), WritePolicy::BypassLocal);
        assert_eq!(
            bypass.stats.bytes(TrafficClass::GemmWrite),
            grid.shape().output_bytes()
        );
        // Bypassing output writes must not increase input read misses.
        assert!(
            bypass.stats.bytes(TrafficClass::GemmRead)
                <= cached.stats.bytes(TrafficClass::GemmRead)
        );
    }

    #[test]
    fn compute_bound_gemm_time_tracks_flops() {
        let s = sys();
        // Very large K: heavily compute bound.
        let grid = grid_of(2048, 2048, 8192);
        let engine = GemmEngine::new(&s.gpu, grid.clone());
        let ideal = engine.compute_only_cycles(&s.gpu);
        let run = run_gemm_isolated(&s, grid, WritePolicy::CachedLocal);
        assert!(
            (run.cycles as f64) < ideal as f64 * 1.6,
            "compute-bound GEMM {} should be near compute-only {}",
            run.cycles,
            ideal
        );
        assert!(run.cycles >= ideal, "cannot beat compute-only bound");
    }

    #[test]
    fn more_cus_means_fewer_stages_and_less_time() {
        let mut s_small = sys();
        s_small.gpu.num_cus = 40;
        let s_big = sys();
        let shape = GemmShape::new(4096, 4096, 512);
        let g_small = GemmGrid::new(&s_small.gpu, shape);
        let g_big = GemmGrid::new(&s_big.gpu, shape);
        assert!(g_small.num_stages() > g_big.num_stages());
        let r_small = run_gemm_isolated(&s_small, g_small, WritePolicy::CachedLocal);
        let r_big = run_gemm_isolated(&s_big, g_big, WritePolicy::CachedLocal);
        assert!(
            r_small.cycles > r_big.cycles,
            "40 CUs {} must be slower than 80 CUs {}",
            r_small.cycles,
            r_big.cycles
        );
    }

    #[test]
    fn events_cover_every_stage_in_order() {
        let s = sys();
        let grid = grid_of(2048, 2048, 256);
        let stages = grid.num_stages();
        let mut mc =
            MemoryController::new(&s.mem, Box::new(t3_mem::arbiter::ComputeFirstPolicy::new()));
        let mut llc = Llc::new(&s.mem);
        let mut engine = GemmEngine::new(&s.gpu, grid);
        let mut seen = Vec::new();
        let mut now = 0;
        loop {
            mc.step(now, None);
            match engine.step(now, &mut mc, &mut llc) {
                GemmEvent::StageStoresIssued { stage, .. } => seen.push(stage),
                GemmEvent::Finished => break,
                GemmEvent::Idle => {}
            }
            now += 1;
            assert!(now < 100_000_000);
        }
        let expected: Vec<u64> = (0..stages).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn finished_is_reported_once() {
        let s = sys();
        let grid = grid_of(256, 256, 64);
        let mut mc =
            MemoryController::new(&s.mem, Box::new(t3_mem::arbiter::ComputeFirstPolicy::new()));
        let mut llc = Llc::new(&s.mem);
        let mut engine = GemmEngine::new(&s.gpu, grid);
        let mut finishes = 0;
        for now in 0..200_000 {
            mc.step(now, None);
            if engine.step(now, &mut mc, &mut llc) == GemmEvent::Finished {
                finishes += 1;
            }
            if finishes > 0 && mc.is_idle() && now > 100_000 {
                break;
            }
        }
        assert_eq!(finishes, 1);
        assert!(engine.is_finished());
    }

    #[test]
    fn prefetch_speeds_memory_heavy_gemms() {
        let mut s_pre = sys();
        s_pre.gpu.gemm_prefetch = true;
        let s_ser = sys();
        // B larger than the LLC: read phases dominate.
        let shape = GemmShape::new(4096, 4256, 2128);
        let serial = run_gemm_isolated(
            &s_ser,
            GemmGrid::new(&s_ser.gpu, shape),
            WritePolicy::CachedLocal,
        );
        let prefetch = run_gemm_isolated(
            &s_pre,
            GemmGrid::new(&s_pre.gpu, shape),
            WritePolicy::CachedLocal,
        );
        assert!(
            prefetch.cycles < serial.cycles,
            "prefetch {} must beat serial {}",
            prefetch.cycles,
            serial.cycles
        );
        // Same traffic either way: prefetch changes timing, not bytes.
        assert_eq!(
            prefetch.stats.bytes(TrafficClass::GemmRead),
            serial.stats.bytes(TrafficClass::GemmRead)
        );
    }

    #[test]
    fn next_event_matches_the_stepped_phase_transitions() {
        let s = sys();
        let grid = grid_of(2048, 2048, 256);
        let mut mc =
            MemoryController::new(&s.mem, Box::new(t3_mem::arbiter::ComputeFirstPolicy::new()));
        let mut llc = Llc::new(&s.mem);
        let mut engine = GemmEngine::new(&s.gpu, grid);
        // Step the run to completion, recording every cycle at which
        // the engine changed phase or emitted an event, plus the
        // prediction made right after each step.
        let mut changes = Vec::new();
        let mut predictions = Vec::new();
        let mut now = 0;
        loop {
            mc.step(now, None);
            let before = (engine.phase, engine.stage);
            let ev = engine.step(now, &mut mc, &mut llc);
            if let GemmEvent::StageStoresIssued {
                wg_start, wg_end, ..
            } = ev
            {
                route_stage_stores(
                    engine.grid(),
                    wg_start,
                    wg_end,
                    WritePolicy::BypassLocal,
                    &mut mc,
                    &mut llc,
                );
            }
            if (engine.phase, engine.stage) != before || ev != GemmEvent::Idle {
                changes.push(now);
            }
            predictions.push((now, engine.next_event(now, &mc), mc.is_idle()));
            now += 1;
            if engine.is_finished() && mc.is_idle() {
                break;
            }
            assert!(now < 100_000_000);
        }
        // Whenever the memory controller was idle (the only situation
        // in which the fast-forward loop leaps), the prediction must be
        // EXACTLY the next cycle the stepped engine changed state.
        let mut checked = 0;
        for (asked, predicted, mc_idle) in predictions {
            if !mc_idle {
                continue;
            }
            let actual = changes.iter().copied().find(|&c| c > asked);
            assert_eq!(
                predicted, actual,
                "prediction after cycle {asked} must match the stepped run"
            );
            checked += 1;
        }
        assert!(
            checked > 100,
            "compute phases must expose idle-controller cycles, saw {checked}"
        );
    }

    #[test]
    fn fast_forward_isolated_run_is_byte_identical_to_stepped() {
        for prefetch in [false, true] {
            let mut s = sys();
            s.gpu.gemm_prefetch = prefetch;
            for shape in [
                GemmShape::new(2048, 2048, 256),
                GemmShape::new(4096, 4256, 2128),
            ] {
                let run = |mode: SimMode| {
                    run_gemm_isolated_traced_in_mode(
                        &s,
                        GemmGrid::new(&s.gpu, shape),
                        WritePolicy::CachedLocal,
                        Some(2000),
                        mode,
                    )
                };
                let (stepped, ts_s) = run(SimMode::Stepped);
                let (fast, ts_f) = run(SimMode::FastForward);
                assert_eq!(stepped.cycles, fast.cycles, "prefetch={prefetch} {shape:?}");
                assert_eq!(format!("{:?}", stepped.stats), format!("{:?}", fast.stats));
                assert_eq!(format!("{ts_s:?}"), format!("{ts_f:?}"));
            }
        }
    }

    #[test]
    fn transposed_inputs_read_more() {
        let s = sys();
        let shape_t = GemmShape::new(4096, 4096, 2048).with_transposed(true);
        let shape_n = GemmShape::new(4096, 4096, 2048);
        let rt = run_gemm_isolated(&s, GemmGrid::new(&s.gpu, shape_t), WritePolicy::CachedLocal);
        let rn = run_gemm_isolated(&s, GemmGrid::new(&s.gpu, shape_n), WritePolicy::CachedLocal);
        assert!(rt.stats.bytes(TrafficClass::GemmRead) > rn.stats.bytes(TrafficClass::GemmRead));
    }
}
