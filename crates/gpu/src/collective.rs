//! Timing model of baseline, CU-executed ring collectives.
//!
//! In current systems the collective runs as GPU kernels after the
//! producer GEMM (Section 3): each ring step reads the chunk(s) from
//! DRAM, reduces on CUs, and pushes the result to the neighbour. Each
//! step is therefore bound by the slowest of three rates —
//! link serialisation, CU processing, or DRAM service — plus the link
//! latency and a per-step software overhead. Restricting `cu_count`
//! reproduces the CU-sharing study of Figure 6 (8 CUs slow the
//! all-reduce ~40%; 16 CUs nearly keep up with the link).
//!
//! The per-GPU DRAM traffic follows Figure 10(a): in the steady state a
//! reduce-scatter step reads two copies (local + received) and writes
//! the incoming chunk; the first step reads only the local copy; the
//! final arrival performs the last reduction locally.

use t3_sim::config::SystemConfig;
use t3_sim::stats::{TrafficClass, TrafficStats};
use t3_sim::{Bytes, Cycle};
use t3_trace::{reborrow, Event, Instruments};

/// Which collective to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Ring reduce-scatter.
    ReduceScatter,
    /// Ring all-gather.
    AllGather,
    /// Ring all-reduce = reduce-scatter followed by all-gather.
    AllReduce,
}

/// Timing + traffic outcome of one collective execution.
#[derive(Debug, Clone)]
pub struct CollectiveOutcome {
    /// End-to-end cycles.
    pub cycles: Cycle,
    /// Per-GPU DRAM traffic.
    pub stats: TrafficStats,
}

/// A CU-executed ring collective over a `payload_bytes` array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingCollective {
    /// Collective type.
    pub kind: CollectiveKind,
    /// Full (un-chunked) array size in bytes per GPU.
    pub payload_bytes: Bytes,
    /// CUs allocated to the collective kernel (80 when run alone;
    /// 8 or 16 in the CU-sharing study).
    pub cu_count: u32,
    /// Whether reductions use near-memory compute instead of CUs
    /// (the Ideal-RS+NMC configuration): updates replace
    /// read-modify-write, and the final local reduction disappears.
    pub nmc: bool,
    /// NMC op-and-store service-cost multiplier (ignored unless `nmc`).
    pub nmc_cost: f64,
}

impl RingCollective {
    /// A baseline collective using every CU and no NMC.
    pub fn baseline(kind: CollectiveKind, payload_bytes: Bytes, sys: &SystemConfig) -> Self {
        RingCollective {
            kind,
            payload_bytes,
            cu_count: sys.gpu.num_cus,
            nmc: false,
            nmc_cost: sys.mem.nmc_cost_multiplier,
        }
    }

    /// Same collective restricted to `cu_count` CUs.
    pub fn with_cu_count(mut self, cu_count: u32) -> Self {
        assert!(cu_count > 0, "collective needs at least one CU");
        self.cu_count = cu_count;
        self
    }

    /// Enables near-memory reductions.
    pub fn with_nmc(mut self, nmc: bool) -> Self {
        self.nmc = nmc;
        self
    }

    /// Simulates the collective on `sys` and returns timing + traffic.
    pub fn simulate(&self, sys: &SystemConfig) -> CollectiveOutcome {
        self.simulate_traced(sys, None)
    }

    /// [`RingCollective::simulate`] that also records each ring step as
    /// a [`Event::ChunkSend`] span (the step's wire occupancy) and a
    /// [`Event::ChunkRecv`] instant at delivery. Passing `None` is
    /// identical to `simulate`.
    pub fn simulate_traced(
        &self,
        sys: &SystemConfig,
        mut ins: Option<&mut Instruments>,
    ) -> CollectiveOutcome {
        match self.kind {
            CollectiveKind::ReduceScatter => self.simulate_rs(sys, ins),
            CollectiveKind::AllGather => self.simulate_ag(sys, ins, 0),
            CollectiveKind::AllReduce => {
                let rs = self.simulate_rs(sys, reborrow(&mut ins));
                let ag = self.simulate_ag(sys, ins, rs.cycles);
                let mut stats = rs.stats;
                stats.merge(&ag.stats);
                CollectiveOutcome {
                    cycles: rs.cycles + ag.cycles,
                    stats,
                }
            }
        }
    }

    /// Records one ring step's wire activity: a send span over the
    /// serialisation window and a receive instant at delivery.
    fn trace_step(
        ins: &mut Option<&mut Instruments>,
        step: u64,
        start: f64,
        ser_cycles: f64,
        latency: f64,
        bytes: f64,
    ) {
        if let Some(ins) = reborrow(ins) {
            let bytes = bytes as Bytes;
            let start_c = start as Cycle;
            let end_c = (start + ser_cycles) as Cycle;
            let arrival = (start + ser_cycles + latency) as Cycle;
            ins.record(
                end_c,
                Event::ChunkSend {
                    chunk: step,
                    bytes,
                    hops: 1,
                    start: start_c,
                    end: end_c,
                },
            );
            ins.record(arrival, Event::ChunkRecv { chunk: step, bytes });
            ins.add("collective.steps", 1);
            ins.add("collective.bytes_sent", bytes as u64);
        }
    }

    fn rates(&self, sys: &SystemConfig) -> (f64, f64, f64) {
        let link = sys.link.bytes_per_cycle();
        let cu = self.cu_count as f64 * sys.gpu.collective_bytes_per_cu_cycle;
        let dram = sys.mem.bytes_per_cycle();
        (link, cu, dram)
    }

    fn chunk_bytes(&self, sys: &SystemConfig) -> f64 {
        self.payload_bytes as f64 / sys.num_gpus as f64
    }

    fn simulate_rs(
        &self,
        sys: &SystemConfig,
        mut ins: Option<&mut Instruments>,
    ) -> CollectiveOutcome {
        let n = sys.num_gpus as u64;
        let (link, cu, dram) = self.rates(sys);
        let c = self.chunk_bytes(sys);
        let latency = sys.link.latency_cycles() as f64;
        let overhead = sys.gpu.coll_step_overhead_cycles as f64;
        let mut stats = TrafficStats::new();
        let mut cycles = 0.0;
        for step in 0..(n - 1) {
            // Bytes the local GPU reads this step: its copy of the
            // outgoing chunk, plus (steady state) the chunk received
            // last step that must be reduced into it.
            let (read, write_cost) = if self.nmc {
                // NMC: the incoming chunk updated memory in place; the
                // kernel only reads the partially-reduced chunk to send.
                (c, self.nmc_cost)
            } else if step == 0 {
                (c, 1.0)
            } else {
                (2.0 * c, 1.0)
            };
            let write = c; // incoming chunk from the previous neighbour
            let dram_bytes = read + write * write_cost;
            let cu_bytes = if self.nmc { c } else { read + write };
            let step_cycles = (c / link).max(cu_bytes / cu).max(dram_bytes / dram);
            Self::trace_step(&mut ins, step, cycles, step_cycles, latency, c);
            cycles += step_cycles + latency + overhead;
            stats.record(TrafficClass::RsRead, read as Bytes);
            if self.nmc {
                stats.record(TrafficClass::RsUpdate, write as Bytes);
            } else {
                stats.record(TrafficClass::RsWrite, write as Bytes);
            }
        }
        if !self.nmc {
            // Final arrival: reduce the last received chunk with the
            // local copy and write the owned result.
            let read = 2.0 * c;
            let write = c;
            let tail = ((read + write) / cu).max((read + write) / dram);
            cycles += tail + overhead;
            stats.record(TrafficClass::RsRead, read as Bytes);
            stats.record(TrafficClass::RsWrite, write as Bytes);
        }
        CollectiveOutcome {
            // t3-lint: allow(float-cycles) -- roofline RS model: fixed left-to-right f64 sum over (n-1) steps, single final ceil; pinned by Figure 14 validation
            cycles: cycles.ceil() as Cycle,
            stats,
        }
    }

    fn simulate_ag(
        &self,
        sys: &SystemConfig,
        mut ins: Option<&mut Instruments>,
        start_offset: Cycle,
    ) -> CollectiveOutcome {
        let n = sys.num_gpus as u64;
        let (link, cu, dram) = self.rates(sys);
        let c = self.chunk_bytes(sys);
        let latency = sys.link.latency_cycles() as f64;
        let overhead = sys.gpu.coll_step_overhead_cycles as f64;
        let mut stats = TrafficStats::new();
        let mut cycles = 0.0;
        for step in 0..(n - 1) {
            let read = c;
            let write = c;
            let step_cycles = (c / link)
                .max((read + write) / cu)
                .max((read + write) / dram);
            Self::trace_step(
                &mut ins,
                step,
                start_offset as f64 + cycles,
                step_cycles,
                latency,
                c,
            );
            cycles += step_cycles + latency + overhead;
            stats.record(TrafficClass::AgRead, read as Bytes);
            stats.record(TrafficClass::AgWrite, write as Bytes);
        }
        CollectiveOutcome {
            // t3-lint: allow(float-cycles) -- roofline AG model: same fixed-order accumulation and single ceil as the RS path
            cycles: cycles.ceil() as Cycle,
            stats,
        }
    }
}

/// First-principles "hardware" reference for ring reduce-scatter time:
/// `(N-1) x (chunk/link_bw + latency + per-step overhead)` plus the
/// final local reduction at DRAM rate. Figure 14 validates the event
/// simulator against exactly this kind of bandwidth model.
pub fn reference_ring_rs_cycles(sys: &SystemConfig, payload_bytes: Bytes) -> Cycle {
    let n = sys.num_gpus as f64;
    let c = payload_bytes as f64 / n;
    let steps = n - 1.0;
    let per_step = c / sys.link.bytes_per_cycle()
        + sys.link.latency_cycles() as f64
        + sys.gpu.coll_step_overhead_cycles as f64;
    let tail = 3.0 * c / sys.mem.bytes_per_cycle();
    // t3-lint: allow(float-cycles) -- first-principles reference bound; one ceil, fixed expression order
    (steps * per_step + tail).ceil() as Cycle
}

#[cfg(test)]
mod tests {
    use super::*;
    use t3_sim::config::SystemConfig;

    fn sys() -> SystemConfig {
        SystemConfig::paper_default()
    }

    const MB: Bytes = 1 << 20;

    #[test]
    fn full_cu_rs_is_link_bound() {
        let s = sys();
        let payload = 64 * MB;
        let rs = RingCollective::baseline(CollectiveKind::ReduceScatter, payload, &s);
        let out = rs.simulate(&s);
        // Link-bound lower bound: (N-1) chunk serialisations.
        let c = payload as f64 / s.num_gpus as f64;
        let link_cycles = (s.num_gpus - 1) as f64 * c / s.link.bytes_per_cycle();
        let ratio = out.cycles as f64 / link_cycles;
        assert!(
            ratio > 1.0 && ratio < 1.25,
            "full-CU RS should be near link bound, ratio {ratio}"
        );
    }

    #[test]
    fn eight_cus_slow_rs_like_figure_6() {
        let s = sys();
        let payload = 64 * MB;
        let full = RingCollective::baseline(CollectiveKind::ReduceScatter, payload, &s)
            .simulate(&s)
            .cycles;
        let eight = RingCollective::baseline(CollectiveKind::ReduceScatter, payload, &s)
            .with_cu_count(8)
            .simulate(&s)
            .cycles;
        let sixteen = RingCollective::baseline(CollectiveKind::ReduceScatter, payload, &s)
            .with_cu_count(16)
            .simulate(&s)
            .cycles;
        let slow8 = eight as f64 / full as f64 - 1.0;
        let slow16 = sixteen as f64 / full as f64 - 1.0;
        // Paper: ~41% geomean slowdown with 8 CUs, ~7% with 16.
        assert!(
            slow8 > 0.25 && slow8 < 0.60,
            "8-CU slowdown {slow8:.2} out of range"
        );
        assert!(slow16 < 0.12, "16-CU slowdown {slow16:.2} too high");
    }

    #[test]
    fn rs_traffic_matches_figure_10a() {
        let s = sys();
        let payload = 80 * MB;
        let out = RingCollective::baseline(CollectiveKind::ReduceScatter, payload, &s).simulate(&s);
        let n = s.num_gpus as u64;
        let c = payload / n;
        // Reads: c (first step) + 2c x (N-2) + 2c (final reduce).
        assert_eq!(
            out.stats.bytes(TrafficClass::RsRead),
            c + 2 * c * (n - 2) + 2 * c
        );
        // Writes: incoming chunk per step + final owned chunk.
        assert_eq!(out.stats.bytes(TrafficClass::RsWrite), c * (n - 1) + c);
    }

    #[test]
    fn ag_traffic_is_symmetric() {
        let s = sys();
        let payload = 80 * MB;
        let out = RingCollective::baseline(CollectiveKind::AllGather, payload, &s).simulate(&s);
        let c = payload / s.num_gpus as u64;
        let per = c * (s.num_gpus as u64 - 1);
        assert_eq!(out.stats.bytes(TrafficClass::AgRead), per);
        assert_eq!(out.stats.bytes(TrafficClass::AgWrite), per);
    }

    #[test]
    fn all_reduce_is_rs_plus_ag() {
        let s = sys();
        let payload = 48 * MB;
        let rs = RingCollective::baseline(CollectiveKind::ReduceScatter, payload, &s).simulate(&s);
        let ag = RingCollective::baseline(CollectiveKind::AllGather, payload, &s).simulate(&s);
        let ar = RingCollective::baseline(CollectiveKind::AllReduce, payload, &s).simulate(&s);
        assert_eq!(ar.cycles, rs.cycles + ag.cycles);
        assert_eq!(ar.stats.total(), rs.stats.total() + ag.stats.total());
    }

    #[test]
    fn nmc_rs_is_faster_and_moves_less_data() {
        let s = sys();
        let payload = 64 * MB;
        let base =
            RingCollective::baseline(CollectiveKind::ReduceScatter, payload, &s).simulate(&s);
        let nmc = RingCollective::baseline(CollectiveKind::ReduceScatter, payload, &s)
            .with_nmc(true)
            .simulate(&s);
        assert!(nmc.cycles < base.cycles);
        assert!(nmc.stats.total() < base.stats.total());
        // Paper (Section 6.1.1): NMC speeds RS up by a few percent at
        // TP=8 (only the final step benefits; links dominate the rest).
        let gain = base.cycles as f64 / nmc.cycles as f64 - 1.0;
        assert!(gain > 0.01 && gain < 0.20, "NMC RS gain {gain:.3}");
    }

    #[test]
    fn nmc_benefit_shrinks_with_more_gpus() {
        let payload = 64 * MB;
        let gain = |gpus: usize| {
            let s = sys().with_num_gpus(gpus);
            let base = RingCollective::baseline(CollectiveKind::ReduceScatter, payload, &s)
                .simulate(&s)
                .cycles as f64;
            let nmc = RingCollective::baseline(CollectiveKind::ReduceScatter, payload, &s)
                .with_nmc(true)
                .simulate(&s)
                .cycles as f64;
            base / nmc - 1.0
        };
        assert!(
            gain(8) > gain(16),
            "NMC gain must shrink as ring steps grow"
        );
    }

    #[test]
    fn reference_model_tracks_simulation() {
        // The Figure 14 validation: simulator vs bandwidth model over
        // 6..192 MB on 4 GPUs, geomean error small.
        let s = sys().with_num_gpus(4);
        let mut errors = Vec::new();
        for mb in [6u64, 12, 24, 48, 96, 192] {
            let bytes = mb * MB;
            let sim = RingCollective::baseline(CollectiveKind::ReduceScatter, bytes, &s)
                .simulate(&s)
                .cycles as f64;
            let reference = reference_ring_rs_cycles(&s, bytes) as f64;
            errors.push((sim / reference).max(reference / sim));
        }
        let geo = t3_sim::geomean(&errors) - 1.0;
        assert!(geo < 0.10, "geomean error {geo:.3} should be <10%");
    }

    #[test]
    fn rs_scales_linearly_with_payload() {
        let s = sys();
        let t1 = RingCollective::baseline(CollectiveKind::ReduceScatter, 32 * MB, &s)
            .simulate(&s)
            .cycles as f64;
        let t2 = RingCollective::baseline(CollectiveKind::ReduceScatter, 64 * MB, &s)
            .simulate(&s)
            .cycles as f64;
        let ratio = t2 / t1;
        assert!(ratio > 1.7 && ratio < 2.1, "payload scaling ratio {ratio}");
    }

    #[test]
    fn traced_simulation_matches_untraced_and_counts_steps() {
        let s = sys();
        let ar = RingCollective::baseline(CollectiveKind::AllReduce, 16 * MB, &s);
        let plain = ar.simulate(&s);
        let mut ins = Instruments::full();
        let traced = ar.simulate_traced(&s, Some(&mut ins));
        assert_eq!(plain.cycles, traced.cycles);
        let tracer = ins.tracer.as_ref().unwrap();
        let steps = 2 * (s.num_gpus - 1);
        assert_eq!(
            tracer.count(|e| matches!(e, Event::ChunkSend { .. })),
            steps
        );
        assert_eq!(
            tracer.count(|e| matches!(e, Event::ChunkRecv { .. })),
            steps
        );
        assert_eq!(
            ins.metrics.as_ref().unwrap().counter("collective.steps"),
            steps as u64
        );
    }

    #[test]
    #[should_panic(expected = "at least one CU")]
    fn zero_cus_rejected() {
        let s = sys();
        let _ = RingCollective::baseline(CollectiveKind::ReduceScatter, MB, &s).with_cu_count(0);
    }
}
