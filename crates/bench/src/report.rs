//! Plain-text table rendering for the regeneration targets.
//!
//! Every figure/table function in [`crate::experiments`] produces a
//! [`Table`]; the `figures` binary prints them so the output can be
//! diffed against EXPERIMENTS.md.

use std::fmt;

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
    sim_cycles: u64,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new<S: Into<String>>(title: S, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            sim_cycles: 0,
        }
    }

    /// Adds `cycles` to the table's simulated-cycle tally. Experiment
    /// functions call this as they run simulations, and the runtime's
    /// per-job report rows pick the total up through
    /// [`Table::sim_cycles`]. Purely additive accounting — never part
    /// of the rendered text.
    pub fn tally_cycles(&mut self, cycles: u64) -> &mut Self {
        self.sim_cycles += cycles;
        self
    }

    /// Total simulated cycles tallied while building this table (0
    /// for purely analytic tables).
    pub fn sim_cycles(&self) -> u64 {
        self.sim_cycles
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a free-form note printed under the table.
    pub fn note<S: Into<String>>(&mut self, note: S) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor for tests.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let line: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            writeln!(f, "  {}", line.join("  "))
        };
        print_row(f, &self.header)?;
        let underline: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        print_row(f, &underline)?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Formats cycles as microseconds at the given clock.
pub fn us(cycles: u64, clock_ghz: f64) -> String {
    format!("{:.1}", t3_sim::cycles_to_us(cycles, clock_ghz))
}

/// Formats a ratio as `1.23x`.
pub fn x(ratio: f64) -> String {
    format!("{ratio:.2}x")
}

/// Formats a fraction as a percentage.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats bytes as MB.
pub fn mb(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["a", "bbbb"]);
        t.row(vec!["x".into(), "y".into()]);
        t.note("hello");
        let s = t.to_string();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("note: hello"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.cell(0, 1), "y");
    }

    #[test]
    fn cycle_tally_accumulates_and_stays_out_of_text() {
        let mut t = Table::new("Demo", &["a"]);
        t.row(vec!["x".into()]);
        t.tally_cycles(100).tally_cycles(23);
        assert_eq!(t.sim_cycles(), 123);
        assert!(!t.to_string().contains("123"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_rejected() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(us(1_400_000, 1.4), "1000.0");
        assert_eq!(x(1.234), "1.23x");
        assert_eq!(pct(0.305), "30.5%");
        assert_eq!(mb(2_000_000), "2.0");
    }
}
