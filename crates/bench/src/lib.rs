//! Benchmark harness for the T3 reproduction.
//!
//! [`experiments`] contains one regeneration function per paper table
//! and figure; [`jobs`] wraps each target as a fingerprinted
//! `t3-runtime` job so the `figures` binary (`cargo run --release -p
//! t3-bench --bin figures -- <target> [--jobs N]`) can run them on a
//! parallel worker pool with deterministic, submission-ordered output
//! and a content-addressed result cache. The `benches/` targets reuse
//! the same entry points on scaled workloads through the
//! self-contained [`harness`] timer (no external bench framework —
//! the workspace builds offline).

pub mod experiments;
pub mod harness;
pub mod jobs;
pub mod report;
