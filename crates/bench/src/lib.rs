//! Benchmark harness for the T3 reproduction.
//!
//! [`experiments`] contains one regeneration function per paper table
//! and figure; the `figures` binary (`cargo run --release -p t3-bench
//! --bin figures -- <target>`) prints them, and the Criterion benches
//! reuse the same entry points on scaled workloads.

pub mod experiments;
pub mod report;
