//! Benchmark harness for the T3 reproduction.
//!
//! [`experiments`] contains one regeneration function per paper table
//! and figure; the `figures` binary (`cargo run --release -p t3-bench
//! --bin figures -- <target>`) prints them, and the `benches/` targets
//! reuse the same entry points on scaled workloads through the
//! self-contained [`harness`] timer (no external bench framework —
//! the workspace builds offline).

pub mod experiments;
pub mod harness;
pub mod report;
