//! Figure regeneration as enumerable runtime jobs.
//!
//! Every `figures` target is one [`Job`]: a named closure that builds
//! its table off-thread and returns the exact bytes a sequential run
//! would have printed, plus the simulated-cycle tally. The
//! [`t3_runtime`] scheduler merges outputs in submission order, so
//! `figures all --jobs N` is byte-identical to `--jobs 1` — which is
//! itself byte-identical to the historical sequential loop.
//!
//! Job identity for the result cache is the canonical fingerprint of
//! everything that shapes the output: the target name, the workload
//! scale, the topology (for the one target that reads it), and
//! [`WORKLOAD_REV`].

use t3_runtime::{Fingerprint, FingerprintBuilder, Job, JobGraph, JobOutput};
use t3_spec::sweep::{SweepPlan, SPEC_REV};
use t3_spec::{exec, SystemSpec, WorkloadSpec};

use crate::experiments::{self, ExperimentScale};
use crate::report::Table;

/// Workload revision folded into every job fingerprint. The
/// fingerprint covers the experiment *config*, not the simulator
/// *code* — bump this whenever a simulator or experiment change must
/// invalidate previously cached results.
pub const WORKLOAD_REV: u64 = 1;

/// Every figures target, in `figures all` emission order.
pub const ALL_TARGETS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "fig4",
    "fig6",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "multinode",
    "extensions",
    "sweep",
    "serving",
    "serving-fused",
    "ff-speedup",
];

/// A cheap-but-representative target subset for smoke tests of the
/// parallel path: the analytic tables plus three genuinely simulating
/// targets (the fig4 overlap anatomy, the fig14 validation runs, and
/// the serving study so the perf gate covers serving cycles). Kept
/// fast enough for debug-profile test binaries — the heavy
/// matrix/multinode targets are exercised by `figures all` in CI's
/// release smoke run instead.
pub const SMOKE_TARGETS: &[&str] = &["table1", "table2", "table3", "fig4", "fig14", "serving"];

/// The canonical config fingerprint of one target's job. `topology`
/// participates only for the `multinode` target — the only one whose
/// output depends on it — so a `--topology` flag never invalidates
/// unrelated cache entries.
pub fn fingerprint_for(
    target: &str,
    scale: ExperimentScale,
    topology: Option<&str>,
) -> Fingerprint {
    let b = FingerprintBuilder::new()
        .str("experiment", "t3-figures")
        .u64("workload_rev", WORKLOAD_REV)
        .str("target", target)
        .u64("token_divisor", scale.token_divisor);
    if target == "multinode" {
        b.opt_str("topology", topology).finish()
    } else {
        b.finish()
    }
}

/// What `println!("{table}")` would have emitted, as a [`JobOutput`].
fn render(table: &Table) -> JobOutput {
    let mut out = JobOutput::text(format!("{table}\n"));
    out.sim_cycles = table.sim_cycles();
    out
}

/// Builds the job for one target; `None` for unknown target names.
pub fn job_for(target: &str, scale: ExperimentScale, topology: Option<&str>) -> Option<Job> {
    let fp = fingerprint_for(target, scale, topology);
    let topology: Option<String> = topology.map(str::to_string);
    let table: Box<dyn FnOnce() -> Table + Send> = match target {
        "table1" => Box::new(experiments::table1),
        "table2" => Box::new(experiments::table2),
        "table3" => Box::new(experiments::table3),
        "fig4" => Box::new(experiments::fig4),
        "fig6" => Box::new(move || experiments::fig6(scale)),
        "fig14" => Box::new(experiments::fig14),
        "fig15" => Box::new(move || {
            experiments::fig15(&experiments::run_sublayer_matrix(
                &experiments::main_study_models(),
                scale,
            ))
        }),
        "fig16" => Box::new(move || {
            experiments::fig16(&experiments::run_sublayer_matrix(
                &experiments::main_study_models(),
                scale,
            ))
        }),
        "fig17" => Box::new(move || experiments::fig17(scale)),
        "fig18" => Box::new(move || {
            experiments::fig18(&experiments::run_sublayer_matrix(
                &experiments::main_study_models(),
                scale,
            ))
        }),
        "fig19" => Box::new(move || experiments::fig19(scale)),
        "fig20" => Box::new(move || experiments::fig20(scale)),
        "multinode" => Box::new(move || experiments::multinode(scale, topology.as_deref())),
        "extensions" => Box::new(move || experiments::extensions(scale)),
        "sweep" => Box::new(experiments::sweep),
        "serving" => Box::new(move || experiments::serving(scale)),
        "serving-fused" => Box::new(move || experiments::serving_fused(scale)),
        // Not a plain table job: the wall measurements ride along as
        // report metrics, so the closure builds the JobOutput itself.
        "ff-speedup" => {
            return Some(Job::new(target, fp, move || {
                let (table, metrics) = experiments::ff_speedup(scale);
                let mut out = render(&table);
                out.metrics.extend(metrics);
                out
            }))
        }
        _ => return None,
    };
    Some(Job::new(target, fp, move || render(&table())))
}

/// Reads and expands a workload/system spec pair from disk. Errors
/// are the spec frontend's `file:line` diagnostics (or the I/O
/// failure), ready for the CLI's usage path.
pub fn load_sweep_plan(workload_path: &str, system_path: &str) -> Result<SweepPlan, String> {
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let w = WorkloadSpec::parse(workload_path, &read(workload_path)?).map_err(|e| e.to_string())?;
    let s = SystemSpec::parse(system_path, &read(system_path)?).map_err(|e| e.to_string())?;
    SweepPlan::expand(workload_path, &w, &s).map_err(|e| e.to_string())
}

/// One expanded sweep as runtime jobs: a header job (banner + column
/// line) followed by one job per point, in enumeration order. Point
/// fingerprints come from the spec content ([`t3_spec::ResolvedPoint`]
/// fields plus the scale), so reruns and textually identical specs hit
/// the cache while any semantic edit misses.
pub fn sweep_jobs(plan: &SweepPlan, scale: ExperimentScale) -> Vec<Job> {
    let mut jobs = Vec::with_capacity(plan.points.len() + 1);
    let header_fp = FingerprintBuilder::new()
        .str("experiment", "t3-sweep-header")
        .u64("spec_rev", SPEC_REV)
        .str("workload", &plan.workload)
        .str("system", &plan.system)
        .finish();
    let header = exec::header_lines(&plan.workload, &plan.system);
    jobs.push(Job::new("sweep-header", header_fp, move || {
        JobOutput::text(header)
    }));
    for point in &plan.points {
        let name = format!("sweep[{}]", point.label());
        let fp = point.fingerprint(scale.token_divisor);
        let point = point.clone();
        jobs.push(Job::new(&name, fp, move || {
            let out = exec::simulate_point(&point, scale.token_divisor);
            let mut job_out = JobOutput::text(exec::row_line(&out));
            job_out.sim_cycles = out.iter_cycles;
            job_out
                .metrics
                .insert("iter_cycles".into(), out.iter_cycles);
            job_out
                .metrics
                .insert("pp_exposed_cycles".into(), out.pp_exposed_cycles);
            job_out
                .metrics
                .insert("dp_exposed_cycles".into(), out.dp_exposed_cycles);
            job_out
        }));
    }
    jobs
}

/// Builds the dependency-free job graph for a target list, expanding
/// `all` in place. Errors name the first unknown target.
pub fn figure_job_graph(
    targets: &[String],
    scale: ExperimentScale,
    topology: Option<&str>,
) -> Result<JobGraph, String> {
    figure_job_graph_with_sweep(targets, scale, topology, None)
}

/// [`figure_job_graph`] plus an optional expanded spec sweep. With a
/// plan, an explicit `sweep` target becomes the spec jobs (so
/// `figures sweep w.t3w s.t3s` runs exactly the sweep); `all` keeps
/// its historical meaning — the legacy target list, including the
/// compute-scaling `sweep` table — and the spec jobs append at the
/// end when no explicit `sweep` target claimed them.
pub fn figure_job_graph_with_sweep(
    targets: &[String],
    scale: ExperimentScale,
    topology: Option<&str>,
    sweep: Option<&SweepPlan>,
) -> Result<JobGraph, String> {
    let mut graph = JobGraph::new();
    let mut sweep_added = false;
    for target in targets {
        if target == "all" {
            for t in ALL_TARGETS {
                graph.add(job_for(t, scale, topology).expect("ALL_TARGETS are known"));
            }
        } else if target == "sweep" && sweep.is_some() {
            for job in sweep_jobs(sweep.expect("checked"), scale) {
                graph.add(job);
            }
            sweep_added = true;
        } else {
            let job = job_for(target, scale, topology)
                .ok_or_else(|| format!("unknown target: {target}"))?;
            graph.add(job);
        }
    }
    if let Some(plan) = sweep {
        if !sweep_added {
            for job in sweep_jobs(plan, scale) {
                graph.add(job);
            }
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_all_target_resolves() {
        for t in ALL_TARGETS {
            assert!(
                job_for(t, ExperimentScale::FAST, None).is_some(),
                "target {t} must build"
            );
        }
        assert!(job_for("nonsense", ExperimentScale::FAST, None).is_none());
    }

    #[test]
    fn smoke_targets_are_a_subset_of_all() {
        for t in SMOKE_TARGETS {
            assert!(ALL_TARGETS.contains(t), "{t} missing from ALL_TARGETS");
        }
    }

    #[test]
    fn fingerprints_separate_targets_scales_and_topology() {
        let fast = ExperimentScale::FAST;
        let full = ExperimentScale::FULL;
        assert_ne!(
            fingerprint_for("fig16", fast, None),
            fingerprint_for("fig15", fast, None)
        );
        assert_ne!(
            fingerprint_for("fig16", fast, None),
            fingerprint_for("fig16", full, None)
        );
        // Topology shapes only the multinode output...
        assert_ne!(
            fingerprint_for("multinode", fast, Some("switch")),
            fingerprint_for("multinode", fast, None)
        );
        // ...and is deliberately ignored everywhere else.
        assert_eq!(
            fingerprint_for("fig16", fast, Some("switch")),
            fingerprint_for("fig16", fast, None)
        );
        // Stability: same config, same fingerprint.
        assert_eq!(
            fingerprint_for("fig16", fast, None),
            fingerprint_for("fig16", fast, None)
        );
    }

    #[test]
    fn graph_expands_all_in_order() {
        let graph =
            figure_job_graph(&["all".to_string()], ExperimentScale::FAST, None).expect("builds");
        assert_eq!(graph.len(), ALL_TARGETS.len());
        assert_eq!(graph.names().collect::<Vec<_>>(), ALL_TARGETS);
        let err = figure_job_graph(&["bogus".to_string()], ExperimentScale::FAST, None)
            .expect_err("unknown target");
        assert!(err.contains("bogus"));
    }

    /// A 2-point sweep plan parsed from inline spec text, so the
    /// sweep-path tests exercise the same frontend as the CLI.
    fn tiny_plan(seq_len: u64) -> SweepPlan {
        let w = format!(
            "workload \"tiny\"\n[model]\nzoo = t-nlg\nseq_len = {seq_len}\n\
             [sweep]\nmode = [sequential, t3mca]\n"
        );
        let s = "system \"mini\"\n[topology]\nkind = ring\n";
        let w = WorkloadSpec::parse("tiny.t3w", &w).expect("workload parses");
        let s = SystemSpec::parse("mini.t3s", s).expect("system parses");
        SweepPlan::expand("tiny.t3w", &w, &s).expect("expands")
    }

    #[test]
    fn sweep_jobs_emit_header_then_points_in_plan_order() {
        let plan = tiny_plan(512);
        let jobs = sweep_jobs(&plan, ExperimentScale::FAST);
        assert_eq!(jobs.len(), plan.points.len() + 1);
        assert_eq!(jobs[0].name(), "sweep-header");
        for (job, point) in jobs[1..].iter().zip(&plan.points) {
            assert_eq!(job.name(), format!("sweep[{}]", point.label()));
        }
    }

    #[test]
    fn sweep_fingerprints_derive_from_spec_content() {
        let a = sweep_jobs(&tiny_plan(512), ExperimentScale::FAST);
        let b = sweep_jobs(&tiny_plan(512), ExperimentScale::FAST);
        let edited = sweep_jobs(&tiny_plan(1024), ExperimentScale::FAST);
        let full = sweep_jobs(&tiny_plan(512), ExperimentScale::FULL);
        // Textually identical specs hit the cache...
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fingerprint(), y.fingerprint());
        }
        // ...a semantic edit misses on every point...
        for (x, y) in a[1..].iter().zip(&edited[1..]) {
            assert_ne!(x.fingerprint(), y.fingerprint());
        }
        // ...and so does a scale change (token divisor is hashed).
        for (x, y) in a[1..].iter().zip(&full[1..]) {
            assert_ne!(x.fingerprint(), y.fingerprint());
        }
    }

    #[test]
    fn explicit_sweep_target_runs_the_spec_jobs() {
        let plan = tiny_plan(512);
        let graph = figure_job_graph_with_sweep(
            &["sweep".to_string()],
            ExperimentScale::FAST,
            None,
            Some(&plan),
        )
        .expect("builds");
        let names: Vec<_> = graph.names().collect();
        assert_eq!(names[0], "sweep-header");
        assert_eq!(names.len(), plan.points.len() + 1);
        // Without a plan, `sweep` keeps its legacy compute-scaling
        // meaning: a single job of that name.
        let legacy =
            figure_job_graph(&["sweep".to_string()], ExperimentScale::FAST, None).expect("builds");
        assert_eq!(legacy.names().collect::<Vec<_>>(), vec!["sweep"]);
    }

    #[test]
    fn spec_pair_without_sweep_target_appends_the_jobs() {
        let plan = tiny_plan(512);
        let graph = figure_job_graph_with_sweep(
            &["table1".to_string()],
            ExperimentScale::FAST,
            None,
            Some(&plan),
        )
        .expect("builds");
        let names: Vec<_> = graph.names().collect();
        assert_eq!(names[0], "table1");
        assert_eq!(names[1], "sweep-header");
        assert_eq!(names.len(), plan.points.len() + 2);
    }

    #[test]
    fn job_output_matches_direct_call() {
        let job = job_for("table1", ExperimentScale::FAST, None).expect("known");
        assert_eq!(job.name(), "table1");
        // The runtime runs the closure on a worker; call the
        // experiment directly here and compare the bytes.
        let direct = format!("{}\n", experiments::table1());
        let summary = t3_runtime::run(
            {
                let mut g = JobGraph::new();
                g.add(job);
                g
            },
            &t3_runtime::RunOptions::with_workers(1),
        );
        assert_eq!(summary.merged_stdout(), direct);
    }
}
