//! Figure regeneration as enumerable runtime jobs.
//!
//! Every `figures` target is one [`Job`]: a named closure that builds
//! its table off-thread and returns the exact bytes a sequential run
//! would have printed, plus the simulated-cycle tally. The
//! [`t3_runtime`] scheduler merges outputs in submission order, so
//! `figures all --jobs N` is byte-identical to `--jobs 1` — which is
//! itself byte-identical to the historical sequential loop.
//!
//! Job identity for the result cache is the canonical fingerprint of
//! everything that shapes the output: the target name, the workload
//! scale, the topology (for the one target that reads it), and
//! [`WORKLOAD_REV`].

use t3_runtime::{Fingerprint, FingerprintBuilder, Job, JobGraph, JobOutput};

use crate::experiments::{self, ExperimentScale};
use crate::report::Table;

/// Workload revision folded into every job fingerprint. The
/// fingerprint covers the experiment *config*, not the simulator
/// *code* — bump this whenever a simulator or experiment change must
/// invalidate previously cached results.
pub const WORKLOAD_REV: u64 = 1;

/// Every figures target, in `figures all` emission order.
pub const ALL_TARGETS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "fig4",
    "fig6",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "multinode",
    "extensions",
    "sweep",
    "serving",
    "serving-fused",
    "ff-speedup",
];

/// A cheap-but-representative target subset for smoke tests of the
/// parallel path: the analytic tables plus three genuinely simulating
/// targets (the fig4 overlap anatomy, the fig14 validation runs, and
/// the serving study so the perf gate covers serving cycles). Kept
/// fast enough for debug-profile test binaries — the heavy
/// matrix/multinode targets are exercised by `figures all` in CI's
/// release smoke run instead.
pub const SMOKE_TARGETS: &[&str] = &["table1", "table2", "table3", "fig4", "fig14", "serving"];

/// The canonical config fingerprint of one target's job. `topology`
/// participates only for the `multinode` target — the only one whose
/// output depends on it — so a `--topology` flag never invalidates
/// unrelated cache entries.
pub fn fingerprint_for(
    target: &str,
    scale: ExperimentScale,
    topology: Option<&str>,
) -> Fingerprint {
    let b = FingerprintBuilder::new()
        .str("experiment", "t3-figures")
        .u64("workload_rev", WORKLOAD_REV)
        .str("target", target)
        .u64("token_divisor", scale.token_divisor);
    if target == "multinode" {
        b.opt_str("topology", topology).finish()
    } else {
        b.finish()
    }
}

/// What `println!("{table}")` would have emitted, as a [`JobOutput`].
fn render(table: &Table) -> JobOutput {
    let mut out = JobOutput::text(format!("{table}\n"));
    out.sim_cycles = table.sim_cycles();
    out
}

/// Builds the job for one target; `None` for unknown target names.
pub fn job_for(target: &str, scale: ExperimentScale, topology: Option<&str>) -> Option<Job> {
    let fp = fingerprint_for(target, scale, topology);
    let topology: Option<String> = topology.map(str::to_string);
    let table: Box<dyn FnOnce() -> Table + Send> = match target {
        "table1" => Box::new(experiments::table1),
        "table2" => Box::new(experiments::table2),
        "table3" => Box::new(experiments::table3),
        "fig4" => Box::new(experiments::fig4),
        "fig6" => Box::new(move || experiments::fig6(scale)),
        "fig14" => Box::new(experiments::fig14),
        "fig15" => Box::new(move || {
            experiments::fig15(&experiments::run_sublayer_matrix(
                &experiments::main_study_models(),
                scale,
            ))
        }),
        "fig16" => Box::new(move || {
            experiments::fig16(&experiments::run_sublayer_matrix(
                &experiments::main_study_models(),
                scale,
            ))
        }),
        "fig17" => Box::new(move || experiments::fig17(scale)),
        "fig18" => Box::new(move || {
            experiments::fig18(&experiments::run_sublayer_matrix(
                &experiments::main_study_models(),
                scale,
            ))
        }),
        "fig19" => Box::new(move || experiments::fig19(scale)),
        "fig20" => Box::new(move || experiments::fig20(scale)),
        "multinode" => Box::new(move || experiments::multinode(scale, topology.as_deref())),
        "extensions" => Box::new(move || experiments::extensions(scale)),
        "sweep" => Box::new(experiments::sweep),
        "serving" => Box::new(move || experiments::serving(scale)),
        "serving-fused" => Box::new(move || experiments::serving_fused(scale)),
        // Not a plain table job: the wall measurements ride along as
        // report metrics, so the closure builds the JobOutput itself.
        "ff-speedup" => {
            return Some(Job::new(target, fp, move || {
                let (table, metrics) = experiments::ff_speedup(scale);
                let mut out = render(&table);
                out.metrics.extend(metrics);
                out
            }))
        }
        _ => return None,
    };
    Some(Job::new(target, fp, move || render(&table())))
}

/// Builds the dependency-free job graph for a target list, expanding
/// `all` in place. Errors name the first unknown target.
pub fn figure_job_graph(
    targets: &[String],
    scale: ExperimentScale,
    topology: Option<&str>,
) -> Result<JobGraph, String> {
    let mut graph = JobGraph::new();
    for target in targets {
        if target == "all" {
            for t in ALL_TARGETS {
                graph.add(job_for(t, scale, topology).expect("ALL_TARGETS are known"));
            }
        } else {
            let job = job_for(target, scale, topology)
                .ok_or_else(|| format!("unknown target: {target}"))?;
            graph.add(job);
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_all_target_resolves() {
        for t in ALL_TARGETS {
            assert!(
                job_for(t, ExperimentScale::FAST, None).is_some(),
                "target {t} must build"
            );
        }
        assert!(job_for("nonsense", ExperimentScale::FAST, None).is_none());
    }

    #[test]
    fn smoke_targets_are_a_subset_of_all() {
        for t in SMOKE_TARGETS {
            assert!(ALL_TARGETS.contains(t), "{t} missing from ALL_TARGETS");
        }
    }

    #[test]
    fn fingerprints_separate_targets_scales_and_topology() {
        let fast = ExperimentScale::FAST;
        let full = ExperimentScale::FULL;
        assert_ne!(
            fingerprint_for("fig16", fast, None),
            fingerprint_for("fig15", fast, None)
        );
        assert_ne!(
            fingerprint_for("fig16", fast, None),
            fingerprint_for("fig16", full, None)
        );
        // Topology shapes only the multinode output...
        assert_ne!(
            fingerprint_for("multinode", fast, Some("switch")),
            fingerprint_for("multinode", fast, None)
        );
        // ...and is deliberately ignored everywhere else.
        assert_eq!(
            fingerprint_for("fig16", fast, Some("switch")),
            fingerprint_for("fig16", fast, None)
        );
        // Stability: same config, same fingerprint.
        assert_eq!(
            fingerprint_for("fig16", fast, None),
            fingerprint_for("fig16", fast, None)
        );
    }

    #[test]
    fn graph_expands_all_in_order() {
        let graph =
            figure_job_graph(&["all".to_string()], ExperimentScale::FAST, None).expect("builds");
        assert_eq!(graph.len(), ALL_TARGETS.len());
        assert_eq!(graph.names().collect::<Vec<_>>(), ALL_TARGETS);
        let err = figure_job_graph(&["bogus".to_string()], ExperimentScale::FAST, None)
            .expect_err("unknown target");
        assert!(err.contains("bogus"));
    }

    #[test]
    fn job_output_matches_direct_call() {
        let job = job_for("table1", ExperimentScale::FAST, None).expect("known");
        assert_eq!(job.name(), "table1");
        // The runtime runs the closure on a worker; call the
        // experiment directly here and compare the bytes.
        let direct = format!("{}\n", experiments::table1());
        let summary = t3_runtime::run(
            {
                let mut g = JobGraph::new();
                g.add(job);
                g
            },
            &t3_runtime::RunOptions::with_workers(1),
        );
        assert_eq!(summary.merged_stdout(), direct);
    }
}
