//! One regeneration function per paper table and figure.
//!
//! Each function reproduces the rows/series the paper reports, using
//! the workspace's simulators. `scale.token_divisor` shrinks the token
//! dimension of every workload for quick runs (tests use it; the
//! `figures` binary defaults to full scale).

use crate::report::{mb, pct, us, x, Table};
use t3_core::agfuse::{run_fused_ag_gemm, sequential_ag_gemm, AgFuseOptions};
use t3_core::configs::{Configuration, SublayerOutcome};
use t3_core::engine::{run_fused_gemm_direct_rs, run_fused_gemm_rs, FusedOptions, PolicyChoice};
use t3_core::multigpu::{
    run_multi_gpu_fused_rs, run_multi_gpu_fused_rs_on, run_multi_gpu_fused_rs_sharded,
};
use t3_core::study;
use t3_gpu::engine::{run_gemm_isolated_traced, WritePolicy};
use t3_gpu::gemm::{GemmGrid, GemmShape};
use t3_models::e2e::{self, E2eParams, Phase};
use t3_models::moe::{moe_combine_study, scheduled_all_to_all_cycles, MoeConfig};
use t3_models::zoo::{self, ModelConfig, Sublayer};
use t3_serve::cost::EngineMode;
use t3_serve::study as serve_study;
use t3_sim::config::{LinkConfig, SystemConfig};
use t3_sim::stats::TrafficClass;
use t3_sim::{geomean, SimMode};
use t3_topo::Topology;

/// Workload scaling for quick runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentScale {
    /// Divides every sublayer's token count (1 = paper scale).
    pub token_divisor: u64,
}

impl ExperimentScale {
    /// Paper-scale workloads.
    pub const FULL: ExperimentScale = ExperimentScale { token_divisor: 1 };

    /// Quick runs for tests and smoke checks.
    pub const FAST: ExperimentScale = ExperimentScale { token_divisor: 8 };

    fn shape(&self, model: &ModelConfig, sub: Sublayer, tp: u64) -> GemmShape {
        let mut s = model.sublayer_gemm(sub, tp);
        s.m = (s.m / self.token_divisor).max(256);
        s
    }
}

/// The (model, TP) pairs of the paper's main sublayer studies
/// (Figures 15, 16, 18).
pub fn main_study_models() -> Vec<(ModelConfig, u64)> {
    vec![
        (zoo::mega_gpt2(), 8),
        (zoo::mega_gpt2(), 16),
        (zoo::t_nlg(), 8),
        (zoo::t_nlg(), 16),
    ]
}

/// The large-model study of Figure 20 / Section 6.4.
pub fn large_study_models() -> Vec<(ModelConfig, u64)> {
    vec![(zoo::gpt3(), 32), (zoo::palm(), 32), (zoo::mt_nlg(), 32)]
}

fn system_for(tp: u64) -> SystemConfig {
    SystemConfig::paper_default().with_num_gpus(tp as usize)
}

// ---------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------

/// Table 1: the simulated system configuration.
pub fn table1() -> Table {
    let cfg = SystemConfig::paper_default();
    let mut t = Table::new("Table 1: simulation setup", &["parameter", "value"]);
    let rows = [
        (
            "#GPUs",
            "8, 16 (32 for large models; 4 for validation)".to_string(),
        ),
        (
            "inter-GPU interconnect",
            format!(
                "ring, {:.0} GB/s bi-directional, {:.0} ns link latency",
                cfg.link.link_gb_s, cfg.link.latency_ns
            ),
        ),
        (
            "#CUs",
            format!("{}, {} GHz", cfg.gpu.num_cus, cfg.gpu.clock_ghz),
        ),
        (
            "GEMM throughput",
            format!(
                "{:.0} TFLOP/s FP16 peak (sustained {:.0}%)",
                cfg.gpu.peak_tflops(),
                cfg.gpu.gemm_efficiency * 100.0
            ),
        ),
        (
            "LLC",
            format!(
                "{} MB, {}-way, {} B lines",
                cfg.mem.llc_capacity >> 20,
                cfg.mem.llc_ways,
                cfg.mem.llc_line
            ),
        ),
        (
            "HBM2",
            format!(
                "{:.0} GB/s, {} B transactions, queue depth {}, NMC CCDWL x{:.2}",
                cfg.mem.hbm_gb_s,
                cfg.mem.txn_bytes,
                cfg.mem.dram_queue_capacity,
                cfg.mem.nmc_cost_multiplier
            ),
        ),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    t
}

/// Table 2: the model zoo.
pub fn table2() -> Table {
    let mut t = Table::new(
        "Table 2: studied models, hyperparameters & setup",
        &[
            "model",
            "hidden",
            "layers",
            "tokens (SL x B)",
            "TP degrees",
            "~params",
        ],
    );
    for m in zoo::all_models() {
        t.row(vec![
            m.name.to_string(),
            m.hidden.to_string(),
            m.layers.to_string(),
            format!("{} ({} x {})", m.tokens(), m.seq_len, m.batch),
            format!("{:?}", m.tp_degrees),
            format!("{:.0e}", m.approx_params),
        ]);
    }
    t
}

/// Table 3: qualitative comparison with prior approaches.
pub fn table3() -> Table {
    let mut t = Table::new(
        "Table 3: T3-MCA vs prior work",
        &[
            "approach",
            "GPU support",
            "transparent",
            "overlaps comm",
            "reduces contention",
            "no extra accelerator",
            "topology independent",
        ],
    );
    let rows: [(&str, [&str; 6]); 5] = [
        ("In-switch", ["yes", "yes", "no", "no", "no", "no"]),
        ("ACE", ["yes", "yes", "no", "yes", "no", "no"]),
        ("CoCoNet", ["yes", "no", "yes", "no", "yes", "yes"]),
        (
            "Google Decomposition",
            ["no (TPU)", "no", "yes", "no", "yes", "yes"],
        ),
        (
            "T3-MCA (this repo)",
            ["yes", "yes", "yes", "yes", "yes", "yes"],
        ),
    ];
    for (name, cells) in rows {
        let mut row = vec![name.to_string()];
        row.extend(cells.iter().map(|s| s.to_string()));
        t.row(row);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 4: sliced GEMM -> AR fraction of a layer
// ---------------------------------------------------------------------

/// Figure 4: fraction of training/prompt time in "sliced GEMM -> AR".
pub fn fig4() -> Table {
    let params = E2eParams::default();
    let mut t = Table::new(
        "Figure 4: time in sliced GEMM -> AR (RS+AG shown separately)",
        &["model", "TP", "phase", "sliced GEMM+AR", "RS+AG alone"],
    );
    for model in zoo::all_models() {
        for &tp in model.tp_degrees {
            let sys = system_for(tp);
            for (phase, label) in [
                (Phase::Training, "training"),
                (Phase::InferencePrompt, "inference (prompt)"),
            ] {
                let lt = e2e::layer_time(&sys, &model, tp, phase, &params);
                t.row(vec![
                    model.name.to_string(),
                    tp.to_string(),
                    label.to_string(),
                    pct(lt.sliced_fraction()),
                    pct(lt.comm_fraction()),
                ]);
            }
        }
    }
    let sys = system_for(16);
    let lt = e2e::layer_time(
        &sys,
        &zoo::t_nlg(),
        16,
        Phase::Training,
        &E2eParams::default(),
    );
    t.note(format!(
        "2x faster compute pushes T-NLG's sliced fraction to {} (Section 2.4)",
        pct(lt.sliced_fraction_with_faster_compute(2.0))
    ));
    t
}

// ---------------------------------------------------------------------
// Figure 6: CU-split overlap study
// ---------------------------------------------------------------------

/// Figure 6: potential overlap speedup under CU sharing, for the
/// Attn (OP) and FC-2 sublayers of Mega-GPT-2 and T-NLG at TP=8.
pub fn fig6(scale: ExperimentScale) -> Table {
    let mut t = Table::new(
        "Figure 6: CU-sharing study (GEMM CUs - AR CUs)",
        &[
            "layer",
            "split",
            "GEMM time (norm)",
            "AR time (norm)",
            "potential overlap speedup",
        ],
    );
    let mut per_split: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    for (model, _) in [(zoo::mega_gpt2(), 0), (zoo::t_nlg(), 0)] {
        for sub in [Sublayer::Op, Sublayer::Fc2] {
            let tp = 8;
            let sys = system_for(tp);
            let shape = scale.shape(&model, sub, tp);
            for row in study::cu_split_study(&sys, &shape) {
                per_split
                    .entry(row.label.clone())
                    .or_default()
                    .push(row.potential_overlap_speedup);
                t.row(vec![
                    format!("{} {}", model.name, sub.label()),
                    row.label,
                    format!("{:.2}", row.gemm_norm),
                    format!("{:.2}", row.ar_norm),
                    x(row.potential_overlap_speedup),
                ]);
            }
        }
    }
    for (label, speedups) in per_split {
        t.note(format!(
            "geomean potential speedup [{label}]: {}",
            x(geomean(&speedups))
        ));
    }
    t
}

// ---------------------------------------------------------------------
// Figure 14: reduce-scatter validation
// ---------------------------------------------------------------------

/// Figure 14: simulated ring-RS vs the bandwidth reference, 6-192 MB
/// on 4 GPUs.
pub fn fig14() -> Table {
    let sys = SystemConfig::paper_default().with_num_gpus(4);
    let mb_u = 1u64 << 20;
    let sizes: Vec<u64> = [6u64, 12, 24, 48, 96, 192]
        .iter()
        .map(|s| s * mb_u)
        .collect();
    let rows = study::rs_validation(&sys, &sizes);
    let mut t = Table::new(
        "Figure 14: multi-GPU reduce-scatter validation (4 GPUs)",
        &["payload (MB)", "simulated (us)", "reference (us)", "error"],
    );
    for r in &rows {
        t.tally_cycles(r.simulated_cycles);
        t.row(vec![
            (r.payload_bytes >> 20).to_string(),
            us(r.simulated_cycles, sys.gpu.clock_ghz),
            us(r.reference_cycles, sys.gpu.clock_ghz),
            pct(r.error),
        ]);
    }
    t.note(format!(
        "geomean error: {} (paper: 6% vs 4x MI210 hardware)",
        pct(study::validation_geomean_error(&rows))
    ));
    t
}

// ---------------------------------------------------------------------
// Figures 15 / 16 / 18: the sublayer matrix
// ---------------------------------------------------------------------

/// One sublayer's outcomes under every configuration.
#[derive(Debug, Clone)]
pub struct SublayerCase {
    /// Model name.
    pub model: String,
    /// TP degree.
    pub tp: u64,
    /// Which sublayer.
    pub sublayer: Sublayer,
    /// Outcomes, indexed like [`Configuration::ALL`].
    pub outcomes: Vec<SublayerOutcome>,
}

impl SublayerCase {
    /// The outcome for one configuration.
    pub fn outcome(&self, config: Configuration) -> &SublayerOutcome {
        &self.outcomes[Configuration::ALL
            .iter()
            .position(|&c| c == config)
            .expect("unknown configuration")]
    }

    /// Speedup of `config` over Sequential.
    pub fn speedup(&self, config: Configuration) -> f64 {
        self.outcome(config)
            .speedup_over(self.outcome(Configuration::Sequential))
    }
}

/// Runs the full sublayer matrix for `(model, tp)` pairs.
pub fn run_sublayer_matrix(
    pairs: &[(ModelConfig, u64)],
    scale: ExperimentScale,
) -> Vec<SublayerCase> {
    let mut cases = Vec::new();
    for (model, tp) in pairs {
        let sys = system_for(*tp);
        for sub in Sublayer::ALL {
            let shape = scale.shape(model, sub, *tp);
            let outcomes = Configuration::ALL
                .iter()
                .map(|c| c.run(&sys, &shape))
                .collect();
            cases.push(SublayerCase {
                model: model.name.to_string(),
                tp: *tp,
                sublayer: sub,
                outcomes,
            });
        }
    }
    cases
}

/// Sum of every configuration's total cycles across a case set — the
/// simulated work a matrix-derived table stands on.
fn matrix_cycles(cases: &[SublayerCase]) -> u64 {
    cases
        .iter()
        .flat_map(|c| c.outcomes.iter())
        .map(|o| o.total_cycles)
        .sum()
}

/// Figure 15: sublayer runtime distribution (GEMM / RS / AG) under the
/// Sequential baseline.
pub fn fig15(cases: &[SublayerCase]) -> Table {
    let clock = SystemConfig::paper_default().gpu.clock_ghz;
    let mut t = Table::new(
        "Figure 15: sublayer runtime distribution (Sequential)",
        &[
            "model",
            "TP",
            "sublayer",
            "GEMM (us)",
            "RS (us)",
            "AG (us)",
            "GEMM %",
            "RS %",
            "AG %",
        ],
    );
    t.tally_cycles(matrix_cycles(cases));
    for c in cases {
        let seq = c.outcome(Configuration::Sequential);
        let total = seq.total_cycles as f64;
        t.row(vec![
            c.model.clone(),
            c.tp.to_string(),
            c.sublayer.label().to_string(),
            us(seq.gemm_cycles, clock),
            us(seq.rs_cycles, clock),
            us(seq.ag_cycles, clock),
            pct(seq.gemm_cycles as f64 / total),
            pct(seq.rs_cycles as f64 / total),
            pct(seq.ag_cycles as f64 / total),
        ]);
    }
    t
}

/// Figure 16: sublayer speedups for every configuration over
/// Sequential.
pub fn fig16(cases: &[SublayerCase]) -> Table {
    let mut t = Table::new(
        "Figure 16: sublayer speedups over Sequential",
        &[
            "model",
            "TP",
            "sublayer",
            "T3",
            "T3-MCA",
            "Ideal-overlap",
            "Ideal-RS+NMC",
        ],
    );
    let configs = [
        Configuration::T3,
        Configuration::T3Mca,
        Configuration::IdealOverlap,
        Configuration::IdealRsNmc,
    ];
    t.tally_cycles(matrix_cycles(cases));
    for c in cases {
        let mut row = vec![
            c.model.clone(),
            c.tp.to_string(),
            c.sublayer.label().to_string(),
        ];
        row.extend(configs.iter().map(|&cfg| x(c.speedup(cfg))));
        t.row(row);
    }
    for cfg in configs {
        let speedups: Vec<f64> = cases.iter().map(|c| c.speedup(cfg)).collect();
        let max = speedups.iter().cloned().fold(f64::MIN, f64::max);
        t.note(format!(
            "{}: geomean {} / max {}",
            cfg.name(),
            x(geomean(&speedups)),
            x(max)
        ));
    }
    t
}

/// Figure 18: per-sublayer DRAM accesses by category, Sequential vs
/// T3-MCA, plus the paper's headline reductions.
pub fn fig18(cases: &[SublayerCase]) -> Table {
    let mut t = Table::new(
        "Figure 18: DRAM accesses per sublayer (MB per GPU)",
        &[
            "model",
            "TP",
            "sublayer",
            "config",
            "GEMM rd",
            "GEMM wr",
            "RS rd",
            "RS wr/upd",
            "AG rd",
            "AG wr",
            "total",
        ],
    );
    let mut reductions = Vec::new();
    let mut rs_read_ratios = Vec::new();
    let mut write_ratios = Vec::new();
    let mut gemm_read_ratios = Vec::new();
    t.tally_cycles(matrix_cycles(cases));
    for c in cases {
        let seq = c.outcome(Configuration::Sequential);
        let t3m = c.outcome(Configuration::T3Mca);
        for (label, s) in [("Sequential", &seq.stats), ("T3-MCA", &t3m.stats)] {
            t.row(vec![
                c.model.clone(),
                c.tp.to_string(),
                c.sublayer.label().to_string(),
                label.to_string(),
                mb(s.bytes(TrafficClass::GemmRead)),
                mb(s.bytes(TrafficClass::GemmWrite)),
                mb(s.bytes(TrafficClass::RsRead)),
                mb(s.bytes(TrafficClass::RsWrite) + s.bytes(TrafficClass::RsUpdate)),
                mb(s.bytes(TrafficClass::AgRead)),
                mb(s.bytes(TrafficClass::AgWrite)),
                mb(s.total()),
            ]);
        }
        reductions.push(1.0 - t3m.stats.total() as f64 / seq.stats.total() as f64);
        rs_read_ratios.push(
            seq.stats.bytes(TrafficClass::RsRead) as f64
                / t3m.stats.bytes(TrafficClass::RsRead).max(1) as f64,
        );
        write_ratios.push(seq.stats.total_writes() as f64 / t3m.stats.total_writes() as f64);
        gemm_read_ratios.push(
            seq.stats.bytes(TrafficClass::GemmRead) as f64
                / t3m.stats.bytes(TrafficClass::GemmRead).max(1) as f64,
        );
    }
    let max_red = reductions.iter().cloned().fold(f64::MIN, f64::max);
    t.note(format!(
        "data movement reduction: mean {} / max {} (paper: 22% geomean, 36% max)",
        pct(reductions.iter().sum::<f64>() / reductions.len() as f64),
        pct(max_red)
    ));
    t.note(format!(
        "RS reads reduced {} geomean (paper: 2.4x); writes {} (paper: ~1.1x); GEMM reads {} (paper: 1.56x)",
        x(geomean(&rs_read_ratios)),
        x(geomean(&write_ratios)),
        x(geomean(&gemm_read_ratios)),
    ));
    t
}

// ---------------------------------------------------------------------
// Figure 17: DRAM traffic timelines
// ---------------------------------------------------------------------

/// Figure 17: DRAM traffic over time for the baseline GEMM and T3's
/// fused GEMM-RS (T-NLG FC-2, TP=8, SL*B=4K), as GB/s per category.
pub fn fig17(scale: ExperimentScale) -> Table {
    let tp = 8u64;
    let sys = system_for(tp);
    let mut model = zoo::t_nlg();
    model.batch = 4; // SL*B = 4K as in the paper's Figure 17
    let shape = scale.shape(&model, Sublayer::Fc2, tp);
    let grid = GemmGrid::new(&sys.gpu, shape);
    let bucket = 16_384;
    let (base_run, base_ts) =
        run_gemm_isolated_traced(&sys, grid.clone(), WritePolicy::CachedLocal, Some(bucket));
    let base_ts = base_ts.expect("requested");
    let fused = run_fused_gemm_rs(
        &sys,
        grid,
        &FusedOptions {
            policy: PolicyChoice::McaDynamic,
            timeseries_bucket: Some(bucket),
            ..FusedOptions::default()
        },
    );
    let fused_ts = fused.timeseries.expect("requested");
    let mut t = Table::new(
        "Figure 17: DRAM traffic timeline (GB/s per 16K-cycle bucket)",
        &[
            "run",
            "bucket start (us)",
            "GEMM rd",
            "GEMM wr",
            "RS rd",
            "RS upd",
        ],
    );
    t.tally_cycles(base_run.cycles).tally_cycles(fused.cycles);
    let clock = sys.gpu.clock_ghz;
    let gbps = |bytes: u64, cycles: u64| -> String {
        format!("{:.0}", bytes as f64 / cycles as f64 * clock)
    };
    for (label, ts) in [("baseline GEMM", &base_ts), ("T3 fused GEMM-RS", &fused_ts)] {
        let small = ts.downsample(12);
        for (start, row) in small.rows() {
            t.row(vec![
                label.to_string(),
                us(start, clock),
                gbps(row[TrafficClass::GemmRead.index()], small.bucket_cycles()),
                gbps(row[TrafficClass::GemmWrite.index()], small.bucket_cycles()),
                gbps(row[TrafficClass::RsRead.index()], small.bucket_cycles()),
                gbps(row[TrafficClass::RsUpdate.index()], small.bucket_cycles()),
            ]);
        }
    }
    t.note("baseline shows per-stage read phases capped by bursty write phases; T3 adds overlapped RS reads/updates (paper Figure 17)");
    t
}

// ---------------------------------------------------------------------
// Figure 19: end-to-end speedups
// ---------------------------------------------------------------------

/// Figure 19: end-to-end training and inference-prompt speedups,
/// combining the analytical layer breakdown with simulated sublayer
/// speedups (the paper's Section 5.1.2 methodology).
pub fn fig19(scale: ExperimentScale) -> Table {
    let params = E2eParams::default();
    let mut t = Table::new(
        "Figure 19: end-to-end model speedups",
        &["model", "TP", "phase", "T3", "T3-MCA"],
    );
    let mut tr_mca = Vec::new();
    let mut inf_mca = Vec::new();
    for (model, tp) in main_study_models() {
        let sys = system_for(tp);
        let cases = run_sublayer_matrix(&[(model.clone(), tp)], scale);
        t.tally_cycles(matrix_cycles(&cases));
        let speedup_of = |config: Configuration, sub: Sublayer| -> f64 {
            cases
                .iter()
                .find(|c| c.sublayer == sub)
                .map(|c| c.speedup(config))
                .expect("sublayer present")
        };
        for (phase, label) in [
            (Phase::Training, "training"),
            (Phase::InferencePrompt, "inference (prompt)"),
        ] {
            let lt = e2e::layer_time(&sys, &model, tp, phase, &params);
            let s_t3 = lt.speedup_with(|sub| speedup_of(Configuration::T3, sub));
            let s_mca = lt.speedup_with(|sub| speedup_of(Configuration::T3Mca, sub));
            match phase {
                Phase::Training => tr_mca.push(s_mca),
                Phase::InferencePrompt => inf_mca.push(s_mca),
            }
            t.row(vec![
                model.name.to_string(),
                tp.to_string(),
                label.to_string(),
                x(s_t3),
                x(s_mca),
            ]);
        }
    }
    t.note(format!(
        "T3-MCA training: geomean {} / max {} (paper: 10% / 12%)",
        x(geomean(&tr_mca)),
        x(tr_mca.iter().cloned().fold(f64::MIN, f64::max))
    ));
    t.note(format!(
        "T3-MCA inference-prompt: geomean {} / max {} (paper: 12% / 15%)",
        x(geomean(&inf_mca)),
        x(inf_mca.iter().cloned().fold(f64::MIN, f64::max))
    ));
    t
}

// ---------------------------------------------------------------------
// Figure 20: larger models and future hardware
// ---------------------------------------------------------------------

/// Figure 20: sublayer speedups for ~500B-parameter models at TP=32,
/// on the base system and on GPU-2X-CU (Section 7.5), plus their
/// end-to-end effect.
pub fn fig20(scale: ExperimentScale) -> Table {
    let mut t = Table::new(
        "Figure 20: large models and 2x-compute future hardware",
        &[
            "model",
            "sublayer",
            "T3-MCA speedup (base)",
            "T3-MCA speedup (GPU-2X-CU)",
        ],
    );
    let params = E2eParams::default();
    let mut base_all = Vec::new();
    let mut e2e_notes = Vec::new();
    for (model, tp) in large_study_models() {
        let mut sub_speedups = Vec::new();
        for sub in Sublayer::ALL {
            let shape = scale.shape(&model, sub, tp);
            let row = study::future_hw_study(&shape, tp as usize);
            base_all.push(row.base_speedup);
            sub_speedups.push((sub, row.base_speedup));
            t.row(vec![
                model.name.to_string(),
                sub.label().to_string(),
                x(row.base_speedup),
                x(row.future_speedup),
            ]);
        }
        let sys = system_for(tp);
        let lt = e2e::layer_time(&sys, &model, tp, Phase::Training, &params);
        let s = lt.speedup_with(|sub| {
            sub_speedups
                .iter()
                .find(|(x, _)| *x == sub)
                .map(|(_, s)| *s)
                .expect("all sublayers present")
        });
        e2e_notes.push(format!("{} end-to-end training: {}", model.name, x(s)));
    }
    t.note(format!(
        "sublayer geomean (base): {} (paper: 29% geomean, 35% max)",
        x(geomean(&base_all))
    ));
    for note in e2e_notes {
        t.note(note);
    }
    t
}

// ---------------------------------------------------------------------
// Section 7 extensions and sweeps (beyond the paper's figures)
// ---------------------------------------------------------------------

/// The Section-7 extension studies: direct-RS on a fully-connected
/// topology (7.1), AG→consumer overlap (7.2), expert-parallel
/// all-to-all fusion (7.2), the generation phase (7.3), and
/// NMC-executed following ops (7.6).
pub fn extensions(scale: ExperimentScale) -> Table {
    let sys = system_for(8);
    let clock = sys.gpu.clock_ghz;
    let mut t = Table::new(
        "Section 7 extensions",
        &["study", "case", "sequential (us)", "T3 (us)", "speedup"],
    );
    // 7.1 direct-RS vs ring fusion on a T-NLG FC-2 sublayer.
    let shape = scale.shape(&zoo::t_nlg(), Sublayer::Fc2, 8);
    let grid = GemmGrid::new(&sys.gpu, shape);
    let seq = Configuration::Sequential.run(&sys, &shape);
    let ring = run_fused_gemm_rs(&sys, grid.clone(), &FusedOptions::default());
    let direct = run_fused_gemm_direct_rs(&sys, grid.clone(), &FusedOptions::default());
    t.tally_cycles(seq.total_cycles)
        .tally_cycles(ring.cycles)
        .tally_cycles(direct.cycles);
    for (case, cycles) in [
        ("ring fused GEMM-RS", ring.cycles),
        ("direct fused GEMM-RS", direct.cycles),
    ] {
        let seq_rs = seq.gemm_cycles + seq.rs_cycles;
        t.row(vec![
            "7.1 topology".into(),
            case.into(),
            us(seq_rs, clock),
            us(cycles, clock),
            x(seq_rs as f64 / cycles as f64),
        ]);
    }
    // 7.2 AG -> consumer GEMM.
    // Keep enough tile rows for several stages so the scheduling-hint
    // difference is visible even at fast scale.
    let ag_m = (8192 / scale.token_divisor).max(2048);
    let ag_grid = GemmGrid::new(&sys.gpu, GemmShape::new(ag_m, 1024, 1024));
    let ag_seq = sequential_ag_gemm(&sys, ag_grid.clone());
    for (case, aligned) in [("WGs follow arrival", true), ("no scheduling hints", false)] {
        let fused = run_fused_ag_gemm(
            &sys,
            ag_grid.clone(),
            &AgFuseOptions {
                arrival_aligned: aligned,
            },
        );
        t.tally_cycles(ag_seq.cycles).tally_cycles(fused.cycles);
        t.row(vec![
            "7.2 AG->GEMM".into(),
            case.into(),
            us(ag_seq.cycles, clock),
            us(fused.cycles, clock),
            x(ag_seq.cycles as f64 / fused.cycles as f64),
        ]);
    }
    // 7.2 expert parallelism: fused combine all-to-all.
    let moe = moe_combine_study(
        &sys,
        &MoeConfig::switch_like(4096, (4096 / scale.token_divisor).max(256)),
    );
    t.tally_cycles(moe.sequential_cycles)
        .tally_cycles(moe.fused_cycles);
    t.row(vec![
        "7.2 MoE combine".into(),
        "expert FC-2 + all-to-all".into(),
        us(moe.sequential_cycles, clock),
        us(moe.fused_cycles, clock),
        x(moe.speedup),
    ]);
    // 7.3 generation phase.
    for tokens in [8u64, 128, 2048] {
        let row = study::generation_phase_study(&sys, 4256, tokens, 8);
        t.tally_cycles(row.sequential_cycles)
            .tally_cycles(row.t3_cycles);
        t.row(vec![
            "7.3 generation".into(),
            format!("{tokens} tokens"),
            us(row.sequential_cycles, clock),
            us(row.t3_cycles, clock),
            x(row.speedup),
        ]);
    }
    // Methodology validation: explicit 8-GPU simulation vs the
    // mirrored single-GPU model (Section 5.1.1's homogeneity claim).
    let explicit = run_multi_gpu_fused_rs(&sys, grid.clone(), &FusedOptions::default());
    t.tally_cycles(explicit.cycles);
    t.row(vec![
        "5.1.1 methodology".into(),
        format!("explicit 8-GPU (skew {} cyc)", explicit.skew),
        us(ring.cycles, clock),
        us(explicit.cycles, clock),
        x(1.0 + explicit.mirror_error(&ring)),
    ]);
    // 3.2/7.2 coarse-grained overlap contention: a GEMM sharing its
    // memory system with background (DP-style) communication.
    let contention_shape = scale.shape(&zoo::t_nlg(), Sublayer::Fc2, 8);
    for (case, policy) in [
        ("round-robin arbitration", PolicyChoice::RoundRobin),
        ("T3-MCA arbitration", PolicyChoice::McaDynamic),
    ] {
        let row = study::coarse_overlap_study(&sys, &contention_shape, 128 << 20, policy);
        t.tally_cycles(row.isolated_gemm_cycles)
            .tally_cycles(row.contended_gemm_cycles);
        t.row(vec![
            "3.2 coarse overlap".into(),
            format!("{case} (GEMM slowdown)"),
            us(row.isolated_gemm_cycles, clock),
            us(row.contended_gemm_cycles, clock),
            x(1.0 / row.gemm_slowdown),
        ]);
    }
    // 7.6 following ops near memory.
    let fo = study::nmc_following_ops_study(&sys, 64 << 20, 4.0);
    t.tally_cycles(fo.baseline_cycles)
        .tally_cycles(fo.nmc_cycles);
    t.row(vec![
        "7.6 following ops".into(),
        "4-pass sweep of 64 MB".into(),
        us(fo.baseline_cycles, clock),
        us(fo.nmc_cycles, clock),
        x(fo.baseline_cycles as f64 / fo.nmc_cycles as f64),
    ]);
    t
}

/// The Section 2.4 compute-scaling sweep: as GEMMs get faster relative
/// to the network, communication dominates and T3's headroom grows.
pub fn sweep() -> Table {
    let params = E2eParams::default();
    let model = zoo::t_nlg();
    let tp = 16u64;
    let sys = system_for(tp);
    let lt = e2e::layer_time(&sys, &model, tp, Phase::Training, &params);
    let mut t = Table::new(
        "Compute-scaling sweep (T-NLG, TP=16, training)",
        &[
            "compute speedup",
            "sliced GEMM+AR fraction",
            "headroom if AR fully hidden",
        ],
    );
    for factor in [1.0f64, 2.0, 4.0, 8.0] {
        let frac = lt.sliced_fraction_with_faster_compute(factor);
        // If the whole AR were hidden, the layer loses its comm time.
        let comm: f64 = lt.sliced.iter().map(|(_, s)| s.ar_cycles).sum();
        let total = lt.other_cycles / factor
            + lt.sliced
                .iter()
                .map(|(_, s)| s.gemm_cycles / factor + s.ar_cycles)
                .sum::<f64>();
        let hidden = total / (total - comm.min(total * 0.999));
        t.row(vec![format!("{factor:.0}x"), pct(frac), x(hidden)]);
    }
    t.note("paper Section 2.4: at 2x compute, communication approaches 75% of the sliced portion");
    t
}

// ---------------------------------------------------------------------
// Multi-node topology study (t3-topo)
// ---------------------------------------------------------------------

/// Fabric names accepted by `figures --topology`.
pub const TOPOLOGY_NAMES: &[&str] = &["ring", "fully-connected", "switch", "torus", "hierarchical"];

/// Builds the named fabric over `n` GPUs from the system's link
/// config. `torus` is a `2 x n/2` torus; `hierarchical` is two
/// `n/2`-GPU nodes whose leader GPUs are joined by slower inter-node
/// links (1/4 bandwidth, 4x latency). Returns `None` for unknown
/// names (the CLI turns that into a usage error).
pub fn topology_by_name(name: &str, n: usize, sys: &SystemConfig) -> Option<Topology> {
    let link = &sys.link;
    Topology::by_label(name, n, link, &inter_node_link(link))
}

/// The fabric joining nodes in the hierarchical topology (think
/// InfiniBand next to the intra-node xGMI links): a quarter of the
/// bandwidth, four times the latency.
fn inter_node_link(link: &LinkConfig) -> LinkConfig {
    let mut slow = link.clone();
    slow.link_gb_s /= 4.0;
    slow.latency_ns *= 4.0;
    slow
}

/// Multi-node tensor parallelism: the T-NLG FC-2 sublayer at TP=16,
/// split across two 8-GPU nodes. Every GPU is simulated explicitly
/// ([`run_multi_gpu_fused_rs_on`]) on the ring baseline plus the
/// requested fabric (or all fabrics when `topology` is `None`): the
/// fused GEMM-RS streams partials over multi-hop routes with per-link
/// serialisation, so slow inter-node links and shared switch ports
/// surface directly in the finish time. The last column prices the
/// MoE combine all-to-all on the same fabric.
pub fn multinode(scale: ExperimentScale, topology: Option<&str>) -> Table {
    let tp = 16u64;
    let sys = system_for(tp);
    let shape = scale.shape(&zoo::t_nlg(), Sublayer::Fc2, tp);
    let clock = sys.gpu.clock_ghz;
    let moe = MoeConfig::switch_like(4096, (4096 / scale.token_divisor).max(256));
    let names: Vec<&str> = match topology {
        Some("ring") => vec!["ring"],
        Some(name) => vec!["ring", name],
        None => TOPOLOGY_NAMES.to_vec(),
    };
    let mut t = Table::new(
        "Multi-node TP: T-NLG FC-2, TP=16, two 8-GPU nodes",
        &[
            "fabric",
            "links",
            "fused GEMM-RS (us)",
            "vs ring",
            "DMA transfers",
            "wire traffic (MB)",
            "combine A2A (us)",
        ],
    );
    let mut ring_cycles = None;
    for name in names {
        let topo = topology_by_name(name, tp as usize, &sys).expect("known fabric");
        let grid = GemmGrid::new(&sys.gpu, shape);
        let run = run_multi_gpu_fused_rs_on(&sys, grid, &FusedOptions::default(), &topo, None);
        let base = *ring_cycles.get_or_insert(run.cycles);
        let wire: u64 = run.link_bytes.iter().sum();
        let a2a = scheduled_all_to_all_cycles(&sys, &topo, moe.a2a_payload_bytes());
        t.tally_cycles(run.cycles).tally_cycles(a2a);
        t.row(vec![
            name.to_string(),
            topo.num_links().to_string(),
            us(run.cycles, clock),
            x(run.cycles as f64 / base as f64),
            run.dma_transfers.to_string(),
            mb(wire),
            us(a2a, clock),
        ]);
    }
    t.note("hierarchical: leaders of the two nodes joined by links with 1/4 bandwidth, 4x latency");
    t.note("wire traffic counts every hop of every routed message (store-and-forward)");
    t
}

/// A fully-instrumented explicit multi-GPU fused GEMM-RS on the named
/// fabric — the [`multinode`] study's workload — for `figures
/// --topology <fabric> --trace/--metrics`. Returns the populated
/// instruments, the run result, and the core clock.
///
/// # Panics
///
/// Panics if `topology` is not one of [`TOPOLOGY_NAMES`] (the CLI
/// validates before calling).
pub fn traced_multinode(
    scale: ExperimentScale,
    topology: &str,
) -> (
    t3_trace::Instruments,
    t3_core::multigpu::MultiGpuResult,
    f64,
) {
    traced_multinode_in_mode(scale, topology, SimMode::default())
}

/// [`traced_multinode`] under an explicit time-advancement mode; the
/// determinism pipeline runs both modes and asserts every exported
/// byte matches.
pub fn traced_multinode_in_mode(
    scale: ExperimentScale,
    topology: &str,
    mode: SimMode,
) -> (
    t3_trace::Instruments,
    t3_core::multigpu::MultiGpuResult,
    f64,
) {
    let tp = 16u64;
    let sys = system_for(tp);
    let topo = topology_by_name(topology, tp as usize, &sys).expect("validated by the CLI");
    let shape = scale.shape(&zoo::t_nlg(), Sublayer::Fc2, tp);
    let grid = GemmGrid::new(&sys.gpu, shape);
    let opts = FusedOptions {
        mode,
        ..FusedOptions::default()
    };
    let mut ins = t3_trace::Instruments::full();
    let run = run_multi_gpu_fused_rs_on(&sys, grid, &opts, &topo, Some(&mut ins));
    (ins, run, sys.gpu.clock_ghz)
}

/// A fully-instrumented T-NLG FC-2 (TP=8, SL*B=4K) fused GEMM-RS run
/// under T3-MCA — the same workload as Figure 17 — for the `figures
/// --trace` / `--metrics` exports. Returns the populated instruments,
/// the run result, and the core clock (for cycle→µs conversion in the
/// Chrome exporter).
pub fn traced_tnlg_sublayer(
    scale: ExperimentScale,
) -> (t3_trace::Instruments, t3_core::engine::FusedRunResult, f64) {
    traced_tnlg_sublayer_in_mode(scale, SimMode::default())
}

/// [`traced_tnlg_sublayer`] under an explicit time-advancement mode;
/// the determinism pipeline runs both modes and asserts every
/// exported byte matches.
pub fn traced_tnlg_sublayer_in_mode(
    scale: ExperimentScale,
    mode: SimMode,
) -> (t3_trace::Instruments, t3_core::engine::FusedRunResult, f64) {
    let tp = 8u64;
    let sys = system_for(tp);
    let mut model = zoo::t_nlg();
    model.batch = 4; // SL*B = 4K, as in Figure 17
    let shape = scale.shape(&model, Sublayer::Fc2, tp);
    let grid = GemmGrid::new(&sys.gpu, shape);
    let opts = FusedOptions {
        policy: PolicyChoice::McaDynamic,
        mode,
        ..FusedOptions::default()
    };
    let mut ins = t3_trace::Instruments::full();
    let run = t3_core::engine::run_fused_gemm_rs_instrumented(&sys, grid, &opts, Some(&mut ins));
    (ins, run, sys.gpu.clock_ghz)
}

// ---------------------------------------------------------------------
// Engine speedup
// ---------------------------------------------------------------------

/// Minimum wall time of `f` over `iters` timed runs (plus one untimed
/// warm-up), in nanoseconds. Min-of-N is the standard noise filter for
/// a deterministic workload: every sample runs identical work, so the
/// fastest one is the least-perturbed measurement.
fn wall_ns_min<R>(iters: u32, mut f: impl FnMut() -> R) -> u128 {
    std::hint::black_box(f());
    (0..iters)
        .map(|_| {
            let start = std::time::Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_nanos()
        })
        .min()
        .expect("at least one iteration")
}

/// The `ff-speedup` target: runs the two long-burn simulator loops —
/// the T-NLG FC-2 fused sublayer and the 16-GPU ring multinode study
/// — under both the stepped reference engine and the event-driven
/// fast-forward engine, asserts the simulated cycles are identical,
/// and measures the wall-time win.
///
/// The returned table prints **only** simulated quantities, so
/// `figures` stdout stays byte-deterministic run to run; the host
/// wall measurements travel in the returned metrics instead
/// (`speedup_wall_permille` rows in the `--report` artifact, where
/// the perf gate already ignores host-dependent fields).
pub fn ff_speedup(scale: ExperimentScale) -> (Table, Vec<(String, u64)>) {
    const ITERS: u32 = 3;
    let mut t = Table::new(
        "Fast-forward engine: stepped vs. event-driven, identical cycles",
        &[
            "workload",
            "sim cycles (stepped)",
            "sim cycles (fast-forward)",
        ],
    );
    let mut metrics = Vec::new();
    let mut best_permille = 0u64;

    let mut case = |name: &str, t: &mut Table, run: &mut dyn FnMut(SimMode) -> u64| {
        let stepped_cycles = run(SimMode::Stepped);
        let ff_cycles = run(SimMode::FastForward);
        assert_eq!(
            stepped_cycles, ff_cycles,
            "{name}: fast-forward must be cycle-identical to stepped"
        );
        let stepped_ns = wall_ns_min(ITERS, || run(SimMode::Stepped));
        let ff_ns = wall_ns_min(ITERS, || run(SimMode::FastForward));
        let permille = (stepped_ns * 1000 / ff_ns.max(1)) as u64;
        best_permille = best_permille.max(permille);
        metrics.push((format!("speedup_wall_permille.{name}"), permille));
        t.row(vec![
            name.to_string(),
            stepped_cycles.to_string(),
            ff_cycles.to_string(),
        ]);
        t.tally_cycles(stepped_cycles);
    };

    {
        let tp = 8u64;
        let sys = system_for(tp);
        let mut model = zoo::t_nlg();
        model.batch = 4; // SL*B = 4K, the Figure 17 workload
        let shape = scale.shape(&model, Sublayer::Fc2, tp);
        let grid = GemmGrid::new(&sys.gpu, shape);
        case("tnlg-fc2-tp8", &mut t, &mut |mode| {
            let opts = FusedOptions {
                policy: PolicyChoice::McaDynamic,
                mode,
                ..FusedOptions::default()
            };
            run_fused_gemm_rs(&sys, grid.clone(), &opts).cycles
        });
    }
    {
        let tp = 16u64;
        let sys = system_for(tp);
        let topo = topology_by_name("ring", tp as usize, &sys).expect("known name");
        let shape = scale.shape(&zoo::t_nlg(), Sublayer::Fc2, tp);
        let grid = GemmGrid::new(&sys.gpu, shape);
        case("multinode-ring-tp16", &mut t, &mut |mode| {
            let opts = FusedOptions {
                mode,
                ..FusedOptions::default()
            };
            run_multi_gpu_fused_rs_on(&sys, grid.clone(), &opts, &topo, None).cycles
        });
        // The full tentpole stack: the stepped sequential engine vs.
        // the sharded engine (4 workers, fast-forward inside each
        // cycle window). Sharding lifts the sequential leap's
        // all-devices-idle requirement — each shard leaps its own
        // devices independently — so this is the headline win.
        case("multinode-ring-tp16-sharded4", &mut t, &mut |mode| {
            let opts = FusedOptions {
                mode,
                ..FusedOptions::default()
            };
            match mode {
                SimMode::Stepped => {
                    run_multi_gpu_fused_rs_on(&sys, grid.clone(), &opts, &topo, None).cycles
                }
                SimMode::FastForward => {
                    run_multi_gpu_fused_rs_sharded(&sys, grid.clone(), &opts, &topo, 4).cycles
                }
            }
        });
    }

    {
        // The scale-out variant: same 16-GPU ring study over
        // inter-node links (InfiniBand-class bandwidth, microsecond
        // latency). The run is latency-bound — most simulated cycles
        // are pure in-flight waits — which is exactly the regime the
        // event-driven engine exists for.
        let tp = 16u64;
        let sys = system_for(tp);
        let internode = LinkConfig {
            link_gb_s: 25.0,
            clock_ghz: sys.link.clock_ghz,
            latency_ns: 5000.0,
        };
        let topo = Topology::ring(tp as usize, &internode);
        let shape = scale.shape(&zoo::t_nlg(), Sublayer::Fc2, tp);
        let grid = GemmGrid::new(&sys.gpu, shape);
        case("multinode-ring-tp16-internode", &mut t, &mut |mode| {
            let opts = FusedOptions {
                mode,
                ..FusedOptions::default()
            };
            run_multi_gpu_fused_rs_on(&sys, grid.clone(), &opts, &topo, None).cycles
        });
    }

    metrics.push(("speedup_wall_permille".to_string(), best_permille));
    metrics.sort();
    t.note(
        "wall-time speedups are host measurements and live in the --report \
         metrics (speedup_wall_permille); stdout prints simulated cycles only",
    );
    (t, metrics)
}

// ---------------------------------------------------------------------
// Serving
// ---------------------------------------------------------------------

/// The headline serving study: baseline vs. T3-fused tail latency on
/// every (fabric, load point) cell of [`serve_study::serving_study`],
/// with two tenants sharing the fabric. Both engines serve
/// byte-identical seeded request traces, so every latency delta is
/// attributable to the execution mode alone.
pub fn serving(scale: ExperimentScale) -> Table {
    let clock = serve_study::serve_system().gpu.clock_ghz;
    let rows = serve_study::serving_study(scale.token_divisor);
    let mut t = Table::new(
        "Serving: baseline vs. T3-fused tail latency",
        &[
            "fabric",
            "load",
            "arrival",
            "engine",
            "contention",
            "ttft p99 (us)",
            "e2e p50 (us)",
            "e2e p95 (us)",
            "e2e p99 (us)",
            "tok/s/GPU",
        ],
    );
    for row in &rows {
        t.row(vec![
            row.topology.to_string(),
            format!("{}%", row.load_permille / 10),
            row.arrival.label().to_string(),
            row.mode.label().to_string(),
            x(row.contention_permille as f64 / 1000.0),
            us(row.ttft.p99, clock),
            us(row.e2e.p50, clock),
            us(row.e2e.p95, clock),
            us(row.e2e.p99, clock),
            format!("{:.0}", row.tokens_per_sec_per_gpu(clock)),
        ]);
        t.tally_cycles(row.run.makespan);
    }
    for pair in rows.chunks(2) {
        let (base, fused) = (&pair[0], &pair[1]);
        if base.load_permille >= 900 {
            t.note(format!(
                "{} @{}% load: fused cuts e2e p99 by {} ({} requests, {} tenants)",
                base.topology,
                base.load_permille / 10,
                x(base.e2e.p99 as f64 / fused.e2e.p99 as f64),
                base.run.outcomes.len(),
                base.tenants,
            ));
        }
    }
    t.note(
        "open-loop seeded traffic; gaps calibrated to baseline decode \
         capacity so both engines serve identical traces",
    );
    t
}

/// The fused deep-dive behind `figures serving-fused`: the high-load
/// bursty point on the ring swept over tenant counts, showing how the
/// fused engine's p99 advantage holds up as fabric contention grows.
pub fn serving_fused(scale: ExperimentScale) -> Table {
    let clock = serve_study::serve_system().gpu.clock_ghz;
    let rows = serve_study::tenant_sweep(scale.token_divisor);
    let mut t = Table::new(
        "Serving-fused: tenant sweep at high load (ring, bursty)",
        &[
            "tenants",
            "engine",
            "contention",
            "ttft p99 (us)",
            "e2e p99 (us)",
            "tok/s/GPU",
            "p99 vs baseline",
        ],
    );
    for pair in rows.chunks(2) {
        let base = &pair[0];
        debug_assert_eq!(base.mode, EngineMode::Baseline);
        for row in pair {
            let gain = base.e2e.p99 as f64 / row.e2e.p99 as f64;
            t.row(vec![
                row.tenants.to_string(),
                row.mode.label().to_string(),
                x(row.contention_permille as f64 / 1000.0),
                us(row.ttft.p99, clock),
                us(row.e2e.p99, clock),
                format!("{:.0}", row.tokens_per_sec_per_gpu(clock)),
                x(gain),
            ]);
            t.tally_cycles(row.run.makespan);
        }
    }
    t.note(
        "contention priced by staggered co-tenant reduce-scatter \
         schedules on one shared fabric (t3-serve interference model)",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        assert!(table1().to_string().contains("HBM2"));
        assert_eq!(table2().len(), 7);
        assert!(table3().to_string().contains("T3-MCA"));
    }

    #[test]
    fn fig4_has_all_model_phase_rows() {
        let t = fig4();
        // 5 models x their TP degrees (2+2+1+1+1) + 2 futuristic = 9
        // (model, tp) pairs x 2 phases.
        assert_eq!(t.len(), 18);
    }

    #[test]
    fn fig14_meets_error_budget() {
        let t = fig14();
        assert_eq!(t.len(), 6);
        assert!(t.to_string().contains("geomean error"));
    }

    #[test]
    fn sublayer_matrix_smoke() {
        // One model/TP at fast scale keeps this test quick while
        // exercising the full five-configuration pipeline.
        let cases = run_sublayer_matrix(&[(zoo::t_nlg(), 8)], ExperimentScale::FAST);
        assert_eq!(cases.len(), 4);
        for c in &cases {
            assert!(c.speedup(Configuration::T3Mca) > 1.0, "{:?}", c.sublayer);
        }
        let f15 = fig15(&cases);
        let f16 = fig16(&cases);
        let f18 = fig18(&cases);
        assert_eq!(f15.len(), 4);
        assert_eq!(f16.len(), 4);
        assert_eq!(f18.len(), 8);
    }

    #[test]
    fn extensions_table_all_rows_improve_or_hold() {
        let t = extensions(ExperimentScale::FAST);
        assert!(t.len() >= 8);
        let text = t.to_string();
        assert!(text.contains("7.3 generation"));
        assert!(text.contains("MoE"));
        assert!(text.contains("methodology"));
    }

    #[test]
    fn sweep_shows_growing_headroom() {
        let t = sweep();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn topology_names_all_resolve() {
        let sys = SystemConfig::paper_default().with_num_gpus(16);
        for name in TOPOLOGY_NAMES {
            let topo = topology_by_name(name, 16, &sys).expect("known name");
            assert_eq!(topo.num_gpus(), 16, "{name}");
        }
        assert!(topology_by_name("mesh", 16, &sys).is_none());
    }

    #[test]
    fn multinode_compares_chosen_fabric_against_ring() {
        let t = multinode(ExperimentScale::FAST, Some("hierarchical"));
        assert_eq!(t.len(), 2);
        let text = t.to_string();
        assert!(text.contains("ring") && text.contains("hierarchical"));
    }

    #[test]
    fn traced_multinode_populates_instruments() {
        let (ins, run, ghz) = traced_multinode(ExperimentScale::FAST, "switch");
        assert!(ghz > 0.0);
        assert!(run.cycles > 0);
        let metrics = ins.metrics.as_ref().expect("metrics on");
        assert!(metrics.counter("link.bytes_sent") > 0);
        let tracer = ins.tracer.as_ref().expect("tracer on");
        assert!(tracer.count(|e| matches!(e, t3_trace::Event::LinkBusy { .. })) > 0);
    }

    #[test]
    fn traced_run_event_counts_match_result() {
        let (ins, run, ghz) = traced_tnlg_sublayer(ExperimentScale::FAST);
        assert!(ghz > 0.0);
        let tracer = ins.tracer.as_ref().expect("tracer on");
        let fires = tracer.count(|e| matches!(e, t3_trace::Event::DmaTriggerFire { .. }));
        assert_eq!(fires as u64, run.dma_transfers);
        let metrics = ins.metrics.as_ref().expect("metrics on");
        assert_eq!(metrics.counter("run.cycles"), run.cycles);
        assert_eq!(metrics.counter("link.bytes_sent"), run.link_bytes_sent);
    }

    #[test]
    fn serving_table_shows_fused_winning_tails() {
        let t = serving(ExperimentScale::FAST);
        assert_eq!(t.len(), 8);
        let text = t.to_string();
        assert!(text.contains("baseline") && text.contains("t3-fused"));
        assert!(text.contains("fused cuts e2e p99"));
        assert!(t.sim_cycles() > 0);
    }

    #[test]
    fn serving_fused_table_sweeps_tenants() {
        let t = serving_fused(ExperimentScale::FAST);
        assert_eq!(t.len(), 6);
        let text = t.to_string();
        assert!(text.contains("tenants"));
        assert!(text.contains("p99 vs baseline"));
    }

    #[test]
    fn fig17_renders_two_timelines() {
        let t = fig17(ExperimentScale::FAST);
        assert!(t.len() >= 8);
        assert!(t.to_string().contains("T3 fused GEMM-RS"));
    }
}
