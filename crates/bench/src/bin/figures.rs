//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p t3-bench --bin figures -- <target> [--fast] [--jobs N]
//! cargo run --release -p t3-bench --bin figures -- sweep <workload.t3w> <system.t3s>
//! cargo run --release -p t3-bench --bin figures -- --trace out.json
//! ```
//!
//! Targets: `table1 table2 table3 fig4 fig6 fig14 fig15 fig16 fig17
//! fig18 fig19 fig20 multinode extensions sweep serving serving-fused
//! ff-speedup all`. `--fast` shrinks workloads 8x in the token
//! dimension for smoke runs.
//!
//! Positional arguments ending in `.t3w` / `.t3s` are declarative
//! spec files (see `examples/specs/` and ARCHITECTURE §11): exactly
//! one workload and one system spec expand into the 3D-parallelism
//! sweep — one runtime job per TP×PP×DP×EP point, fingerprinted from
//! the spec content. With a spec pair, the `sweep` target names that
//! expansion (`figures sweep w.t3w s.t3s` runs exactly the sweep);
//! without an explicit `sweep` target the sweep jobs append after the
//! named targets, and `all` keeps its historical meaning. After the
//! rows, every sequential/T3-fused point pair prints one speedup
//! line.
//!
//! Targets run as jobs on the `t3-runtime` worker pool: `--jobs N`
//! sets the pool width (default: available parallelism) and outputs
//! merge in submission order, so any width prints byte-identical
//! results. Finished jobs land in a content-addressed cache under
//! `target/t3-cache/` keyed by config fingerprint; `--no-cache`
//! bypasses it and `--cache-dir <dir>` relocates it. `--report
//! <file>` writes a JSON run report with per-job wall time and
//! simulated cycles.
//!
//! `--topology <name>` selects the fabric for the `multinode` study
//! and for traced runs; accepted names are `ring`, `fully-connected`,
//! `switch`, `torus` and `hierarchical`.
//!
//! `--trace <file>` runs an instrumented fused GEMM-RS — the T-NLG
//! FC-2 (TP=8) mirrored engine, or the explicit 16-GPU multi-node
//! engine when `--topology` is given — and writes a Chrome
//! trace-event JSON loadable in Perfetto (`ui.perfetto.dev`) or
//! `chrome://tracing`. `--metrics <file>` writes the same run's
//! metrics registry as JSON (or CSV when the file name ends in
//! `.csv`). `--analyze` runs the same instrumented workload and
//! prints the `t3-prof` critical-path breakdown and per-collective
//! records to stdout. Any of the three may be given alone or with
//! targets.
//!
//! `--trace-serving <file>` runs the instrumented high-load serving
//! point (ring fabric, bursty arrivals, T3-fused engine) and writes
//! its Chrome trace — request lifecycles and engine iterations —
//! which `t3-prof requests` turns back into the canonical request
//! log and latency percentiles.
//!
//! Exit codes: 0 on success, 1 when jobs fail or outputs cannot be
//! written, 2 on usage errors.

use std::env;
use std::process::ExitCode;

use t3_bench::experiments::{self, ExperimentScale};
use t3_bench::jobs;
use t3_prof::analyze as prof_analyze;
use t3_prof::analyze::Analysis;
use t3_prof::collective as prof_collective;
use t3_runtime::{report_json, CacheConfig, JobStatus, RunOptions, DEFAULT_CACHE_DIR};
use t3_trace::chrome::chrome_trace_json_named;

/// Exit code for malformed invocations (bad flags, unknown targets).
const EXIT_USAGE: u8 = 2;
/// Exit code for runs where at least one job failed.
const EXIT_FAILED_JOBS: u8 = 1;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let analyze = args.iter().any(|a| a == "--analyze");
    let scale = if fast {
        ExperimentScale::FAST
    } else {
        ExperimentScale::FULL
    };
    let trace_path = match flag_value(&args, "--trace") {
        Ok(v) => v,
        Err(e) => return usage(&e),
    };
    let metrics_path = match flag_value(&args, "--metrics") {
        Ok(v) => v,
        Err(e) => return usage(&e),
    };
    let trace_serving_path = match flag_value(&args, "--trace-serving") {
        Ok(v) => v,
        Err(e) => return usage(&e),
    };
    let topology = match flag_value(&args, "--topology") {
        Ok(v) => v,
        Err(e) => return usage(&e),
    };
    if let Some(name) = &topology {
        if !experiments::TOPOLOGY_NAMES.contains(&name.as_str()) {
            return usage(&format!("unknown topology: {name}"));
        }
    }
    let workers = match flag_value(&args, "--jobs") {
        Ok(None) => RunOptions::default_workers(),
        Ok(Some(v)) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return usage(&format!("--jobs needs a positive integer, got: {v}")),
        },
        Err(e) => return usage(&e),
    };
    let cache_dir = match flag_value(&args, "--cache-dir") {
        Ok(v) => v.unwrap_or_else(|| DEFAULT_CACHE_DIR.to_string()),
        Err(e) => return usage(&e),
    };
    let report_path = match flag_value(&args, "--report") {
        Ok(v) => v,
        Err(e) => return usage(&e),
    };
    let positionals = match targets(&args) {
        Ok(t) => t,
        Err(e) => return usage(&e),
    };
    // Positionals ending in .t3w/.t3s are declarative spec files; the
    // rest are figure targets.
    let mut workload_specs = Vec::new();
    let mut system_specs = Vec::new();
    let mut targets = Vec::new();
    for p in positionals {
        if p.ends_with(".t3w") {
            workload_specs.push(p);
        } else if p.ends_with(".t3s") {
            system_specs.push(p);
        } else {
            targets.push(p);
        }
    }
    let sweep_plan = match (workload_specs.as_slice(), system_specs.as_slice()) {
        ([], []) => None,
        ([w], [s]) => match jobs::load_sweep_plan(w, s) {
            Ok(plan) => Some(plan),
            Err(e) => return usage(&e),
        },
        _ => return usage("a sweep needs exactly one workload (.t3w) and one system (.t3s) spec"),
    };
    if targets.is_empty()
        && sweep_plan.is_none()
        && trace_path.is_none()
        && metrics_path.is_none()
        && trace_serving_path.is_none()
        && !analyze
    {
        return usage("no targets given");
    }

    let mut failed = false;
    if !targets.is_empty() || sweep_plan.is_some() {
        let graph = match jobs::figure_job_graph_with_sweep(
            &targets,
            scale,
            topology.as_deref(),
            sweep_plan.as_ref(),
        ) {
            Ok(g) => g,
            Err(e) => return usage(&e),
        };
        let opts = RunOptions {
            workers,
            cache: (!no_cache).then(|| CacheConfig::at(&cache_dir)),
        };
        let summary = t3_runtime::run(graph, &opts);
        print!("{}", summary.merged_stdout());
        if sweep_plan.is_some() {
            // Pair each sequential point with its T3-fused twin. The
            // iteration cycles come from job metrics, which survive
            // the result cache, so these lines are byte-stable across
            // pool widths and cache state.
            let rows: Vec<(String, u64)> = summary
                .results
                .iter()
                .filter_map(|r| {
                    let label = r.name.strip_prefix("sweep[")?.strip_suffix(']')?;
                    let iter = *r.output.as_ref()?.metrics.get("iter_cycles")?;
                    Some((label.to_string(), iter))
                })
                .collect();
            for line in t3_spec::exec::speedup_summary(&rows) {
                println!("{line}");
            }
        }
        for result in &summary.results {
            let reason = match &result.status {
                JobStatus::Failed(e) => e,
                JobStatus::Skipped(e) => e,
                JobStatus::Ok | JobStatus::Cached => continue,
            };
            eprintln!("job {} failed: {}", result.name, reason);
        }
        if summary.cache_enabled {
            eprintln!(
                "cache: {} hit(s), {} miss(es) in {cache_dir}",
                summary.cache_hits, summary.cache_misses
            );
        }
        if let Some(path) = report_path {
            if let Err(e) = std::fs::write(&path, report_json(&summary)) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::from(EXIT_FAILED_JOBS);
            }
            eprintln!("wrote run report to {path}");
        }
        failed = !summary.ok();
    }

    if trace_path.is_some() || metrics_path.is_some() || analyze {
        let workload = topology
            .as_deref()
            .map_or("T-NLG FC-2 TP=8".to_string(), |t| {
                format!("multi-node TP=16 ({t})")
            });
        let (ins, cycles, clock_ghz) = match &topology {
            Some(name) => {
                let (ins, run, ghz) = experiments::traced_multinode(scale, name);
                (ins, run.cycles, ghz)
            }
            None => {
                let (ins, run, ghz) = experiments::traced_tnlg_sublayer(scale);
                (ins, run.cycles, ghz)
            }
        };
        eprintln!(
            "traced {workload} fused GEMM-RS: {cycles} cycles, {} events",
            ins.tracer.as_ref().map_or(0, |t| t.len())
        );
        if let Some(path) = trace_path {
            let tracer = ins.tracer.as_ref().expect("full instruments");
            let json = chrome_trace_json_named(tracer.records(), clock_ghz, &workload);
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::from(EXIT_FAILED_JOBS);
            }
            eprintln!("wrote Chrome trace to {path} (load in ui.perfetto.dev)");
        }
        if analyze {
            let tracer = ins.tracer.as_ref().expect("full instruments");
            println!("== t3-prof analyze: {workload} ==");
            print!(
                "{}",
                prof_analyze::render(&Analysis::from_records(tracer.records()))
            );
            println!("== t3-prof collectives: {workload} ==");
            print!(
                "{}",
                prof_collective::render(&prof_collective::collective_records(tracer.records()))
            );
        }
        if let Some(path) = metrics_path {
            let metrics = ins.metrics.as_ref().expect("full instruments");
            let body = if path.ends_with(".csv") {
                metrics.to_csv()
            } else {
                metrics.to_json()
            };
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::from(EXIT_FAILED_JOBS);
            }
            eprintln!("wrote metrics to {path}");
        }
    }
    if let Some(path) = trace_serving_path {
        let (ins, row, clock_ghz) = t3_serve::study::traced_serving(scale.token_divisor);
        let workload = format!(
            "serving {} @{}% load ({}, {})",
            row.topology,
            row.load_permille / 10,
            row.arrival.label(),
            row.mode.label()
        );
        let tracer = ins.tracer.as_ref().expect("full instruments");
        eprintln!(
            "traced {workload}: {} cycles, {} events",
            row.run.makespan,
            tracer.len()
        );
        let json = chrome_trace_json_named(tracer.records(), clock_ghz, &workload);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(EXIT_FAILED_JOBS);
        }
        eprintln!("wrote serving trace to {path} (analyze with `t3-prof requests {path}`)");
    }
    if failed {
        ExitCode::from(EXIT_FAILED_JOBS)
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(error: &str) -> ExitCode {
    eprintln!("error: {error}");
    eprintln!(
        "usage: figures [<table1|table2|table3|fig4|fig6|fig14|fig15|fig16|fig17|fig18|fig19|fig20|multinode|extensions|sweep|serving|serving-fused|ff-speedup|all> ...] [<workload.t3w> <system.t3s>] [flags]"
    );
    eprintln!("spec sweeps:");
    eprintln!("  figures sweep <workload.t3w> <system.t3s>   expand the spec pair into one job per TP*PP*DP*EP point");
    eprintln!(
        "  (example specs live in examples/specs/; grammar in docs/ARCHITECTURE.md section 11)"
    );
    eprintln!("flags:");
    eprintln!("  --fast                 shrink workloads 8x in the token dimension");
    eprintln!("  --jobs <N>             worker pool width (default: available parallelism)");
    eprintln!("  --no-cache             bypass the result cache");
    eprintln!("  --cache-dir <dir>      result cache location (default: {DEFAULT_CACHE_DIR})");
    eprintln!("  --report <file>        write a JSON run report (per-job wall time + cycles)");
    eprintln!("  --topology <name>      fabric for multinode/traced runs: ring, fully-connected, switch, torus, hierarchical");
    eprintln!("  --trace <out.json>     write a Chrome trace of an instrumented fused GEMM-RS");
    eprintln!("  --trace-serving <out.json>    write a Chrome trace of the instrumented high-load serving point");
    eprintln!("  --metrics <out.json|out.csv>  write the traced run's metrics registry");
    eprintln!("  --analyze              print the traced run's critical-path breakdown and per-collective records");
    ExitCode::from(EXIT_USAGE)
}

/// The value following `flag`, if present.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
            _ => Err(format!("{flag} requires a value")),
        },
    }
}

/// Positional target names: everything that is not a flag or a flag's
/// value.
fn targets(args: &[String]) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--trace"
            || a == "--trace-serving"
            || a == "--metrics"
            || a == "--topology"
            || a == "--jobs"
            || a == "--cache-dir"
            || a == "--report"
        {
            i += 2; // flag + its value (validated by flag_value)
        } else if a == "--fast" || a == "--no-cache" || a == "--analyze" {
            i += 1;
        } else if a.starts_with("--") {
            return Err(format!("unknown flag: {a}"));
        } else {
            out.push(a.clone());
            i += 1;
        }
    }
    Ok(out)
}
