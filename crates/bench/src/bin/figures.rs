//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p t3-bench --bin figures -- <target> [--fast]
//! ```
//!
//! Targets: `table1 table2 table3 fig4 fig6 fig14 fig15 fig16 fig17
//! fig18 fig19 fig20 all`. `--fast` shrinks workloads 8x in the token
//! dimension for smoke runs.

use std::env;
use std::process::ExitCode;

use t3_bench::experiments::{self, ExperimentScale};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let scale = if fast {
        ExperimentScale::FAST
    } else {
        ExperimentScale::FULL
    };
    let targets: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if targets.is_empty() {
        eprintln!(
            "usage: figures <table1|table2|table3|fig4|fig6|fig14|fig15|fig16|fig17|fig18|fig19|fig20|extensions|sweep|all> [--fast]"
        );
        return ExitCode::FAILURE;
    }
    for target in targets {
        if !run_target(target, scale) {
            eprintln!("unknown target: {target}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn run_target(target: &str, scale: ExperimentScale) -> bool {
    match target {
        "table1" => println!("{}", experiments::table1()),
        "table2" => println!("{}", experiments::table2()),
        "table3" => println!("{}", experiments::table3()),
        "fig4" => println!("{}", experiments::fig4()),
        "fig6" => println!("{}", experiments::fig6(scale)),
        "fig14" => println!("{}", experiments::fig14()),
        "fig15" | "fig16" | "fig18" => {
            let cases =
                experiments::run_sublayer_matrix(&experiments::main_study_models(), scale);
            match target {
                "fig15" => println!("{}", experiments::fig15(&cases)),
                "fig16" => println!("{}", experiments::fig16(&cases)),
                _ => println!("{}", experiments::fig18(&cases)),
            }
        }
        "fig17" => println!("{}", experiments::fig17(scale)),
        "extensions" => println!("{}", experiments::extensions(scale)),
        "sweep" => println!("{}", experiments::sweep()),
        "fig19" => println!("{}", experiments::fig19(scale)),
        "fig20" => println!("{}", experiments::fig20(scale)),
        "all" => {
            println!("{}", experiments::table1());
            println!("{}", experiments::table2());
            println!("{}", experiments::table3());
            println!("{}", experiments::fig4());
            println!("{}", experiments::fig6(scale));
            println!("{}", experiments::fig14());
            let cases =
                experiments::run_sublayer_matrix(&experiments::main_study_models(), scale);
            println!("{}", experiments::fig15(&cases));
            println!("{}", experiments::fig16(&cases));
            println!("{}", experiments::fig17(scale));
            println!("{}", experiments::fig18(&cases));
            println!("{}", experiments::fig19(scale));
            println!("{}", experiments::fig20(scale));
            println!("{}", experiments::extensions(scale));
            println!("{}", experiments::sweep());
        }
        _ => return false,
    }
    true
}
