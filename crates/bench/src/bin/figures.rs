//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p t3-bench --bin figures -- <target> [--fast]
//! cargo run --release -p t3-bench --bin figures -- --trace out.json
//! ```
//!
//! Targets: `table1 table2 table3 fig4 fig6 fig14 fig15 fig16 fig17
//! fig18 fig19 fig20 multinode all`. `--fast` shrinks workloads 8x in
//! the token dimension for smoke runs.
//!
//! `--topology <name>` selects the fabric for the `multinode` study
//! and for traced runs; accepted names are `ring`, `fully-connected`,
//! `switch`, `torus` and `hierarchical`.
//!
//! `--trace <file>` runs an instrumented fused GEMM-RS — the T-NLG
//! FC-2 (TP=8) mirrored engine, or the explicit 16-GPU multi-node
//! engine when `--topology` is given — and writes a Chrome
//! trace-event JSON loadable in Perfetto (`ui.perfetto.dev`) or
//! `chrome://tracing`. `--metrics <file>` writes the same run's
//! metrics registry as JSON (or CSV when the file name ends in
//! `.csv`). Either flag may be given alone or with targets.

use std::env;
use std::process::ExitCode;

use t3_bench::experiments::{self, ExperimentScale};
use t3_trace::chrome::chrome_trace_json;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let scale = if fast {
        ExperimentScale::FAST
    } else {
        ExperimentScale::FULL
    };
    let trace_path = match flag_value(&args, "--trace") {
        Ok(v) => v,
        Err(e) => return usage(&e),
    };
    let metrics_path = match flag_value(&args, "--metrics") {
        Ok(v) => v,
        Err(e) => return usage(&e),
    };
    let topology = match flag_value(&args, "--topology") {
        Ok(v) => v,
        Err(e) => return usage(&e),
    };
    if let Some(name) = &topology {
        if !experiments::TOPOLOGY_NAMES.contains(&name.as_str()) {
            return usage(&format!("unknown topology: {name}"));
        }
    }
    let targets = match targets(&args) {
        Ok(t) => t,
        Err(e) => return usage(&e),
    };
    if targets.is_empty() && trace_path.is_none() && metrics_path.is_none() {
        return usage("no targets given");
    }
    for target in &targets {
        if !run_target(target, scale, topology.as_deref()) {
            eprintln!("unknown target: {target}");
            return ExitCode::FAILURE;
        }
    }
    if trace_path.is_some() || metrics_path.is_some() {
        let (ins, cycles, clock_ghz) = match &topology {
            Some(name) => {
                let (ins, run, ghz) = experiments::traced_multinode(scale, name);
                (ins, run.cycles, ghz)
            }
            None => {
                let (ins, run, ghz) = experiments::traced_tnlg_sublayer(scale);
                (ins, run.cycles, ghz)
            }
        };
        eprintln!(
            "traced {} fused GEMM-RS: {} cycles, {} events",
            topology
                .as_deref()
                .map_or("T-NLG FC-2 TP=8".to_string(), |t| format!(
                    "multi-node TP=16 ({t})"
                )),
            cycles,
            ins.tracer.as_ref().map_or(0, |t| t.len())
        );
        if let Some(path) = trace_path {
            let tracer = ins.tracer.as_ref().expect("full instruments");
            let json = chrome_trace_json(tracer.records(), clock_ghz);
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote Chrome trace to {path} (load in ui.perfetto.dev)");
        }
        if let Some(path) = metrics_path {
            let metrics = ins.metrics.as_ref().expect("full instruments");
            let body = if path.ends_with(".csv") {
                metrics.to_csv()
            } else {
                metrics.to_json()
            };
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote metrics to {path}");
        }
    }
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    eprintln!("error: {error}");
    eprintln!(
        "usage: figures [<table1|table2|table3|fig4|fig6|fig14|fig15|fig16|fig17|fig18|fig19|fig20|multinode|extensions|sweep|all> ...] [--fast] [--topology <ring|fully-connected|switch|torus|hierarchical>] [--trace <out.json>] [--metrics <out.json|out.csv>]"
    );
    ExitCode::FAILURE
}

/// The value following `flag`, if present.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
            _ => Err(format!("{flag} requires a value")),
        },
    }
}

/// Positional target names: everything that is not a flag or a flag's
/// value.
fn targets(args: &[String]) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--trace" || a == "--metrics" || a == "--topology" {
            i += 2; // flag + its value (validated by flag_value)
        } else if a == "--fast" {
            i += 1;
        } else if a.starts_with("--") {
            return Err(format!("unknown flag: {a}"));
        } else {
            out.push(a.clone());
            i += 1;
        }
    }
    Ok(out)
}

fn run_target(target: &str, scale: ExperimentScale, topology: Option<&str>) -> bool {
    match target {
        "table1" => println!("{}", experiments::table1()),
        "table2" => println!("{}", experiments::table2()),
        "table3" => println!("{}", experiments::table3()),
        "fig4" => println!("{}", experiments::fig4()),
        "fig6" => println!("{}", experiments::fig6(scale)),
        "fig14" => println!("{}", experiments::fig14()),
        "fig15" | "fig16" | "fig18" => {
            let cases = experiments::run_sublayer_matrix(&experiments::main_study_models(), scale);
            match target {
                "fig15" => println!("{}", experiments::fig15(&cases)),
                "fig16" => println!("{}", experiments::fig16(&cases)),
                _ => println!("{}", experiments::fig18(&cases)),
            }
        }
        "fig17" => println!("{}", experiments::fig17(scale)),
        "extensions" => println!("{}", experiments::extensions(scale)),
        "sweep" => println!("{}", experiments::sweep()),
        "fig19" => println!("{}", experiments::fig19(scale)),
        "fig20" => println!("{}", experiments::fig20(scale)),
        "multinode" => println!("{}", experiments::multinode(scale, topology)),
        "all" => {
            println!("{}", experiments::table1());
            println!("{}", experiments::table2());
            println!("{}", experiments::table3());
            println!("{}", experiments::fig4());
            println!("{}", experiments::fig6(scale));
            println!("{}", experiments::fig14());
            let cases = experiments::run_sublayer_matrix(&experiments::main_study_models(), scale);
            println!("{}", experiments::fig15(&cases));
            println!("{}", experiments::fig16(&cases));
            println!("{}", experiments::fig17(scale));
            println!("{}", experiments::fig18(&cases));
            println!("{}", experiments::fig19(scale));
            println!("{}", experiments::fig20(scale));
            println!("{}", experiments::multinode(scale, topology));
            println!("{}", experiments::extensions(scale));
            println!("{}", experiments::sweep());
        }
        _ => return false,
    }
    true
}
