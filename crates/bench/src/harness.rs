//! A minimal wall-clock benchmark harness.
//!
//! The workspace builds offline with no external crates, so the
//! `benches/` targets (all `harness = false`) time themselves with
//! [`std::time::Instant`] through this module instead of a framework.
//! The interesting quantity for most benches is the *simulated* cycle
//! count anyway — wall-clock here only measures the simulator itself.
//! Sample summarisation lives in [`t3_runtime::BenchSample`], shared
//! with the runtime's `--report` rows.

use std::hint::black_box;
use std::time::Instant;

pub use t3_runtime::BenchSample;

/// Default iteration count per benchmark.
pub const DEFAULT_ITERS: u32 = 10;

/// Times `f` for `iters` iterations (plus one untimed warm-up) and
/// prints min / median / mean wall-clock per iteration.
///
/// Returns the full [`BenchSample`] summary so callers can
/// post-process any of the statistics.
pub fn bench<R>(label: &str, iters: u32, mut f: impl FnMut() -> R) -> BenchSample {
    assert!(iters > 0, "need at least one iteration");
    black_box(f());
    let samples_ns: Vec<u128> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_nanos()
        })
        .collect();
    let sample = BenchSample::from_samples(&samples_ns);
    println!(
        "bench {label:<40} min {} median {} mean {} ({iters} iters)",
        fmt_ns(sample.min_ns),
        fmt_ns(sample.median_ns),
        fmt_ns(sample.mean_ns)
    );
    sample
}

/// Formats a nanosecond duration with a readable unit.
fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_returns_sample() {
        let mut calls = 0u32;
        let sample = bench("noop", 3, || {
            calls += 1;
            calls
        });
        // 1 warm-up + 3 timed.
        assert_eq!(calls, 4);
        assert_eq!(sample.iters, 3);
        assert!(sample.min_ns <= sample.median_ns);
        assert!(sample.min_ns <= sample.mean_ns);
        // A counter increment cannot take a second.
        assert!(sample.median_ns < 1_000_000_000);
    }

    #[test]
    fn formats_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
