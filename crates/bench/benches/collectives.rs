//! Benches of the collective substrates: the functional multi-device
//! collectives (real data movement + reduction) and the timing models
//! (the Figure 14 workload points).

use std::hint::black_box;
use t3_bench::harness::{bench, DEFAULT_ITERS};
use t3_collectives::cluster::Cluster;
use t3_collectives::direct::direct_reduce_scatter;
use t3_collectives::ring::{ring_all_gather, ring_all_reduce, ring_reduce_scatter};
use t3_core::fused::{fused_gemm_ring_rs, FusedProducer};
use t3_gpu::collective::{CollectiveKind, RingCollective};
use t3_gpu::gemm::GemmShape;
use t3_sim::config::SystemConfig;

fn inputs(n: usize, len: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|d| {
            (0..len)
                .map(|i| ((i * 31 + d * 7) % 23) as f32 - 11.0)
                .collect()
        })
        .collect()
}

fn bench_functional_collectives() {
    let n = 8;
    let len = 1 << 16; // 64K f32 elements per device
    bench("functional/ring_reduce_scatter", DEFAULT_ITERS, || {
        let mut cluster = Cluster::from_buffers(inputs(n, len));
        ring_reduce_scatter(&mut cluster);
        black_box(cluster.device(0).load(0))
    });
    bench("functional/ring_all_gather", DEFAULT_ITERS, || {
        let mut cluster = Cluster::from_buffers(inputs(n, len));
        ring_all_gather(&mut cluster);
        black_box(cluster.device(0).load(0))
    });
    bench("functional/ring_all_reduce", DEFAULT_ITERS, || {
        let mut cluster = Cluster::from_buffers(inputs(n, len));
        ring_all_reduce(&mut cluster);
        black_box(cluster.device(0).load(0))
    });
    bench("functional/direct_reduce_scatter", DEFAULT_ITERS, || {
        let mut cluster = Cluster::from_buffers(inputs(n, len));
        direct_reduce_scatter(&mut cluster);
        black_box(cluster.device(0).load(0))
    });
}

fn bench_timing_rs_model() {
    // The Figure 14 sweep points.
    let sys = SystemConfig::paper_default().with_num_gpus(4);
    for mb in [6u64, 48, 192] {
        let bytes = mb << 20;
        bench(&format!("timing_ring_rs/{mb}MB"), DEFAULT_ITERS, || {
            black_box(
                RingCollective::baseline(CollectiveKind::ReduceScatter, bytes, &sys)
                    .simulate(&sys)
                    .cycles,
            )
        });
    }
}

fn bench_functional_fusion() {
    let mut gpu = SystemConfig::paper_default().gpu;
    gpu.tile_dim = 32;
    let (m, n, k) = (256usize, 256usize, 32usize);
    let shape = GemmShape::new(m as u64, n as u64, k as u64);
    let producers: Vec<FusedProducer> = (0..4)
        .map(|d| FusedProducer {
            a: (0..m * k).map(|i| ((i + d) % 13) as f32 - 6.0).collect(),
            b: (0..k * n)
                .map(|i| ((i * 3 + d) % 11) as f32 - 5.0)
                .collect(),
        })
        .collect();
    bench("fused_gemm_ring_rs_functional", DEFAULT_ITERS, || {
        black_box(fused_gemm_ring_rs(&gpu, shape, &producers)).triggers_fired
    });
}

fn main() {
    bench_functional_collectives();
    bench_timing_rs_model();
    bench_functional_fusion();
}
