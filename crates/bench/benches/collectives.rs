//! Criterion benches of the collective substrates: the functional
//! multi-device collectives (real data movement + reduction) and the
//! timing models (the Figure 14 workload points).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use t3_collectives::cluster::Cluster;
use t3_collectives::direct::direct_reduce_scatter;
use t3_collectives::ring::{ring_all_gather, ring_all_reduce, ring_reduce_scatter};
use t3_core::fused::{fused_gemm_ring_rs, FusedProducer};
use t3_gpu::collective::{CollectiveKind, RingCollective};
use t3_gpu::gemm::GemmShape;
use t3_sim::config::SystemConfig;

fn inputs(n: usize, len: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|d| (0..len).map(|i| ((i * 31 + d * 7) % 23) as f32 - 11.0).collect())
        .collect()
}

fn bench_functional_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("functional_collectives");
    let n = 8;
    let len = 1 << 16; // 64K f32 elements per device
    group.bench_function("ring_reduce_scatter", |b| {
        b.iter(|| {
            let mut cluster = Cluster::from_buffers(inputs(n, len));
            ring_reduce_scatter(&mut cluster);
            black_box(cluster.device(0).load(0))
        })
    });
    group.bench_function("ring_all_gather", |b| {
        b.iter(|| {
            let mut cluster = Cluster::from_buffers(inputs(n, len));
            ring_all_gather(&mut cluster);
            black_box(cluster.device(0).load(0))
        })
    });
    group.bench_function("ring_all_reduce", |b| {
        b.iter(|| {
            let mut cluster = Cluster::from_buffers(inputs(n, len));
            ring_all_reduce(&mut cluster);
            black_box(cluster.device(0).load(0))
        })
    });
    group.bench_function("direct_reduce_scatter", |b| {
        b.iter(|| {
            let mut cluster = Cluster::from_buffers(inputs(n, len));
            direct_reduce_scatter(&mut cluster);
            black_box(cluster.device(0).load(0))
        })
    });
    group.finish();
}

fn bench_timing_rs_model(c: &mut Criterion) {
    // The Figure 14 sweep points.
    let sys = SystemConfig::paper_default().with_num_gpus(4);
    let mut group = c.benchmark_group("timing_ring_rs");
    for mb in [6u64, 48, 192] {
        group.bench_with_input(BenchmarkId::from_parameter(mb), &mb, |b, &mb| {
            let bytes = mb << 20;
            b.iter(|| {
                black_box(
                    RingCollective::baseline(CollectiveKind::ReduceScatter, bytes, &sys)
                        .simulate(&sys)
                        .cycles,
                )
            })
        });
    }
    group.finish();
}

fn bench_functional_fusion(c: &mut Criterion) {
    let mut gpu = SystemConfig::paper_default().gpu;
    gpu.tile_dim = 32;
    let (m, n, k) = (256usize, 256usize, 32usize);
    let shape = GemmShape::new(m as u64, n as u64, k as u64);
    let producers: Vec<FusedProducer> = (0..4)
        .map(|d| FusedProducer {
            a: (0..m * k).map(|i| ((i + d) % 13) as f32 - 6.0).collect(),
            b: (0..k * n).map(|i| ((i * 3 + d) % 11) as f32 - 5.0).collect(),
        })
        .collect();
    c.bench_function("fused_gemm_ring_rs_functional", |b| {
        b.iter(|| black_box(fused_gemm_ring_rs(&gpu, shape, &producers)).triggers_fired)
    });
}

criterion_group!(
    benches,
    bench_functional_collectives,
    bench_timing_rs_model,
    bench_functional_fusion
);
criterion_main!(benches);
