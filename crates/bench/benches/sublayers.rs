//! Benches over the paper's evaluated configurations: one T-NLG
//! FC-2-like sublayer (tokens scaled 8x down) per configuration.
//! These are the per-table regeneration workloads of Figures 15/16 in
//! micro form; the `figures` binary runs them at full scale.

use std::hint::black_box;
use t3_bench::harness::{bench, DEFAULT_ITERS};
use t3_core::configs::Configuration;
use t3_gpu::gemm::GemmShape;
use t3_models::zoo;
use t3_sim::config::SystemConfig;

fn sublayer_shape() -> GemmShape {
    let mut s = zoo::t_nlg().sublayer_gemm(t3_models::Sublayer::Fc2, 8);
    s.m /= 8;
    s
}

fn bench_configurations() {
    let sys = SystemConfig::paper_default();
    let shape = sublayer_shape();
    for config in Configuration::ALL {
        bench(
            &format!("sublayer_configs/{}", config.name()),
            DEFAULT_ITERS,
            || black_box(config.run(&sys, &shape)).total_cycles,
        );
    }
}

fn bench_tp_scaling() {
    for tp in [8u64, 16] {
        let sys = SystemConfig::paper_default().with_num_gpus(tp as usize);
        let mut shape = zoo::t_nlg().sublayer_gemm(t3_models::Sublayer::Fc2, tp);
        shape.m /= 8;
        bench(&format!("t3_mca_tp_scaling/tp{tp}"), DEFAULT_ITERS, || {
            black_box(Configuration::T3Mca.run(&sys, &shape)).total_cycles
        });
    }
}

fn main() {
    bench_configurations();
    bench_tp_scaling();
}
