//! Criterion benches over the paper's evaluated configurations: one
//! T-NLG FC-2-like sublayer (tokens scaled 8x down) per configuration.
//! These are the per-table regeneration workloads of Figures 15/16 in
//! micro form; the `figures` binary runs them at full scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use t3_core::configs::Configuration;
use t3_gpu::gemm::GemmShape;
use t3_models::zoo;
use t3_sim::config::SystemConfig;

fn sublayer_shape() -> GemmShape {
    let mut s = zoo::t_nlg().sublayer_gemm(t3_models::Sublayer::Fc2, 8);
    s.m /= 8;
    s
}

fn bench_configurations(c: &mut Criterion) {
    let sys = SystemConfig::paper_default();
    let shape = sublayer_shape();
    let mut group = c.benchmark_group("sublayer_configs");
    group.sample_size(10);
    for config in Configuration::ALL {
        group.bench_function(config.name(), |b| {
            b.iter(|| black_box(config.run(&sys, &shape)).total_cycles)
        });
    }
    group.finish();
}

fn bench_tp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("t3_mca_tp_scaling");
    group.sample_size(10);
    for tp in [8u64, 16] {
        let sys = SystemConfig::paper_default().with_num_gpus(tp as usize);
        let mut shape = zoo::t_nlg().sublayer_gemm(t3_models::Sublayer::Fc2, tp);
        shape.m /= 8;
        group.bench_function(format!("tp{tp}"), |b| {
            b.iter(|| black_box(Configuration::T3Mca.run(&sys, &shape)).total_cycles)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_configurations, bench_tp_scaling);
criterion_main!(benches);
