//! Criterion benches for the Section-7 extension engines: direct-RS,
//! all-to-all, AG→consumer fusion, and the explicit multi-GPU
//! validator. As with the ablations, the interesting quantity is the
//! simulated cycle count (printed once); Criterion's wall-clock only
//! measures the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use t3_core::agfuse::{run_fused_ag_gemm, AgFuseOptions};
use t3_core::engine::{
    run_fused_gemm_all_to_all, run_fused_gemm_direct_rs, run_fused_gemm_rs, FusedOptions,
};
use t3_core::multigpu::run_multi_gpu_fused_rs;
use t3_gpu::gemm::{GemmGrid, GemmShape};
use t3_sim::config::SystemConfig;

fn grid(sys: &SystemConfig) -> GemmGrid {
    GemmGrid::new(&sys.gpu, GemmShape::new(1024, 2048, 512))
}

fn bench_fusion_topologies(c: &mut Criterion) {
    let sys = SystemConfig::paper_default();
    let mut group = c.benchmark_group("fusion_topologies");
    group.sample_size(10);
    group.bench_function("ring_rs", |b| {
        b.iter(|| black_box(run_fused_gemm_rs(&sys, grid(&sys), &FusedOptions::default())).cycles)
    });
    group.bench_function("direct_rs", |b| {
        b.iter(|| {
            black_box(run_fused_gemm_direct_rs(
                &sys,
                grid(&sys),
                &FusedOptions::default(),
            ))
            .cycles
        })
    });
    group.bench_function("all_to_all", |b| {
        b.iter(|| {
            black_box(run_fused_gemm_all_to_all(
                &sys,
                grid(&sys),
                &FusedOptions::default(),
            ))
            .cycles
        })
    });
    group.finish();
}

fn bench_ag_fusion(c: &mut Criterion) {
    let sys = SystemConfig::paper_default();
    let ag_grid = GemmGrid::new(&sys.gpu, GemmShape::new(2048, 1024, 512));
    let mut group = c.benchmark_group("ag_consumer_fusion");
    group.sample_size(10);
    for (label, aligned) in [("aligned", true), ("unaligned", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(run_fused_ag_gemm(
                    &sys,
                    ag_grid.clone(),
                    &AgFuseOptions {
                        arrival_aligned: aligned,
                    },
                ))
                .cycles
            })
        });
    }
    group.finish();
}

fn bench_explicit_multigpu(c: &mut Criterion) {
    let sys = SystemConfig::paper_default();
    let mut group = c.benchmark_group("explicit_multigpu");
    group.sample_size(10);
    group.bench_function("8_gpus", |b| {
        b.iter(|| {
            black_box(run_multi_gpu_fused_rs(
                &sys,
                grid(&sys),
                &FusedOptions::default(),
            ))
            .cycles
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fusion_topologies,
    bench_ag_fusion,
    bench_explicit_multigpu
);
criterion_main!(benches);
