//! Benches for the Section-7 extension engines: direct-RS,
//! all-to-all, AG→consumer fusion, and the explicit multi-GPU
//! validator. As with the ablations, the interesting quantity is the
//! simulated cycle count; wall-clock only measures the simulator.

use std::hint::black_box;
use t3_bench::harness::{bench, DEFAULT_ITERS};
use t3_core::agfuse::{run_fused_ag_gemm, AgFuseOptions};
use t3_core::engine::{
    run_fused_gemm_all_to_all, run_fused_gemm_direct_rs, run_fused_gemm_rs, FusedOptions,
};
use t3_core::multigpu::run_multi_gpu_fused_rs;
use t3_gpu::gemm::{GemmGrid, GemmShape};
use t3_sim::config::SystemConfig;

fn grid(sys: &SystemConfig) -> GemmGrid {
    GemmGrid::new(&sys.gpu, GemmShape::new(1024, 2048, 512))
}

fn bench_fusion_topologies() {
    let sys = SystemConfig::paper_default();
    bench("fusion_topologies/ring_rs", DEFAULT_ITERS, || {
        black_box(run_fused_gemm_rs(
            &sys,
            grid(&sys),
            &FusedOptions::default(),
        ))
        .cycles
    });
    bench("fusion_topologies/direct_rs", DEFAULT_ITERS, || {
        black_box(run_fused_gemm_direct_rs(
            &sys,
            grid(&sys),
            &FusedOptions::default(),
        ))
        .cycles
    });
    bench("fusion_topologies/all_to_all", DEFAULT_ITERS, || {
        black_box(run_fused_gemm_all_to_all(
            &sys,
            grid(&sys),
            &FusedOptions::default(),
        ))
        .cycles
    });
}

fn bench_ag_fusion() {
    let sys = SystemConfig::paper_default();
    let ag_grid = GemmGrid::new(&sys.gpu, GemmShape::new(2048, 1024, 512));
    for (label, aligned) in [("aligned", true), ("unaligned", false)] {
        bench(
            &format!("ag_consumer_fusion/{label}"),
            DEFAULT_ITERS,
            || {
                black_box(run_fused_ag_gemm(
                    &sys,
                    ag_grid.clone(),
                    &AgFuseOptions {
                        arrival_aligned: aligned,
                    },
                ))
                .cycles
            },
        );
    }
}

fn bench_explicit_multigpu() {
    let sys = SystemConfig::paper_default();
    bench("explicit_multigpu/8_gpus", DEFAULT_ITERS, || {
        black_box(run_multi_gpu_fused_rs(
            &sys,
            grid(&sys),
            &FusedOptions::default(),
        ))
        .cycles
    });
}

fn main() {
    bench_fusion_topologies();
    bench_ag_fusion();
    bench_explicit_multigpu();
}
