//! Ablation benches for the design choices DESIGN.md calls out: MCA
//! occupancy thresholds, the reduction substrate (NMC vs
//! system-atomics), staggered WG scheduling, and the stream-switch
//! penalty that motivates MCA in the first place. Each bench's
//! *measured value of interest* is the simulated cycle count — the
//! wall-clock the harness reports is just simulator overhead — so
//! each group also prints the simulated cycles once.

use std::hint::black_box;
use t3_bench::harness::{bench, DEFAULT_ITERS};
use t3_core::engine::{run_fused_gemm_rs, FusedOptions, PolicyChoice};
use t3_gpu::gemm::{GemmGrid, GemmShape};
use t3_mem::nmc::ReductionSubstrate;
use t3_sim::config::SystemConfig;

fn shape() -> GemmShape {
    let mut s = t3_models::zoo::t_nlg().sublayer_gemm(t3_models::Sublayer::Fc2, 8);
    s.m /= 8;
    s
}

fn run(sys: &SystemConfig, opts: &FusedOptions) -> u64 {
    let grid = GemmGrid::new(&sys.gpu, shape());
    run_fused_gemm_rs(sys, grid, opts).cycles
}

fn bench_mca_thresholds() {
    let sys = SystemConfig::paper_default();
    for (label, policy) in [
        ("rr", PolicyChoice::RoundRobin),
        ("t5", PolicyChoice::McaFixed(5)),
        ("t10", PolicyChoice::McaFixed(10)),
        ("t30", PolicyChoice::McaFixed(30)),
        ("tinf", PolicyChoice::McaFixed(usize::MAX)),
        ("dynamic", PolicyChoice::McaDynamic),
    ] {
        let cycles = run(
            &sys,
            &FusedOptions {
                policy,
                ..FusedOptions::default()
            },
        );
        println!("mca_threshold[{label}]: {cycles} simulated cycles");
    }
    for (label, policy) in [
        ("threshold_5", PolicyChoice::McaFixed(5)),
        ("threshold_30", PolicyChoice::McaFixed(30)),
        ("dynamic", PolicyChoice::McaDynamic),
    ] {
        bench(&format!("mca_threshold/{label}"), DEFAULT_ITERS, || {
            black_box(run(
                &sys,
                &FusedOptions {
                    policy,
                    ..FusedOptions::default()
                },
            ))
        });
    }
}

fn bench_substrate() {
    let sys = SystemConfig::paper_default();
    for (label, substrate) in [
        ("nmc", ReductionSubstrate::NearMemory),
        ("atomics", ReductionSubstrate::SystemAtomics),
    ] {
        let cycles = run(
            &sys,
            &FusedOptions {
                substrate,
                policy: PolicyChoice::McaDynamic,
                ..FusedOptions::default()
            },
        );
        println!("substrate[{label}]: {cycles} simulated cycles");
    }
    for (label, substrate) in [
        ("near_memory", ReductionSubstrate::NearMemory),
        ("system_atomics", ReductionSubstrate::SystemAtomics),
    ] {
        bench(
            &format!("reduction_substrate/{label}"),
            DEFAULT_ITERS,
            || {
                black_box(run(
                    &sys,
                    &FusedOptions {
                        substrate,
                        policy: PolicyChoice::McaDynamic,
                        ..FusedOptions::default()
                    },
                ))
            },
        );
    }
}

fn bench_stagger() {
    let sys = SystemConfig::paper_default();
    for stagger in [true, false] {
        let cycles = run(
            &sys,
            &FusedOptions {
                stagger,
                policy: PolicyChoice::McaDynamic,
                ..FusedOptions::default()
            },
        );
        println!("stagger[{stagger}]: {cycles} simulated cycles");
    }
    for (label, stagger) in [("staggered", true), ("unstaggered", false)] {
        bench(&format!("stagger/{label}"), DEFAULT_ITERS, || {
            black_box(run(
                &sys,
                &FusedOptions {
                    stagger,
                    policy: PolicyChoice::McaDynamic,
                    ..FusedOptions::default()
                },
            ))
        });
    }
}

fn bench_switch_penalty() {
    for penalty in [0.0, 0.75, 1.5] {
        let mut sys = SystemConfig::paper_default();
        sys.mem.stream_switch_penalty = penalty;
        let cycles = run(
            &sys,
            &FusedOptions {
                policy: PolicyChoice::RoundRobin,
                ..FusedOptions::default()
            },
        );
        println!("switch_penalty[{penalty}]: {cycles} simulated cycles (round-robin)");
    }
    for penalty in [0.0, 0.75] {
        let mut sys = SystemConfig::paper_default();
        sys.mem.stream_switch_penalty = penalty;
        bench(
            &format!("stream_switch_penalty/penalty_{penalty}"),
            DEFAULT_ITERS,
            || {
                black_box(run(
                    &sys,
                    &FusedOptions {
                        policy: PolicyChoice::RoundRobin,
                        ..FusedOptions::default()
                    },
                ))
            },
        );
    }
}

fn main() {
    bench_mca_thresholds();
    bench_substrate();
    bench_stagger();
    bench_switch_penalty();
}
