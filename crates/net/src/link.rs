//! A point-to-point link with finite bandwidth and fixed latency.
//!
//! Messages serialise onto the wire at the link's byte rate (one at a
//! time, in order) and are delivered one link latency after their last
//! byte leaves. This is the standard alpha-beta model the paper's
//! multi-GPU extension of Accel-Sim uses for inter-GPU traffic
//! (Section 5.1.1: "a simple link bandwidth and latency model").

use std::collections::VecDeque;

use t3_sim::config::LinkConfig;
use t3_sim::{Bytes, Cycle};
use t3_trace::{Event, Instruments};

/// A message in flight, tagged with a caller-chosen identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Caller-chosen tag (e.g. DMA command id).
    pub tag: u64,
    /// Payload size.
    pub bytes: Bytes,
    /// Cycle at which the message is fully received.
    pub arrival: Cycle,
}

/// A uni-directional link. A ring GPU uses one `Link` per direction;
/// the paper's steady-state GEMM-RS only sends in one direction.
#[derive(Debug, Clone)]
pub struct Link {
    bytes_per_cycle: f64,
    latency: Cycle,
    /// Cycle at which the serialiser becomes free.
    free_at: Cycle,
    in_flight: VecDeque<Delivery>,
    total_sent: Bytes,
}

impl Link {
    /// Creates a link from the system's link configuration.
    pub fn new(cfg: &LinkConfig) -> Self {
        Link {
            bytes_per_cycle: cfg.bytes_per_cycle(),
            latency: cfg.latency_cycles(),
            free_at: 0,
            in_flight: VecDeque::new(),
            total_sent: 0,
        }
    }

    /// Link payload rate in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// One-way latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Enqueues `bytes` for transmission at time `now`; returns the
    /// delivery (arrival) cycle. Messages serialise in FIFO order.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero — zero-byte messages have no wire
    /// representation and would stall arrival ordering.
    pub fn send(&mut self, now: Cycle, tag: u64, bytes: Bytes) -> Cycle {
        assert!(bytes > 0, "cannot send an empty message");
        let start = self.free_at.max(now);
        let ser_cycles = (bytes as f64 / self.bytes_per_cycle).ceil() as Cycle; // t3-lint: allow(float-cycles) -- single ceil of a rational bandwidth ratio; pinned by link unit tests
        self.free_at = start + ser_cycles;
        let arrival = self.free_at + self.latency;
        self.in_flight.push_back(Delivery {
            tag,
            bytes,
            arrival,
        });
        self.total_sent += bytes;
        arrival
    }

    /// [`Link::send`] that also records the serialiser's busy interval
    /// as a [`Event::LinkBusy`] span and bumps `link.bytes_sent`.
    /// Passing `None` is identical to `send`.
    pub fn send_traced(
        &mut self,
        now: Cycle,
        tag: u64,
        bytes: Bytes,
        ins: Option<&mut Instruments>,
    ) -> Cycle {
        let start = self.free_at.max(now);
        let arrival = self.send(now, tag, bytes);
        if let Some(ins) = ins {
            let end = self.free_at;
            ins.record(end, Event::LinkBusy { start, end, bytes });
            ins.add("link.bytes_sent", bytes);
        }
        arrival
    }

    /// Pops every message that has fully arrived by `now`.
    pub fn deliveries_until(&mut self, now: Cycle) -> Vec<Delivery> {
        let mut out = Vec::new();
        while let Some(head) = self.in_flight.front() {
            if head.arrival > now {
                break;
            }
            out.push(*head);
            self.in_flight.pop_front();
        }
        out
    }

    /// Cycle at which the serialiser frees up (i.e. earliest start for
    /// a new message).
    pub fn busy_until(&self) -> Cycle {
        self.free_at
    }

    /// The next cycle strictly after `now` at which polling
    /// [`Link::deliveries_until`] can return something new: the head
    /// in-flight arrival, clamped forward to `now + 1` (a head already
    /// due pops on the very next poll). `None` when nothing is in
    /// flight — an empty link only changes state through a new
    /// [`Link::send`].
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.in_flight.front().map(|d| d.arrival.max(now + 1))
    }

    /// True when nothing is queued or in flight.
    pub fn is_idle(&self, now: Cycle) -> bool {
        self.in_flight.is_empty() && self.free_at <= now
    }

    /// Total bytes ever accepted for transmission.
    pub fn total_sent(&self) -> Bytes {
        self.total_sent
    }

    /// Pure helper: time to serialise `bytes` on this link, excluding
    /// latency. Used by analytic models (e.g. Figure 14's reference).
    pub fn serialization_cycles(&self, bytes: Bytes) -> Cycle {
        // t3-lint: allow(float-cycles) -- same ceil as Link::send; keeping them identical is what makes the analytic reference exact
        (bytes as f64 / self.bytes_per_cycle).ceil() as Cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t3_sim::config::SystemConfig;

    fn link() -> Link {
        Link::new(&SystemConfig::paper_default().link)
    }

    #[test]
    fn arrival_is_serialization_plus_latency() {
        let mut l = link();
        let bytes = 1_070_000; // ~10k cycles at 107 B/cycle
        let arrival = l.send(0, 1, bytes);
        let expected = l.serialization_cycles(bytes) + l.latency();
        assert_eq!(arrival, expected);
    }

    #[test]
    fn messages_serialize_in_order() {
        let mut l = link();
        let a1 = l.send(0, 1, 107_000);
        let a2 = l.send(0, 2, 107_000);
        assert!(a2 > a1);
        // Second message waits for the first to finish serialising.
        assert_eq!(a2 - a1, l.serialization_cycles(107_000));
    }

    #[test]
    fn deliveries_pop_in_arrival_order() {
        let mut l = link();
        l.send(0, 7, 1_000);
        l.send(0, 8, 1_000);
        assert!(l.deliveries_until(0).is_empty());
        let all = l.deliveries_until(1_000_000);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].tag, 7);
        assert_eq!(all[1].tag, 8);
        assert!(l.deliveries_until(1_000_000).is_empty());
    }

    #[test]
    fn idle_tracking() {
        let mut l = link();
        assert!(l.is_idle(0));
        let arrival = l.send(5, 1, 10_000);
        assert!(!l.is_idle(5));
        l.deliveries_until(arrival);
        assert!(l.is_idle(arrival));
    }

    #[test]
    fn send_after_idle_gap_starts_at_now() {
        let mut l = link();
        let a1 = l.send(0, 1, 107); // finishes quickly
        let later = a1 + 10_000;
        let a2 = l.send(later, 2, 107);
        assert_eq!(a2, later + l.serialization_cycles(107) + l.latency());
    }

    #[test]
    fn total_sent_accumulates() {
        let mut l = link();
        l.send(0, 1, 100);
        l.send(0, 2, 200);
        assert_eq!(l.total_sent(), 300);
    }

    #[test]
    #[should_panic(expected = "empty message")]
    fn empty_send_panics() {
        link().send(0, 0, 0);
    }

    #[test]
    fn next_event_is_the_exact_delivery_cycle() {
        let mut l = link();
        assert_eq!(l.next_event(0), None, "idle link has no events");
        let arrival = l.send(0, 1, 10_000);
        // Stepping from cycle 1: the first cycle at which
        // deliveries_until returns anything must equal next_event.
        let predicted = l.next_event(0).expect("message in flight");
        let mut probe = l.clone();
        let mut first = None;
        for now in 1..=arrival {
            if !probe.deliveries_until(now).is_empty() {
                first = Some(now);
                break;
            }
        }
        assert_eq!(first, Some(predicted));
        assert_eq!(predicted, arrival);
        // An overdue head clamps forward to now + 1.
        let mut l2 = link();
        let a2 = l2.send(0, 2, 107);
        assert_eq!(l2.next_event(a2 + 50), Some(a2 + 51));
        // Drained link: no events again.
        l.deliveries_until(arrival);
        assert_eq!(l.next_event(arrival), None);
    }

    #[test]
    fn paper_link_rate_and_latency() {
        let l = link();
        assert!((l.bytes_per_cycle() - 107.14).abs() < 0.01);
        assert_eq!(l.latency(), 700);
    }
}
