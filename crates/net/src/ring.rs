//! Ring-topology helpers (Section 2.3).
//!
//! Ring reduce-scatter chunks the array `N` ways and runs `N-1` steps;
//! in step `s`, device `d` *sends* the chunk it received (and reduced)
//! in step `s-1` and *receives* a new one. The chunk indexing below is
//! the standard schedule: device `d` starts by sending chunk `d`, and
//! after `N-1` steps owns the fully-reduced chunk `(d + 1) mod N`.
//! Both the functional collectives and the timing engine derive their
//! schedules from this one module so they cannot drift apart.

/// A ring of `n` devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ring {
    n: usize,
}

impl Ring {
    /// Creates a ring of `n` devices.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "a ring needs at least two devices");
        Ring { n }
    }

    /// Number of devices. Always at least 2 (the constructor rejects
    /// smaller rings), so there is no `is_empty`.
    #[allow(clippy::len_without_is_empty)] // -- a ring is never empty: the constructor rejects n < 2
    pub fn len(&self) -> usize {
        self.n
    }

    /// The device `device` sends to (next in the ring).
    pub fn next(&self, device: usize) -> usize {
        (device + 1) % self.n
    }

    /// The device `device` receives from (previous in the ring).
    pub fn prev(&self, device: usize) -> usize {
        (device + self.n - 1) % self.n
    }

    /// Number of steps in a ring reduce-scatter or all-gather.
    pub fn steps(&self) -> usize {
        self.n - 1
    }

    /// Chunk that `device` sends in reduce-scatter step `step`
    /// (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `step >= self.steps()` or `device >= self.len()`.
    pub fn rs_send_chunk(&self, device: usize, step: usize) -> usize {
        self.check(device, step);
        (device + self.n - step) % self.n
    }

    /// Chunk that `device` receives (and reduces) in reduce-scatter
    /// step `step`. Equals what its predecessor sends.
    pub fn rs_recv_chunk(&self, device: usize, step: usize) -> usize {
        self.rs_send_chunk(self.prev(device), step)
    }

    /// Chunk that `device` owns fully reduced after reduce-scatter.
    pub fn rs_owned_chunk(&self, device: usize) -> usize {
        assert!(device < self.n, "device out of range");
        (device + 1) % self.n
    }

    /// Chunk that `device` sends in all-gather step `step`: it starts
    /// with its owned chunk and forwards what it last received.
    pub fn ag_send_chunk(&self, device: usize, step: usize) -> usize {
        self.check(device, step);
        (self.rs_owned_chunk(device) + self.n - step) % self.n
    }

    /// Chunk that `device` receives in all-gather step `step`.
    pub fn ag_recv_chunk(&self, device: usize, step: usize) -> usize {
        self.ag_send_chunk(self.prev(device), step)
    }

    fn check(&self, device: usize, step: usize) {
        assert!(device < self.n, "device out of range");
        assert!(step < self.steps(), "step out of range");
    }
}

/// Splits `len` elements into `n` chunks: chunk `i` is
/// `[chunk_bounds(len, n, i).0, chunk_bounds(len, n, i).1)`. Chunks
/// differ in size by at most one element (remainder spread over the
/// first chunks), matching how collective libraries chunk arrays.
pub fn chunk_bounds(len: usize, n: usize, i: usize) -> (usize, usize) {
    assert!(i < n, "chunk index out of range");
    let base = len / n;
    let rem = len % n;
    let start = i * base + i.min(rem);
    let size = base + usize::from(i < rem);
    (start, start + size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbours_wrap() {
        let r = Ring::new(4);
        assert_eq!(r.next(3), 0);
        assert_eq!(r.prev(0), 3);
        assert_eq!(r.steps(), 3);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn rs_schedule_covers_each_chunk_once_per_step() {
        // In every step, the set of chunks sent across all devices is a
        // permutation of all chunks.
        for n in [2, 3, 4, 8, 16] {
            let r = Ring::new(n);
            for step in 0..r.steps() {
                let mut seen = vec![false; n];
                for d in 0..n {
                    let c = r.rs_send_chunk(d, step);
                    assert!(!seen[c], "chunk {c} sent twice in step {step}");
                    seen[c] = true;
                }
            }
        }
    }

    #[test]
    fn rs_recv_matches_predecessor_send() {
        let r = Ring::new(8);
        for step in 0..r.steps() {
            for d in 0..8 {
                assert_eq!(r.rs_recv_chunk(d, step), r.rs_send_chunk(r.prev(d), step));
            }
        }
    }

    #[test]
    fn rs_reduction_chain_ends_at_owner() {
        // Follow chunk c around the ring: after N-1 hops it must land on
        // the device that owns it.
        for n in [2, 4, 8] {
            let r = Ring::new(n);
            for c in 0..n {
                // The device that sends chunk c at step 0 is device c.
                assert_eq!(r.rs_send_chunk(c, 0), c);
                // The final receiver at the last step owns it.
                let mut holder = c;
                for step in 0..r.steps() {
                    assert_eq!(r.rs_send_chunk(holder, step), c);
                    holder = r.next(holder);
                }
                assert_eq!(r.rs_owned_chunk(holder), c);
            }
        }
    }

    #[test]
    fn ag_starts_from_owned_chunk() {
        let r = Ring::new(4);
        for d in 0..4 {
            assert_eq!(r.ag_send_chunk(d, 0), r.rs_owned_chunk(d));
        }
    }

    #[test]
    fn ag_recv_matches_predecessor_send() {
        let r = Ring::new(6);
        for step in 0..r.steps() {
            for d in 0..6 {
                assert_eq!(r.ag_recv_chunk(d, step), r.ag_send_chunk(r.prev(d), step));
            }
        }
    }

    #[test]
    fn chunk_bounds_partition_exactly() {
        for (len, n) in [(10, 3), (16, 4), (7, 8), (0, 2), (100, 7)] {
            let mut covered = 0;
            for i in 0..n {
                let (s, e) = chunk_bounds(len, n, i);
                assert_eq!(s, covered, "chunks must be contiguous");
                assert!(e >= s);
                covered = e;
            }
            assert_eq!(covered, len);
        }
    }

    #[test]
    fn chunk_sizes_differ_by_at_most_one() {
        let sizes: Vec<usize> = (0..4)
            .map(|i| {
                let (s, e) = chunk_bounds(10, 4, i);
                e - s
            })
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        let max = sizes.iter().max().unwrap();
        let min = sizes.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn singleton_ring_panics() {
        let _ = Ring::new(1);
    }

    #[test]
    #[should_panic(expected = "step out of range")]
    fn step_bounds_checked() {
        let r = Ring::new(2);
        let _ = r.rs_send_chunk(0, 1);
    }
}
