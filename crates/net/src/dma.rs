//! DMA engine (Section 4.2.2).
//!
//! T3 pre-programs DMA commands at kernel launch (via the address-space
//! configuration, Figure 12) and the Tracker marks them *ready* as the
//! producer and incoming updates complete. The engine then reads the
//! source region through the memory controller's communication stream
//! and pushes it onto the link — no CUs involved.
//!
//! The engine is cycle-stepped and pipelined: while one command's
//! payload serialises on the link, the next command's source read can
//! already be in flight at the memory controller.

use std::collections::VecDeque;

use crate::link::{Delivery, Link};
use t3_mem::controller::{MemoryController, StreamId};
use t3_sim::config::LinkConfig;
use t3_sim::stats::TrafficClass;
use t3_sim::{Bytes, Cycle};
use t3_trace::{reborrow, Event, Instruments};

/// A pre-programmed DMA command, marked ready by the Tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaCommand {
    /// Caller-chosen identifier carried through to the delivery.
    pub id: u64,
    /// Payload size in bytes.
    pub bytes: Bytes,
    /// Traffic class of the source read at the local memory controller
    /// (e.g. [`TrafficClass::RsRead`] for reduce-scatter chunks).
    pub read_class: TrafficClass,
}

#[derive(Debug, Clone, Copy)]
struct Reading {
    cmd: DmaCommand,
    /// Target value of the serviced-bytes counter for `read_class`
    /// at which the source read is complete.
    target: Bytes,
}

/// The DMA engine: a command queue, an in-flight source read, and the
/// outbound link.
#[derive(Debug)]
pub struct DmaEngine {
    queue: VecDeque<DmaCommand>,
    reading: Option<Reading>,
    link: Link,
    sent_commands: u64,
}

impl DmaEngine {
    /// Creates an engine sending over a link with configuration `cfg`.
    pub fn new(cfg: &LinkConfig) -> Self {
        DmaEngine {
            queue: VecDeque::new(),
            reading: None,
            link: Link::new(cfg),
            sent_commands: 0,
        }
    }

    /// Queues a ready command (Tracker trigger). Zero-byte commands are
    /// completed immediately and never touch memory or the link.
    pub fn trigger(&mut self, cmd: DmaCommand) {
        if cmd.bytes == 0 {
            self.sent_commands += 1;
            return;
        }
        self.queue.push_back(cmd);
    }

    /// Advances the engine one cycle: completes a finished source read
    /// by starting its link transmission, and starts the next queued
    /// command's source read. Returns messages fully delivered to the
    /// neighbour by `now`.
    pub fn step(&mut self, now: Cycle, mc: &mut MemoryController) -> Vec<Delivery> {
        self.step_traced(now, mc, None)
    }

    /// [`DmaEngine::step`] that also records each payload handed to the
    /// link as a [`Event::ChunkSend`] span (the serialiser's busy
    /// interval) plus a [`Event::LinkBusy`] span, and bumps
    /// `dma.chunks_sent` / `dma.bytes_sent`. Passing `None` is
    /// identical to `step`.
    pub fn step_traced(
        &mut self,
        now: Cycle,
        mc: &mut MemoryController,
        mut ins: Option<&mut Instruments>,
    ) -> Vec<Delivery> {
        if let Some(reading) = self.reading {
            if mc.stats().bytes(reading.cmd.read_class) >= reading.target {
                let start = self.link.busy_until().max(now);
                self.link
                    .send_traced(now, reading.cmd.id, reading.cmd.bytes, reborrow(&mut ins));
                if let Some(ins) = reborrow(&mut ins) {
                    let end = self.link.busy_until();
                    ins.record(
                        end,
                        Event::ChunkSend {
                            chunk: reading.cmd.id,
                            bytes: reading.cmd.bytes,
                            hops: 1,
                            start,
                            end,
                        },
                    );
                    ins.add("dma.chunks_sent", 1);
                    ins.add("dma.bytes_sent", reading.cmd.bytes);
                }
                self.sent_commands += 1;
                self.reading = None;
            }
        }
        if self.reading.is_none() {
            if let Some(cmd) = self.queue.pop_front() {
                // The engine serialises its own reads (one in flight),
                // so the completion target is simply "current serviced
                // count + this command's bytes". The fused engine keeps
                // the read class exclusive to DMA source reads.
                let target = mc.stats().bytes(cmd.read_class) + cmd.bytes;
                mc.enqueue(StreamId::Comm, cmd.read_class, cmd.bytes, 1.0);
                self.reading = Some(Reading { cmd, target });
            }
        }
        self.link.deliveries_until(now)
    }

    /// Sends `bytes` directly onto the engine's outbound link without a
    /// local memory read, tagged `tag`. Models the fine-grained
    /// peer-to-peer remote stores of T3's warm-up step (Section 4.1):
    /// the producer's stores leave for the neighbour as they are made
    /// and never touch local DRAM. Shares (and serialises with) the
    /// link used by DMA payloads.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn send_direct(&mut self, now: Cycle, tag: u64, bytes: Bytes) {
        self.link.send(now, tag, bytes);
    }

    /// [`DmaEngine::send_direct`] that also records the link busy span.
    /// Passing `None` is identical to `send_direct`.
    pub fn send_direct_traced(
        &mut self,
        now: Cycle,
        tag: u64,
        bytes: Bytes,
        ins: Option<&mut Instruments>,
    ) {
        self.link.send_traced(now, tag, bytes, ins);
    }

    /// True when no command is queued, reading, or on the wire.
    pub fn is_idle(&self, now: Cycle) -> bool {
        self.queue.is_empty() && self.reading.is_none() && self.link.is_idle(now)
    }

    /// The next cycle strictly after `now` at which stepping this
    /// engine can change state: the head in-flight link arrival, a
    /// completed source read starting its transmission (`now + 1`), or
    /// a queued command starting its read (`now + 1`). `None` when
    /// nothing is pending — an in-flight source read that the memory
    /// controller has not finished servicing reports `None` here
    /// because the controller itself is busy (it holds the un-serviced
    /// transactions) and already pins the next event at `now + 1`.
    pub fn next_event(&self, now: Cycle, mc: &MemoryController) -> Option<Cycle> {
        let read_event = match self.reading {
            Some(r) if mc.stats().bytes(r.cmd.read_class) >= r.target => Some(now + 1),
            Some(_) => None,
            None if !self.queue.is_empty() => Some(now + 1),
            None => None,
        };
        match (self.link.next_event(now), read_event) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        }
    }

    /// Commands whose payload has been handed to the link (plus
    /// zero-byte commands completed eagerly).
    pub fn sent_commands(&self) -> u64 {
        self.sent_commands
    }

    /// Total bytes accepted by the link so far.
    pub fn bytes_sent(&self) -> Bytes {
        self.link.total_sent()
    }

    /// The underlying link (for latency/rate queries).
    pub fn link(&self) -> &Link {
        &self.link
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t3_mem::arbiter::ComputeFirstPolicy;
    use t3_sim::config::SystemConfig;

    fn setup() -> (DmaEngine, MemoryController) {
        let sys = SystemConfig::paper_default();
        let engine = DmaEngine::new(&sys.link);
        let mc = MemoryController::new(&sys.mem, Box::new(ComputeFirstPolicy::new()));
        (engine, mc)
    }

    fn run(engine: &mut DmaEngine, mc: &mut MemoryController, limit: Cycle) -> Vec<Delivery> {
        let mut out = Vec::new();
        let mut now = 0;
        while now < limit && !(engine.is_idle(now) && mc.is_idle()) {
            mc.step(now, None);
            out.extend(engine.step(now, mc));
            now += 1;
        }
        out
    }

    #[test]
    fn command_reads_then_sends_then_delivers() {
        let (mut engine, mut mc) = setup();
        engine.trigger(DmaCommand {
            id: 42,
            bytes: 100_000,
            read_class: TrafficClass::RsRead,
        });
        let deliveries = run(&mut engine, &mut mc, 1_000_000);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].tag, 42);
        assert_eq!(deliveries[0].bytes, 100_000);
        // The source read went through the memory controller.
        assert_eq!(mc.stats().bytes(TrafficClass::RsRead), 100_000);
        assert_eq!(engine.bytes_sent(), 100_000);
    }

    #[test]
    fn delivery_not_before_read_plus_wire_time() {
        let (mut engine, mut mc) = setup();
        let bytes = 1_000_000;
        engine.trigger(DmaCommand {
            id: 1,
            bytes,
            read_class: TrafficClass::RsRead,
        });
        let mut now = 0;
        let arrival = loop {
            mc.step(now, None);
            let d = engine.step(now, &mut mc);
            if !d.is_empty() {
                break now;
            }
            now += 1;
            assert!(now < 100_000_000);
        };
        let wire = engine.link().serialization_cycles(bytes) + engine.link().latency();
        assert!(
            arrival >= wire,
            "arrival {arrival} cannot beat wire time {wire}"
        );
    }

    #[test]
    fn commands_pipeline_in_order() {
        let (mut engine, mut mc) = setup();
        for id in 0..3 {
            engine.trigger(DmaCommand {
                id,
                bytes: 50_000,
                read_class: TrafficClass::RsRead,
            });
        }
        let deliveries = run(&mut engine, &mut mc, 10_000_000);
        let tags: Vec<u64> = deliveries.iter().map(|d| d.tag).collect();
        assert_eq!(tags, vec![0, 1, 2]);
        assert_eq!(engine.sent_commands(), 3);
    }

    #[test]
    fn step_traced_records_chunk_send_and_metrics() {
        let (mut engine, mut mc) = setup();
        engine.trigger(DmaCommand {
            id: 3,
            bytes: 100_000,
            read_class: TrafficClass::RsRead,
        });
        let mut ins = Instruments::full();
        let mut now = 0;
        let mut seen = 0;
        while seen == 0 {
            mc.step(now, None);
            seen += engine.step_traced(now, &mut mc, Some(&mut ins)).len();
            now += 1;
            assert!(now < 100_000_000);
        }
        let tracer = ins.tracer.as_ref().unwrap();
        assert_eq!(
            tracer.count(|e| matches!(e, Event::ChunkSend { bytes: 100_000, .. })),
            1
        );
        assert_eq!(tracer.count(|e| matches!(e, Event::LinkBusy { .. })), 1);
        let metrics = ins.metrics.as_ref().unwrap();
        assert_eq!(metrics.counter("dma.bytes_sent"), 100_000);
        assert_eq!(metrics.counter("link.bytes_sent"), 100_000);
        assert_eq!(metrics.counter("dma.chunks_sent"), 1);
    }

    #[test]
    fn zero_byte_command_completes_eagerly() {
        let (mut engine, _mc) = setup();
        engine.trigger(DmaCommand {
            id: 9,
            bytes: 0,
            read_class: TrafficClass::RsRead,
        });
        assert!(engine.is_idle(0));
        assert_eq!(engine.sent_commands(), 1);
    }

    #[test]
    fn next_event_matches_the_stepped_state_changes() {
        let (mut engine, mut mc) = setup();
        assert_eq!(engine.next_event(0, &mc), None, "idle engine has no events");
        for id in 0..2 {
            engine.trigger(DmaCommand {
                id,
                bytes: 100_000,
                read_class: TrafficClass::RsRead,
            });
        }
        // Queued command: starts its read on the very next step.
        assert_eq!(engine.next_event(0, &mc), Some(1));
        // Step the run to completion, recording every cycle at which
        // the engine observably changed, plus the prediction made right
        // after each step.
        let snapshot = |e: &DmaEngine| (e.queue.len(), e.reading.is_some(), e.sent_commands);
        let mut changes = Vec::new();
        let mut predictions = Vec::new();
        let mut now = 0;
        while !(engine.is_idle(now) && mc.is_idle()) {
            mc.step(now, None);
            let before = snapshot(&engine);
            let delivered = !engine.step(now, &mut mc).is_empty();
            if snapshot(&engine) != before || delivered {
                changes.push(now);
            }
            predictions.push((now, engine.next_event(now, &mc), mc.is_idle()));
            now += 1;
            assert!(now < 100_000_000);
        }
        assert!(changes.len() >= 4, "reads, sends, and deliveries occurred");
        // Whenever the memory controller was idle (the only situation
        // in which the fast-forward loop leaps), the prediction must be
        // EXACTLY the next cycle the stepped engine changed state.
        let mut checked = 0;
        for (asked, predicted, mc_idle) in predictions {
            if !mc_idle {
                continue;
            }
            let actual = changes.iter().copied().find(|&c| c > asked);
            assert_eq!(
                predicted, actual,
                "prediction after cycle {asked} must match the stepped run"
            );
            checked += 1;
        }
        assert!(checked > 0, "the run must contain idle-controller cycles");
        assert_eq!(engine.next_event(now, &mc), None);
    }

    #[test]
    fn next_event_pinpoints_link_arrival() {
        // After the payload is on the wire and the controller has
        // drained, the only event left is the link arrival — the
        // predicted cycle must be exactly the delivery cycle.
        let (mut engine, mut mc) = setup();
        engine.trigger(DmaCommand {
            id: 7,
            bytes: 50_000,
            read_class: TrafficClass::RsRead,
        });
        let mut now = 0;
        while !(engine.reading.is_none() && engine.queue.is_empty() && mc.is_idle()) {
            mc.step(now, None);
            engine.step(now, &mut mc);
            now += 1;
            assert!(now < 100_000_000);
        }
        // Payload handed to the link, nothing else pending.
        let predicted = engine
            .next_event(now, &mc)
            .expect("payload still in flight");
        let mut first = None;
        while now <= predicted {
            mc.step(now, None);
            if !engine.step(now, &mut mc).is_empty() {
                first = Some(now);
                break;
            }
            now += 1;
        }
        assert_eq!(first, Some(predicted));
    }

    #[test]
    fn back_to_back_commands_saturate_link() {
        // With large commands the link, not the read path, must be the
        // bottleneck: total time ~ sum of serialisation times.
        let (mut engine, mut mc) = setup();
        let n = 4;
        let bytes = 2_000_000;
        for id in 0..n {
            engine.trigger(DmaCommand {
                id,
                bytes,
                read_class: TrafficClass::RsRead,
            });
        }
        let mut now = 0;
        let mut seen = 0;
        while seen < n as usize {
            mc.step(now, None);
            seen += engine.step(now, &mut mc).len();
            now += 1;
            assert!(now < 100_000_000);
        }
        let ideal = engine.link().serialization_cycles(bytes) * n + engine.link().latency();
        assert!(
            (now as f64) < ideal as f64 * 1.15,
            "link under-utilised: {now} vs ideal {ideal}"
        );
    }
}
