//! Interconnect model for the T3 reproduction.
//!
//! The paper's system is an intra-node ring (Table 1: 150 GB/s
//! bi-directional, 500 ns link latency), plus per-GPU DMA engines that
//! T3's Tracker pre-programs and triggers (Section 4.2.2).
//!
//! * [`link`] — a bandwidth/latency pipe: messages serialise at the
//!   link rate and arrive one latency later.
//! * [`ring`] — ring-topology helpers (neighbours, chunk ownership per
//!   step) shared by the functional collectives and the timing engine.
//! * [`dma`] — a DMA engine that, per command, reads its source data
//!   through the memory controller's communication stream and then
//!   occupies the link; commands are pre-programmed and marked ready by
//!   the Tracker, matching Figure 9(c).

pub mod dma;
pub mod link;
pub mod ring;
