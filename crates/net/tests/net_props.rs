//! Property tests for the interconnect substrate: link conservation
//! and ordering, ring-schedule algebra, and DMA pipelines.

use proptest::prelude::*;
use t3_mem::arbiter::ComputeFirstPolicy;
use t3_mem::controller::MemoryController;
use t3_net::dma::{DmaCommand, DmaEngine};
use t3_net::link::Link;
use t3_net::ring::{chunk_bounds, Ring};
use t3_sim::config::SystemConfig;
use t3_sim::stats::TrafficClass;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arrivals are FIFO and never earlier than the physical bound
    /// (serialisation + latency); total delivered equals total sent.
    #[test]
    fn link_fifo_and_conservation(
        msgs in prop::collection::vec((1u64..500_000, 0u64..10_000), 1..20),
    ) {
        let cfg = SystemConfig::paper_default().link;
        let mut link = Link::new(&cfg);
        let mut sent_total = 0u64;
        let mut last_arrival = 0u64;
        let mut clock = 0u64;
        for (i, (bytes, gap)) in msgs.iter().enumerate() {
            clock += gap;
            let arrival = link.send(clock, i as u64, *bytes);
            sent_total += bytes;
            prop_assert!(arrival >= last_arrival, "arrivals must be FIFO");
            prop_assert!(
                arrival >= clock + link.serialization_cycles(*bytes) + link.latency(),
                "arrival beats physics"
            );
            last_arrival = arrival;
        }
        let deliveries = link.deliveries_until(u64::MAX);
        prop_assert_eq!(deliveries.len(), msgs.len());
        prop_assert_eq!(deliveries.iter().map(|d| d.bytes).sum::<u64>(), sent_total);
        prop_assert_eq!(link.total_sent(), sent_total);
        // Tags preserved in order.
        for (i, d) in deliveries.iter().enumerate() {
            prop_assert_eq!(d.tag, i as u64);
        }
    }

    /// Ring schedule algebra for arbitrary ring sizes: each step's
    /// sends are a permutation of chunks; receive = predecessor's
    /// send; the reduction chain of every chunk ends at its owner.
    #[test]
    fn ring_schedule_algebra(n in 2usize..33) {
        let ring = Ring::new(n);
        for step in 0..ring.steps() {
            let mut seen = vec![false; n];
            for d in 0..n {
                let c = ring.rs_send_chunk(d, step);
                prop_assert!(!seen[c]);
                seen[c] = true;
                prop_assert_eq!(ring.rs_recv_chunk(d, step), ring.rs_send_chunk(ring.prev(d), step));
                prop_assert_eq!(ring.ag_recv_chunk(d, step), ring.ag_send_chunk(ring.prev(d), step));
            }
        }
        for c in 0..n {
            let mut holder = c;
            for step in 0..ring.steps() {
                prop_assert_eq!(ring.rs_send_chunk(holder, step), c);
                holder = ring.next(holder);
            }
            prop_assert_eq!(ring.rs_owned_chunk(holder), c);
        }
    }

    /// Chunk bounds partition any length over any device count.
    #[test]
    fn chunk_bounds_partition(len in 0usize..10_000, n in 1usize..64) {
        let mut covered = 0;
        for i in 0..n {
            let (s, e) = chunk_bounds(len, n, i);
            prop_assert_eq!(s, covered);
            prop_assert!(e >= s);
            covered = e;
        }
        prop_assert_eq!(covered, len);
    }

    /// DMA pipelines deliver every command once, in order, reading
    /// exactly the command's bytes from memory.
    #[test]
    fn dma_pipeline_conservation(cmds in prop::collection::vec(1u64..300_000, 1..8)) {
        let sys = SystemConfig::paper_default();
        let mut engine = DmaEngine::new(&sys.link);
        let mut mc = MemoryController::new(&sys.mem, Box::new(ComputeFirstPolicy::new()));
        for (i, bytes) in cmds.iter().enumerate() {
            engine.trigger(DmaCommand {
                id: i as u64,
                bytes: *bytes,
                read_class: TrafficClass::RsRead,
            });
        }
        let mut tags = Vec::new();
        let mut now = 0u64;
        while !(engine.is_idle(now) && mc.is_idle()) {
            mc.step(now, None);
            tags.extend(engine.step(now, &mut mc).into_iter().map(|d| d.tag));
            now += 1;
            prop_assert!(now < 50_000_000);
        }
        let expected: Vec<u64> = (0..cmds.len() as u64).collect();
        prop_assert_eq!(tags, expected);
        prop_assert_eq!(
            mc.stats().bytes(TrafficClass::RsRead),
            cmds.iter().sum::<u64>()
        );
        prop_assert_eq!(engine.bytes_sent(), cmds.iter().sum::<u64>());
    }
}
