//! Property tests for the interconnect substrate: link conservation
//! and ordering, ring-schedule algebra, and DMA pipelines.
//!
//! Cases are generated with a seeded deterministic PRNG
//! ([`SplitMix64`]) so every failure reproduces from its seed.

use t3_mem::arbiter::ComputeFirstPolicy;
use t3_mem::controller::MemoryController;
use t3_net::dma::{DmaCommand, DmaEngine};
use t3_net::link::Link;
use t3_net::ring::{chunk_bounds, Ring};
use t3_sim::config::SystemConfig;
use t3_sim::rng::SplitMix64;
use t3_sim::stats::TrafficClass;

/// Arrivals are FIFO and never earlier than the physical bound
/// (serialisation + latency); total delivered equals total sent.
#[test]
fn link_fifo_and_conservation() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::new(seed);
        let msgs: Vec<(u64, u64)> = (0..rng.gen_range(1, 20))
            .map(|_| (rng.gen_range(1, 500_000), rng.gen_range(0, 10_000)))
            .collect();
        let cfg = SystemConfig::paper_default().link;
        let mut link = Link::new(&cfg);
        let mut sent_total = 0u64;
        let mut last_arrival = 0u64;
        let mut clock = 0u64;
        for (i, (bytes, gap)) in msgs.iter().enumerate() {
            clock += gap;
            let arrival = link.send(clock, i as u64, *bytes);
            sent_total += bytes;
            assert!(
                arrival >= last_arrival,
                "seed {seed}: arrivals must be FIFO"
            );
            assert!(
                arrival >= clock + link.serialization_cycles(*bytes) + link.latency(),
                "seed {seed}: arrival beats physics"
            );
            last_arrival = arrival;
        }
        let deliveries = link.deliveries_until(u64::MAX);
        assert_eq!(deliveries.len(), msgs.len(), "seed {seed}");
        assert_eq!(
            deliveries.iter().map(|d| d.bytes).sum::<u64>(),
            sent_total,
            "seed {seed}"
        );
        assert_eq!(link.total_sent(), sent_total, "seed {seed}");
        // Tags preserved in order.
        for (i, d) in deliveries.iter().enumerate() {
            assert_eq!(d.tag, i as u64, "seed {seed}");
        }
    }
}

/// Ring schedule algebra for every ring size 2..=32: each step's sends
/// are a permutation of chunks; receive = predecessor's send; the
/// reduction chain of every chunk ends at its owner.
#[test]
fn ring_schedule_algebra() {
    for n in 2usize..33 {
        let ring = Ring::new(n);
        for step in 0..ring.steps() {
            let mut seen = vec![false; n];
            for d in 0..n {
                let c = ring.rs_send_chunk(d, step);
                assert!(!seen[c], "n={n}");
                seen[c] = true;
                assert_eq!(
                    ring.rs_recv_chunk(d, step),
                    ring.rs_send_chunk(ring.prev(d), step),
                    "n={n}"
                );
                assert_eq!(
                    ring.ag_recv_chunk(d, step),
                    ring.ag_send_chunk(ring.prev(d), step),
                    "n={n}"
                );
            }
        }
        for c in 0..n {
            let mut holder = c;
            for step in 0..ring.steps() {
                assert_eq!(ring.rs_send_chunk(holder, step), c, "n={n}");
                holder = ring.next(holder);
            }
            assert_eq!(ring.rs_owned_chunk(holder), c, "n={n}");
        }
    }
}

/// Chunk bounds partition any length over any device count.
#[test]
fn chunk_bounds_partition() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(seed);
        let len = rng.gen_range_usize(0, 10_000);
        let n = rng.gen_range_usize(1, 64);
        let mut covered = 0;
        for i in 0..n {
            let (s, e) = chunk_bounds(len, n, i);
            assert_eq!(s, covered, "seed {seed}: len={len} n={n}");
            assert!(e >= s, "seed {seed}");
            covered = e;
        }
        assert_eq!(covered, len, "seed {seed}: len={len} n={n}");
    }
}

/// DMA pipelines deliver every command once, in order, reading exactly
/// the command's bytes from memory.
#[test]
fn dma_pipeline_conservation() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(seed);
        let cmds: Vec<u64> = (0..rng.gen_range(1, 8))
            .map(|_| rng.gen_range(1, 300_000))
            .collect();
        let sys = SystemConfig::paper_default();
        let mut engine = DmaEngine::new(&sys.link);
        let mut mc = MemoryController::new(&sys.mem, Box::new(ComputeFirstPolicy::new()));
        for (i, bytes) in cmds.iter().enumerate() {
            engine.trigger(DmaCommand {
                id: i as u64,
                bytes: *bytes,
                read_class: TrafficClass::RsRead,
            });
        }
        let mut tags = Vec::new();
        let mut now = 0u64;
        while !(engine.is_idle(now) && mc.is_idle()) {
            mc.step(now, None);
            tags.extend(engine.step(now, &mut mc).into_iter().map(|d| d.tag));
            now += 1;
            assert!(now < 50_000_000, "seed {seed}: failed to drain");
        }
        let expected: Vec<u64> = (0..cmds.len() as u64).collect();
        assert_eq!(tags, expected, "seed {seed}");
        assert_eq!(
            mc.stats().bytes(TrafficClass::RsRead),
            cmds.iter().sum::<u64>(),
            "seed {seed}"
        );
        assert_eq!(engine.bytes_sent(), cmds.iter().sum::<u64>(), "seed {seed}");
    }
}
