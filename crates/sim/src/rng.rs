//! A small deterministic PRNG for tests and randomized workloads.
//!
//! The workspace builds in offline environments with no external
//! crates, so property-style tests generate their cases with this
//! SplitMix64 generator instead of a fuzzing framework. Determinism is
//! a feature: every failure reproduces from its seed alone.

/// SplitMix64: fast, well-distributed, and trivially seedable.
///
/// # Examples
///
/// ```
/// use t3_sim::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let v = a.gen_range(10, 20);
/// assert!((10..20).contains(&v));
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds give equal
    /// streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range(lo as u64, hi as u64) as usize
    }

    /// A uniformly random boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `f32` in `[-scale, scale)`.
    pub fn gen_f32(&mut self, scale: f32) -> f32 {
        let unit = (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        (unit * 2.0 - 1.0) * scale
    }

    /// Picks one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty.
    pub fn pick<T: Copy>(&mut self, choices: &[T]) -> T {
        assert!(!choices.is_empty(), "pick from empty slice");
        choices[self.gen_range_usize(0, choices.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            let v = r.gen_range(5, 9);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn f32_stays_in_scale() {
        let mut r = SplitMix64::new(2);
        for _ in 0..1000 {
            let v = r.gen_f32(3.0);
            assert!((-3.0..=3.0).contains(&v));
        }
    }

    #[test]
    fn streams_differ_across_seeds() {
        // Not a statistical test; just a sanity check the seed matters.
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn pick_and_bool_cover_choices() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 3];
        let mut bools = [false; 2];
        for _ in 0..200 {
            seen[r.pick(&[0usize, 1, 2])] = true;
            bools[r.gen_bool() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s) && bools.iter().all(|&b| b));
    }
}
