//! DRAM traffic accounting, by the categories of Figure 18.
//!
//! Every memory transaction the timing simulator issues carries a
//! [`TrafficClass`]; [`TrafficStats`] accumulates per-class byte counts
//! so experiments can report the paper's per-sublayer access breakdowns
//! and data-movement reductions.

use crate::Bytes;
use std::fmt;

/// The DRAM-access categories the paper breaks Figure 18 into, plus the
/// near-memory update category T3 introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrafficClass {
    /// Producer GEMM input reads (A and B operands missing in the LLC).
    GemmRead,
    /// Producer GEMM output writes reaching DRAM.
    GemmWrite,
    /// Reduce-scatter reads (local copy and received copy in the
    /// baseline; single DMA-source read in T3).
    RsRead,
    /// Reduce-scatter plain writes (received chunks, reduced outputs).
    RsWrite,
    /// Reduce-scatter near-memory op-and-store updates (T3 only): a
    /// write that also reduces in DRAM.
    RsUpdate,
    /// All-gather reads (chunks leaving for the neighbour).
    AgRead,
    /// All-gather writes (chunks arriving from the neighbour).
    AgWrite,
}

impl TrafficClass {
    /// All classes, in reporting order.
    pub const ALL: [TrafficClass; 7] = [
        TrafficClass::GemmRead,
        TrafficClass::GemmWrite,
        TrafficClass::RsRead,
        TrafficClass::RsWrite,
        TrafficClass::RsUpdate,
        TrafficClass::AgRead,
        TrafficClass::AgWrite,
    ];

    /// Dense index for table storage.
    pub fn index(self) -> usize {
        match self {
            TrafficClass::GemmRead => 0,
            TrafficClass::GemmWrite => 1,
            TrafficClass::RsRead => 2,
            TrafficClass::RsWrite => 3,
            TrafficClass::RsUpdate => 4,
            TrafficClass::AgRead => 5,
            TrafficClass::AgWrite => 6,
        }
    }

    /// Machine-readable identifier (metric keys, CSV columns).
    pub fn slug(self) -> &'static str {
        match self {
            TrafficClass::GemmRead => "gemm_read",
            TrafficClass::GemmWrite => "gemm_write",
            TrafficClass::RsRead => "rs_read",
            TrafficClass::RsWrite => "rs_write",
            TrafficClass::RsUpdate => "rs_update",
            TrafficClass::AgRead => "ag_read",
            TrafficClass::AgWrite => "ag_write",
        }
    }

    /// Whether this class reads DRAM (vs. writing/updating it).
    pub fn is_read(self) -> bool {
        matches!(
            self,
            TrafficClass::GemmRead | TrafficClass::RsRead | TrafficClass::AgRead
        )
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TrafficClass::GemmRead => "GEMM reads",
            TrafficClass::GemmWrite => "GEMM writes",
            TrafficClass::RsRead => "RS reads",
            TrafficClass::RsWrite => "RS writes",
            TrafficClass::RsUpdate => "RS updates",
            TrafficClass::AgRead => "AG reads",
            TrafficClass::AgWrite => "AG writes",
        };
        f.write_str(name)
    }
}

/// Per-class DRAM byte counters for one simulated run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficStats {
    bytes: [Bytes; TrafficClass::ALL.len()],
}

impl TrafficStats {
    /// Creates empty counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `bytes` of traffic of class `class`.
    pub fn record(&mut self, class: TrafficClass, bytes: Bytes) {
        self.bytes[class.index()] += bytes;
    }

    /// Bytes recorded for one class.
    pub fn bytes(&self, class: TrafficClass) -> Bytes {
        self.bytes[class.index()]
    }

    /// Total bytes across all classes.
    pub fn total(&self) -> Bytes {
        self.bytes.iter().sum()
    }

    /// Total read bytes (Figure 18's read-side bars).
    pub fn total_reads(&self) -> Bytes {
        TrafficClass::ALL
            .iter()
            .filter(|c| c.is_read())
            .map(|&c| self.bytes(c))
            .sum()
    }

    /// Total write + update bytes (Figure 18's write-side bars).
    pub fn total_writes(&self) -> Bytes {
        self.total() - self.total_reads()
    }

    /// Merges another run's counters into this one (e.g. GEMM phase +
    /// RS phase + AG phase of one sublayer).
    pub fn merge(&mut self, other: &TrafficStats) {
        for (dst, src) in self.bytes.iter_mut().zip(other.bytes.iter()) {
            *dst += src;
        }
    }

    /// Iterates `(class, bytes)` pairs in reporting order.
    pub fn iter(&self) -> impl Iterator<Item = (TrafficClass, Bytes)> + '_ {
        TrafficClass::ALL.iter().map(move |&c| (c, self.bytes(c)))
    }
}

impl fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (class, bytes) in self.iter() {
            if bytes == 0 {
                continue;
            }
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{class}: {:.1} MB", bytes as f64 / 1e6)?;
            first = false;
        }
        if first {
            write!(f, "no traffic")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut s = TrafficStats::new();
        s.record(TrafficClass::GemmRead, 100);
        s.record(TrafficClass::GemmRead, 50);
        s.record(TrafficClass::RsWrite, 30);
        assert_eq!(s.bytes(TrafficClass::GemmRead), 150);
        assert_eq!(s.bytes(TrafficClass::RsWrite), 30);
        assert_eq!(s.total(), 180);
    }

    #[test]
    fn read_write_split() {
        let mut s = TrafficStats::new();
        s.record(TrafficClass::GemmRead, 10);
        s.record(TrafficClass::RsRead, 20);
        s.record(TrafficClass::AgRead, 5);
        s.record(TrafficClass::GemmWrite, 7);
        s.record(TrafficClass::RsUpdate, 3);
        assert_eq!(s.total_reads(), 35);
        assert_eq!(s.total_writes(), 10);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = TrafficStats::new();
        a.record(TrafficClass::AgWrite, 4);
        let mut b = TrafficStats::new();
        b.record(TrafficClass::AgWrite, 6);
        b.record(TrafficClass::RsRead, 1);
        a.merge(&b);
        assert_eq!(a.bytes(TrafficClass::AgWrite), 10);
        assert_eq!(a.bytes(TrafficClass::RsRead), 1);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; TrafficClass::ALL.len()];
        for class in TrafficClass::ALL {
            let i = class.index();
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_skips_zero_classes() {
        let mut s = TrafficStats::new();
        s.record(TrafficClass::RsUpdate, 2_000_000);
        let text = s.to_string();
        assert!(text.contains("RS updates"));
        assert!(!text.contains("GEMM"));
    }

    #[test]
    fn display_nonempty_when_empty() {
        assert_eq!(TrafficStats::new().to_string(), "no traffic");
    }
}
