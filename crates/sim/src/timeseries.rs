//! Bucketed traffic-over-time recording (Figure 17).
//!
//! The paper's Figure 17 plots DRAM traffic per unit time for a
//! baseline GEMM and for T3's fused GEMM-RS, showing the GEMM's
//! read/write phases and the overlapped RS reads/updates.
//! [`TimeSeries`] accumulates per-class byte counts into fixed-width
//! cycle buckets as the simulator issues transactions.

use crate::stats::TrafficClass;
use crate::{Bytes, Cycle};

/// A per-class, bucketed record of DRAM traffic over time.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bucket_cycles: Cycle,
    buckets: Vec<[Bytes; TrafficClass::ALL.len()]>,
}

impl TimeSeries {
    /// Creates a series with the given bucket width in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_cycles` is zero.
    pub fn new(bucket_cycles: Cycle) -> Self {
        assert!(bucket_cycles > 0, "bucket width must be positive");
        TimeSeries {
            bucket_cycles,
            buckets: Vec::new(),
        }
    }

    /// Bucket width in cycles.
    pub fn bucket_cycles(&self) -> Cycle {
        self.bucket_cycles
    }

    /// Records `bytes` of `class` traffic at time `now`.
    pub fn record(&mut self, now: Cycle, class: TrafficClass, bytes: Bytes) {
        let idx = (now / self.bucket_cycles) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, [0; TrafficClass::ALL.len()]);
        }
        self.buckets[idx][class.index()] += bytes;
    }

    /// Number of buckets recorded so far.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether any traffic has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Bytes of `class` traffic in bucket `idx` (zero past the end).
    pub fn bytes_in_bucket(&self, idx: usize, class: TrafficClass) -> Bytes {
        self.buckets
            .get(idx)
            .map_or(0, |bucket| bucket[class.index()])
    }

    /// Total bytes in bucket `idx` across all classes.
    pub fn total_in_bucket(&self, idx: usize) -> Bytes {
        self.buckets
            .get(idx)
            .map_or(0, |bucket| bucket.iter().sum())
    }

    /// Iterates `(bucket_start_cycle, per_class_bytes)` rows, for
    /// printing Figure 17-style timelines.
    pub fn rows(&self) -> impl Iterator<Item = (Cycle, &[Bytes; TrafficClass::ALL.len()])> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, b)| (i as Cycle * self.bucket_cycles, b))
    }

    /// Downsamples to at most `max_rows` rows by merging adjacent
    /// buckets, preserving totals. Useful for terminal-width plots.
    pub fn downsample(&self, max_rows: usize) -> TimeSeries {
        assert!(max_rows > 0, "max_rows must be positive");
        if self.buckets.len() <= max_rows {
            return self.clone();
        }
        let group = self.buckets.len().div_ceil(max_rows);
        let mut out = TimeSeries::new(self.bucket_cycles * group as Cycle);
        for (i, bucket) in self.buckets.iter().enumerate() {
            let idx = i / group;
            if idx >= out.buckets.len() {
                out.buckets.resize(idx + 1, [0; TrafficClass::ALL.len()]);
            }
            for (dst, src) in out.buckets[idx].iter_mut().zip(bucket.iter()) {
                *dst += src;
            }
        }
        out
    }

    /// Total bytes across the entire series for one class.
    pub fn total(&self, class: TrafficClass) -> Bytes {
        self.buckets.iter().map(|b| b[class.index()]).sum()
    }

    /// Renders the series as CSV: a `cycle` column followed by one
    /// column per traffic class (slug names), one row per bucket.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("cycle");
        for class in TrafficClass::ALL {
            out.push(',');
            out.push_str(class.slug());
        }
        out.push('\n');
        for (start, bucket) in self.rows() {
            let _ = write!(out, "{start}");
            for bytes in bucket {
                let _ = write!(out, ",{bytes}");
            }
            out.push('\n');
        }
        out
    }

    /// Parses a series back from [`TimeSeries::to_csv`] output.
    /// Returns `None` on any malformed header, row width, or number.
    /// The bucket width is recovered from the row stride, so a
    /// single-bucket series comes back with width 1.
    pub fn from_csv(csv: &str) -> Option<TimeSeries> {
        let mut lines = csv.lines();
        let header = lines.next()?;
        let mut expected = String::from("cycle");
        for class in TrafficClass::ALL {
            expected.push(',');
            expected.push_str(class.slug());
        }
        if header != expected {
            return None;
        }
        let mut rows: Vec<(Cycle, [Bytes; TrafficClass::ALL.len()])> = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split(',');
            let start: Cycle = fields.next()?.parse().ok()?;
            let mut bucket = [0; TrafficClass::ALL.len()];
            for slot in bucket.iter_mut() {
                *slot = fields.next()?.parse().ok()?;
            }
            if fields.next().is_some() {
                return None;
            }
            rows.push((start, bucket));
        }
        // Bucket width: the stride between rows (one bucket per row,
        // so any two consecutive starts differ by exactly the width).
        let bucket_cycles = match rows.len() {
            0 => return None,
            1 => rows[0].0.max(1),
            _ => rows[1].0 - rows[0].0,
        };
        let mut ts = TimeSeries::new(bucket_cycles);
        ts.buckets = rows.into_iter().map(|(_, b)| b).collect();
        Some(ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bucket() {
        let mut ts = TimeSeries::new(100);
        ts.record(0, TrafficClass::GemmRead, 10);
        ts.record(99, TrafficClass::GemmRead, 5);
        ts.record(100, TrafficClass::GemmRead, 7);
        assert_eq!(ts.bytes_in_bucket(0, TrafficClass::GemmRead), 15);
        assert_eq!(ts.bytes_in_bucket(1, TrafficClass::GemmRead), 7);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn totals_per_bucket_and_series() {
        let mut ts = TimeSeries::new(10);
        ts.record(5, TrafficClass::RsRead, 3);
        ts.record(5, TrafficClass::RsUpdate, 4);
        assert_eq!(ts.total_in_bucket(0), 7);
        assert_eq!(ts.total(TrafficClass::RsRead), 3);
        assert_eq!(ts.total_in_bucket(99), 0);
    }

    #[test]
    fn downsample_preserves_totals() {
        let mut ts = TimeSeries::new(1);
        for t in 0..1000 {
            ts.record(t, TrafficClass::GemmWrite, 2);
        }
        let small = ts.downsample(10);
        assert!(small.len() <= 10);
        assert_eq!(small.total(TrafficClass::GemmWrite), 2000);
        assert_eq!(small.bucket_cycles(), 100);
    }

    #[test]
    fn downsample_noop_when_small() {
        let mut ts = TimeSeries::new(10);
        ts.record(0, TrafficClass::AgRead, 1);
        let same = ts.downsample(100);
        assert_eq!(same.len(), ts.len());
        assert_eq!(same.bucket_cycles(), 10);
    }

    #[test]
    fn rows_expose_start_cycles() {
        let mut ts = TimeSeries::new(50);
        ts.record(120, TrafficClass::AgWrite, 9);
        let rows: Vec<_> = ts.rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].0, 100);
        assert_eq!(rows[2].1[TrafficClass::AgWrite.index()], 9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bucket_width_panics() {
        let _ = TimeSeries::new(0);
    }

    #[test]
    fn csv_round_trips() {
        let mut ts = TimeSeries::new(100);
        ts.record(10, TrafficClass::GemmRead, 64);
        ts.record(150, TrafficClass::RsUpdate, 32);
        ts.record(250, TrafficClass::GemmWrite, 16);
        let csv = ts.to_csv();
        assert!(csv.starts_with(
            "cycle,gemm_read,gemm_write,rs_read,rs_write,rs_update,ag_read,ag_write\n"
        ));
        let back = TimeSeries::from_csv(&csv).expect("well-formed CSV");
        assert_eq!(back.bucket_cycles(), ts.bucket_cycles());
        assert_eq!(back.len(), ts.len());
        for class in TrafficClass::ALL {
            assert_eq!(back.total(class), ts.total(class));
            for idx in 0..ts.len() {
                assert_eq!(
                    back.bytes_in_bucket(idx, class),
                    ts.bytes_in_bucket(idx, class)
                );
            }
        }
        // Exact textual round trip too.
        assert_eq!(back.to_csv(), csv);
    }

    #[test]
    fn from_csv_rejects_malformed_input() {
        assert!(TimeSeries::from_csv("").is_none());
        assert!(TimeSeries::from_csv("wrong,header\n1,2\n").is_none());
        let good = {
            let mut ts = TimeSeries::new(10);
            ts.record(0, TrafficClass::GemmRead, 1);
            ts.to_csv()
        };
        assert!(TimeSeries::from_csv(&good).is_some());
        assert!(TimeSeries::from_csv(&good.replace('1', "x")).is_none());
    }
}
