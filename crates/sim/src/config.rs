//! Simulated system configuration (Table 1 of the paper).
//!
//! [`SystemConfig::paper_default`] reproduces the paper's setup: an
//! 80-CU, 1.4 GHz GPU with a 16 MB LLC, 1 TB/s HBM2, and a 150 GB/s
//! bi-directional ring with 500 ns link latency, in 8- or 16-GPU
//! nodes. [`SystemConfig::future_2x_cu`] reproduces the "GPU-2X-CU"
//! configuration of Section 7.5 (compute scaled 2x, network constant).

use crate::{gb_s_to_bytes_per_cycle, ns_to_cycles, Bytes, Cycle};

/// Number of bytes per FP16 element; the paper evaluates half-precision
/// forward/backward passes and FP16 inference.
pub const FP16_BYTES: u64 = 2;

/// Compute-unit and kernel-execution parameters of one GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of compute units (Table 1: 80).
    pub num_cus: u32,
    /// Core/L2/MC clock in GHz (Table 1: 1.4).
    pub clock_ghz: f64,
    /// Peak FP16 FLOPs retired per CU per cycle by GEMM kernels
    /// (tensor-core-class; calibrated so compute:communication ratios
    /// match Figures 4 and 15 — see DESIGN.md).
    pub flops_per_cu_cycle: f64,
    /// Sustained fraction of peak a well-tuned GEMM stage achieves for
    /// its compute phase (library kernels do not hit 100% of peak).
    pub gemm_efficiency: f64,
    /// Bytes of collective payload one CU can process per cycle
    /// (load two operands, reduce, store); bounds CU-limited collective
    /// kernels, calibrated against Figure 6's 8-CU / 16-CU slowdowns.
    pub collective_bytes_per_cu_cycle: f64,
    /// Concurrent workgroups resident per CU (occupancy) for the tiled
    /// GEMMs the paper evaluates.
    pub wgs_per_cu: u32,
    /// Output-tile edge produced by one workgroup (tiles are
    /// `tile_dim x tile_dim` elements).
    pub tile_dim: u32,
    /// Wavefronts per workgroup (Section 4.2.1: at most eight).
    pub wfs_per_wg: u32,
    /// Whether GEMM kernels prefetch: a stage's input reads overlap
    /// its compute phase (double-buffered operands), so stage time is
    /// `max(read, compute)` instead of `read + compute`. Library
    /// kernels are double-buffered; the serial model is kept as the
    /// conservative default the calibration was done against.
    pub gemm_prefetch: bool,
    /// Fixed kernel-launch overhead in cycles, applied once per kernel.
    pub kernel_launch_cycles: Cycle,
    /// Per-step software overhead of CU-executed ring collectives
    /// (launch/synchronisation between ring steps).
    pub coll_step_overhead_cycles: Cycle,
}

impl GpuConfig {
    /// Peak GEMM throughput of the whole GPU in FLOP per cycle.
    pub fn peak_flops_per_cycle(&self) -> f64 {
        self.num_cus as f64 * self.flops_per_cu_cycle
    }

    /// Number of workgroups that can execute concurrently (one GEMM
    /// "stage" in the paper's terminology, Section 2.5).
    pub fn concurrent_wgs(&self) -> u32 {
        self.num_cus * self.wgs_per_cu
    }

    /// Peak GEMM throughput in TFLOP/s, for reporting.
    pub fn peak_tflops(&self) -> f64 {
        self.peak_flops_per_cycle() * self.clock_ghz / 1e3
    }
}

/// Memory-system parameters: HBM bandwidth, controller queueing, LLC
/// geometry and near-memory-compute costs.
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// Aggregate HBM bandwidth in GB/s (Table 1: 1 TB/s).
    pub hbm_gb_s: f64,
    /// Core clock used to convert bandwidth into per-cycle service.
    pub clock_ghz: f64,
    /// Memory transaction granularity in bytes. The simulator moves
    /// traffic in units of this size; 256 B keeps event counts tractable
    /// while preserving queueing behaviour.
    pub txn_bytes: Bytes,
    /// DRAM queue capacity in transactions; the MCA policy's occupancy
    /// thresholds are expressed against this queue (Section 4.5).
    pub dram_queue_capacity: usize,
    /// LLC capacity in bytes (Table 1: 16 MB).
    pub llc_capacity: Bytes,
    /// LLC associativity (ways).
    pub llc_ways: u32,
    /// LLC line size in bytes.
    pub llc_line: Bytes,
    /// LLC replacement policy. GPU L2s are not strictly LRU; random
    /// replacement approximates their behaviour on streaming working
    /// sets near the cache size (an LRU cache degenerates to a 0% hit
    /// rate one byte past capacity, which real caches do not).
    pub llc_replacement: LlcReplacement,
    /// Service-cost multiplier for near-memory op-and-store updates
    /// relative to plain writes (CCDWL = 2x CCDL amortised over four
    /// bank groups — Section 5.1.1).
    pub nmc_cost_multiplier: f64,
    /// Service-cost multiplier when reductions use system-wide atomics
    /// on uncached data instead of NMC (Section 7.4 substrate).
    pub atomics_cost_multiplier: f64,
    /// Extra service cost (fraction of a transaction) paid when DRAM
    /// switches between the compute and communication streams —
    /// row-buffer locality loss from interleaving unrelated access
    /// streams. This is what makes naive round-robin arbitration hurt
    /// the producer (Section 4.5) and T3-MCA's stream batching win.
    pub stream_switch_penalty: f64,
}

impl MemConfig {
    /// HBM service rate in bytes per core cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        gb_s_to_bytes_per_cycle(self.hbm_gb_s, self.clock_ghz)
    }

    /// HBM service rate in transactions per core cycle.
    pub fn txns_per_cycle(&self) -> f64 {
        self.bytes_per_cycle() / self.txn_bytes as f64
    }

    /// Number of lines in the LLC.
    pub fn llc_lines(&self) -> u64 {
        self.llc_capacity / self.llc_line
    }

    /// Number of sets in the LLC.
    pub fn llc_sets(&self) -> u64 {
        (self.llc_lines() / self.llc_ways as u64).max(1)
    }
}

/// LLC replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LlcReplacement {
    /// Evict the least-recently-used way.
    Lru,
    /// Evict a (deterministically) random way — streaming-resistant,
    /// the default for the paper configuration.
    #[default]
    Random,
}

/// Inter-GPU interconnect parameters (Table 1: ring, 150 GB/s
/// bi-directional, 500 ns link latency).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// Per-direction link bandwidth in GB/s.
    pub link_gb_s: f64,
    /// Core clock used to convert bandwidth into per-cycle payload.
    pub clock_ghz: f64,
    /// One-way link latency in nanoseconds.
    pub latency_ns: f64,
}

impl LinkConfig {
    /// Link payload rate in bytes per core cycle, per direction.
    pub fn bytes_per_cycle(&self) -> f64 {
        gb_s_to_bytes_per_cycle(self.link_gb_s, self.clock_ghz)
    }

    /// One-way link latency in core cycles.
    pub fn latency_cycles(&self) -> Cycle {
        ns_to_cycles(self.latency_ns, self.clock_ghz)
    }
}

/// Full simulated-system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Per-GPU compute configuration.
    pub gpu: GpuConfig,
    /// Per-GPU memory-system configuration.
    pub mem: MemConfig,
    /// Inter-GPU link configuration.
    pub link: LinkConfig,
    /// Number of GPUs in the node (Table 1: 8 or 16; larger studies use
    /// 32; the validation study uses 4).
    pub num_gpus: usize,
}

impl SystemConfig {
    /// The paper's simulated system (Table 1) with `num_gpus = 8`.
    pub fn paper_default() -> Self {
        let clock_ghz = 1.4;
        SystemConfig {
            gpu: GpuConfig {
                num_cus: 80,
                clock_ghz,
                flops_per_cu_cycle: 1024.0,
                gemm_efficiency: 0.85,
                collective_bytes_per_cu_cycle: 28.0,
                wgs_per_cu: 1,
                tile_dim: 128,
                wfs_per_wg: 8,
                gemm_prefetch: false,
                kernel_launch_cycles: 2_000,
                coll_step_overhead_cycles: 1_400,
            },
            mem: MemConfig {
                hbm_gb_s: 1000.0,
                clock_ghz,
                txn_bytes: 256,
                dram_queue_capacity: 64,
                llc_capacity: 16 * 1024 * 1024,
                llc_ways: 16,
                llc_line: 256,
                llc_replacement: LlcReplacement::Random,
                nmc_cost_multiplier: 1.15,
                atomics_cost_multiplier: 1.4,
                stream_switch_penalty: 0.75,
            },
            link: LinkConfig {
                link_gb_s: 150.0,
                clock_ghz,
                latency_ns: 500.0,
            },
            num_gpus: 8,
        }
    }

    /// Same system with a different GPU count.
    pub fn with_num_gpus(mut self, num_gpus: usize) -> Self {
        assert!(num_gpus >= 2, "a multi-GPU system needs at least 2 GPUs");
        self.num_gpus = num_gpus;
        self
    }

    /// The "GPU-2X-CU" future configuration of Section 7.5: twice the
    /// CUs, identical memory and network.
    pub fn future_2x_cu() -> Self {
        let mut cfg = Self::paper_default();
        cfg.gpu.num_cus *= 2;
        cfg
    }

    /// Validates internal consistency; returns a human-readable message
    /// for the first violated constraint.
    ///
    /// # Errors
    ///
    /// Returns `Err` if any parameter is non-positive, the LLC geometry
    /// does not divide evenly, or the node is too small for a ring.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_gpus < 2 {
            return Err(format!("num_gpus must be >= 2, got {}", self.num_gpus));
        }
        if self.gpu.num_cus == 0 {
            return Err("num_cus must be positive".to_string());
        }
        if self.gpu.clock_ghz <= 0.0 || self.mem.clock_ghz <= 0.0 || self.link.clock_ghz <= 0.0 {
            return Err("clocks must be positive".to_string());
        }
        if self.gpu.tile_dim == 0 || self.gpu.wfs_per_wg == 0 || self.gpu.wfs_per_wg > 8 {
            return Err(format!(
                "tile_dim must be positive and wfs_per_wg in 1..=8, got {} and {}",
                self.gpu.tile_dim, self.gpu.wfs_per_wg
            ));
        }
        if self.gpu.gemm_efficiency <= 0.0 || self.gpu.gemm_efficiency > 1.0 {
            return Err(format!(
                "gemm_efficiency must be in (0, 1], got {}",
                self.gpu.gemm_efficiency
            ));
        }
        if self.mem.txn_bytes == 0 || self.mem.llc_line == 0 {
            return Err("transaction and line sizes must be positive".to_string());
        }
        if !self
            .mem
            .llc_capacity
            .is_multiple_of(self.mem.llc_line * self.mem.llc_ways as u64)
        {
            return Err("LLC capacity must be divisible by line size x ways".to_string());
        }
        if self.mem.nmc_cost_multiplier < 1.0 {
            return Err("nmc_cost_multiplier must be >= 1.0".to_string());
        }
        if self.mem.stream_switch_penalty < 0.0 {
            return Err("stream_switch_penalty must be non-negative".to_string());
        }
        if self.mem.dram_queue_capacity == 0 {
            return Err("dram_queue_capacity must be positive".to_string());
        }
        if self.link.link_gb_s <= 0.0 || self.mem.hbm_gb_s <= 0.0 {
            return Err("bandwidths must be positive".to_string());
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        SystemConfig::paper_default().validate().unwrap();
    }

    #[test]
    fn paper_default_matches_table_1() {
        let cfg = SystemConfig::paper_default();
        assert_eq!(cfg.gpu.num_cus, 80);
        assert_eq!(cfg.gpu.clock_ghz, 1.4);
        assert_eq!(cfg.mem.llc_capacity, 16 * 1024 * 1024);
        assert_eq!(cfg.link.latency_cycles(), 700);
        assert_eq!(cfg.num_gpus, 8);
    }

    #[test]
    fn bandwidth_rates_are_consistent() {
        let cfg = SystemConfig::paper_default();
        assert!((cfg.mem.bytes_per_cycle() - 714.2857).abs() < 1e-3);
        assert!((cfg.link.bytes_per_cycle() - 107.1428).abs() < 1e-3);
        assert!(cfg.mem.txns_per_cycle() > 2.0);
    }

    #[test]
    fn future_config_doubles_cus_only() {
        let base = SystemConfig::paper_default();
        let fut = SystemConfig::future_2x_cu();
        assert_eq!(fut.gpu.num_cus, 2 * base.gpu.num_cus);
        assert_eq!(fut.mem, base.mem);
        assert_eq!(fut.link, base.link);
        fut.validate().unwrap();
    }

    #[test]
    fn with_num_gpus_updates_count() {
        let cfg = SystemConfig::paper_default().with_num_gpus(16);
        assert_eq!(cfg.num_gpus, 16);
        cfg.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn with_one_gpu_panics() {
        let _ = SystemConfig::paper_default().with_num_gpus(1);
    }

    #[test]
    fn validate_rejects_bad_llc_geometry() {
        let mut cfg = SystemConfig::paper_default();
        cfg.mem.llc_capacity = 1000; // not divisible by 256 * 16
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_efficiency() {
        let mut cfg = SystemConfig::paper_default();
        cfg.gpu.gemm_efficiency = 0.0;
        assert!(cfg.validate().is_err());
        cfg.gpu.gemm_efficiency = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_queue() {
        let mut cfg = SystemConfig::paper_default();
        cfg.mem.dram_queue_capacity = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn peak_tflops_is_tensor_core_class() {
        let cfg = SystemConfig::paper_default();
        let tflops = cfg.gpu.peak_tflops();
        assert!(tflops > 100.0 && tflops < 130.0, "got {tflops}");
    }

    #[test]
    fn llc_geometry() {
        let cfg = SystemConfig::paper_default();
        assert_eq!(cfg.mem.llc_lines(), 65536);
        assert_eq!(cfg.mem.llc_sets(), 4096);
    }
}
